#!/usr/bin/env python
"""Compare every recovery policy on one scenario (paper-style Gap study).

Runs the same 4-core / 4-VC / uniform-0.1 scenario — same traffic, same
process-variation sample — under the four policies of the paper:

* ``baseline``                (no NBTI awareness: 100 % stress),
* ``rr-no-sensor``            (Algorithm 1, best sensor-less),
* ``sensor-wise-no-traffic``  (sensors, no cooperation), and
* ``sensor-wise``             (the proposed cooperative policy),

then prints the per-VC duty cycles, the Gap on the most-degraded VC and
the projected 3-year Vth saving of each policy vs the baseline.

Run with ``python examples/policy_comparison.py``.
"""

from __future__ import annotations

from repro.experiments.config import ScenarioConfig
from repro.experiments.report import render_table
from repro.experiments.runner import run_policies
from repro.experiments.tables import run_vth_saving

POLICIES = ("baseline", "rr-no-sensor", "sensor-wise-no-traffic", "sensor-wise")


def main() -> None:
    scenario = ScenarioConfig(
        num_nodes=4,
        num_vcs=4,
        injection_rate=0.1,
        cycles=15_000,
        warmup=2_000,
    )
    print(f"Scenario: {scenario.label}, {scenario.num_vcs} VCs, "
          f"uniform traffic\n")

    results = run_policies(scenario, POLICIES)
    md = results["sensor-wise"].md_vc

    headers = ["Policy"] + [f"VC{v}" for v in range(scenario.num_vcs)] + [
        "MD duty", "Gap vs rr",
    ]
    rr_md = results["rr-no-sensor"].duty_cycles[md]
    rows = []
    for policy in POLICIES:
        duties = results[policy].duty_cycles
        rows.append(
            [policy]
            + [f"{d:.1f}%" for d in duties]
            + [f"{duties[md]:.1f}%", f"{rr_md - duties[md]:+.1f}%"]
        )
    print(render_table(headers, rows,
                       title=f"NBTI-duty-cycle per VC (most degraded: VC{md})"))

    print()
    print(run_vth_saving(scenario, policies=POLICIES, years=3.0).format())

    print()
    print("Network performance (same offered traffic):")
    for policy in POLICIES:
        stats = results[policy].net_stats
        print(f"  {policy:<24s} latency {stats.avg_packet_latency:6.2f} cyc   "
              f"throughput {stats.throughput_flits_per_node_cycle:.4f} flits/node/cyc")


if __name__ == "__main__":
    main()
