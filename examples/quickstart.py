#!/usr/bin/env python
"""Quickstart: simulate a 4-core mesh under the sensor-wise policy.

Builds the paper's smallest platform (2x2 mesh, 2 VCs per input port,
uniform traffic at 0.1 flits/cycle/node), runs it with the proposed
cooperative sensor-wise NBTI recovery policy, and prints:

* per-VC NBTI-duty-cycles at the measured port (router 0, east input),
* which VC the process-variation sample made the most degraded, and
* the network latency/throughput the run sustained.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario


def main() -> None:
    scenario = ScenarioConfig(
        num_nodes=4,
        num_vcs=2,
        injection_rate=0.1,
        policy="sensor-wise",
        cycles=20_000,
        warmup=2_000,
    )
    print(f"Simulating {scenario.label} under {scenario.policy!r}...")
    result = run_scenario(scenario)

    print()
    print(f"Measured port      : router {scenario.measure_router}, "
          f"{scenario.measure_port} input")
    print(f"Initial |Vth| (PV) : "
          + ", ".join(f"VC{v}={vth * 1e3:.1f}mV"
                      for v, vth in enumerate(result.initial_vths)))
    print(f"Most degraded VC   : VC{result.md_vc}")
    print(f"NBTI-duty-cycles   : "
          + ", ".join(f"VC{v}={d:.1f}%" for v, d in enumerate(result.duty_cycles)))
    print(f"MD VC duty cycle   : {result.md_duty:.1f}% "
          f"(baseline NoC would be 100%)")
    print(f"Network            : {result.net_stats}")
    print(f"Simulated in       : {result.wall_seconds:.1f}s")


if __name__ == "__main__":
    main()
