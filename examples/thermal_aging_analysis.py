#!/usr/bin/env python
"""Full-stack aging analysis: activity -> power -> heat -> NBTI -> fmax.

Beyond the paper's tables, the library closes the whole reliability
loop.  This example runs a 16-core mesh with a hot L2 bank, then:

1. estimates per-router power and steady-state **temperature** from the
   simulated activity (hot routers run ~tens of kelvin warmer),
2. projects each buffer's **Vth** 5 years ahead at *its own router's*
   temperature (Arrhenius-accelerated aging on the hot tiles),
3. translates the worst buffer's shift into a **maximum-frequency**
   trajectory via the alpha-power delay law, and
4. cross-checks the closed-form projection with the explicit
   stress/recovery (short-term) integrator.

Run with ``python examples/thermal_aging_analysis.py``.
"""

from __future__ import annotations

from repro.core.policies import make_policy_factory
from repro.nbti.constants import SECONDS_PER_YEAR
from repro.nbti.delay import frequency_trajectory, guardband_lifetime_years
from repro.nbti.shortterm import ShortTermNBTI
from repro.nbti.thermal import router_temperatures, thermal_aware_projection
from repro.noc.config import NoCConfig
from repro.noc.network import Network
from repro.traffic.synthetic import HotspotTraffic

YEARS = 5.0


def main() -> None:
    config = NoCConfig(num_nodes=16, num_vcs=2)
    traffic = HotspotTraffic(
        16, flit_rate=0.35, hotspots=[5], hotspot_fraction=0.6,
        packet_length=4, seed=13,
    )
    net = Network(config, make_policy_factory("sensor-wise"), traffic)
    print("Simulating a 16-core mesh with a hot L2 bank at tile 5...")
    net.run(2_000)
    net.reset_nbti()
    net.run(10_000)

    # 1. Thermal map.
    profile = router_temperatures(net)
    print()
    print(profile.as_text())
    hot = profile.hottest_router

    # 2. Thermal-aware lifetime Vth projection.
    projection = thermal_aware_projection(net, years=YEARS, profile=profile)
    worst_key = max(projection, key=projection.get)
    worst_vth = projection[worst_key]
    router, port, vc = worst_key
    device = net.devices[worst_key]
    print()
    print(f"Worst buffer after {YEARS:g} years: router {router}, port {port}, "
          f"VC {vc}")
    print(f"  initial |Vth| {device.initial_vth * 1e3:.1f} mV -> projected "
          f"{worst_vth * 1e3:.1f} mV at {profile.temperatures_k[router] - 273.15:.0f} C "
          f"(duty {device.duty_cycle:.1f}%)")

    # 3. Frequency trajectory of that buffer's pipeline.
    traj = frequency_trajectory(
        net.nbti_model, device.duty_cycle, years=(1, 2, 3, 5),
        initial_vth=device.initial_vth,
    )
    print()
    print("Max-frequency trajectory (fraction of fresh fmax):")
    for year, factor in zip(traj.years, traj.frequency_factors):
        print(f"  year {year}: {factor:.4f}")
    lifetime = guardband_lifetime_years(
        net.nbti_model, device.duty_cycle, max_degradation=0.05,
        initial_vth=device.initial_vth,
    )
    lifetime_text = "never" if lifetime == float("inf") else f"{lifetime:.1f} years"
    print(f"  5% frequency guardband crossed: {lifetime_text}")

    # 4. Cross-check with the explicit stress/recovery integrator.
    short = ShortTermNBTI(net.nbti_model)
    alpha = device.alpha
    explicit = short.simulate_duty(alpha, SECONDS_PER_YEAR / 200, YEARS * SECONDS_PER_YEAR)
    closed = net.nbti_model.delta_vth(alpha, YEARS * SECONDS_PER_YEAR)
    print()
    print(f"Model cross-check at duty {device.duty_cycle:.1f}%: closed form "
          f"{closed * 1e3:.1f} mV vs explicit integrator {explicit * 1e3:.1f} mV")
    print(f"Hottest router: {hot} (tile 5's neighborhood), thermal spread "
          f"{profile.spread_k:.1f} K — hot tiles age measurably faster.")


if __name__ == "__main__":
    main()
