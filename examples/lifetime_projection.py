#!/usr/bin/env python
"""Lifetime study: project measured duty cycles over a 10-year horizon.

The duty cycles a policy achieves in simulation translate into threshold
-voltage drift through the calibrated long-term reaction-diffusion model
(the paper's Eq. 1).  This example:

1. measures the most-degraded VC's duty cycle under the baseline,
   rr-no-sensor and sensor-wise policies,
2. prints the |Vth| trajectory of that buffer over 10 years for each
   policy (initial PV value + accumulated NBTI shift), and
3. reports when each policy crosses a guardband (+40 mV over nominal),
   i.e. the effective lifetime extension the methodology buys.

Run with ``python examples/lifetime_projection.py``.
"""

from __future__ import annotations

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_policies
from repro.nbti.constants import SECONDS_PER_YEAR
from repro.nbti.model import NBTIModel

POLICIES = ("baseline", "rr-no-sensor", "sensor-wise")
GUARDBAND_V = 0.040
HORIZON_YEARS = (1, 2, 3, 5, 7, 10)


def years_to_guardband(model: NBTIModel, alpha: float, guardband: float) -> float:
    """Bisection on time: years until the shift exceeds the guardband."""
    if model.delta_vth(alpha, 100.0 * SECONDS_PER_YEAR) < guardband:
        return float("inf")
    lo, hi = 0.0, 100.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if model.delta_vth(alpha, mid * SECONDS_PER_YEAR) < guardband:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def main() -> None:
    scenario = ScenarioConfig(
        num_nodes=4, num_vcs=2, injection_rate=0.2,
        cycles=15_000, warmup=2_000,
    )
    model = NBTIModel.calibrated()
    results = run_policies(scenario, POLICIES)
    md = results["sensor-wise"].md_vc
    initial_vth = results["sensor-wise"].initial_vths[md]

    print(f"Scenario {scenario.label}; most-degraded VC{md}, "
          f"initial |Vth| = {initial_vth * 1e3:.1f} mV\n")

    header = "Policy                 duty   " + "".join(
        f"{y:>4d}y " for y in HORIZON_YEARS
    ) + "  guardband hit"
    print(header)
    print("-" * len(header))
    for policy in POLICIES:
        alpha = results[policy].md_duty / 100.0
        cells = []
        for years in HORIZON_YEARS:
            vth = initial_vth + model.delta_vth(alpha, years * SECONDS_PER_YEAR)
            cells.append(f"{vth * 1e3:5.0f} ")
        hit = years_to_guardband(model, alpha, GUARDBAND_V)
        hit_text = f"{hit:5.1f} years" if hit != float("inf") else "   never"
        print(f"{policy:<22s} {results[policy].md_duty:5.1f}%  "
              + "".join(cells) + f"  {hit_text}")

    base_hit = years_to_guardband(
        model, results["baseline"].md_duty / 100.0, GUARDBAND_V
    )
    sw_hit = years_to_guardband(
        model, results["sensor-wise"].md_duty / 100.0, GUARDBAND_V
    )
    print()
    print(f"(|Vth| in mV; guardband = nominal + {GUARDBAND_V * 1e3:.0f} mV)")
    if sw_hit != float("inf") and base_hit != float("inf"):
        print(f"Sensor-wise extends the guardband lifetime "
              f"{sw_hit / base_hit:.1f}x over the baseline NoC.")
    else:
        print("Sensor-wise keeps the buffer inside the guardband for the "
              "entire 100-year search window.")


if __name__ == "__main__":
    main()
