#!/usr/bin/env python
"""Extending the framework: write and evaluate a custom recovery policy.

The estimation framework is policy-agnostic: anything implementing
:class:`repro.noc.policy_api.RecoveryPolicy` can drive the pre-VA stage.
This example implements a **threshold-adaptive** policy that goes beyond
the paper: it behaves like sensor-wise, but once the most-degraded VC's
*sensed* Vth margin over its siblings is small (the port is evenly
aged), it stops reserving gating priority and falls back to round-robin
rotation — trading targeted recovery for wear-leveling.

The custom policy is then compared against the two paper policies on
the same scenario.

Run with ``python examples/custom_policy.py``.
"""

from __future__ import annotations

from repro.core.policies import RoundRobinSensorlessPolicy, SensorWisePolicy
from repro.noc.config import NoCConfig
from repro.noc.network import Network
from repro.noc.policy_api import PolicyContext, PolicyDecision, RecoveryPolicy
from repro.nbti.process_variation import ProcessVariationModel
from repro.traffic.synthetic import SyntheticTraffic


class AdaptiveHybridPolicy(RecoveryPolicy):
    """sensor-wise while the port ages unevenly, round-robin once level.

    The switchover is driven by a wear-leveling epoch: every
    ``reassess_period`` cycles the policy alternates which strategy gets
    the next window, weighted by how recently the most-degraded VC id
    changed (a changing MD id means the port is already level).
    """

    name = "adaptive-hybrid"
    uses_sensor = True
    uses_traffic = True
    stable = True

    def __init__(self, reassess_period: int = 512) -> None:
        self._sensor_wise = SensorWisePolicy()
        self._round_robin = RoundRobinSensorlessPolicy(rotation_period=64)
        self.reassess_period = reassess_period
        self._last_md = None
        self._md_changes = 0

    def epoch(self, cycle: int) -> int:
        # Re-evaluate whenever either inner policy would.
        return cycle // min(self.reassess_period, 64)

    def decide(self, ctx: PolicyContext) -> PolicyDecision:
        if ctx.most_degraded_vc != self._last_md:
            self._last_md = ctx.most_degraded_vc
            self._md_changes += 1
        leveled = self._md_changes > 3  # MD id keeps moving: port is level
        if leveled:
            return self._round_robin.decide(ctx)
        return self._sensor_wise.decide(ctx)


def run(policy_factory, label: str) -> None:
    config = NoCConfig(num_nodes=4, num_vcs=4)
    traffic = SyntheticTraffic("uniform", 4, flit_rate=0.1,
                               packet_length=4, seed=11)
    net = Network(
        config, policy_factory, traffic,
        pv_model=ProcessVariationModel(seed=99),
    )
    net.run(2_000)
    net.reset_nbti()
    net.run(12_000)
    duties = net.duty_cycles(0, "east")
    md = max(range(4), key=lambda v: net.device(0, "east", v).initial_vth)
    spread = max(duties) - min(duties)
    print(f"  {label:<16s} duty="
          + "[" + ", ".join(f"{d:5.1f}%" for d in duties) + "]"
          + f"  MD(VC{md})={duties[md]:5.1f}%  spread={spread:5.1f}")


def main() -> None:
    print("Custom-policy demo: 4-core mesh, 4 VCs, uniform 0.1\n")
    run(lambda: RoundRobinSensorlessPolicy(), "rr-no-sensor")
    run(lambda: SensorWisePolicy(), "sensor-wise")
    run(lambda: AdaptiveHybridPolicy(), "adaptive-hybrid")
    print()
    print("In this short run the port never levels, so the hybrid tracks")
    print("sensor-wise exactly; over aging-scale horizons the MD id starts")
    print("moving and the hybrid falls back to round-robin wear-leveling.")
    print("The point: policies are plug-ins — no simulator changes needed.")


if __name__ == "__main__":
    main()
