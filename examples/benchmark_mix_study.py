#!/usr/bin/env python
"""Realistic workload study: benchmark mixes on a 16-core mesh.

Mirrors the paper's Sec. IV-C protocol on a smaller budget: three random
SPLASH2/WCET benchmark mixes run on a 16-core mesh (2 VCs) under both
rr-no-sensor and sensor-wise, with a frozen process-variation sample.
For each measured port along the mesh diagonal the script reports the
per-iteration most-degraded-VC duty cycles, their mean/std, and the Gap
— reproducing the paper's stability observation (the sensor-wise std on
the MD VC is the smaller one).

Run with ``python examples/benchmark_mix_study.py``
(about a minute of simulation).
"""

from __future__ import annotations

from repro.experiments.config import REAL_TRAFFIC, ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.stats.summary import mean, std

ITERATIONS = 3
POLICIES = ("rr-no-sensor", "sensor-wise")
POINTS = ((0, "east"), (5, "east"), (10, "east"), (15, "west"))


def main() -> None:
    base = ScenarioConfig(
        num_nodes=16, num_vcs=2, traffic=REAL_TRAFFIC,
        cycles=8_000, warmup=1_500,
    )
    print(f"16-core mesh, {ITERATIONS} random benchmark mixes, "
          f"policies: {', '.join(POLICIES)}\n")

    md_duties = {(policy, point): [] for policy in POLICIES for point in POINTS}
    md_vc = {}
    for iteration in range(ITERATIONS):
        for policy in POLICIES:
            result = run_scenario(base.with_policy(policy), iteration=iteration)
            for point in POINTS:
                router, port = point
                md = result.md_at(router, port)
                md_vc[point] = md
                md_duties[(policy, point)].append(result.duty_at(router, port)[md])
        print(f"  iteration {iteration}: traffic mix "
              f"{result.scenario.label} simulated for both policies")

    print()
    header = (f"{'Port':<10s} {'MD':<3s} "
              f"{'rr-no-sensor avg(std)':<24s} "
              f"{'sensor-wise avg(std)':<24s} {'Gap':<6s} stable?")
    print(header)
    print("-" * len(header))
    for point in POINTS:
        router, port = point
        rr = md_duties[("rr-no-sensor", point)]
        sw = md_duties[("sensor-wise", point)]
        gap = mean(rr) - mean(sw)
        stable = "yes" if std(sw) <= std(rr) else "no"
        print(f"16c-r{router}-{port[0].upper():<4s} VC{md_vc[point]} "
              f"{mean(rr):6.1f}% ({std(rr):4.1f})        "
              f"{mean(sw):6.1f}% ({std(sw):4.1f})        "
              f"{gap:+5.1f}%  {stable}")

    print()
    print("Positive Gap = the cooperative sensor-wise policy relieved the")
    print("most-degraded buffer; 'stable' = its duty varied less across")
    print("benchmark mixes than the round-robin reference (paper Table IV).")


if __name__ == "__main__":
    main()
