#!/usr/bin/env python
"""Design-space exploration: VC count and buffer depth vs everything.

The sensor-wise methodology interacts with the router's buffer
organization: more VCs mean more recovery freedom (the paper's Table II
vs III observation) but also more area and more sensors.  This example
sweeps {2, 4} VCs x {2, 4}-flit buffers on a 4-core mesh and reports,
for each design point:

* the sensor-wise most-degraded-VC duty cycle and the Gap vs
  rr-no-sensor (reliability),
* average packet latency (performance),
* router area and the sensor-wise overhead percentage (cost), and
* the projected 3-year Vth saving.

Run with ``python examples/design_space_exploration.py``.
"""

from __future__ import annotations

from repro.area import RouterGeometry, compute_overhead_report, router_area_um2
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_policies
from repro.nbti.constants import SECONDS_PER_YEAR
from repro.nbti.model import NBTIModel

DESIGN_POINTS = [(2, 2), (2, 4), (4, 2), (4, 4)]  # (num_vcs, buffer_depth)
RATE = 0.2
CYCLES = 10_000


def main() -> None:
    model = NBTIModel.calibrated()
    print(f"4-core mesh, uniform traffic at {RATE} flits/cycle/node, "
          f"{CYCLES} measured cycles\n")
    header = (f"{'VCs':>3s} {'depth':>5s} | {'MD duty':>8s} {'Gap':>6s} "
              f"{'latency':>8s} | {'area um^2':>10s} {'overhead':>8s} "
              f"| {'Vth saving':>10s}")
    print(header)
    print("-" * len(header))
    for num_vcs, depth in DESIGN_POINTS:
        scenario = ScenarioConfig(
            num_nodes=4, num_vcs=num_vcs, buffer_depth=depth,
            injection_rate=RATE, cycles=CYCLES, warmup=1_500,
        )
        results = run_policies(scenario, ("rr-no-sensor", "sensor-wise"))
        md = results["sensor-wise"].md_vc
        sw_duty = results["sensor-wise"].duty_cycles[md]
        gap = results["rr-no-sensor"].duty_cycles[md] - sw_duty
        latency = results["sensor-wise"].net_stats.avg_packet_latency

        geometry = RouterGeometry(
            num_ports=4, num_vcs=num_vcs, buffer_depth=depth,
            flit_width_bits=64,
        )
        area = router_area_um2(geometry)
        overhead = compute_overhead_report(geometry).total_fraction_of_noc

        saving = model.saving(sw_duty / 100.0, 1.0, 3 * SECONDS_PER_YEAR)
        print(f"{num_vcs:>3d} {depth:>5d} | {sw_duty:7.1f}% {gap:5.1f}% "
              f"{latency:8.1f} | {area:10.0f} {100 * overhead:7.2f}% "
              f"| {100 * saving:9.1f}%")

    print()
    print("Reading the table: doubling the VCs collapses the most-degraded")
    print("duty cycle (more steering freedom) and doubles the Vth saving,")
    print("for ~10-20% more router area and ~1.6 points more sensor-wise")
    print("overhead; deeper buffers mostly buy latency. The overhead stays")
    print("below ~4% across the whole design space (paper Sec. III-D).")


if __name__ == "__main__":
    main()
