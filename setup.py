"""Setuptools shim.

The execution environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` (which builds an editable wheel under PEP 517)
cannot run.  This shim lets ``python setup.py develop`` perform the
equivalent editable install using setuptools alone; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
