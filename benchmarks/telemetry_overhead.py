"""Telemetry overhead micro-benchmark.

Times the same scenario three ways — telemetry off (the default),
metrics-only, and fully traced to disk — and reports the wall-clock
overhead of each relative to the off baseline.

The repo's acceptance criterion is that the telemetry-*off* path stays
within 2% of the pre-telemetry seed.  The seed is not runnable from
this tree, so the off-path cost is bounded constructively instead: the
off path differs from the seed only by ``trace is not None`` attribute
tests on event-driven branches, and the number of such branch hits is
exactly the event count a traced run of the same scenario emits.  The
benchmark measures the per-guard cost with a timing loop, multiplies
by the observed event count (with a 4x safety factor), and checks that
upper bound against the 2% budget.

Standalone on purpose (not pytest-collected): wall-clock thresholds
are too machine-dependent for the tier-1 suite.

Usage::

    PYTHONPATH=src python benchmarks/telemetry_overhead.py
        [--cycles 20000] [--warmup 2000] [--repeats 5] [--bound 2.0]
"""

from __future__ import annotations

import argparse
import tempfile
import time
import timeit

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario

GUARD_SAFETY_FACTOR = 4.0


def time_scenario(scenario: ScenarioConfig, repeats: int) -> float:
    """Best-of-N wall time for one scenario (minimum filters scheduler
    noise better than the mean on a busy host)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run_scenario(scenario)
        best = min(best, time.perf_counter() - started)
    return best


def guard_cost_seconds() -> float:
    """Cost of one ``self.trace is not None`` test on a real buffer."""
    from repro.noc.buffer import VCBuffer

    buffer = VCBuffer(capacity=4)
    loops = 1_000_000
    elapsed = timeit.timeit(lambda: buffer.trace is not None, number=loops)
    return elapsed / loops


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=20_000)
    parser.add_argument("--warmup", type=int, default=2_000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--bound", type=float, default=2.0,
        help="max acceptable telemetry-off overhead in percent",
    )
    args = parser.parse_args()

    base = ScenarioConfig(
        num_nodes=4, num_vcs=2, injection_rate=0.1, policy="sensor-wise",
        cycles=args.cycles, warmup=args.warmup, seed=1,
    )

    # Warm caches/interpreter state with one throwaway run.
    run_scenario(base)

    off = time_scenario(base, args.repeats)
    metrics_result = run_scenario(base.traced(trace_dir=None, formats=()))
    event_count = metrics_result.telemetry.total_events
    metrics_only = time_scenario(
        base.traced(trace_dir=None, formats=()), args.repeats
    )
    with tempfile.TemporaryDirectory() as tmp:
        traced = time_scenario(
            base.traced(trace_dir=tmp, formats=("chrome", "jsonl")), args.repeats
        )

    def overhead(t: float) -> float:
        return 100.0 * (t - off) / off

    per_guard = guard_cost_seconds()
    off_bound_s = event_count * per_guard * GUARD_SAFETY_FACTOR
    off_bound_pct = 100.0 * off_bound_s / off

    print(f"scenario {base.label} cycles={args.cycles} warmup={args.warmup}")
    print(f"  telemetry off : {off:7.3f}s (baseline)")
    print(f"  metrics only  : {metrics_only:7.3f}s ({overhead(metrics_only):+5.1f}%)")
    print(f"  fully traced  : {traced:7.3f}s ({overhead(traced):+5.1f}%)")
    print(
        f"  off-path bound: {event_count} guarded branch hits x "
        f"{per_guard * 1e9:.0f}ns x {GUARD_SAFETY_FACTOR:.0f} safety "
        f"= {off_bound_s * 1e3:.2f}ms ({off_bound_pct:.3f}% of baseline)"
    )

    if off_bound_pct > args.bound:
        print(f"FAIL: telemetry-off bound {off_bound_pct:.2f}% > {args.bound}%")
        return 1
    print(f"OK: telemetry-off overhead bounded under {args.bound}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
