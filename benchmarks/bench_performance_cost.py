"""Extension — network-performance cost of the recovery policies.

The paper reports reliability and area but not the latency/throughput
cost of keeping only one idle VC awake.  This bench quantifies it:
average packet latency and delivered throughput per policy at a
moderate load.  Gating costs a few cycles of average latency (wake-up +
reduced VC availability); throughput is preserved below saturation.
"""

from __future__ import annotations

import pytest
from conftest import env_cycles, env_warmup, publish, run_once

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_policies

POLICIES = ("baseline", "rr-no-sensor", "sensor-wise-no-traffic", "sensor-wise")


def bench_performance_cost(benchmark):
    scenario = ScenarioConfig(
        num_nodes=4, num_vcs=2, injection_rate=0.2,
        cycles=env_cycles(8_000), warmup=env_warmup(),
    )

    def build():
        return run_policies(scenario, POLICIES)

    results = run_once(benchmark, build)
    lines = ["Performance cost of NBTI recovery (4-core, 2 VCs, inj 0.2)"]
    for policy in POLICIES:
        stats = results[policy].net_stats
        lines.append(
            f"  {policy:<24s} latency {stats.avg_packet_latency:6.2f} cyc, "
            f"throughput {stats.throughput_flits_per_node_cycle:.4f} flits/node/cyc"
        )
    publish("performance_cost", "\n".join(lines))

    base = results["baseline"].net_stats
    for policy in POLICIES[1:]:
        stats = results[policy].net_stats
        # Throughput is preserved below saturation...
        assert stats.throughput_flits_per_node_cycle == pytest.approx(
            base.throughput_flits_per_node_cycle, rel=0.05
        )
        # ...and the latency cost of gating stays bounded (< 15 cycles).
        assert stats.avg_packet_latency < base.avg_packet_latency + 15.0
