"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table/figure/claim of the paper.  The
simulated cycle counts are scaled down from the paper's 30e6 (see
DESIGN.md §3) and can be raised via environment variables:

* ``REPRO_BENCH_CYCLES`` — measured cycles per run (default 12000).
* ``REPRO_BENCH_WARMUP`` — warm-up cycles (default 2000).
* ``REPRO_BENCH_ITERATIONS`` — benchmark-mix iterations for Table IV
  (default 10, as in the paper).

Every benchmark prints its table and appends it to
``benchmarks/output/results.txt`` so EXPERIMENTS.md can be refreshed
from one place.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Directory where benchmark tables are written.
OUTPUT_DIR = Path(__file__).parent / "output"


def env_cycles(default: int = 12_000) -> int:
    return int(os.environ.get("REPRO_BENCH_CYCLES", default))


def env_warmup(default: int = 2_000) -> int:
    return int(os.environ.get("REPRO_BENCH_WARMUP", default))


def env_iterations(default: int = 10) -> int:
    return int(os.environ.get("REPRO_BENCH_ITERATIONS", default))


def publish(name: str, text: str) -> None:
    """Print a benchmark's table and archive it under benchmarks/output."""
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    with open(OUTPUT_DIR / f"{name}.txt", "w", encoding="utf-8") as fh:
        fh.write(text + "\n")


@pytest.fixture(scope="session")
def results_cache():
    """Session-wide cache so benches can share expensive table runs."""
    return {}


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The interesting output of these benchmarks is the regenerated table,
    not the wall-clock statistics, so a single round is enough.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
