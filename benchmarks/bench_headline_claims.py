"""E8 — the paper's headline trends, asserted in one place.

* **Gap scale**: synthetic activity-factor improvement on the MD VC
  reaches the tens of points (paper: up to 26.6 %).
* **2 VCs, rising load**: once the network congests, the Gap *shrinks* —
  all VCs are busy simultaneously, so sensor-wise loses the freedom to
  steer packets away from the MD VC (paper Sec. IV-B, Table III trend).
* **4 VCs, rising load**: the Gap *grows* with load — the extra VCs keep
  the NoC uncongested, so control over the MD VC is retained (paper
  Sec. IV-B, Table II trend).

The paper's 0.1-0.3 flits/cycle/port injections on a full-system GEM5
correspond to higher *effective* loads than the same numbers on a pure
synthetic injector, so the trends are asserted over a load sweep that
reaches the same duty-cycle region as the paper's tables (rr-no-sensor
MD duty from ~30 % to ~73 %).
"""

from __future__ import annotations

from conftest import env_cycles, env_warmup, publish, run_once

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_policies

RATES = (0.3, 0.5, 0.7)


def _gap_sweep(num_vcs, cycles, warmup):
    gaps = {}
    for rate in RATES:
        scenario = ScenarioConfig(
            num_nodes=4, num_vcs=num_vcs, injection_rate=rate,
            cycles=cycles, warmup=warmup,
        )
        results = run_policies(scenario, ("rr-no-sensor", "sensor-wise"))
        md = results["sensor-wise"].md_vc
        gaps[rate] = (
            results["rr-no-sensor"].duty_cycles[md]
            - results["sensor-wise"].duty_cycles[md]
        )
    return gaps


def bench_headline_gap_trends(benchmark):
    def build():
        cycles, warmup = env_cycles(), env_warmup()
        return {
            2: _gap_sweep(2, cycles, warmup),
            4: _gap_sweep(4, cycles, warmup),
        }

    gaps = run_once(benchmark, build)
    lines = ["Gap (rr-no-sensor - sensor-wise on MD VC) vs load, 4-core mesh"]
    for vcs, sweep in gaps.items():
        rendered = ", ".join(f"inj {r}: {g:.1f}%" for r, g in sweep.items())
        lines.append(f"  {vcs} VCs: {rendered}")
    publish("headline_gap_trends", "\n".join(lines))

    # All gaps positive.
    for sweep in gaps.values():
        for gap in sweep.values():
            assert gap > 0.0
    # 2 VCs: the gap shrinks once the network congests (tail of sweep).
    assert gaps[2][RATES[-1]] < gaps[2][RATES[-2]]
    # 4 VCs: the gap grows with load (compare the sweep's endpoints; the
    # interior point is allowed sampling noise).
    assert gaps[4][RATES[0]] < gaps[4][RATES[-1]] + 1.0
    # Headline scale (paper: up to 26.6 %).
    assert max(gaps[4].values()) > 15.0
