"""E5 — Sec. III-D / Fig. 1B: area overhead of the sensor-wise additions.

Reproduces every number of the paper's feasibility argument for the
reference router (4 ports, 4 VCs, 4-flit buffers, 64-bit flits, 45 nm):
16 sensors ~= 3.25 % of the router, control sidebands ~= 3.8 % of one
64-bit data link, policy logic negligible, total < 4 % of the NoC.
"""

from __future__ import annotations

import pytest
from conftest import publish, run_once

from repro.area import RouterGeometry, compute_overhead_report


def bench_area_overhead(benchmark):
    report = run_once(benchmark, compute_overhead_report)
    publish("area_overhead", report.as_text())

    assert report.sensor_count == 16
    assert report.sensor_fraction_of_router == pytest.approx(0.0325, abs=0.004)
    assert report.control_fraction_of_link == pytest.approx(0.038, abs=0.004)
    assert report.policy_fraction_of_router < 0.01
    assert report.total_fraction_of_noc < 0.04


def bench_area_overhead_2vc(benchmark):
    """Companion datapoint: the 2-VC router used by Tables III/IV."""

    def build():
        return compute_overhead_report(RouterGeometry(num_vcs=2))

    report = run_once(benchmark, build)
    publish("area_overhead_2vc", report.as_text())
    assert report.sensor_count == 8
    assert report.total_fraction_of_noc < 0.05
