"""E4 — Table IV: benchmark-mix ("real") traffic, 2 VCs, avg/std over
iterations.

Protocol (paper Sec. IV-C): for each architecture, every iteration picks
a random benchmark mix (one SPLASH2/WCET profile per core); the PV
sample — hence the most-degraded VC — is frozen across iterations.
Measured ports: 4c r0-E/r1-W/r2-E/r3-W and 16c r0-E/r5-E/r10-E/r15-E.

Shape checks mirror the paper's two observations:
* the average Gap on the MD VC is positive on (nearly) every port, and
* sensor-wise is *stable*: its MD-VC std does not exceed rr-no-sensor's
  on most measured ports.
"""

from __future__ import annotations

from conftest import env_cycles, env_iterations, env_warmup, publish, run_once

from repro.experiments.tables import run_real_table


def bench_table4_real_traffic(benchmark, results_cache):
    def build():
        return run_real_table(
            num_vcs=2,
            iterations=env_iterations(),
            cycles=env_cycles(10_000),
            warmup=env_warmup(),
        )

    table = run_once(benchmark, build)
    results_cache["table4"] = table
    publish("table4_real_traffic", table.format())

    assert len(table.rows) == 8
    positive_gaps = sum(row.gap > 0.0 for row in table.rows)
    # The paper's Table IV has all 8 gaps positive; with scaled-down
    # simulations we accept one marginal port.
    assert positive_gaps >= 7, f"only {positive_gaps}/8 positive gaps"
    stable_ports = sum(row.md_std_improved for row in table.rows)
    assert stable_ports >= 5, f"sensor-wise less stable on {8 - stable_ports}/8 ports"
    # Headline scale: the best real-traffic gap reaches >= 10 % points
    # (18.9 % in the paper).
    assert max(table.gaps()) > 8.0
