"""Ablation — power-gating wake-up latency vs NBTI benefit and latency.

DESIGN.md §7 extension.  The paper assumes cheap sleep transistors; this
bench sweeps the wake-up latency of a gated buffer and reports both the
reliability benefit (MD-VC duty under sensor-wise) and the performance
cost (average packet latency), exposing the trade-off the methodology
rides.
"""

from __future__ import annotations

from conftest import env_cycles, env_warmup, publish, run_once

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario

WAKE_LATENCIES = (0, 1, 4, 8)


def bench_ablation_wake_latency(benchmark):
    def build():
        out = {}
        for wake in WAKE_LATENCIES:
            scenario = ScenarioConfig(
                num_nodes=4, num_vcs=2, injection_rate=0.2,
                wake_latency=wake,
                cycles=env_cycles(8_000), warmup=env_warmup(),
            )
            result = run_scenario(scenario)
            out[wake] = (result.md_duty, result.net_stats.avg_packet_latency)
        return out

    sweep = run_once(benchmark, build)
    lines = ["Wake-latency ablation (sensor-wise, 2 VCs, inj 0.2)"]
    for wake, (duty, latency) in sweep.items():
        lines.append(
            f"  wake = {wake} cycles -> MD duty {duty:6.2f}%, "
            f"avg packet latency {latency:6.2f} cycles"
        )
    publish("ablation_wake_latency", "\n".join(lines))

    latencies = [lat for _, lat in sweep.values()]
    # Longer wake-ups cost performance...
    assert latencies[-1] >= latencies[0]
    # ...but the NBTI benefit persists at every wake latency.
    for duty, _ in sweep.values():
        assert duty < 60.0
