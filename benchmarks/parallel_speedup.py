"""Parallel-campaign acceptance check: identical artifacts + speedup.

Runs the same small campaign twice — serially and on a 4-worker
process pool — verifies the persisted table JSON is **byte-identical**,
and reports wall-clock timing. Results go to stdout and
``benchmarks/PARALLEL.md`` records the reference numbers.

Standalone on purpose (not pytest-collected): it times full campaigns,
which has no place in the tier-1 suite.

Usage::

    PYTHONPATH=src python benchmarks/parallel_speedup.py [--jobs 4]
        [--cycles 2000] [--warmup 500] [--iterations 2]
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.experiments.parallel import Executor


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--cycles", type=int, default=2_000)
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--iterations", type=int, default=2)
    args = parser.parse_args()

    config = CampaignConfig(
        cycles=args.cycles, warmup=args.warmup, iterations=args.iterations
    )
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        started = time.perf_counter()
        run_campaign(config, json_dir=tmp_path / "serial")
        serial_wall = time.perf_counter() - started

        executor = Executor(max_workers=args.jobs)
        started = time.perf_counter()
        run_campaign(config, json_dir=tmp_path / "parallel", executor=executor)
        parallel_wall = time.perf_counter() - started

        names = ["table2.json", "table3.json", "table4.json", "vth_saving.json"]
        identical = True
        for name in names:
            same = (tmp_path / "serial" / name).read_bytes() == (
                tmp_path / "parallel" / name
            ).read_bytes()
            identical &= same
            print(f"  {name:>16}: {'byte-identical' if same else 'DIFFERS'}")

    speedup = serial_wall / parallel_wall if parallel_wall else float("inf")
    print(
        f"campaign cycles={args.cycles} warmup={args.warmup} "
        f"iterations={args.iterations}"
    )
    print(f"  serial  : {serial_wall:7.1f}s wall")
    print(f"  jobs={args.jobs:<3}: {parallel_wall:7.1f}s wall ({speedup:.2f}x)")
    print(f"  executor: {executor.summary()}")
    if not identical:
        print("FAIL: parallel artifacts differ from serial run")
        return 1
    print("OK: parallel artifacts byte-identical to serial run")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
