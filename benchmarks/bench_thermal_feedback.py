"""Extension — thermal feedback on aging: do the policies still win when
every buffer ages at its own router's temperature?

The paper evaluates NBTI at a fixed temperature.  With the
activity-driven thermal model, central/hotspot routers run tens of
kelvin hotter and their buffers age Arrhenius-faster — a bias that
could, in principle, erode a policy's advantage.  This bench projects
the chip-wide worst |Vth| after 3 years under each policy with
per-router temperatures and checks the ordering survives.
"""

from __future__ import annotations

from conftest import env_cycles, env_warmup, publish, run_once

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_network
from repro.nbti.thermal import router_temperatures, thermal_aware_projection

POLICIES = ("baseline", "rr-no-sensor", "sensor-wise")
YEARS = 3.0


def bench_thermal_feedback(benchmark):
    scenario = ScenarioConfig(
        num_nodes=16, num_vcs=2, injection_rate=0.25,
        cycles=env_cycles(8_000), warmup=env_warmup(),
    )

    def build():
        out = {}
        for policy in POLICIES:
            net = build_network(scenario.with_policy(policy))
            net.run(scenario.warmup)
            net.reset_nbti()
            net.reset_stats()
            net.run(scenario.cycles)
            profile = router_temperatures(net)
            projection = thermal_aware_projection(net, years=YEARS, profile=profile)
            worst_key = max(projection, key=projection.get)
            out[policy] = (
                profile.spread_k,
                profile.temperatures_k[profile.hottest_router],
                worst_key,
                projection[worst_key],
            )
        return out

    results = run_once(benchmark, build)
    lines = [
        f"Thermal-aware {YEARS:g}-year aging (16-core, 2 VCs, inj 0.25; "
        "each buffer ages at its router's temperature)"
    ]
    from repro.noc.topology import port_name

    for policy, (spread, hottest, worst_key, worst_vth) in results.items():
        router, port, vc = worst_key
        lines.append(
            f"  {policy:<16s} thermal spread {spread:5.1f} K, hottest "
            f"{hottest - 273.15:5.1f} C, worst |Vth| {worst_vth * 1e3:6.1f} mV "
            f"(r{router} {port_name(port)} VC{vc})"
        )
    publish("thermal_feedback", "\n".join(lines))

    worst = {p: v for p, (_, _, _, v) in results.items()}
    # The reliability ordering survives thermal feedback.
    assert worst["sensor-wise"] < worst["baseline"]
    assert worst["rr-no-sensor"] < worst["baseline"]
    # Same traffic => similar thermal envelopes across policies.
    spreads = [s for s, _, _, _ in results.values()]
    assert max(spreads) - min(spreads) < 10.0