"""Extension — leakage-power savings of the recovery policies.

Power gating a VC buffer for NBTI recovery also cuts its leakage while
gated (the sleep transistor disconnects the rail).  This bench runs the
same traffic under every policy and reports the buffer-leakage saving —
the complementary benefit the paper's methodology delivers for free —
plus the PV-driven leakage spread that motivates the paper's Sec. I
("about 90 % leakage variation on buffers").
"""

from __future__ import annotations

from conftest import env_cycles, env_warmup, publish, run_once

from repro.area.power import buffer_leakage_spread, compute_power_report
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_network

POLICIES = ("baseline", "rr-no-sensor", "sensor-wise-no-traffic", "sensor-wise")


def bench_power_savings(benchmark):
    scenario = ScenarioConfig(
        num_nodes=4, num_vcs=2, injection_rate=0.2,
        cycles=env_cycles(8_000), warmup=env_warmup(),
    )

    def build():
        out = {}
        for policy in POLICIES:
            net = build_network(scenario.with_policy(policy))
            net.run(scenario.warmup)
            net.reset_nbti()
            net.reset_stats()
            net.run(scenario.cycles)
            out[policy] = (
                compute_power_report(net),
                buffer_leakage_spread([d.initial_vth for d in net.devices.values()]),
            )
        return out

    results = run_once(benchmark, build)
    lines = ["Leakage savings from NBTI power gating (4-core, 2 VCs, inj 0.2)"]
    for policy, (report, _) in results.items():
        lines.append(
            f"  {policy:<24s} leakage saved {100 * report.leakage_saving:5.1f}%  "
            f"(dynamic {report.dynamic_pj:9.1f} pJ, "
            f"leakage {report.leakage_actual_pj:9.1f} pJ)"
        )
    spread = results["baseline"][1]
    lines.append(
        f"  PV leakage spread across buffers: {100 * (spread - 1):.0f}% "
        "(paper Sec. I: about 90%)"
    )
    publish("power_savings", "\n".join(lines))

    savings = {p: r.leakage_saving for p, (r, _) in results.items()}
    assert savings["baseline"] == 0.0
    # Traffic-aware gating removes the bulk of the buffer leakage; the
    # no-traffic ablation pays for its permanently reserved VC (with 2
    # VCs per port that alone caps its saving near 50 %).
    assert savings["rr-no-sensor"] > 0.5
    assert savings["sensor-wise"] > 0.5
    assert 0.2 < savings["sensor-wise-no-traffic"] < savings["sensor-wise"]
    # Dynamic energy is roughly policy-independent (same traffic).
    dyn = [r.dynamic_pj for _, (r, _) in results.items()]
    assert max(dyn) / min(dyn) < 1.15
    # PV leakage spread lands in the paper's "tens-of-percent to ~2x"
    # regime (sample-size dependent; ~90 % for larger populations).
    assert 1.3 <= spread <= 3.5
