"""E7 — Sec. V: cooperation gain of exploiting upstream traffic info.

The paper reports that the cooperative sensor-wise policy reduces the
NBTI-duty-cycle of the most-degraded VC by up to ~23 % points against a
non-cooperative approach (sensor-wise-no-traffic, which must keep one
idle VC awake at all times because it cannot know whether new packets
are coming).  The gain is largest where idle periods dominate.
"""

from __future__ import annotations

from conftest import env_cycles, env_warmup, publish, run_once

from repro.experiments.config import ScenarioConfig
from repro.experiments.tables import run_cooperation_gain


def bench_cooperation_gain(benchmark):
    def build():
        reports = []
        for num_vcs, rate in ((2, 0.1), (2, 0.3), (4, 0.1)):
            scenario = ScenarioConfig(
                num_nodes=4,
                num_vcs=num_vcs,
                injection_rate=rate,
                cycles=env_cycles(),
                warmup=env_warmup(),
            )
            reports.append((num_vcs, rate, run_cooperation_gain(scenario)))
        return reports

    reports = run_once(benchmark, build)
    text = "\n".join(
        f"[{vcs} VCs, inj {rate}] {report.format()}"
        for vcs, rate, report in reports
    )
    publish("cooperation_gain", text)

    for _, _, report in reports:
        # Cooperation never hurts the MD VC, and always relieves the
        # port as a whole (the non-cooperative variant pays for its
        # permanently reserved idle VC).
        assert report.gain >= 0.0
        assert report.mean_gain > 0.0
    # Paper scale: the best cooperative MD-VC gain reaches double digits
    # (up to 23 % points in the paper).
    assert max(report.gain for _, _, report in reports) > 5.0
