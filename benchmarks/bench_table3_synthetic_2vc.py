"""E3 — Table III: NBTI-duty-cycle per VC, uniform traffic, 2 VCs.

Same protocol as Table II with 2 VCs per input port.  Shape checks:
every Gap positive; rr-no-sensor spreads duty evenly over the two VCs.
"""

from __future__ import annotations

from conftest import env_cycles, env_warmup, publish, run_once

from repro.experiments.tables import run_synthetic_table


def bench_table3_synthetic_2vc(benchmark, results_cache):
    def build():
        return run_synthetic_table(
            num_vcs=2, cycles=env_cycles(), warmup=env_warmup()
        )

    table = run_once(benchmark, build)
    results_cache["table3"] = table
    publish("table3_synthetic_2vc", table.format())

    assert len(table.rows) == 6
    for row in table.rows:
        assert row.gap > 0.0, f"non-positive gap on {row.label}"
        rr = row.duty["rr-no-sensor"]
        # Round-robin cannot discriminate VCs: both shares stay close.
        assert abs(rr[0] - rr[1]) < 8.0, f"{row.label}: rr skewed {rr}"
        # The no-traffic ablation always stresses one VC more than the
        # cooperative policy's worst VC; at light load that reserved VC
        # is pinned near 100 % duty.
        assert max(row.duty["sensor-wise-no-traffic"]) >= (
            max(row.duty["sensor-wise"]) - 5.0
        )
        if row.label.endswith("inj0.10"):
            assert max(row.duty["sensor-wise-no-traffic"]) > 85.0
