"""Ablation — round-robin candidate rotation period.

DESIGN.md §7 extension.  The paper leaves the rr-no-sensor rotation
period unspecified ("changed cyclically on a time basis").  This bench
sweeps it and reports the per-VC duty spread at the measured port: fast
rotation mixes the VCs tightly (small spread), slow rotation lets the
current candidate accumulate stress (large spread) — justifying the
reproduction's 64-cycle default as comfortably inside the flat region.

A rotation period at or below the control-link + wake-up latency
(2 cycles with the defaults) live-locks the network outright — the
candidate is re-gated before it ever becomes allocatable (covered by
``tests/test_paper_claims.py::TestRotationPeriodHazard``), so the sweep
starts at 4.
"""

from __future__ import annotations

from conftest import env_cycles, env_warmup, publish, run_once

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario

PERIODS = (4, 64, 1024, 8192)


def bench_ablation_rotation_period(benchmark):
    def build():
        out = {}
        for period in PERIODS:
            scenario = ScenarioConfig(
                num_nodes=4, num_vcs=4, injection_rate=0.1,
                policy="rr-no-sensor", rotation_period=period,
                cycles=env_cycles(8_000), warmup=env_warmup(),
            )
            result = run_scenario(scenario)
            duties = result.duty_cycles
            out[period] = (max(duties) - min(duties), sum(duties) / len(duties))
        return out

    sweep = run_once(benchmark, build)
    lines = [
        "Rotation-period ablation (rr-no-sensor, 4 VCs, inj 0.1)",
        "  (periods <= link+wake latency live-lock the NoC; see tests)",
    ]
    for period, (spread, mean_duty) in sweep.items():
        lines.append(
            f"  period = {period:5d} cycles -> duty spread {spread:6.2f} "
            f"% points, mean duty {mean_duty:6.2f}%"
        )
    publish("ablation_rotation_period", "\n".join(lines))

    # Mean stress is rotation-invariant (the policy gates the same total
    # time, it only redistributes it).
    means = [mean for _, mean in sweep.values()]
    assert max(means) - min(means) < 6.0
    # Rotation slower than the measurement window pins the candidate on
    # a few VCs and skews the per-VC shares vs fast rotation.
    assert sweep[8192][0] >= sweep[4][0]
