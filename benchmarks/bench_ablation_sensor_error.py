"""Ablation — sensor measurement error vs most-degraded-VC targeting.

DESIGN.md §7 extension.  The sensor-wise policy is only as good as the
``Down_Up`` most-degraded verdict; this bench sweeps the measurement
noise of the sensor bank (the Singh-style sensor has sub-mV resolution;
we push far beyond) and reports the MD VC duty cycle.  With noise well
above the process-variation sigma (5 mV), the argmax decorrelates from
the true worst device and sensor-wise degrades toward round-robin-like
behaviour on the MD VC — quantifying how much sensor fidelity the
methodology actually needs.
"""

from __future__ import annotations

from conftest import env_cycles, env_warmup, publish, run_once

from repro.core.policies import make_policy_factory
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_traffic
from repro.nbti.process_variation import ProcessVariationModel
from repro.nbti.sensor import NoisySensor
from repro.noc.network import Network

SIGMAS_MV = (0.0, 1.0, 5.0, 20.0)


def bench_ablation_sensor_error(benchmark):
    scenario = ScenarioConfig(
        num_nodes=4, num_vcs=4, injection_rate=0.1,
        cycles=env_cycles(8_000), warmup=env_warmup(),
    )

    def run_with_sigma(sigma_mv):
        config = scenario.noc_config()
        pv = ProcessVariationModel.for_technology(
            config.technology, seed=scenario.effective_pv_seed
        )
        sensor_seed = [0]

        def sensor_factory():
            sensor_seed[0] += 1
            return NoisySensor(sigma_v=sigma_mv * 1e-3, seed=sensor_seed[0])

        net = Network(
            config,
            make_policy_factory("sensor-wise"),
            traffic=build_traffic(scenario),
            pv_model=pv,
            sensor_factory=sensor_factory,
        )
        net.run(scenario.warmup)
        net.reset_nbti()
        net.run(scenario.cycles)
        duties = net.duty_cycles(0, "east")
        md = max(range(4), key=lambda v: net.device(0, "east", v).initial_vth)
        return duties[md]

    def build():
        return {sigma: run_with_sigma(sigma) for sigma in SIGMAS_MV}

    md_duty = run_once(benchmark, build)
    lines = ["Sensor-noise ablation: sensor-wise MD-VC duty vs noise sigma"]
    for sigma, duty in md_duty.items():
        lines.append(f"  sigma = {sigma:5.1f} mV -> MD duty {duty:6.2f}%")
    publish("ablation_sensor_error", "\n".join(lines))

    # Sub-mV-to-mV (realistic) noise must not hurt MD targeting much:
    # the argmax only flips when two devices sit within the noise band.
    assert md_duty[1.0] <= md_duty[0.0] + 12.0
    # Noise far above the PV sigma (20 mV >> 5 mV) erodes the advantage.
    assert md_duty[20.0] >= md_duty[0.0]
    assert md_duty[20.0] >= md_duty[1.0] - 2.0
