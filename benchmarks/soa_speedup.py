"""Struct-of-arrays engine speedup benchmark: the event-directed SoA
cycle engine vs the seed's per-object stepped engine.

Two arms run the same low-injection Table-3-style scenario:

* **soa** — ``Network.run`` with the engine forced to the
  struct-of-arrays event-directed core (the auto-selected engine for
  fault-free, untraced, interval-accounted runs): work-set driven
  phases, a (due, channel) heap instead of per-cycle channel polling,
  and quiescence jumps between activity bursts.
* **legacy** — ``Network.use_per_cycle_nbti()`` with the engine forced
  to dense stepping: the reference per-object engine that visits every
  router, interface and channel every cycle and ages every device by
  one counter increment per cycle (the seed's O(cycles x objects)
  schedule).

The engines are bit-equivalent by construction, so the legacy arm is
*also* a correctness oracle: both arms must produce identical harvests,
and the scenario runner must produce byte-identical ``ScenarioResult``
JSON under both engines for every recovery policy.  The CI smoke uses
``--quick`` for exactly those identity checks without the wall-clock
threshold.

Standalone on purpose (not pytest-collected): wall-clock thresholds
are too machine-dependent for the tier-1 suite.

Usage::

    PYTHONPATH=src python benchmarks/soa_speedup.py
        [--cycles 200000] [--warmup 2000] [--rate 0.01] [--repeats 3]
        [--threshold 20.0] [--output BENCH_soa.json] [--quick]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time

from repro.core import ALL_POLICIES
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_network, run_scenario
from repro.noc.network import Network


def run_arm(scenario: ScenarioConfig, soa: bool) -> Network:
    """Build and run one arm with the engine pinned."""
    Network.force_engine = "soa" if soa else "stepped"
    try:
        net = build_network(scenario)
        if not soa:
            net.use_per_cycle_nbti()
        net.run(scenario.warmup)
        net.reset_nbti()
        net.reset_stats()
        net.run(scenario.cycles)
        net.flush_nbti()
    finally:
        Network.force_engine = None
    return net


def harvest(net: Network) -> dict:
    """Everything a scenario harvest reads, JSON-comparable."""
    return {
        "cycle": net.cycle,
        "duty": {
            f"r{r.router_id}.p{port}": net.duty_cycles(r.router_id, port)
            for r in net.routers
            for port in r.input_ports
        },
        "counters": {
            repr(key): device.counter.snapshot()
            for key, device in sorted(net.devices.items())
        },
        "stats": dataclasses.asdict(net.stats()),
    }


def result_payload(result) -> dict:
    """A ScenarioResult as comparable JSON (host timings excluded)."""
    return {
        "scenario": dataclasses.asdict(result.scenario),
        "iteration": result.iteration,
        "duty_cycles": result.duty_cycles,
        "md_vc": result.md_vc,
        "port_duty": {f"{r}.{p}": d for (r, p), d in sorted(result.port_duty.items())},
        "initial_vths": result.initial_vths,
        "port_initial_vths": {
            f"{r}.{p}": v for (r, p), v in sorted(result.port_initial_vths.items())
        },
        "net_stats": dataclasses.asdict(result.net_stats),
        "violations": result.violations,
    }


def time_arm(scenario: ScenarioConfig, soa: bool, repeats: int):
    best = float("inf")
    net = None
    for _ in range(repeats):
        started = time.perf_counter()
        net = run_arm(scenario, soa)
        best = min(best, time.perf_counter() - started)
    return best, net


def scenario_result_identity(scenario: ScenarioConfig, policies) -> None:
    """Run the scenario runner with the SoA and the stepped engine for
    every policy; each pair of ScenarioResult payloads must serialize
    identically."""
    for policy in policies:
        cfg = dataclasses.replace(scenario, policy=policy)
        payloads = {}
        for mode in ("soa", "stepped"):
            Network.force_engine = mode
            try:
                payloads[mode] = json.dumps(
                    result_payload(run_scenario(cfg)), sort_keys=True
                )
            finally:
                Network.force_engine = None
        if payloads["soa"] != payloads["stepped"]:
            raise AssertionError(
                f"SoA and stepped runs produced different ScenarioResult "
                f"payloads for policy {policy!r}"
            )
        print(f"  ScenarioResult identity: soa == stepped [{policy}]")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=200_000)
    parser.add_argument("--warmup", type=int, default=2_000)
    parser.add_argument("--rate", type=float, default=0.01,
                        help="flit injection rate (Table 3 low point: 0.01)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="minimum acceptable speedup (x)")
    parser.add_argument("--output", default="BENCH_soa.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: small scenario, identity checks only, no "
             "wall-clock threshold",
    )
    args = parser.parse_args()

    if args.quick:
        cycles, warmup, repeats = 4_000, 500, 1
    else:
        cycles, warmup, repeats = args.cycles, args.warmup, args.repeats

    # Table-3-style scenario (4-node mesh, 2 VCs, uniform, sensor-wise)
    # at the low-injection point where quiescence dominates — the same
    # scenario BENCH_hotpath.json uses, so the two speedups compose.
    scenario = ScenarioConfig(
        num_nodes=4, num_vcs=2, injection_rate=args.rate,
        policy="sensor-wise", traffic="uniform",
        cycles=cycles, warmup=warmup, seed=1,
    )

    print(f"scenario {scenario.label} rate={args.rate} "
          f"cycles={cycles} warmup={warmup}")

    identity_scenario = scenario if args.quick else dataclasses.replace(
        scenario, cycles=min(cycles, 20_000)
    )
    scenario_result_identity(identity_scenario, ALL_POLICIES)

    soa_s, soa_net = time_arm(scenario, soa=True, repeats=repeats)
    legacy_s, legacy_net = time_arm(scenario, soa=False, repeats=repeats)
    if json.dumps(harvest(soa_net), sort_keys=True) != \
            json.dumps(harvest(legacy_net), sort_keys=True):
        raise AssertionError("SoA and legacy arms diverged")
    print("  harvest identity       : SoA engine == per-object engine")

    speedup = legacy_s / soa_s if soa_s > 0 else float("inf")
    print(f"  legacy per-object engine: {legacy_s:7.3f}s")
    print(f"  struct-of-arrays engine : {soa_s:7.3f}s")
    print(f"  speedup                 : {speedup:5.2f}x")

    payload = {
        "scenario": dataclasses.asdict(scenario),
        "injection_rate": args.rate,
        "cycles": cycles,
        "warmup": warmup,
        "repeats": repeats,
        "policies_checked": list(ALL_POLICIES),
        "legacy_seconds": legacy_s,
        "soa_seconds": soa_s,
        "speedup": speedup,
        "threshold": args.threshold,
        "quick": args.quick,
        "identical_results": True,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"  wrote {args.output}")

    if not args.quick and speedup < args.threshold:
        print(f"FAIL: speedup {speedup:.2f}x < {args.threshold}x")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
