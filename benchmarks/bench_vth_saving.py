"""E6 — Sec. V: net NBTI Vth saving vs the non-NBTI-aware baseline.

The paper extracts absolute Vth values with the model of [7] (our
calibrated Eq. 1) from the measured duty cycles and reports a net saving
of up to **54.2 %** for sensor-wise against the baseline NoC.  The
saving is strongly sub-linear in duty cycle (dVth ~ alpha^(1/6)), so a
~1 % duty cycle is what the 54 % figure corresponds to.  The 4-VC,
0.3-injection scenario lands sensor-wise's most-degraded VC in exactly
that regime (at lighter loads the MD VC recovers *completely*, which
projects to a degenerate 100 % saving — stronger than the paper, but
uninformative as a comparison point).
"""

from __future__ import annotations

from conftest import env_cycles, env_warmup, publish, run_once

from repro.experiments.config import ScenarioConfig
from repro.experiments.tables import run_vth_saving


def bench_vth_saving(benchmark):
    scenario = ScenarioConfig(
        num_nodes=4,
        num_vcs=4,
        injection_rate=0.3,
        cycles=env_cycles(),
        warmup=env_warmup(),
    )

    def build():
        return run_vth_saving(scenario, years=3.0)

    report = run_once(benchmark, build)
    publish("vth_saving", report.format())

    savings = {row.policy: row.saving_vs_baseline for row in report.rows}
    assert savings["baseline"] == 0.0
    assert savings["sensor-wise"] > savings["rr-no-sensor"] > 0.0
    # Paper headline: up to 54.2 % saving for the proposed policy.
    assert 0.45 <= savings["sensor-wise"] <= 1.0
