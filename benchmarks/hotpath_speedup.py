"""Hot-path speedup benchmark: interval NBTI accounting + quiescence
fast-forward vs the seed's per-cycle engine.

Two arms run the same low-injection Table-3-style scenario:

* **fast** — ``Network.run`` as shipped: lazy interval NBTI accounting
  and quiescence fast-forward.
* **legacy** — ``Network.use_per_cycle_nbti()``: the reference engine
  ages every device by one counter increment per cycle, probes every
  sensor bank and reduces every vnet each and every cycle (the seed's
  O(cycles x devices) schedule), with fast-forward disabled.  The two
  engines are bit-equivalent by construction, so the legacy arm is
  *also* a correctness oracle: both arms must produce identical
  harvests.

The benchmark additionally runs the full scenario runner twice (fast
forward on/off) and asserts the resulting ``ScenarioResult`` payloads
are identical JSON — the CI smoke uses ``--quick`` for exactly that
check without the wall-clock threshold.

Standalone on purpose (not pytest-collected): wall-clock thresholds
are too machine-dependent for the tier-1 suite.

Usage::

    PYTHONPATH=src python benchmarks/hotpath_speedup.py
        [--cycles 200000] [--warmup 2000] [--rate 0.01] [--repeats 3]
        [--threshold 5.0] [--output BENCH_hotpath.json] [--quick]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_network, run_scenario
from repro.noc.network import Network


def run_arm(scenario: ScenarioConfig, fast: bool) -> Network:
    net = build_network(scenario)
    if not fast:
        net.use_per_cycle_nbti()
    net.run(scenario.warmup)
    net.reset_nbti()
    net.reset_stats()
    net.run(scenario.cycles)
    return net


def harvest(net: Network) -> dict:
    """Everything a scenario harvest reads, JSON-comparable."""
    return {
        "cycle": net.cycle,
        "duty": {
            f"r{r.router_id}.p{port}": net.duty_cycles(r.router_id, port)
            for r in net.routers
            for port in r.input_ports
        },
        "counters": {
            repr(key): device.counter.snapshot()
            for key, device in sorted(net.devices.items())
        },
        "stats": dataclasses.asdict(net.stats()),
    }


def result_payload(result) -> dict:
    """A ScenarioResult as comparable JSON (host timings excluded)."""
    return {
        "scenario": dataclasses.asdict(result.scenario),
        "iteration": result.iteration,
        "duty_cycles": result.duty_cycles,
        "md_vc": result.md_vc,
        "port_duty": {f"{r}.{p}": d for (r, p), d in sorted(result.port_duty.items())},
        "initial_vths": result.initial_vths,
        "port_initial_vths": {
            f"{r}.{p}": v for (r, p), v in sorted(result.port_initial_vths.items())
        },
        "net_stats": dataclasses.asdict(result.net_stats),
        "violations": result.violations,
    }


def time_arm(scenario: ScenarioConfig, fast: bool, repeats: int):
    best = float("inf")
    net = None
    for _ in range(repeats):
        started = time.perf_counter()
        net = run_arm(scenario, fast)
        best = min(best, time.perf_counter() - started)
    return best, net


def scenario_result_identity(scenario: ScenarioConfig) -> dict:
    """Run the scenario runner with fast-forward on and (forced) off;
    both ScenarioResult payloads must serialize identically."""
    fast = result_payload(run_scenario(scenario))
    original_init = Network.__init__

    def stepped_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        self.allow_fast_forward = False

    Network.__init__ = stepped_init
    try:
        stepped = result_payload(run_scenario(scenario))
    finally:
        Network.__init__ = original_init
    fast_json = json.dumps(fast, sort_keys=True)
    stepped_json = json.dumps(stepped, sort_keys=True)
    if fast_json != stepped_json:
        raise AssertionError(
            "fast-forwarded and stepped runs produced different "
            "ScenarioResult payloads"
        )
    return fast


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=200_000)
    parser.add_argument("--warmup", type=int, default=2_000)
    parser.add_argument("--rate", type=float, default=0.01,
                        help="flit injection rate (Table 3 low point: 0.01)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="minimum acceptable speedup (x)")
    parser.add_argument("--output", default="BENCH_hotpath.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: small scenario, identity checks only, no "
             "wall-clock threshold",
    )
    args = parser.parse_args()

    if args.quick:
        cycles, warmup, repeats = 4_000, 500, 1
    else:
        cycles, warmup, repeats = args.cycles, args.warmup, args.repeats

    # Table-3-style scenario (4-node mesh, 2 VCs, uniform, sensor-wise)
    # at the low-injection point where quiescence dominates.
    scenario = ScenarioConfig(
        num_nodes=4, num_vcs=2, injection_rate=args.rate,
        policy="sensor-wise", traffic="uniform",
        cycles=cycles, warmup=warmup, seed=1,
    )

    print(f"scenario {scenario.label} rate={args.rate} "
          f"cycles={cycles} warmup={warmup}")

    scenario_result_identity(scenario)
    print("  ScenarioResult identity: fast-forwarded == stepped")

    fast_s, fast_net = time_arm(scenario, fast=True, repeats=repeats)
    legacy_s, legacy_net = time_arm(scenario, fast=False, repeats=repeats)
    if json.dumps(harvest(fast_net), sort_keys=True) != \
            json.dumps(harvest(legacy_net), sort_keys=True):
        raise AssertionError("fast and legacy arms diverged")
    print("  harvest identity       : fast engine == per-cycle engine")

    speedup = legacy_s / fast_s if fast_s > 0 else float("inf")
    print(f"  legacy per-cycle engine: {legacy_s:7.3f}s")
    print(f"  interval + fast-forward: {fast_s:7.3f}s")
    print(f"  speedup                : {speedup:5.2f}x")

    payload = {
        "scenario": dataclasses.asdict(scenario),
        "injection_rate": args.rate,
        "cycles": cycles,
        "warmup": warmup,
        "repeats": repeats,
        "legacy_seconds": legacy_s,
        "fast_seconds": fast_s,
        "speedup": speedup,
        "threshold": args.threshold,
        "quick": args.quick,
        "identical_results": True,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"  wrote {args.output}")

    if not args.quick and speedup < args.threshold:
        print(f"FAIL: speedup {speedup:.2f}x < {args.threshold}x")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
