"""DSE evaluation-savings benchmark: cache dedup + surrogate pre-screen
vs evaluating every proposed genome.

Runs a seeded ``repro-noc dse search`` in-process and records how many
of the NSGA-II loop's proposed candidate evaluations never reached the
simulator, split by mechanism:

* **archive/cache dedup** — a genome re-proposed in a later generation
  (or replayed across ``--resume``) is served from the in-memory
  archive backed by the result cache and WAL journal;
* **surrogate pre-screen** — once the cross-validated ridge surrogates
  clear the reliability gate, only the predicted-Pareto slice of each
  offspring pool is simulated.

The search is deterministic (labeled ``scenario_seed`` streams), so the
savings fraction is machine-independent and the ≥ 30% acceptance
threshold is enforced in CI as well (``--quick``).  Wall-clock numbers
are recorded for context only and never gated.

Usage::

    PYTHONPATH=src python benchmarks/dse_savings.py
        [--population 8] [--generations 8] [--seed 13]
        [--threshold 0.30] [--output BENCH_dse.json] [--quick]
"""

from __future__ import annotations

import argparse
import json
import time

from repro.dse import DSEEngine, DSEResult, GAConfig, resolve_objectives
from repro.dse.space import DesignSpace, Parameter
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import Executor

OBJECTIVES = ("md_duty", "p95_latency")


def search_space(cycles: int, warmup: int) -> DesignSpace:
    """A 2-node slice of the stock space: large enough (72 genomes)
    that the GA cannot enumerate it, small enough to finish quickly."""
    base = ScenarioConfig(num_nodes=2, cycles=cycles, warmup=warmup)
    return DesignSpace(
        parameters=(
            Parameter.categorical("policy", ("rr-no-sensor", "sensor-wise")),
            Parameter("rotation_period", (16, 64, 256)),
            Parameter("sensor_sample_period", (256, 1024)),
            Parameter("wake_latency", (1, 2)),
            Parameter("buffer_depth", (2, 4, 8)),
        ),
        base=base,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=2_000)
    parser.add_argument("--warmup", type=int, default=300)
    parser.add_argument("--population", type=int, default=8)
    parser.add_argument("--generations", type=int, default=8)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="minimum acceptable saved fraction")
    parser.add_argument("--output", default="BENCH_dse.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: shorter scenarios and fewer generations; the "
             "savings threshold still applies (the search is "
             "deterministic, so the fraction is machine-independent)",
    )
    args = parser.parse_args()

    if args.quick:
        cycles, warmup = 400, 100
        population, generations = 6, 4
    else:
        cycles, warmup = args.cycles, args.warmup
        population, generations = args.population, args.generations

    space = search_space(cycles, warmup)
    objectives = resolve_objectives(OBJECTIVES)
    config = GAConfig(
        population=population,
        generations=generations,
        seed=args.seed,
        surrogate_min_samples=max(8, population),
    )
    executor = Executor(max_workers=args.jobs)

    print(f"space size {space.size} genomes, objectives {OBJECTIVES}, "
          f"population {population} x {generations} generations, "
          f"seed {args.seed}")

    started = time.perf_counter()
    engine = DSEEngine(space, objectives, config, executor=executor)
    engine.run()
    elapsed = time.perf_counter() - started

    savings = engine.evaluations_saved()
    counters = engine.counters
    result = DSEResult.from_archive(
        space, objectives, engine.archive,
        counters=counters, savings=savings,
        surrogate_scores=engine.surrogate_scores,
    )

    print(f"  proposed candidates     : {savings['proposed']:.0f}")
    print(f"  simulated               : {savings['simulated']:.0f}")
    print(f"  archive/cache dedup hits: {counters['archive_hits']}")
    print(f"  surrogate pre-screened  : {counters['surrogate_skipped']}")
    print(f"  saved fraction          : {savings['saved_fraction']:.1%} "
          f"(threshold {args.threshold:.0%})")
    print(f"  vs exhaustive grid      : {savings['simulated']:.0f} of "
          f"{space.size} genomes simulated")
    print(f"  Pareto front            : {len(result.front)} member(s), "
          f"hypervolume {result.hypervolume:.4g}")
    print(f"  wall clock              : {elapsed:.2f}s "
          f"({executor.stats.units_total} simulator runs)")

    payload = {
        "space": space.describe(),
        "space_size": space.size,
        "objectives": list(OBJECTIVES),
        "population": population,
        "generations": generations,
        "seed": args.seed,
        "counters": dict(sorted(counters.items())),
        "savings": savings,
        "front_size": len(result.front),
        "hypervolume": result.hypervolume,
        "surrogate_cv_r2": result.surrogate_scores,
        "grid_fraction_simulated": savings["simulated"] / space.size,
        "elapsed_seconds": elapsed,
        "threshold": args.threshold,
        "quick": args.quick,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"  wrote {args.output}")

    if savings["saved_fraction"] < args.threshold:
        print(f"FAIL: saved fraction {savings['saved_fraction']:.1%} "
              f"< {args.threshold:.0%}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
