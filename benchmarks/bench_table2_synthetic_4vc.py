"""E2 — Table II: NBTI-duty-cycle per VC, uniform traffic, 4 VCs.

Scenarios: {4, 16}-core 2D meshes at 0.1/0.2/0.3 flits/cycle/port under
rr-no-sensor, sensor-wise-no-traffic and sensor-wise, with the Gap
column (rr - sensor-wise on the most-degraded VC).

Shape checks mirror the paper's two observations for Table II:
* every Gap is positive (sensor-wise always wins on the MD VC), and
* with 4 VCs the policy keeps control at every load (MD duty stays far
  from saturation).
"""

from __future__ import annotations

from conftest import env_cycles, env_warmup, publish, run_once

from repro.experiments.tables import run_synthetic_table


def bench_table2_synthetic_4vc(benchmark, results_cache):
    def build():
        return run_synthetic_table(
            num_vcs=4, cycles=env_cycles(), warmup=env_warmup()
        )

    table = run_once(benchmark, build)
    results_cache["table2"] = table
    publish("table2_synthetic_4vc", table.format())

    assert len(table.rows) == 6
    for row in table.rows:
        # Gap positive: sensor-wise beats the best sensor-less policy.
        assert row.gap > 0.0, f"non-positive gap on {row.label}"
        # The MD VC recovers markedly under sensor-wise.
        assert row.duty["sensor-wise"][row.md_vc] < 25.0
        # sensor-wise-no-traffic pins one always-reserved VC near 100 %
        # while the network stays uncongested (paper Table II shows a
        # 100 % column in every row).
        if row.label.endswith("inj0.10"):
            pinned = sum(d > 90.0 for d in row.duty["sensor-wise-no-traffic"])
            assert pinned == 1, f"{row.label}: expected one pinned VC"
    # Paper headline scale: the best synthetic gap reaches tens of points
    # (26.6 % in the paper's Table II).
    assert max(table.gaps()) > 10.0
