"""E1 — Table I: the experimental setup of the reproduction."""

from __future__ import annotations

from conftest import publish, run_once

from repro.experiments.config import format_experimental_setup


def bench_table1_setup(benchmark):
    text = run_once(benchmark, format_experimental_setup)
    publish("table1_setup", text)
    assert "45nm" in text
