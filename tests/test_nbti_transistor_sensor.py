"""Tests for the PMOS device state and the NBTI sensor library."""

from __future__ import annotations

import pytest

from repro.nbti.constants import SECONDS_PER_YEAR
from repro.nbti.model import NBTIModel
from repro.nbti.sensor import (
    IdealSensor,
    NoisySensor,
    QuantizedSensor,
    SensorBank,
)
from repro.nbti.transistor import PMOSDevice


@pytest.fixture(scope="module")
def model() -> NBTIModel:
    return NBTIModel.calibrated()


class TestPMOSDevice:
    def test_initial_state(self, model):
        dev = PMOSDevice(0.18, model)
        assert dev.vth() == pytest.approx(0.18)
        assert dev.duty_cycle == 100.0  # unobserved -> fully stressed

    def test_tick_updates_duty(self, model):
        dev = PMOSDevice(0.18, model)
        dev.tick(stressed=True, cycles=3)
        dev.tick(stressed=False, cycles=1)
        assert dev.duty_cycle == pytest.approx(75.0)
        assert dev.alpha == pytest.approx(0.75)

    def test_elapsed_seconds_uses_cycle_time(self, model):
        dev = PMOSDevice(0.18, model, cycle_time_s=2e-9)
        dev.tick(True, cycles=500)
        assert dev.elapsed_seconds == pytest.approx(1e-6)

    def test_default_cycle_time_is_clock_period(self, model):
        dev = PMOSDevice(0.18, model)
        assert dev.cycle_time_s == model.tech.clock_period_s

    def test_projection_grows_with_horizon(self, model):
        dev = PMOSDevice(0.18, model)
        dev.tick(True, cycles=100)
        assert dev.projected_vth(10.0) > dev.projected_vth(1.0) > 0.18

    def test_projection_depends_on_duty(self, model):
        busy = PMOSDevice(0.18, model)
        lazy = PMOSDevice(0.18, model)
        busy.tick(True, cycles=100)
        lazy.tick(True, cycles=10)
        lazy.tick(False, cycles=90)
        assert busy.projected_vth(3.0) > lazy.projected_vth(3.0)

    def test_vth_at_explicit_time(self, model):
        dev = PMOSDevice(0.18, model)
        dev.tick(True, cycles=10)
        expected = 0.18 + model.delta_vth(1.0, 3 * SECONDS_PER_YEAR)
        assert dev.vth(at_seconds=3 * SECONDS_PER_YEAR) == pytest.approx(expected)

    def test_invalid_construction_rejected(self, model):
        with pytest.raises(ValueError):
            PMOSDevice(0.0, model)
        with pytest.raises(ValueError):
            PMOSDevice(0.18, model, cycle_time_s=0.0)


class TestSensors:
    def test_ideal_sensor_reads_truth(self, model):
        dev = PMOSDevice(0.2, model)
        assert IdealSensor().measure(dev) == dev.vth()

    def test_noisy_sensor_is_reproducible(self, model):
        dev = PMOSDevice(0.2, model)
        a = NoisySensor(sigma_v=0.001, seed=3)
        b = NoisySensor(sigma_v=0.001, seed=3)
        assert [a.measure(dev) for _ in range(5)] == [b.measure(dev) for _ in range(5)]

    def test_noisy_sensor_zero_sigma_is_ideal(self, model):
        dev = PMOSDevice(0.2, model)
        assert NoisySensor(sigma_v=0.0).measure(dev) == dev.vth()

    def test_noisy_sensor_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            NoisySensor(sigma_v=-0.001)

    def test_quantized_sensor_floors_to_lsb(self, model):
        dev = PMOSDevice(0.1807, model)
        reading = QuantizedSensor(lsb_v=0.001).measure(dev)
        assert reading == pytest.approx(0.180)

    def test_quantized_sensor_rejects_bad_lsb(self):
        with pytest.raises(ValueError):
            QuantizedSensor(lsb_v=0.0)

    def test_quantized_wraps_noisy(self, model):
        dev = PMOSDevice(0.2, model)
        sensor = QuantizedSensor(lsb_v=0.001, inner=NoisySensor(0.0005, seed=1))
        reading = sensor.measure(dev)
        assert reading == pytest.approx(round(reading, 3), abs=1e-9)

    def test_describe_strings(self, model):
        assert "Ideal" in IdealSensor().describe()
        assert "mV" in NoisySensor(0.001).describe()
        assert "Quantized" in QuantizedSensor(0.001).describe()


class TestSensorBank:
    def make_bank(self, model, vths=(0.180, 0.185, 0.178), **kwargs):
        devices = [PMOSDevice(v, model) for v in vths]
        return devices, SensorBank(devices, **kwargs)

    def test_initial_most_degraded_is_vth_argmax(self, model):
        _, bank = self.make_bank(model)
        assert bank.most_degraded == 1

    def test_sample_respects_period(self, model):
        devices, bank = self.make_bank(model, sample_period=100)
        assert bank.sample(0) == 1
        # Degrade device 2 heavily between samples.
        devices[2].initial_vth = 0.3
        assert bank.sample(50) == 1  # stale: period not elapsed
        assert bank.sample(100) == 2  # refreshed

    def test_readings_length(self, model):
        _, bank = self.make_bank(model)
        assert len(bank.readings) == 3

    def test_true_most_degraded_and_misidentification(self, model):
        devices, bank = self.make_bank(model, sample_period=1000)
        bank.sample(0)
        assert not bank.misidentification()
        devices[0].initial_vth = 0.4  # truth changes, sensor stale
        assert bank.true_most_degraded() == 0
        assert bank.misidentification()

    def test_tie_breaks_to_lowest_vc(self, model):
        _, bank = self.make_bank(model, vths=(0.2, 0.2, 0.2))
        assert bank.most_degraded == 0

    def test_empty_bank_rejected(self, model):
        with pytest.raises(ValueError):
            SensorBank([])

    def test_bad_period_rejected(self, model):
        devices = [PMOSDevice(0.18, model)]
        with pytest.raises(ValueError):
            SensorBank(devices, sample_period=0)

    def test_noisy_bank_can_misidentify_close_devices(self, model):
        devices = [PMOSDevice(0.1800, model), PMOSDevice(0.1801, model)]
        noisy = NoisySensor(sigma_v=0.01, seed=7)
        bank = SensorBank(devices, sensor=noisy, sample_period=1)
        verdicts = {bank.sample(c) for c in range(0, 50)}
        assert verdicts == {0, 1}  # noise flips the argmax sometimes
