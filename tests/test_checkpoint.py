"""Tests for the crash-safe checkpoint layer.

The load-bearing properties:

* atomic writes — an artifact file is either the old bytes or the new
  bytes, byte-compatible with the historical ``json.dump`` format;
* the write-ahead journal round-trips results exactly, tolerates a torn
  tail (skip + count, never abort) and rejects corrupted payloads via
  the per-record CRC;
* resume — an executor pointed at a journal serves completed units
  from it and the final artifacts are byte-identical to an
  uninterrupted run;
* drain — ``request_drain`` stops dispatch, in-flight units finish and
  the map raises ``CampaignInterrupted`` with the pending count.
"""

from __future__ import annotations

import base64
import json
import pickle
import zlib

import pytest

from repro.experiments.checkpoint import (
    TRACEBACK_MAX_BYTES,
    CampaignInterrupted,
    CheckpointError,
    CheckpointManager,
    ScenarioJournal,
    atomic_write_json,
    atomic_write_text,
    bound_traceback,
    verify_journal,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import (
    Executor,
    ResultCache,
    ScenarioFailure,
    cache_key,
    make_executor,
)
from repro.experiments.runner import run_scenario

FAST = dict(cycles=300, warmup=100)


def tiny_units(n=3):
    base = ScenarioConfig(num_nodes=4, num_vcs=2, injection_rate=0.1, **FAST)
    policies = ("baseline", "rr-no-sensor", "sensor-wise")
    return [(base.with_policy(policies[i % 3]), i // 3) for i in range(n)]


def fingerprint(result):
    return (result.duty_cycles, result.md_vc, result.net_stats, result.initial_vths)


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrites:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "artifact.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "artifact.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_litter(self, tmp_path):
        path = tmp_path / "artifact.txt"
        atomic_write_text(path, "x")
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]

    def test_json_byte_compatible_with_json_dump(self, tmp_path):
        """Adopting atomic_write_json must not move any golden file."""
        blob = {"b": [1, 2], "a": {"z": None, "y": 0.5}}
        path = tmp_path / "blob.json"
        atomic_write_json(path, blob)
        assert path.read_text() == json.dumps(blob, indent=2, sort_keys=True) + "\n"

    def test_failure_leaves_old_file(self, tmp_path):
        path = tmp_path / "blob.json"
        atomic_write_json(path, {"ok": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"ok": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["blob.json"]


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestScenarioJournal:
    def _result(self):
        scenario, iteration = tiny_units(1)[0]
        return cache_key(scenario, iteration), run_scenario(scenario, iteration)

    def test_roundtrip_exact(self, tmp_path):
        key, result = self._result()
        journal = ScenarioJournal(tmp_path / "j.jsonl", meta={"m": 1})
        journal.append(key, result)
        journal.close()

        replayed = ScenarioJournal(tmp_path / "j.jsonl", meta={"m": 1})
        assert replayed.replayed == 1
        assert replayed.torn == 0
        assert fingerprint(replayed.get(key)) == fingerprint(result)
        replayed.close()

    def test_append_is_idempotent(self, tmp_path):
        key, result = self._result()
        journal = ScenarioJournal(tmp_path / "j.jsonl", meta={})
        journal.append(key, result)
        journal.append(key, result)
        journal.close()
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        assert len(lines) == 2  # header + one record

    def test_torn_tail_skipped_and_counted(self, tmp_path):
        key, result = self._result()
        path = tmp_path / "j.jsonl"
        journal = ScenarioJournal(path, meta={})
        journal.append(key, result)
        journal.close()

        # SIGKILL mid-append: truncate the last record partway through.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 40])

        replayed = ScenarioJournal(path, meta={})
        assert replayed.replayed == 0
        assert replayed.torn == 1
        assert replayed.get(key) is None
        # The journal stays appendable after terminating the torn line.
        replayed.append(key, result)
        replayed.close()
        again = ScenarioJournal(path, meta={})
        assert again.replayed == 1
        assert fingerprint(again.get(key)) == fingerprint(result)
        again.close()

    def test_crc_mismatch_rejected(self, tmp_path):
        key, result = self._result()
        path = tmp_path / "j.jsonl"
        journal = ScenarioJournal(path, meta={})
        journal.append(key, result)
        journal.close()

        header, record_line = path.read_text().splitlines()
        record = json.loads(record_line)
        blob = base64.b64decode(record["payload"])
        # Flip one payload byte: valid JSON, valid base64, stale CRC.
        tampered = bytes([blob[0] ^ 0xFF]) + blob[1:]
        assert zlib.crc32(tampered) & 0xFFFFFFFF != record["crc"]
        record["payload"] = base64.b64encode(tampered).decode("ascii")
        path.write_text(header + "\n" + json.dumps(record) + "\n")

        replayed = ScenarioJournal(path, meta={})
        assert replayed.torn == 1
        assert replayed.get(key) is None
        replayed.close()

    def test_garbage_line_skipped(self, tmp_path):
        key, result = self._result()
        path = tmp_path / "j.jsonl"
        journal = ScenarioJournal(path, meta={})
        journal.append(key, result)
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write('{"type": "result", "key": 42}\n')
        replayed = ScenarioJournal(path, meta={})
        assert replayed.replayed == 1
        assert replayed.torn == 2
        replayed.close()

    def test_different_meta_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        ScenarioJournal(path, meta={"config": {"cycles": 100}}).close()
        with pytest.raises(CheckpointError, match="different campaign"):
            ScenarioJournal(path, meta={"config": {"cycles": 200}})

    def test_unreadable_header_starts_fresh(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("garbage header\n")
        journal = ScenarioJournal(path, meta={"m": 1})
        assert journal.replayed == 0
        journal.close()
        # Recreated with a valid header: reopens cleanly.
        ScenarioJournal(path, meta={"m": 1}).close()


class TestCheckpointManager:
    def test_load_meta_roundtrip(self, tmp_path):
        meta = {"command": "campaign", "config": {"cycles": 150, "seed": 1}}
        CheckpointManager(tmp_path, meta=meta).close()
        assert CheckpointManager.load_meta(tmp_path) == meta

    def test_load_meta_missing_journal(self, tmp_path):
        with pytest.raises(CheckpointError, match="nothing to resume"):
            CheckpointManager.load_meta(tmp_path)

    def test_write_state_contents(self, tmp_path):
        manager = CheckpointManager(tmp_path, meta={"command": "x", "config": {}})
        scenario, iteration = tiny_units(1)[0]
        failure = ScenarioFailure(
            scenario=scenario, iteration=iteration, error_type="ValueError",
            message="boom", attempts=2, timed_out=False, wall_seconds=0.1,
            traceback="Traceback (most recent call last):\n  boom\n",
        )
        manager.write_state("interrupted", pending=3, failures=[failure])
        manager.close()

        state = json.loads((tmp_path / "campaign.state.json").read_text())
        assert state["status"] == "interrupted"
        assert state["pending"] == 3
        assert state["done"] == 0
        assert state["meta"] == {"command": "x", "config": {}}
        (entry,) = state["failed"]
        assert entry["error_type"] == "ValueError"
        assert "Traceback" in entry["traceback"]
        # Typed-kind fields always ride along (derived "crash" here).
        assert entry["kind"] == "crash"
        assert entry["quarantined"] is False
        assert entry["budget"] is None

    def test_write_state_carries_budget_verdicts(self, tmp_path):
        manager = CheckpointManager(tmp_path, meta={"command": "x", "config": {}})
        scenario, iteration = tiny_units(1)[0]
        budget = {
            "predicted": {"work": 1.0, "cpu_seconds": 5.0, "rss_bytes": 1},
            "budget": {"wall_seconds": 3.0, "cpu_seconds": 1.0, "rss_bytes": 1},
            "actual_wall_seconds": 2.5,
        }
        failure = ScenarioFailure(
            scenario=scenario, iteration=iteration, error_type="WorkerDied",
            message="budget", attempts=2, timed_out=False, wall_seconds=2.5,
            kind="cpu", quarantined=True, budget=budget,
        )
        manager.write_state("budget-exceeded", pending=1, failures=[failure])
        manager.close()

        state = json.loads((tmp_path / "campaign.state.json").read_text())
        assert state["status"] == "budget-exceeded"
        (entry,) = state["failed"]
        assert entry["kind"] == "cpu"
        assert entry["quarantined"] is True
        assert entry["budget"] == budget


# ----------------------------------------------------------------------
# Executor integration: journal hits, resume, drain
# ----------------------------------------------------------------------
class TestExecutorCheckpoint:
    def test_results_journaled_and_resumed(self, tmp_path):
        units = tiny_units(3)
        first = Executor(
            max_workers=1, checkpoint=CheckpointManager(tmp_path, meta={"m": 1})
        )
        baseline = first.map(units)
        first.checkpoint.close()
        assert first.stats.journal_hits == 0

        second = Executor(
            max_workers=1, checkpoint=CheckpointManager(tmp_path, meta={"m": 1})
        )
        resumed = second.map(units)
        second.checkpoint.close()
        assert second.stats.journal_hits == 3
        assert [fingerprint(r) for r in resumed] == [
            fingerprint(r) for r in baseline
        ]

    def test_partial_journal_runs_only_missing(self, tmp_path):
        units = tiny_units(3)
        seed = CheckpointManager(tmp_path, meta={"m": 1})
        seed.record(cache_key(*units[0]), run_scenario(*units[0]))
        seed.close()

        executor = Executor(
            max_workers=1, checkpoint=CheckpointManager(tmp_path, meta={"m": 1})
        )
        results = executor.map(units)
        executor.checkpoint.close()
        assert executor.stats.journal_hits == 1
        assert [fingerprint(r) for r in results] == [
            fingerprint(run_scenario(s, i)) for s, i in units
        ]

    def test_drain_raises_campaign_interrupted(self, tmp_path):
        units = tiny_units(4)
        executor = Executor(
            max_workers=1, checkpoint=CheckpointManager(tmp_path, meta={"m": 1})
        )
        # Drain after the first completed unit reports progress.
        executor.progress = lambda line: executor.request_drain()
        with pytest.raises(CampaignInterrupted) as info:
            executor.map(units)
        executor.checkpoint.close()
        assert info.value.pending == 3
        assert executor.checkpoint.completed() == 1

        # Resuming completes the remainder, identically.
        resumed = Executor(
            max_workers=1, checkpoint=CheckpointManager(tmp_path, meta={"m": 1})
        )
        results = resumed.map(units)
        resumed.checkpoint.close()
        assert resumed.stats.journal_hits == 1
        assert [fingerprint(r) for r in results] == [
            fingerprint(run_scenario(s, i)) for s, i in units
        ]

    def test_map_robust_journal_resume(self, tmp_path):
        units = tiny_units(2)
        first = Executor(
            max_workers=1, checkpoint=CheckpointManager(tmp_path, meta={"m": 2})
        )
        baseline = first.map_robust(units)
        first.checkpoint.close()

        second = Executor(
            max_workers=1, checkpoint=CheckpointManager(tmp_path, meta={"m": 2})
        )
        resumed = second.map_robust(units)
        second.checkpoint.close()
        assert second.stats.journal_hits == 2
        assert [fingerprint(r) for r in resumed] == [
            fingerprint(r) for r in baseline
        ]

    def test_make_executor_checkpoint_forces_executor(self, tmp_path):
        assert make_executor(1) is None
        manager = CheckpointManager(tmp_path, meta={})
        executor = make_executor(1, checkpoint=manager)
        assert isinstance(executor, Executor)
        assert executor.checkpoint is manager
        manager.close()


# ----------------------------------------------------------------------
# Failure records
# ----------------------------------------------------------------------
def _crashing_worker(unit):
    raise ValueError("synthetic crash for checkpoint tests")


class TestFailureRecords:
    def test_traceback_survives_process_boundary(self):
        units = tiny_units(1)
        executor = Executor(max_workers=1, worker=_crashing_worker)
        (outcome,) = executor.map_robust(units)
        assert isinstance(outcome, ScenarioFailure)
        assert outcome.error_type == "ValueError"
        assert outcome.traceback is not None
        assert "synthetic crash for checkpoint tests" in outcome.traceback
        assert "Traceback" in outcome.traceback
        assert executor.failure_records == [outcome]


# ----------------------------------------------------------------------
# Cache verify
# ----------------------------------------------------------------------
class TestCacheVerify:
    def _populated(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario, iteration = tiny_units(1)[0]
        cache.put(scenario, iteration, run_scenario(scenario, iteration))
        return cache

    def test_clean_cache(self, tmp_path):
        report = self._populated(tmp_path).verify()
        assert report.total == report.ok == 1
        assert report.clean
        assert "1/1 entries loadable" in report.summary()

    def test_truncated_entry_reported(self, tmp_path):
        cache = self._populated(tmp_path)
        victim = next(cache.root.glob("*.pkl"))
        victim.write_bytes(victim.read_bytes()[:16])
        report = cache.verify()
        assert report.ok == 0
        assert report.corrupt == [victim.name]
        assert not report.clean

    def test_wrong_type_and_orphan_tmp(self, tmp_path):
        cache = self._populated(tmp_path)
        (cache.root / "deadbeef.pkl").write_bytes(pickle.dumps({"not": "a result"}))
        (cache.root / "leftover.tmp").write_bytes(b"partial")
        report = cache.verify()
        assert report.ok == 1
        assert report.corrupt == ["deadbeef.pkl"]
        assert report.orphan_tmp == ["leftover.tmp"]

    def test_cli_exit_codes(self, tmp_path):
        from repro.cli import main

        cache = self._populated(tmp_path)
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        next(cache.root.glob("*.pkl")).write_bytes(b"garbage")
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 1


# ----------------------------------------------------------------------
# Journal verify (cache verify --checkpoint-dir)
# ----------------------------------------------------------------------
class TestVerifyJournal:
    def _journal(self, tmp_path, records=2):
        journal = ScenarioJournal(tmp_path / "scenario.journal.jsonl", meta={"m": 1})
        for unit in tiny_units(records):
            journal.append(cache_key(*unit), run_scenario(*unit))
        journal.close()
        return journal.path

    def test_clean_journal(self, tmp_path):
        path = self._journal(tmp_path)
        report = verify_journal(path)
        assert report.header_ok
        assert (report.total, report.ok) == (2, 2)
        assert report.torn == []
        assert report.clean
        assert "2/2 records valid" in report.summary()

    def test_directory_resolves_to_journal(self, tmp_path):
        self._journal(tmp_path)
        assert verify_journal(tmp_path).clean

    def test_missing_journal_is_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="no scenario journal"):
            verify_journal(tmp_path)

    def test_torn_tail_diagnosed(self, tmp_path):
        path = self._journal(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 40])
        report = verify_journal(path)
        assert report.ok == 1
        assert len(report.torn) == 1
        assert report.torn_tail
        assert not report.clean
        assert "torn tail" in report.summary()

    def test_crc_mismatch_diagnosed(self, tmp_path):
        path = self._journal(tmp_path, records=1)
        header, record_line = path.read_text().splitlines()
        record = json.loads(record_line)
        blob = base64.b64decode(record["payload"])
        record["payload"] = base64.b64encode(
            bytes([blob[0] ^ 0xFF]) + blob[1:]
        ).decode("ascii")
        path.write_text(header + "\n" + json.dumps(record) + "\n")
        report = verify_journal(path)
        assert report.ok == 0
        assert "CRC mismatch" in report.torn[0]
        assert not report.torn_tail or len(report.torn) == 1

    def test_mid_file_damage_is_not_a_torn_tail(self, tmp_path):
        path = self._journal(tmp_path, records=3)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:-30]  # damage a middle record
        path.write_text("\n".join(lines) + "\n")
        report = verify_journal(path)
        assert len(report.torn) == 1
        assert not report.torn_tail

    def test_bad_header_reported(self, tmp_path):
        path = tmp_path / "scenario.journal.jsonl"
        path.write_text("not json\n")
        report = verify_journal(path)
        assert not report.header_ok
        assert not report.clean
        assert "unreadable header" in report.summary()

    def test_cli_checkpoint_dir_exit_codes(self, tmp_path):
        from repro.cli import main

        self._journal(tmp_path)
        assert main(["cache", "verify", "--checkpoint-dir", str(tmp_path)]) == 0
        journal = tmp_path / "scenario.journal.jsonl"
        journal.write_bytes(journal.read_bytes()[:-40])
        assert main(["cache", "verify", "--checkpoint-dir", str(tmp_path)]) == 1

    def test_cli_requires_some_directory(self):
        from repro.cli import main

        assert main(["cache", "verify"]) == 2

    def test_cli_both_directories_combined(self, tmp_path):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        ckpt_dir = tmp_path / "ckpt"
        ckpt_dir.mkdir()
        cache = ResultCache(cache_dir)
        unit = tiny_units(1)[0]
        cache.put(unit[0], unit[1], run_scenario(*unit))
        journal = ScenarioJournal(
            ckpt_dir / "scenario.journal.jsonl", meta={"m": 1}
        )
        journal.append(cache_key(*unit), run_scenario(*unit))
        journal.close()
        args = ["cache", "verify", "--cache-dir", str(cache_dir),
                "--checkpoint-dir", str(ckpt_dir)]
        assert main(args) == 0
        # Rot in either store fails the combined scan.
        next(cache_dir.glob("*.pkl")).write_bytes(b"garbage")
        assert main(args) == 1


# ----------------------------------------------------------------------
# Bounded tracebacks
# ----------------------------------------------------------------------
def _fake_traceback(frames):
    lines = ["Traceback (most recent call last):"]
    for n in range(frames):
        lines.append(f'  File "mod{n}.py", line {n}, in fn{n}')
        lines.append(f"    call_{n}()")
    lines.append("ValueError: boom")
    return "\n".join(lines) + "\n"


class TestBoundTraceback:
    def test_short_traceback_untouched(self):
        text = _fake_traceback(5)
        assert bound_traceback(text) == text

    def test_none_passthrough(self):
        assert bound_traceback(None) is None

    def test_deep_traceback_keeps_most_recent_frames(self):
        text = _fake_traceback(100)
        bounded = bound_traceback(text, max_frames=30)
        assert "70 frame(s) elided" in bounded
        assert bounded.startswith("Traceback (most recent call last):")
        assert bounded.rstrip().endswith("ValueError: boom")
        # The frames nearest the raise survive; the oldest do not.
        assert "mod99.py" in bounded
        assert "mod0.py" not in bounded

    def test_byte_budget_enforced(self):
        huge = "Traceback (most recent call last):\n" + (
            '  File "a.py", line 1, in f\n    ' + "x" * 4000 + "\n"
        ) * 10
        bounded = bound_traceback(huge, max_frames=30, max_bytes=8192)
        assert len(bounded.encode("utf-8")) <= 8192 + 64  # + marker slack
        assert "truncated" in bounded

    def test_failure_records_bounded_in_state_file(self, tmp_path):
        manager = CheckpointManager(tmp_path, meta={"command": "x", "config": {}})
        scenario, iteration = tiny_units(1)[0]
        failure = ScenarioFailure(
            scenario=scenario, iteration=iteration, error_type="ValueError",
            message="boom", attempts=1, timed_out=False, wall_seconds=0.1,
            traceback=_fake_traceback(500),
        )
        manager.write_state("interrupted", pending=0, failures=[failure])
        manager.close()
        state = json.loads((tmp_path / "campaign.state.json").read_text())
        (entry,) = state["failed"]
        assert len(entry["traceback"].encode("utf-8")) <= TRACEBACK_MAX_BYTES + 64
        assert "elided" in entry["traceback"]
