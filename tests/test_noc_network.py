"""Integration tests of the whole network: delivery, conservation,
determinism, pipeline timing and power-state consistency."""

from __future__ import annotations

import pytest

from repro.core.policies import make_policy_factory
from repro.noc.buffer import PowerState
from repro.noc.config import NoCConfig
from repro.noc.network import Network
from repro.noc.policy_api import OutVCState
from repro.noc.topology import LOCAL
from repro.traffic.base import NullTraffic
from repro.traffic.trace import TraceTraffic

from tests.conftest import build_small_network, drain


class TestDelivery:
    def test_all_packets_delivered(self, small_network):
        net = build_small_network(policy="sensor-wise", flit_rate=0.2)
        net.run(1500)
        drain(net)
        injected = sum(ni.packets_injected for ni in net.interfaces)
        ejected = sum(ni.packets_ejected for ni in net.interfaces)
        assert injected > 50
        assert ejected == injected

    def test_flit_conservation_every_cycle(self):
        net = build_small_network(policy="rr-no-sensor", flit_rate=0.3)
        for _ in range(400):
            net.step()
            injected = sum(ni.flits_injected for ni in net.interfaces)
            # Flits the NIs created but not yet sent are counted by
            # pending_flits inside in_flight_flits().
            ejected = sum(ni.flits_ejected for ni in net.interfaces)
            assert injected - ejected <= net.in_flight_flits() + injected
            assert ejected <= injected

    def test_payload_integrity(self):
        """Every ejected packet has the right length and destination."""
        net = build_small_network(policy="sensor-wise", flit_rate=0.25)
        net.run(1000)
        drain(net)
        for ni in net.interfaces:
            for record in ni.ejection_records:
                assert record.dst == ni.node_id
                assert record.length == net.config.packet_length
                assert record.latency > 0

    def test_minimum_latency_matches_pipeline(self):
        """1-hop packets cannot beat the 3-stage + NI overhead latency."""
        net = build_small_network(policy="baseline", flit_rate=0.05)
        net.run(2000)
        drain(net)
        records = [r for ni in net.interfaces for r in ni.ejection_records]
        assert records
        # NI queue(1) + per-hop 3 stages x >=2 hops (2x2 mesh: 1-2 hops)
        # + serialization of 4 flits: empirical floor is > 8 cycles.
        assert min(r.latency for r in records) >= 8

    def test_per_flow_fifo_order(self):
        """Packets between one src-dst pair eject in injection order
        (single path under XY + in-order links)."""
        net = build_small_network(policy="sensor-wise", flit_rate=0.3)
        net.run(1500)
        drain(net)
        flows = {}
        for ni in net.interfaces:
            for rec in ni.ejection_records:
                flows.setdefault((rec.src, rec.dst), []).append(
                    (rec.ejected_cycle, rec.injected_cycle)
                )
        for flow, records in flows.items():
            records.sort()
            injections = [inj for _, inj in records]
            assert injections == sorted(injections), f"reordering on flow {flow}"


class TestDeterminism:
    def test_same_seed_identical_runs(self):
        a = build_small_network(policy="sensor-wise", flit_rate=0.2, seed=5)
        b = build_small_network(policy="sensor-wise", flit_rate=0.2, seed=5)
        a.run(600)
        b.run(600)
        assert a.stats().__dict__ == b.stats().__dict__
        for r in range(4):
            for port in a.routers[r].input_ports:
                assert a.routers[r].duty_cycles(port) == b.routers[r].duty_cycles(port)

    def test_different_traffic_seed_differs(self):
        a = build_small_network(flit_rate=0.2, seed=5)
        b = build_small_network(flit_rate=0.2, seed=6)
        a.run(600)
        b.run(600)
        assert a.stats().packets_injected != b.stats().packets_injected


class TestPowerConsistency:
    def test_upstream_view_matches_downstream_buffers(self):
        """After any cycle, a VC the upstream believes allocatable is
        powered ON downstream (modulo in-flight commands)."""
        net = build_small_network(policy="sensor-wise", flit_rate=0.2)
        for _ in range(300):
            net.step()
        cycle = net.cycle
        for router in net.routers:
            for port in router.input_ports:
                if port == LOCAL:
                    upstream = net.interfaces[router.router_id].injection_port
                else:
                    continue  # inter-router pairs checked via invariant below
                for vc in range(net.config.num_vcs):
                    if upstream.allocatable(vc, cycle):
                        buf = router.inputs[port].unit.vcs[vc].buffer
                        assert buf.state is PowerState.ON

    def test_gated_buffers_are_empty(self):
        net = build_small_network(policy="sensor-wise", flit_rate=0.3)
        for _ in range(400):
            net.step()
            for router in net.routers:
                for port in router.input_ports:
                    for ivc in router.inputs[port].unit.vcs:
                        if ivc.buffer.state is PowerState.GATED:
                            assert ivc.buffer.is_empty
                            assert not ivc.busy

    def test_active_out_vcs_never_gated(self):
        net = build_small_network(policy="rr-no-sensor", flit_rate=0.3)
        for _ in range(400):
            net.step()
            for router in net.routers:
                for port in router.output_ports:
                    for entry in router.outputs[port].upstream.entries:
                        if entry.state is OutVCState.ACTIVE:
                            assert not entry.gated


class TestQuiescence:
    def test_silent_network_fully_gates_with_policies(self):
        """With no traffic, every recovery policy ends with all router
        buffers gated (100 % recovery)."""
        for policy in ("rr-no-sensor", "sensor-wise", "sensor-wise-no-traffic"):
            net = build_small_network(policy=policy, flit_rate=0.0)
            net.run(200)
            for router in net.routers:
                for port in router.input_ports:
                    duties = router.duty_cycles(port)
                    if policy == "sensor-wise-no-traffic":
                        # One VC per port is always reserved.
                        assert sum(d > 50.0 for d in duties) == 1
                    else:
                        assert all(d < 10.0 for d in duties)

    def test_baseline_never_gates(self):
        net = build_small_network(policy="baseline", flit_rate=0.0)
        net.run(200)
        for router in net.routers:
            for port in router.input_ports:
                assert router.duty_cycles(port) == [100.0] * net.config.num_vcs


class TestResets:
    def test_reset_nbti_zeroes_counters(self):
        net = build_small_network(flit_rate=0.2)
        net.run(300)
        net.reset_nbti()
        for device in net.devices.values():
            assert device.counter.total_cycles == 0

    def test_reset_stats_starts_new_window(self):
        net = build_small_network(flit_rate=0.2)
        net.run(300)
        net.reset_stats()
        assert net.stats().cycles == 0
        net.run(100)
        assert net.stats().cycles == 100


class TestTopologies:
    @pytest.mark.parametrize("topology,nodes", [("mesh", 4), ("mesh", 6), ("ring", 5)])
    def test_delivery_on_topology(self, topology, nodes):
        net = build_small_network(
            policy="sensor-wise", num_nodes=nodes, flit_rate=0.1,
            topology=topology,
        )
        net.run(1200)
        drain(net)
        injected = sum(ni.packets_injected for ni in net.interfaces)
        ejected = sum(ni.packets_ejected for ni in net.interfaces)
        assert ejected == injected > 10


class TestTraceReplayEquivalence:
    def test_trace_replay_reproduces_run(self):
        from repro.traffic.synthetic import SyntheticTraffic
        from repro.traffic.trace import TraceRecorder

        inner = SyntheticTraffic("uniform", 4, flit_rate=0.2, packet_length=4, seed=3)
        recorder = TraceRecorder(inner, default_length=4)
        a = build_small_network(policy="sensor-wise", traffic=recorder)
        a.run(500)
        replay = TraceTraffic(recorder.records, num_nodes=4)
        b = build_small_network(policy="sensor-wise", traffic=replay)
        b.run(500)
        assert a.stats().__dict__ == b.stats().__dict__


class TestConfigValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            NoCConfig(num_nodes=1)
        with pytest.raises(ValueError):
            NoCConfig(num_vcs=0)
        with pytest.raises(ValueError):
            NoCConfig(buffer_depth=0)
        with pytest.raises(ValueError):
            NoCConfig(link_latency=0)
        with pytest.raises(ValueError):
            NoCConfig(wake_latency=-1)
        with pytest.raises(ValueError):
            NoCConfig(sensor_sample_period=0)

    def test_replace(self):
        cfg = NoCConfig(num_nodes=4)
        assert cfg.replace(num_vcs=4).num_vcs == 4

    def test_run_negative_cycles_rejected(self):
        net = build_small_network()
        with pytest.raises(ValueError):
            net.run(-1)


class TestWakeLatencySweep:
    @pytest.mark.parametrize("wake_latency", [0, 1, 3])
    def test_network_correct_for_any_wake_latency(self, wake_latency):
        net = build_small_network(
            policy="sensor-wise", flit_rate=0.2, wake_latency=wake_latency
        )
        net.run(800)
        drain(net)
        injected = sum(ni.packets_injected for ni in net.interfaces)
        ejected = sum(ni.packets_ejected for ni in net.interfaces)
        assert ejected == injected > 20
