"""Unit and property tests for the long-term NBTI model (paper Eq. 1)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nbti.constants import SECONDS_PER_YEAR, TECH_32NM, TECH_45NM
from repro.nbti.model import (
    DEFAULT_ANCHOR_DELTA_VTH,
    DEFAULT_ANCHOR_YEARS,
    NBTIModel,
    NBTIModelError,
    combined_vth,
    fleet_delta_vth,
)

THREE_YEARS = 3.0 * SECONDS_PER_YEAR


@pytest.fixture(scope="module")
def model() -> NBTIModel:
    return NBTIModel.calibrated()


class TestCalibration:
    def test_anchor_is_reproduced(self, model):
        shift = model.delta_vth(1.0, DEFAULT_ANCHOR_YEARS * SECONDS_PER_YEAR)
        assert shift == pytest.approx(DEFAULT_ANCHOR_DELTA_VTH, rel=1e-9)

    def test_custom_anchor(self):
        custom = NBTIModel.calibrated(anchor_delta_vth=0.03, anchor_years=10.0)
        assert custom.delta_vth_after_years(1.0, 10.0) == pytest.approx(0.03, rel=1e-9)

    def test_anchor_alpha_below_one(self):
        custom = NBTIModel.calibrated(anchor_alpha=0.5)
        shift = custom.delta_vth(0.5, DEFAULT_ANCHOR_YEARS * SECONDS_PER_YEAR)
        assert shift == pytest.approx(DEFAULT_ANCHOR_DELTA_VTH, rel=1e-9)

    def test_calibration_rejects_bad_anchor(self):
        with pytest.raises(NBTIModelError):
            NBTIModel.calibrated(anchor_delta_vth=-0.01)
        with pytest.raises(NBTIModelError):
            NBTIModel.calibrated(anchor_years=0.0)
        with pytest.raises(NBTIModelError):
            NBTIModel.calibrated(anchor_alpha=0.0)
        with pytest.raises(NBTIModelError):
            NBTIModel.calibrated(anchor_alpha=1.5)

    def test_kv_must_be_positive(self):
        with pytest.raises(NBTIModelError):
            NBTIModel(kv=0.0)
        with pytest.raises(NBTIModelError):
            NBTIModel(kv=-1.0)

    def test_32nm_model_calibrates(self):
        m32 = NBTIModel.calibrated(tech=TECH_32NM)
        assert m32.delta_vth(1.0, THREE_YEARS) == pytest.approx(
            DEFAULT_ANCHOR_DELTA_VTH, rel=1e-9
        )


class TestBoundaryBehaviour:
    def test_zero_alpha_gives_zero_shift(self, model):
        assert model.delta_vth(0.0, THREE_YEARS) == 0.0

    def test_zero_time_gives_zero_shift(self, model):
        assert model.delta_vth(1.0, 0.0) == 0.0

    def test_negative_time_rejected(self, model):
        with pytest.raises(NBTIModelError):
            model.delta_vth(0.5, -1.0)

    def test_alpha_out_of_range_rejected(self, model):
        with pytest.raises(NBTIModelError):
            model.delta_vth(1.5, THREE_YEARS)
        with pytest.raises(NBTIModelError):
            model.delta_vth(-0.2, THREE_YEARS)

    def test_alpha_tiny_numerical_overshoot_tolerated(self, model):
        # Duty-cycle accounting can produce 1.0 + 1e-16.
        assert model.delta_vth(1.0 + 1e-13, THREE_YEARS) > 0.0

    def test_beta_t_stays_in_unit_interval(self, model):
        for alpha in (0.01, 0.5, 1.0):
            for t in (1.0, 1e3, 1e6, 1e9):
                beta = model.beta_t(alpha, t)
                assert 0.0 < beta < 1.0


class TestMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(
        a1=st.floats(min_value=0.001, max_value=1.0),
        a2=st.floats(min_value=0.001, max_value=1.0),
    )
    def test_shift_monotone_in_alpha(self, a1, a2):
        model = NBTIModel.calibrated()
        lo, hi = sorted((a1, a2))
        assert model.delta_vth(lo, THREE_YEARS) <= model.delta_vth(hi, THREE_YEARS) + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(
        t1=st.floats(min_value=1.0, max_value=3.0e8),
        t2=st.floats(min_value=1.0, max_value=3.0e8),
    )
    def test_shift_monotone_in_time(self, t1, t2):
        model = NBTIModel.calibrated()
        lo, hi = sorted((t1, t2))
        assert model.delta_vth(0.5, lo) <= model.delta_vth(0.5, hi) + 1e-12

    def test_shift_monotone_in_temperature(self, model):
        cold = model.delta_vth(0.5, THREE_YEARS, temperature_k=320.0)
        hot = model.delta_vth(0.5, THREE_YEARS, temperature_k=380.0)
        assert hot > cold

    def test_shift_monotone_in_vdd(self, model):
        low = model.delta_vth(0.5, THREE_YEARS, vdd=1.0)
        high = model.delta_vth(0.5, THREE_YEARS, vdd=1.3)
        assert high > low

    def test_trajectory_is_sorted(self, model):
        times = [i * SECONDS_PER_YEAR / 4 for i in range(1, 20)]
        traj = model.trajectory(0.7, times)
        assert traj == sorted(traj)


class TestSaving:
    def test_saving_of_equal_alphas_is_zero(self, model):
        assert model.saving(0.5, 0.5, THREE_YEARS) == pytest.approx(0.0)

    def test_saving_increases_as_alpha_drops(self, model):
        s_small = model.saving(0.01, 1.0, THREE_YEARS)
        s_large = model.saving(0.5, 1.0, THREE_YEARS)
        assert s_small > s_large > 0.0

    def test_saving_of_zero_alpha_is_total(self, model):
        assert model.saving(0.0, 1.0, THREE_YEARS) == pytest.approx(1.0)

    def test_paper_headline_saving_is_reachable(self, model):
        """A ~1 % duty cycle yields the paper's 54.2 % Vth saving scale."""
        alpha = model.alpha_for_saving(0.542, 1.0, THREE_YEARS)
        assert 0.0 < alpha < 0.05
        assert model.saving(alpha, 1.0, THREE_YEARS) == pytest.approx(0.542, abs=1e-3)

    @settings(max_examples=30, deadline=None)
    @given(target=st.floats(min_value=0.0, max_value=0.95))
    def test_alpha_for_saving_inverts_saving(self, target):
        model = NBTIModel.calibrated()
        alpha = model.alpha_for_saving(target, 1.0, THREE_YEARS)
        assert model.saving(alpha, 1.0, THREE_YEARS) == pytest.approx(target, abs=5e-3)

    def test_alpha_for_saving_rejects_bad_target(self, model):
        with pytest.raises(NBTIModelError):
            model.alpha_for_saving(1.0, 1.0, THREE_YEARS)
        with pytest.raises(NBTIModelError):
            model.alpha_for_saving(-0.1, 1.0, THREE_YEARS)


class TestScalingHelpers:
    def test_kv_scaled_identity_without_overrides(self, model):
        assert model.kv_scaled() == model.kv

    def test_oxide_field_positive_at_nominal(self, model):
        assert model.oxide_field() > 0.0

    def test_diffusion_constant_positive(self, model):
        assert model.diffusion_constant() > 0.0

    def test_operating_temperature_override(self):
        m = NBTIModel.calibrated(temperature_k=400.0)
        assert m.operating_temperature_k == 400.0

    def test_default_operating_temperature_from_tech(self, model):
        assert model.operating_temperature_k == TECH_45NM.temperature_k


class TestHelpers:
    def test_combined_vth_adds_shift(self, model):
        total = combined_vth(0.18, model, 1.0, THREE_YEARS)
        assert total == pytest.approx(0.18 + model.delta_vth(1.0, THREE_YEARS))

    def test_fleet_delta_vth_order_preserved(self, model):
        alphas = [0.9, 0.1, 0.5]
        shifts = fleet_delta_vth(model, alphas, THREE_YEARS)
        assert len(shifts) == 3
        assert shifts[0] > shifts[2] > shifts[1]

    def test_delta_vth_after_years_matches_seconds(self, model):
        assert model.delta_vth_after_years(0.5, 2.0) == pytest.approx(
            model.delta_vth(0.5, 2.0 * SECONDS_PER_YEAR)
        )

    def test_shift_magnitude_is_physical(self, model):
        """10-year full-stress shift stays in the tens-of-mV regime."""
        shift = model.delta_vth_after_years(1.0, 10.0)
        assert 0.03 < shift < 0.15
