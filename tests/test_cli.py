"""Tests for the repro-noc command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["setup"],
            ["table2", "--cycles", "100"],
            ["table3"],
            ["table3", "--jobs", "4", "--cache-dir", "cache"],
            ["table4", "--iterations", "2"],
            ["campaign", "--jobs", "0"],
            ["sweep", "--jobs", "2"],
            ["area", "--vcs", "2"],
            ["vth", "--rate", "0.2"],
            ["cooperation"],
            ["simulate", "--policy", "baseline"],
        ):
            assert parser.parse_args(argv).command == argv[0]


class TestCommands:
    def test_setup(self, capsys):
        assert main(["setup"]) == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "3.25%" in out
        assert "< 4%" in out

    def test_area_custom_geometry(self, capsys):
        assert main(["area", "--vcs", "2", "--ports", "5"]) == 0
        assert "10 x" in capsys.readouterr().out  # 5 ports x 2 VCs sensors

    def test_simulate(self, capsys):
        assert main([
            "simulate", "--cycles", "1500", "--warmup", "300",
            "--policy", "sensor-wise",
        ]) == 0
        out = capsys.readouterr().out
        assert "duty cycles" in out
        assert "MD VC" in out

    def test_vth(self, capsys):
        assert main(["vth", "--cycles", "1500", "--warmup", "300", "--vcs", "2"]) == 0
        assert "Saving vs baseline" in capsys.readouterr().out

    def test_cooperation(self, capsys):
        assert main(["cooperation", "--cycles", "1500", "--warmup", "300"]) == 0
        assert "Cooperation gain" in capsys.readouterr().out

    def test_table3_small(self, capsys):
        # Keep it tiny: the full table is exercised by the benchmarks.
        assert main(["table3", "--cycles", "1200", "--warmup", "200"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "4core-inj0.10" in out
        assert "16core-inj0.30" in out

    def test_table3_jobs_matches_serial(self, capsys, tmp_path):
        args = ["table3", "--cycles", "800", "--warmup", "200"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        cache = str(tmp_path / "cache")
        assert main(args + ["--jobs", "2", "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "scenarios" in captured.err  # executor summary on stderr
        # Cached rerun: identical table again, all hits.
        assert main(args + ["--jobs", "2", "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "(18 cached)" in captured.err
