"""Tests for the repro-noc command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["setup"],
            ["table2", "--cycles", "100"],
            ["table3"],
            ["table3", "--jobs", "4", "--cache-dir", "cache"],
            ["table4", "--iterations", "2"],
            ["campaign", "--jobs", "0"],
            ["sweep", "--jobs", "2"],
            ["area", "--vcs", "2"],
            ["vth", "--rate", "0.2"],
            ["cooperation"],
            ["simulate", "--policy", "baseline"],
        ):
            assert parser.parse_args(argv).command == argv[0]


class TestCommands:
    def test_setup(self, capsys):
        assert main(["setup"]) == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "3.25%" in out
        assert "< 4%" in out

    def test_area_custom_geometry(self, capsys):
        assert main(["area", "--vcs", "2", "--ports", "5"]) == 0
        assert "10 x" in capsys.readouterr().out  # 5 ports x 2 VCs sensors

    def test_simulate(self, capsys):
        assert main([
            "simulate", "--cycles", "1500", "--warmup", "300",
            "--policy", "sensor-wise",
        ]) == 0
        out = capsys.readouterr().out
        assert "duty cycles" in out
        assert "MD VC" in out

    def test_vth(self, capsys):
        assert main(["vth", "--cycles", "1500", "--warmup", "300", "--vcs", "2"]) == 0
        assert "Saving vs baseline" in capsys.readouterr().out

    def test_cooperation(self, capsys):
        assert main(["cooperation", "--cycles", "1500", "--warmup", "300"]) == 0
        assert "Cooperation gain" in capsys.readouterr().out

    def test_table3_small(self, capsys):
        # Keep it tiny: the full table is exercised by the benchmarks.
        assert main(["table3", "--cycles", "1200", "--warmup", "200"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "4core-inj0.10" in out
        assert "16core-inj0.30" in out

    def test_table3_jobs_matches_serial(self, capsys, tmp_path):
        args = ["table3", "--cycles", "800", "--warmup", "200"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        cache = str(tmp_path / "cache")
        assert main(args + ["--jobs", "2", "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "scenarios" in captured.err  # executor summary on stderr
        # Cached rerun: identical table again, all hits.
        assert main(args + ["--jobs", "2", "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "(18 cached)" in captured.err


class TestGovernanceFlags:
    def _args(self, argv):
        return build_parser().parse_args(argv)

    def test_budget_and_poison_flags_parse_on_campaign_commands(self):
        parser = build_parser()
        for command in ("table3", "campaign", "sweep", "fault-campaign"):
            args = parser.parse_args([
                command, "--budget-cpu", "2", "--budget-wall", "30",
                "--budget-rss", "512", "--budget-scale", "1.5",
                "--poison-threshold", "2",
            ])
            assert args.budget_cpu == 2.0
            assert args.poison_threshold == 2
        assert parser.parse_args(["health", "--connect", "h:1"]).command == "health"

    def test_no_budget_flags_means_no_governor(self):
        from repro.cli import _make_governor

        assert _make_governor(self._args(["campaign"])) is None

    def test_budget_flag_enables_adaptive_governance(self):
        from repro.cli import _make_governor

        spec = _make_governor(self._args(["campaign", "--budget"]))
        assert spec is not None
        assert spec.adaptive
        assert spec.cpu_seconds is None
        assert spec.scale == 1.0

    def test_explicit_budget_flags_imply_budget(self):
        from repro.cli import _make_governor

        spec = _make_governor(self._args([
            "campaign", "--budget-cpu", "2.5", "--budget-rss", "64",
            "--budget-scale", "2.0",
        ]))
        assert spec.cpu_seconds == 2.5
        assert spec.rss_bytes == 64 * 1024 * 1024
        assert spec.scale == 2.0
        assert spec.wall_seconds is None

    def test_poison_threshold_reaches_distributed_spec(self):
        from repro.cli import _make_distributed

        spec = _make_distributed(self._args([
            "fault-campaign", "--workers", "1", "--poison-threshold", "5",
        ]))
        assert spec is not None
        assert spec.poison_threshold == 5


class TestHealthCommand:
    def test_unreachable_coordinator_exits_2(self, capsys):
        # A port nothing listens on: connection refused, not a hang.
        assert main(["health", "--connect", "127.0.0.1:9", "--timeout", "2"]) == 2

    def test_healthy_coordinator_exits_0(self, capsys):
        from repro.experiments.distributed import CoordinatorServer, DistributedSpec

        server = CoordinatorServer(DistributedSpec(bind="127.0.0.1", port=0))
        server.start()
        try:
            host, port = server.address
            assert main(["health", "--connect", f"{host}:{port}"]) == 0
            out = capsys.readouterr().out
            assert '"status": "ok"' in out
            assert '"verdict": "ok"' in out
        finally:
            server.close()

    def test_degraded_coordinator_exits_1(self, capsys):
        from repro.experiments.distributed import CoordinatorServer, DistributedSpec

        server = CoordinatorServer(
            DistributedSpec(bind="127.0.0.1", port=0, queue_limit=1)
        )
        server.start()
        try:
            server.events.put(("noise", "", None))  # saturate the queue
            host, port = server.address
            assert main(["health", "--connect", f"{host}:{port}"]) == 1
            assert '"verdict": "shed"' in capsys.readouterr().out
        finally:
            server.close()
