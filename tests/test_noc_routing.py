"""Tests for XY/YX/ring routing: minimality, delivery, deadlock ordering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.routing import RingRouting, XYRouting, YXRouting, build_routing
from repro.noc.topology import (
    EAST,
    LOCAL,
    NORTH,
    SOUTH,
    WEST,
    Mesh2D,
    Ring,
    Torus2D,
)


def walk(routing, topology, src: int, dst: int, limit: int = 64):
    """Follow the routing function hop by hop; return the path."""
    path = [src]
    node = src
    for _ in range(limit):
        port = routing.route(node, dst)
        if port == LOCAL:
            return path
        node = topology.neighbor(node, port)
        path.append(node)
    raise AssertionError(f"route {src}->{dst} did not terminate: {path}")


class TestXYRouting:
    def setup_method(self):
        self.mesh = Mesh2D(4, 4)
        self.routing = XYRouting(self.mesh)

    def test_arrived_returns_local(self):
        assert self.routing.route(5, 5) == LOCAL

    def test_x_before_y(self):
        # From (0,0) to (2,2): must go EAST first.
        assert self.routing.route(0, 10) == EAST
        # From (2,0) to (2,2): x matches, go SOUTH.
        assert self.routing.route(2, 10) == SOUTH

    def test_west_and_north_directions(self):
        assert self.routing.route(15, 12) == WEST
        assert self.routing.route(12, 0) == NORTH

    def test_all_pairs_delivered_minimally(self):
        for src in range(16):
            for dst in range(16):
                path = walk(self.routing, self.mesh, src, dst)
                assert path[-1] == dst
                assert len(path) - 1 == self.mesh.hop_distance(src, dst)

    def test_xy_never_turns_from_y_to_x(self):
        """The dimension-order property that makes XY deadlock-free."""
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                moved_y = False
                node = src
                while node != dst:
                    port = self.routing.route(node, dst)
                    if port in (NORTH, SOUTH):
                        moved_y = True
                    else:
                        assert not moved_y, f"x-move after y-move on {src}->{dst}"
                    node = self.mesh.neighbor(node, port)

    def test_route_cache_consistency(self):
        first = self.routing.route(0, 15)
        assert self.routing.route(0, 15) == first

    def test_requires_mesh(self):
        with pytest.raises(TypeError):
            XYRouting(Ring(4))


class TestYXRouting:
    def test_y_before_x(self):
        routing = YXRouting(Mesh2D(4, 4))
        assert routing.route(0, 10) == SOUTH

    def test_all_pairs_delivered(self):
        mesh = Mesh2D(3, 3)
        routing = YXRouting(mesh)
        for src in range(9):
            for dst in range(9):
                assert walk(routing, mesh, src, dst)[-1] == dst


class TestRingRouting:
    def test_shortest_direction(self):
        ring = Ring(6)
        routing = RingRouting(ring)
        assert routing.route(0, 1) == EAST
        assert routing.route(0, 5) == WEST

    def test_tie_goes_east(self):
        routing = RingRouting(Ring(6))
        assert routing.route(0, 3) == EAST

    def test_all_pairs_delivered_minimally(self):
        ring = Ring(7)
        routing = RingRouting(ring)
        for src in range(7):
            for dst in range(7):
                path = walk(routing, ring, src, dst)
                assert path[-1] == dst
                assert len(path) - 1 == ring.hop_distance(src, dst)

    def test_requires_ring(self):
        with pytest.raises(TypeError):
            RingRouting(Mesh2D(2, 2))


class TestBuildRouting:
    def test_auto_picks_xy_on_mesh(self):
        assert isinstance(build_routing("auto", Mesh2D(2, 2)), XYRouting)

    def test_auto_picks_ring_on_ring(self):
        assert isinstance(build_routing("auto", Ring(4)), RingRouting)

    def test_explicit_names(self):
        mesh = Mesh2D(2, 2)
        assert isinstance(build_routing("xy", mesh), XYRouting)
        assert isinstance(build_routing("yx", mesh), YXRouting)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            build_routing("adaptive", Mesh2D(2, 2))

    def test_xy_works_on_torus_type(self):
        # Torus2D subclasses Mesh2D; XY uses mesh-coordinate moves (the
        # non-wrapping subset of links), so delivery still holds.
        torus = Torus2D(4, 4)
        routing = build_routing("xy", torus)
        for src in (0, 5, 15):
            for dst in range(16):
                assert walk(routing, torus, src, dst)[-1] == dst


@settings(max_examples=30, deadline=None)
@given(
    width=st.integers(min_value=2, max_value=6),
    height=st.integers(min_value=2, max_value=6),
    data=st.data(),
)
def test_xy_property_random_meshes(width, height, data):
    mesh = Mesh2D(width, height)
    routing = XYRouting(mesh)
    src = data.draw(st.integers(min_value=0, max_value=mesh.num_nodes - 1))
    dst = data.draw(st.integers(min_value=0, max_value=mesh.num_nodes - 1))
    path = walk(routing, mesh, src, dst, limit=width + height + 2)
    assert path[-1] == dst
    assert len(path) - 1 == mesh.hop_distance(src, dst)
