"""Focused tests for each validator sweep and remaining edge branches."""

from __future__ import annotations

import pytest

from repro.noc.flit import Flit, FlitType
from repro.noc.validation import (
    _validate_buffers,
    _validate_conservation,
    _validate_credit_bounds,
    _validate_wormhole_state,
    validate_network,
)
from repro.traffic.base import CompositeTraffic
from repro.traffic.real import BenchmarkTraffic
from repro.traffic.synthetic import SyntheticTraffic
from tests.conftest import build_small_network, drain


def fresh_net(**kwargs):
    kwargs.setdefault("flit_rate", 0.1)
    net = build_small_network(policy="baseline", **kwargs)
    net.run(200)
    return net


class TestBufferSweep:
    def test_detects_route_less_resident_packet(self):
        net = fresh_net(flit_rate=0.0)
        ivc = net.routers[0].inputs[0].unit.vcs[0]
        ivc.busy = True
        ivc.outport = None
        violations = _validate_buffers(net)
        assert any("without a route" in v for v in violations)

    def test_detects_busy_gated_buffer(self):
        net = fresh_net(flit_rate=0.0)
        ivc = net.routers[0].inputs[0].unit.vcs[0]
        ivc.buffer.gate()
        ivc.busy = True
        ivc.outport = 0
        violations = _validate_buffers(net)
        assert any("owns a packet" in v for v in violations)


class TestWormholeSweep:
    def _flit(self, pkt, seq, ftype=FlitType.BODY):
        flit = Flit(pkt, seq, ftype, 0, 1, 0)
        flit.arrived_cycle = 0
        return flit

    def test_detects_packet_mixing(self):
        net = fresh_net(flit_rate=0.0)
        ivc = net.routers[0].inputs[0].unit.vcs[0]
        ivc.busy = True
        ivc.outport = 0
        ivc.buffer._flits.extend([self._flit(1, 0), self._flit(2, 0)])
        violations = _validate_wormhole_state(net)
        assert any("packet mixing" in v for v in violations)

    def test_detects_out_of_order_flits(self):
        net = fresh_net(flit_rate=0.0)
        ivc = net.routers[0].inputs[0].unit.vcs[0]
        ivc.busy = True
        ivc.outport = 0
        ivc.buffer._flits.extend([self._flit(1, 2), self._flit(1, 1)])
        violations = _validate_wormhole_state(net)
        assert any("out of order" in v for v in violations)

    def test_detects_orphan_flits(self):
        net = fresh_net(flit_rate=0.0)
        ivc = net.routers[0].inputs[0].unit.vcs[0]
        ivc.buffer._flits.append(self._flit(1, 0))
        violations = _validate_wormhole_state(net)
        assert any("not busy" in v for v in violations)


class TestCreditAndConservationSweeps:
    def test_detects_negative_credits(self):
        net = fresh_net(flit_rate=0.0)
        net.routers[0].outputs[0].upstream.entries[0].credits = -1
        violations = _validate_credit_bounds(net)
        assert any("credits -1" in v for v in violations)

    def test_detects_lost_flit(self):
        net = build_small_network(policy="baseline", flit_rate=0.2)
        net.run(300)
        # Vaporize a buffered flit somewhere.
        for router in net.routers:
            for port in router.input_ports:
                for ivc in router.inputs[port].unit.vcs:
                    if ivc.buffer._flits:
                        ivc.buffer._flits.popleft()
                        violations = _validate_conservation(net)
                        assert violations and "conservation" in violations[0]
                        return
        pytest.skip("no buffered flit found at this load")


class TestCompositeRealisticTraffic:
    def test_benchmark_plus_hotspot_composite(self):
        """Composite of a benchmark mix and a synthetic pattern drives a
        healthy network (a realistic 'app + background' scenario)."""
        mix = BenchmarkTraffic.random(4, mix_seed=5)
        background = SyntheticTraffic("uniform", 4, flit_rate=0.05,
                                      packet_length=4, seed=6)
        net = build_small_network(
            policy="sensor-wise", traffic=CompositeTraffic([mix, background])
        )
        net.run(1500)
        assert validate_network(net) == []
        drain(net, max_cycles=4000)
        injected = sum(ni.packets_injected for ni in net.interfaces)
        ejected = sum(ni.packets_ejected for ni in net.interfaces)
        assert ejected == injected > 20


class TestTorusUnderTraffic:
    def test_torus_below_saturation_delivers(self):
        """XY on a torus only uses the mesh sub-links, so it stays
        deadlock-free; wraparound links exist but idle."""
        net = build_small_network(
            policy="sensor-wise", num_nodes=9, topology="torus",
            routing="xy", flit_rate=0.08,
        )
        net.run(1200)
        assert validate_network(net) == []
        drain(net, max_cycles=5000)
        injected = sum(ni.packets_injected for ni in net.interfaces)
        ejected = sum(ni.packets_ejected for ni in net.interfaces)
        assert ejected == injected > 10
