"""Hot-path engine tests: interval NBTI accounting, quiescence
fast-forward, the unified most-degraded tie-break, and the reconciled
``validate_every`` code path.

The load-bearing property throughout is **byte-identity**: the interval
accounting and the fast-forward must produce exactly the results of the
legacy per-cycle stepping loop, not merely statistically similar ones.
"""

from __future__ import annotations

import math

import pytest

from repro.nbti.model import NBTIModel
from repro.nbti.process_variation import ProcessVariationModel
from repro.nbti.transistor import PMOSDevice
from repro.noc.buffer import PowerState, VCBuffer
from repro.noc.network import Network
from repro.traffic.synthetic import SyntheticTraffic

from tests.conftest import build_small_network


def make_tracked_buffer() -> VCBuffer:
    return VCBuffer(4, device=PMOSDevice(0.18, NBTIModel.calibrated()))


def harvest(net: Network):
    """Everything a scenario run reads back, as one comparable value."""
    duty = {
        (r.router_id, port): net.duty_cycles(r.router_id, port)
        for r in net.routers
        for port in r.input_ports
    }
    counters = {
        key: device.counter.snapshot() for key, device in net.devices.items()
    }
    return net.cycle, duty, counters, net.stats().__dict__


def run_pair(policy: str, flit_rate: float, cycles: int, warmup: int = 0,
             **kwargs):
    """Run identical networks with and without fast-forward."""
    nets = []
    for allow in (True, False):
        net = build_small_network(policy=policy, flit_rate=flit_rate, **kwargs)
        net.allow_fast_forward = allow
        if warmup:
            net.run(warmup)
            net.reset_nbti()
            net.reset_stats()
        net.run(cycles)
        nets.append(net)
    return nets


class TestIntervalAccounting:
    """VCBuffer interval mode vs the per-cycle reference mode."""

    def test_interval_matches_per_cycle_reference(self):
        """Drive two buffers through one transition script: interval
        accounting must book exactly what per-cycle ticking books."""
        script = {2: "gate", 5: "wake", 7: "gate", 8: "wake0", 9: "gate"}
        interval = make_tracked_buffer()
        reference = make_tracked_buffer()
        for cycle in range(12):
            op = script.get(cycle)
            if op == "gate":
                interval.gate(cycle=cycle)
                reference.gate()
            elif op == "wake":
                interval.wake(2, cycle=cycle)
                reference.wake(2)
            elif op == "wake0":
                interval.wake(0, cycle=cycle)
                reference.wake(0)
            interval.tick_power()
            reference.tick_power()
            reference.nbti_tick()
        interval.nbti_flush(12)
        assert interval.device.counter.snapshot() == \
            reference.device.counter.snapshot()

    def test_wake_zero_latency_books_recovery_interval(self):
        buf = make_tracked_buffer()
        buf.gate(cycle=0)
        buf.wake(0, cycle=5)
        assert buf.state is PowerState.ON
        buf.nbti_flush(10)
        # Cycles 0-4 gated, 5-9 on.
        assert buf.device.counter.snapshot() == (5, 5)

    def test_rewake_while_waking_does_not_reflush(self):
        buf = make_tracked_buffer()
        buf.gate(cycle=0)
        buf.wake(3, cycle=4)       # books 4 recovery cycles
        buf.wake(1, cycle=6)       # ignored: no countdown reset, no flush
        assert buf.state is PowerState.WAKING
        for _ in range(3):
            buf.tick_power()
        assert buf.state is PowerState.ON
        buf.nbti_flush(10)
        # Cycles 0-3 gated, 4-9 powered (WAKING counts as stress).
        assert buf.device.counter.snapshot() == (6, 4)

    def test_gate_wake_gate_on_consecutive_cycles(self):
        buf = make_tracked_buffer()
        buf.gate(cycle=1)          # books cycle 0 as stress
        buf.wake(1, cycle=2)       # books cycle 1 as recovery
        buf.gate(cycle=3)          # books cycle 2 (WAKING) as stress
        assert buf.state is PowerState.GATED
        buf.nbti_flush(5)          # books cycles 3-4 as recovery
        assert buf.device.counter.snapshot() == (2, 3)

    def test_emergency_wake_books_recovery_before_flip(self):
        from tests.test_noc_buffer import make_flit

        buf = make_tracked_buffer()
        buf.on_push_unpowered = lambda b, f: True
        buf.gate(cycle=2)          # cycles 0-1 stress
        buf.push(make_flit(), cycle=7)   # cycles 2-6 recovery, then ON
        assert buf.state is PowerState.ON
        buf.nbti_flush(9)          # cycles 7-8 stress
        assert buf.device.counter.snapshot() == (4, 5)

    def test_flush_is_idempotent_and_monotonic(self):
        buf = make_tracked_buffer()
        buf.nbti_flush(5)
        buf.nbti_flush(5)
        buf.nbti_flush(3)          # past cycle: no-op, never negative
        assert buf.device.counter.snapshot() == (5, 0)

    def test_rebase_discards_unbooked_interval(self):
        buf = make_tracked_buffer()
        buf.nbti_flush(4)
        buf.device.counter.reset()
        buf.nbti_rebase(10)
        buf.nbti_flush(15)
        assert buf.device.counter.snapshot() == (5, 0)


class TestFastForwardEquivalence:
    """Network.run with fast-forward vs the dense stepping loop."""

    @pytest.mark.parametrize("policy", [
        "sensor-wise", "rr-no-sensor", "rr-no-sensor-no-traffic",
        "baseline", "static-reserve",
    ])
    def test_low_rate_runs_identical(self, policy):
        fast, slow = run_pair(policy, flit_rate=0.02, cycles=3000)
        assert harvest(fast) == harvest(slow)

    def test_identical_after_warmup_and_reset(self):
        fast, slow = run_pair("sensor-wise", flit_rate=0.02,
                              cycles=2000, warmup=500)
        assert harvest(fast) == harvest(slow)

    def test_identical_with_null_traffic(self):
        fast, slow = run_pair("sensor-wise", flit_rate=0.0, cycles=2000)
        assert harvest(fast) == harvest(slow)

    def test_identical_at_moderate_rate(self):
        """Few quiescent windows, but any that occur must still be exact."""
        fast, slow = run_pair("sensor-wise", flit_rate=0.2, cycles=1500)
        assert harvest(fast) == harvest(slow)

    def test_fast_forward_actually_skips_cycles(self):
        net = build_small_network(policy="sensor-wise", flit_rate=0.01)
        stepped = 0
        original = net.step

        def counting_step():
            nonlocal stepped
            stepped += 1
            original()

        net.step = counting_step
        net.run(4000)
        assert net.cycle == 4000
        assert stepped < 4000, "no quiescent window was fast-forwarded"

    def test_traffic_rng_position_matches_stepping(self):
        """After a fast-forwarded run the traffic RNG must sit exactly
        where per-cycle stepping would have left it."""
        fast, slow = run_pair("sensor-wise", flit_rate=0.01, cycles=3000)
        assert fast.traffic._rng.bit_generator.state == \
            slow.traffic._rng.bit_generator.state

    @pytest.mark.parametrize("policy,rate", [
        ("sensor-wise", 0.02), ("rr-no-sensor", 0.02),
        ("sensor-wise", 0.2),
    ])
    def test_per_cycle_reference_engine_identical(self, policy, rate):
        """The in-engine reference mode (per-cycle ticks, dense loop)
        must reproduce the interval engine bit for bit — it is the
        baseline arm of benchmarks/hotpath_speedup.py."""
        fast = build_small_network(policy=policy, flit_rate=rate)
        reference = build_small_network(policy=policy, flit_rate=rate)
        reference.use_per_cycle_nbti()
        for net in (fast, reference):
            net.run(400)
            net.reset_nbti()
            net.reset_stats()
            net.run(2000)
        assert harvest(fast) == harvest(reference)

    def test_cycle_free_policy_needs_no_epoch_pin(self):
        """Sensor-wise declares a cycle-free healthy decision, so the
        planner pins no epoch periods for it (jumps may cross rotation
        boundaries of the — never engaged — degraded fallback)."""
        net = build_small_network(policy="sensor-wise", flit_rate=0.01)
        plan = net._fast_forward_plan()
        assert plan is not None
        periods, _banks = plan
        assert periods == []


class TestFastForwardGates:
    """Conditions that must force the dense stepping loop."""

    def test_telemetry_instrumentation_disables_fast_forward(self):
        from repro.telemetry.config import TelemetryConfig
        from repro.telemetry.runtime import Telemetry

        net = build_small_network()
        assert net.allow_fast_forward
        Telemetry(TelemetryConfig()).attach(net)
        assert not net.allow_fast_forward

    def test_fault_injection_disables_fast_forward(self):
        from repro.faults import FaultInjector, FaultSpec

        net = build_small_network()
        spec = FaultSpec("sensor-dropout", router=0, port="east",
                         onset=100, duration=300)
        FaultInjector([spec], master_seed=3).apply(net)
        assert not net.allow_fast_forward
        assert net._fast_forward_plan() is None

    def test_unsupported_traffic_disables_plan(self):
        net = build_small_network()

        class Opaque:
            def inject(self, cycle):
                return []

        net.traffic = Opaque()
        assert net._fast_forward_plan() is None
        net.run(100)  # dense loop still works
        assert net.cycle == 100

    def test_undeclared_time_varying_epoch_disables_plan(self):
        net = build_small_network(policy="rr-no-sensor")
        policy = net.upstream_ports()[0].engines[0].policy
        policy.epoch_period = None  # varying epoch, period withdrawn
        assert net._fast_forward_plan() is None

    def test_plan_collects_declared_epoch_periods(self):
        net = build_small_network(policy="rr-no-sensor")
        plan = net._fast_forward_plan()
        assert plan is not None
        periods, banks = plan
        assert periods == [64]
        assert len(banks) == len(net._sensor_banks)


class TestTrafficScout:
    """SyntheticTraffic.next_injection_cycle / advance contracts."""

    def test_scout_does_not_consume_the_stream(self):
        a = SyntheticTraffic("uniform", 4, flit_rate=0.05, seed=3)
        b = SyntheticTraffic("uniform", 4, flit_rate=0.05, seed=3)
        a.next_injection_cycle(0)
        for cycle in range(300):
            assert a.inject(cycle) == b.inject(cycle)

    def test_scout_lower_bound_holds(self):
        """Scouting is non-consuming, so the same generator can be
        scouted and then stepped: no injection before the bound, one at
        the bound (uniform pattern never maps a node onto itself)."""
        gen = SyntheticTraffic("uniform", 4, flit_rate=0.02, seed=9)
        cycle = 0
        for _ in range(20):
            target = gen.next_injection_cycle(cycle)
            assert target >= cycle
            for c in range(cycle, target):
                assert gen.inject(c) == []
            assert gen.inject(target), "scout overshot the first injection"
            cycle = target + 1

    def test_advance_matches_sequential_draws(self):
        """Over an injection-free window (advance's contract), bulk
        consumption leaves the stream exactly where inject() would."""
        a = SyntheticTraffic("uniform", 4, flit_rate=0.02, seed=5)
        b = SyntheticTraffic("uniform", 4, flit_rate=0.02, seed=5)
        gap = a.next_injection_cycle(0)
        assert gap > 0
        for cycle in range(gap):
            assert a.inject(cycle) == []
        b.advance(gap)
        assert a._rng.bit_generator.state == b._rng.bit_generator.state

    def test_zero_rate_scouts_to_infinity(self):
        gen = SyntheticTraffic("uniform", 4, flit_rate=0.0, seed=1)
        assert gen.next_injection_cycle(123) == math.inf

    def test_base_generator_reports_unsupported(self):
        from repro.traffic.base import TrafficGenerator

        class Plain(TrafficGenerator):
            def inject(self, cycle):
                return []

        assert Plain(4).next_injection_cycle(0) is None

    def test_null_traffic_never_injects(self):
        from repro.traffic.base import NullTraffic

        gen = NullTraffic(4)
        assert gen.next_injection_cycle(7) == math.inf
        gen.advance(1000)  # must be a no-op, not an error


class TestTieBreak:
    """Most-degraded selection on exactly tied readings: lowest index,
    everywhere (the sensor banks' fixed priority-encoder rule)."""

    def test_process_variation_most_degraded_prefers_lowest_key(self):
        pv = ProcessVariationModel()
        vths = {(0, 1, 1): 0.19, (0, 1, 0): 0.19, (0, 0, 1): 0.18}
        assert pv.most_degraded(vths) == (0, 1, 0)

    def test_runner_harvest_prefers_lowest_vc(self, monkeypatch):
        """End-to-end regression: with every initial Vth identical, the
        harvested md_vc (and every per-port md_at) must be VC 0 — the
        old harvest picked the *highest* tied index and disagreed with
        the network's Down_Up latch."""
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import run_scenario

        monkeypatch.setattr(
            ProcessVariationModel, "sample",
            lambda self, count: [self.mean_vth] * count,
        )
        scenario = ScenarioConfig(cycles=60, warmup=0, validate_every=0)
        result = run_scenario(scenario)
        assert result.md_vc == 0
        for router, port in result.port_initial_vths:
            assert result.md_at(router, port) == 0

    def test_sensor_bank_argmax_prefers_lowest_vc(self):
        from repro.nbti.sensor import SensorBank

        model = NBTIModel.calibrated()
        devices = [PMOSDevice(0.18, model) for _ in range(4)]
        bank = SensorBank(devices, sample_period=8)
        assert bank.most_degraded == 0
        assert bank.most_degraded_in(2, 2) == 2
        bank.sample(0)
        assert bank.most_degraded == 0


class TestValidateEveryReconciled:
    """Network.run is the single validation code path."""

    def test_healthy_run_counts_zero(self):
        net = build_small_network(flit_rate=0.1)
        assert net.run(200, validate_every=16) == 0

    def test_raises_on_first_violation_by_default(self, monkeypatch):
        import repro.noc.validation as validation

        net = build_small_network(flit_rate=0.1)
        monkeypatch.setattr(
            validation, "validate_network", lambda n: ["synthetic violation"]
        )
        with pytest.raises(RuntimeError, match="synthetic violation"):
            net.run(64, validate_every=16)

    def test_counts_all_violations_when_not_raising(self, monkeypatch):
        import repro.noc.validation as validation

        net = build_small_network(flit_rate=0.1)
        monkeypatch.setattr(
            validation, "validate_network", lambda n: ["synthetic violation"]
        )
        # 64 cycles / sweep every 16 = 4 sweeps, one finding each.
        assert net.run(64, validate_every=16, raise_on_violation=False) == 4

    def test_validation_path_never_fast_forwards(self):
        net = build_small_network(flit_rate=0.01)
        stepped = 0
        original = net.step

        def counting_step():
            nonlocal stepped
            stepped += 1
            original()

        net.step = counting_step
        net.run(500, validate_every=100)
        assert stepped == 500

    def test_rejects_negative_arguments(self):
        net = build_small_network()
        with pytest.raises(ValueError):
            net.run(-1)
        with pytest.raises(ValueError):
            net.run(10, validate_every=-1)


class TestRunEndFlush:
    """Counter reads after run()/accessors need no manual flush."""

    def test_duty_cycles_consistent_after_manual_stepping(self):
        net = build_small_network(policy="sensor-wise", flit_rate=0.1)
        for _ in range(137):
            net.step()
        duty = net.duty_cycles(0, "east")
        dev = net.device(0, "east", 0)
        assert dev.counter.total_cycles == 137
        assert len(duty) == net.config.total_vcs

    def test_run_books_every_cycle_exactly_once(self):
        net = build_small_network(policy="sensor-wise", flit_rate=0.02)
        net.run(1000)
        for device in net.devices.values():
            assert device.counter.total_cycles == 1000
