"""Tests for delay lines and round-robin arbitration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.link import Channel, DelayLine


class TestDelayLine:
    def test_latency_one(self):
        line = DelayLine(latency=1)
        line.send("a", cycle=5)
        assert line.pop_ready(5) == []
        assert line.pop_ready(6) == ["a"]
        assert line.pop_ready(7) == []

    def test_zero_latency_immediate(self):
        line = DelayLine(latency=0)
        line.send("a", cycle=5)
        assert line.pop_ready(5) == ["a"]

    def test_same_cycle_items_keep_send_order(self):
        line = DelayLine(latency=2)
        for item in ("a", "b", "c"):
            line.send(item, cycle=0)
        assert line.pop_ready(2) == ["a", "b", "c"]

    def test_late_pop_delivers_everything_due(self):
        line = DelayLine(latency=1)
        line.send("a", cycle=0)
        line.send("b", cycle=3)
        assert line.pop_ready(10) == ["a", "b"]

    def test_in_flight_count(self):
        line = DelayLine(latency=4)
        line.send("a", 0)
        line.send("b", 1)
        assert line.in_flight == 2
        line.pop_ready(4)
        assert line.in_flight == 1

    def test_peek_ready(self):
        line = DelayLine(latency=1)
        assert not line.peek_ready(0)
        line.send("a", 0)
        assert not line.peek_ready(0)
        assert line.peek_ready(1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            DelayLine(latency=-1)

    def test_channel_carries_name(self):
        ch = Channel("r0.data", latency=1)
        assert "r0.data" in repr(ch)

    @settings(max_examples=40, deadline=None)
    @given(
        latency=st.integers(min_value=0, max_value=5),
        sends=st.lists(st.integers(min_value=0, max_value=30), max_size=30),
    )
    def test_every_item_delivered_exactly_once(self, latency, sends):
        line = DelayLine(latency=latency)
        for i, cycle in enumerate(sorted(sends)):
            line.send(i, cycle)
        delivered = []
        for cycle in range(40):
            delivered.extend(line.pop_ready(cycle))
        assert sorted(delivered) == list(range(len(sends)))
        assert line.in_flight == 0


class TestRoundRobinArbiter:
    def test_rotates_through_requesters(self):
        arb = RoundRobinArbiter(3)
        grants = [arb.grant([True, True, True]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_skips_non_requesters(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([False, False, True, False]) == 2
        assert arb.grant([True, False, True, False]) == 0  # pointer at 3 wraps

    def test_no_request_no_grant(self):
        arb = RoundRobinArbiter(2)
        assert arb.grant([False, False]) is None

    def test_pointer_unchanged_on_no_grant(self):
        arb = RoundRobinArbiter(3)
        arb.grant([True, False, False])
        before = arb.pointer
        arb.grant([False, False, False])
        assert arb.pointer == before

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(3).grant([True])

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    def test_reset(self):
        arb = RoundRobinArbiter(3)
        arb.grant([True, True, True])
        arb.reset()
        assert arb.pointer == 0

    def test_starvation_freedom(self):
        """A persistent requester is granted within `size` arbitrations,
        whatever the other requesters do."""
        arb = RoundRobinArbiter(4)
        pattern = [[True, True, True, True]] * 100
        waits = {i: 0 for i in range(4)}
        for requests in pattern:
            g = arb.grant(requests)
            for i in range(4):
                if i == g:
                    waits[i] = 0
                else:
                    waits[i] += 1
                    assert waits[i] < 4

    @settings(max_examples=40, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    def test_grant_is_always_a_requester(self, size, data):
        arb = RoundRobinArbiter(size)
        for _ in range(20):
            requests = data.draw(st.lists(st.booleans(), min_size=size, max_size=size))
            g = arb.grant(requests)
            if any(requests):
                assert g is not None and requests[g]
            else:
                assert g is None

    def test_fairness_under_full_load(self):
        arb = RoundRobinArbiter(5)
        counts = {i: 0 for i in range(5)}
        for _ in range(100):
            counts[arb.grant([True] * 5)] += 1
        assert set(counts.values()) == {20}
