"""Tests for the ridge-regression surrogate bank (repro.dse.surrogate)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.dse.space import DesignSpace, Parameter
from repro.dse.surrogate import RidgeSurrogate, SurrogateBank, encode_genome
from repro.experiments.config import ScenarioConfig


def make_space():
    base = ScenarioConfig(num_nodes=2, cycles=400, warmup=100)
    return DesignSpace(
        parameters=(
            Parameter("buffer_depth", (2, 4, 6, 8)),
            Parameter("wake_latency", (1, 2, 3, 4)),
            Parameter.categorical("policy", ("rr-no-sensor", "sensor-wise")),
        ),
        base=base,
    )


def quadratic_target(space, genome):
    """A learnable degree-2 function of the encoded features."""
    x = encode_genome(space, genome)
    return 3.0 + 2.0 * x[0] - x[1] + 1.5 * x[0] * x[1] + 0.5 * x[2]


class TestEncoding:
    def test_numeric_scaled_categorical_one_hot(self):
        space = make_space()
        x = encode_genome(space, (3, 0, 1))
        assert x[0] == pytest.approx(1.0)   # buffer_depth at max level
        assert x[1] == pytest.approx(0.0)   # wake_latency at min level
        assert list(x[2:]) == [0.0, 1.0]    # policy one-hot
        assert x.shape == (4,)

    def test_single_level_numeric_encodes_zero(self):
        base = ScenarioConfig(num_nodes=2, cycles=400, warmup=100)
        space = DesignSpace((Parameter("buffer_depth", (4,)),), base=base)
        assert encode_genome(space, (0,))[0] == 0.0


class TestRidgeSurrogate:
    def test_learns_quadratic_exactly(self):
        space = make_space()
        genomes = list(space.enumerate_genomes())
        targets = [quadratic_target(space, g) for g in genomes]
        model = RidgeSurrogate(space, alpha=1e-8).fit(genomes, targets)
        assert model.cv_r2 > 0.99
        predictions = model.predict(genomes)
        assert np.allclose(predictions, targets, atol=1e-3)

    def test_noise_scores_poorly(self):
        space = make_space()
        genomes = list(space.enumerate_genomes())
        rng = random.Random(0)
        targets = [rng.gauss(0.0, 1.0) for _ in genomes]
        model = RidgeSurrogate(space).fit(genomes, targets)
        assert model.cv_r2 < 0.5

    def test_constant_target_never_reliable(self):
        space = make_space()
        genomes = list(space.enumerate_genomes())[:8]
        model = RidgeSurrogate(space).fit(genomes, [7.0] * len(genomes))
        assert model.cv_r2 == 0.0

    def test_too_few_samples_flagged(self):
        space = make_space()
        genomes = list(space.enumerate_genomes())[:2]
        model = RidgeSurrogate(space).fit(genomes, [1.0, 2.0])
        assert model.cv_r2 == float("-inf")

    def test_fit_deterministic(self):
        space = make_space()
        genomes = list(space.enumerate_genomes())
        targets = [quadratic_target(space, g) for g in genomes]
        a = RidgeSurrogate(space).fit(genomes, targets)
        b = RidgeSurrogate(space).fit(genomes, targets)
        assert np.array_equal(a.coefficients, b.coefficients)
        assert a.cv_r2 == b.cv_r2

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RidgeSurrogate(make_space()).predict([(0, 0, 0)])

    def test_length_mismatch_rejected(self):
        space = make_space()
        with pytest.raises(ValueError):
            RidgeSurrogate(space).fit([(0, 0, 0)], [1.0, 2.0])

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            RidgeSurrogate(make_space()).fit([], [])


class TestSurrogateBank:
    def test_reliability_gate_requires_every_objective(self):
        space = make_space()
        genomes = list(space.enumerate_genomes())
        rng = random.Random(1)
        rows = [
            (quadratic_target(space, g), rng.gauss(0.0, 1.0)) for g in genomes
        ]
        bank = SurrogateBank(space, ("good", "noise"), min_r2=0.5)
        bank.fit(genomes, rows)
        scores = bank.scores()
        assert scores["good"] > 0.9
        assert scores["noise"] < 0.5
        assert not bank.reliable

    def test_reliable_when_all_learnable(self):
        space = make_space()
        genomes = list(space.enumerate_genomes())
        rows = [
            (quadratic_target(space, g), -2.0 * quadratic_target(space, g))
            for g in genomes
        ]
        bank = SurrogateBank(space, ("a", "b"), min_r2=0.5)
        bank.fit(genomes, rows)
        assert bank.reliable

    def test_predict_preserves_order_and_shape(self):
        space = make_space()
        genomes = list(space.enumerate_genomes())
        rows = [(quadratic_target(space, g), 1.0 + g[0]) for g in genomes]
        bank = SurrogateBank(space, ("a", "b")).fit(genomes, rows)
        predicted = bank.predict(genomes[:5])
        assert len(predicted) == 5
        assert all(len(vector) == 2 for vector in predicted)
