"""Tests for the parallel execution layer (executors, cache, fallback).

The load-bearing property is bit-identical results: a scenario's
outcome is a pure function of ``(ScenarioConfig, iteration)``, so the
process-pool backend, the serial backend and the on-disk cache must all
return exactly the same measurements.
"""

from __future__ import annotations

import json
import pickle

import pytest

import repro.experiments.parallel as parallel
from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.experiments.config import REAL_TRAFFIC, ScenarioConfig
from repro.experiments.parallel import (
    Executor,
    ResultCache,
    cache_key,
    execute_units,
    make_executor,
)
from repro.experiments.runner import run_scenario
from repro.experiments.sweeps import run_injection_sweep
from repro.experiments.tables import run_real_table, run_synthetic_table

FAST = dict(cycles=800, warmup=200)


def small_units():
    base = ScenarioConfig(num_nodes=4, num_vcs=2, injection_rate=0.1, **FAST)
    return [
        (base.with_policy(p), 0)
        for p in ("baseline", "rr-no-sensor", "sensor-wise")
    ]


def result_fingerprint(result):
    return (result.duty_cycles, result.md_vc, result.net_stats, result.initial_vths)


class TestExecutorDeterminism:
    def test_parallel_matches_serial_exactly(self):
        units = small_units()
        serial = [run_scenario(s, i) for s, i in units]
        pooled = Executor(max_workers=2).map(units)
        assert [result_fingerprint(r) for r in pooled] == [
            result_fingerprint(r) for r in serial
        ]

    def test_results_in_unit_order(self):
        units = small_units()
        results = Executor(max_workers=2).map(units)
        assert [r.scenario.policy for r in results] == [s.policy for s, _ in units]

    def test_serial_backend_matches_plain_loop(self):
        units = small_units()
        assert [result_fingerprint(r) for r in Executor(max_workers=1).map(units)] == [
            result_fingerprint(run_scenario(s, i)) for s, i in units
        ]

    def test_synthetic_table_identical(self):
        kwargs = dict(num_vcs=2, arches=(4,), rates=(0.1, 0.2), **FAST)
        serial = run_synthetic_table(**kwargs)
        pooled = run_synthetic_table(**kwargs, executor=Executor(max_workers=2))
        assert [r.duty for r in serial.rows] == [r.duty for r in pooled.rows]
        assert [r.md_vc for r in serial.rows] == [r.md_vc for r in pooled.rows]
        assert serial.format() == pooled.format()

    def test_real_table_identical(self):
        kwargs = dict(
            num_vcs=2, iterations=2, arch_rows={4: ((0, "east"), (2, "east"))}, **FAST
        )
        serial = run_real_table(**kwargs)
        pooled = run_real_table(**kwargs, executor=Executor(max_workers=2))
        assert [(r.avg, r.std, r.md_vc) for r in serial.rows] == [
            (r.avg, r.std, r.md_vc) for r in pooled.rows
        ]

    def test_sweep_identical(self):
        base = ScenarioConfig(num_nodes=4, num_vcs=2, **FAST)
        serial = run_injection_sweep((0.1, 0.3), base=base)
        pooled = run_injection_sweep(
            (0.1, 0.3), base=base, executor=Executor(max_workers=2)
        )
        assert serial.format() == pooled.format()
        assert serial.gaps() == pooled.gaps()

    def test_executor_auto_workers(self):
        assert Executor().max_workers >= 1
        assert Executor(max_workers=0).max_workers >= 1
        with pytest.raises(ValueError):
            Executor(max_workers=-1)

    def test_scenario_errors_propagate(self):
        good = ScenarioConfig(num_nodes=4, num_vcs=2, **FAST)
        with pytest.raises(AttributeError):
            Executor(max_workers=2).map([(good, 0), (None, 0)])


class TestExecuteUnits:
    def test_none_executor_is_plain_serial(self):
        units = small_units()[:1]
        assert result_fingerprint(execute_units(units)[0]) == result_fingerprint(
            run_scenario(*units[0])
        )

    def test_with_executor_delegates(self):
        ex = Executor(max_workers=1)
        execute_units(small_units()[:2], ex)
        assert ex.stats.units_completed == 2


class TestResultCache:
    def test_second_run_hits_cache_with_identical_results(self, tmp_path):
        units = small_units()
        first = Executor(max_workers=1, cache=tmp_path / "cache").map(units)
        ex = Executor(max_workers=1, cache=tmp_path / "cache")
        second = ex.map(units)
        assert ex.stats.cache_hits == len(units)
        assert [result_fingerprint(r) for r in first] == [
            result_fingerprint(r) for r in second
        ]

    def test_cache_shared_between_serial_and_pool(self, tmp_path):
        units = small_units()
        Executor(max_workers=2, cache=tmp_path / "cache").map(units)
        ex = Executor(max_workers=1, cache=tmp_path / "cache")
        ex.map(units)
        assert ex.stats.cache_hits == len(units)

    def test_key_depends_on_scenario_and_iteration(self):
        a = ScenarioConfig(num_nodes=4, num_vcs=2, **FAST)
        assert cache_key(a, 0) == cache_key(a, 0)
        assert cache_key(a, 0) != cache_key(a, 1)
        assert cache_key(a, 0) != cache_key(a.with_policy("baseline"), 0)
        assert cache_key(a, 0) != cache_key(
            ScenarioConfig(num_nodes=4, num_vcs=2, cycles=801, warmup=200), 0
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = ScenarioConfig(num_nodes=4, num_vcs=2, **FAST)
        (tmp_path / f"{cache_key(scenario, 0)}.pkl").write_bytes(b"not a pickle")
        assert cache.get(scenario, 0) is None

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = ScenarioConfig(num_nodes=4, num_vcs=2, **FAST)
        result = run_scenario(scenario)
        cache.put(scenario, 0, result)
        assert len(cache) == 1
        assert result_fingerprint(cache.get(scenario, 0)) == result_fingerprint(result)


class TestFallback:
    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("spawn blocked")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", broken_pool)
        units = small_units()
        ex = Executor(max_workers=4)
        results = ex.map(units)
        assert ex.stats.fallbacks == 1
        assert [result_fingerprint(r) for r in results] == [
            result_fingerprint(run_scenario(s, i)) for s, i in units
        ]

    def test_unpicklable_unit_falls_back(self):
        # Classes defined in a test function can't be pickled by name.
        class LocalConfig(ScenarioConfig):
            pass

        scenario = LocalConfig(num_nodes=4, num_vcs=2, **FAST)
        with pytest.raises(Exception):
            pickle.dumps(scenario)
        ex = Executor(max_workers=2)
        results = ex.map([(scenario, 0), (scenario.with_policy("baseline"), 0)])
        assert ex.stats.fallbacks == 1
        assert len(results) == 2


class TestProgressAndStats:
    def test_progress_lines_and_summary(self):
        lines = []
        ex = Executor(max_workers=1, progress=lines.append)
        ex.map(small_units()[:2])
        assert len(lines) == 2
        assert "4core-inj0.10" in lines[0]
        summary = ex.summary()
        assert "2/2 scenarios" in summary
        assert "serial estimate" in summary

    def test_stats_accumulate_across_maps(self):
        ex = Executor(max_workers=1)
        ex.map(small_units()[:1])
        ex.map(small_units()[:1])
        assert ex.stats.units_completed == 2
        assert ex.stats.serial_seconds > 0.0
        assert ex.stats.wall_seconds > 0.0


class TestMakeExecutor:
    def test_default_is_none(self):
        assert make_executor(1) is None
        assert make_executor(None) is None

    def test_jobs_or_cache_build_executor(self, tmp_path):
        assert make_executor(4).max_workers == 4
        ex = make_executor(1, cache_dir=tmp_path / "c")
        assert ex is not None and ex.cache is not None


class TestCampaignParallel:
    def test_run_campaign_default_config_is_fresh(self):
        # Regression: the default used to be a shared mutable instance.
        import inspect

        signature = inspect.signature(run_campaign)
        assert signature.parameters["config"].default is None

    def test_campaign_json_byte_identical(self, tmp_path):
        config = CampaignConfig(
            cycles=600, warmup=100, iterations=2, include_real_traffic=False
        )
        run_campaign(config, json_dir=tmp_path / "serial")
        run_campaign(
            config, json_dir=tmp_path / "parallel", executor=Executor(max_workers=2)
        )
        for name in ("table2.json", "table3.json", "vth_saving.json"):
            serial_bytes = (tmp_path / "serial" / name).read_bytes()
            parallel_bytes = (tmp_path / "parallel" / name).read_bytes()
            assert serial_bytes == parallel_bytes, f"{name} differs"
            json.loads(serial_bytes)  # still valid JSON

    def test_campaign_real_traffic_parallel(self, tmp_path):
        config = CampaignConfig(cycles=400, warmup=100, iterations=2)
        result = run_campaign(config, executor=Executor(max_workers=2))
        assert result.table4 is not None
        assert result.execution_summary is not None

    def test_run_policies_executor_matches_serial(self):
        from repro.experiments.runner import run_policies

        base = ScenarioConfig(num_nodes=4, num_vcs=2, **FAST)
        serial = run_policies(base, ("baseline", "sensor-wise"))
        pooled = run_policies(
            base, ("baseline", "sensor-wise"), executor=Executor(max_workers=2)
        )
        assert {p: result_fingerprint(r) for p, r in serial.items()} == {
            p: result_fingerprint(r) for p, r in pooled.items()
        }


class TestRealTrafficIterationsParallel:
    def test_iteration_is_part_of_the_unit(self):
        base = ScenarioConfig(num_nodes=4, num_vcs=2, traffic=REAL_TRAFFIC, **FAST)
        results = Executor(max_workers=2).map([(base, 0), (base, 1)])
        assert result_fingerprint(results[0]) == result_fingerprint(run_scenario(base, 0))
        assert result_fingerprint(results[1]) == result_fingerprint(run_scenario(base, 1))
        # PV frozen across iterations, traffic not.
        assert results[0].initial_vths == results[1].initial_vths
