"""Cycle-exact pipeline timing tests.

The router implements the paper's 3-stage pipeline — BW+RC / VA+SA /
ST+LT — which, with single-cycle links, costs exactly 3 cycles per hop:
a flit is written+routed in its arrival cycle, allocated and switched in
the following two, and its switch cycle doubles as link traversal.
These tests pin the schedule down cycle by cycle so any future change to
phase ordering is caught.
"""

from __future__ import annotations

import pytest

from repro.noc.flit import Packet
from tests.conftest import build_small_network


def occupancy_trace(net, inject_cycle, packet_len, src=0, dst=1, cycles=24):
    """Per-cycle (ni_pending, occ[router0], occ[router1], ejected)."""
    ni = net.interfaces[src]
    trace = []
    for cycle in range(cycles):
        if cycle == inject_cycle:
            ni.enqueue(net.packet_factory.create(src, dst, packet_len, cycle))
        net.step()
        trace.append(
            (
                ni.pending_flits,
                net.routers[0].occupancy(),
                net.routers[1].occupancy(),
                net.interfaces[dst].flits_ejected,
            )
        )
    return trace


class TestSingleFlitSchedule:
    """One 1-flit packet, 0 -> 1 (one intermediate hop on a 2x2 mesh)."""

    @pytest.fixture(scope="class")
    def trace(self):
        net = build_small_network(policy="baseline", flit_rate=0.0)
        return net, occupancy_trace(net, inject_cycle=5, packet_len=1)

    def test_end_to_end_latency_is_eight_cycles(self, trace):
        net, _ = trace
        record = net.interfaces[1].ejection_records[0]
        assert record.injected_cycle == 5
        assert record.ejected_cycle == 13
        assert record.latency == 8
        assert record.hops == 2  # source router + destination router

    def test_cycle_by_cycle_positions(self, trace):
        _, t = trace
        # cycle 5: allocated at the NI, flit queued (NI VA).
        assert t[5] == (1, 0, 0, 0)
        # cycle 6: on the NI->router0 link.
        assert t[6] == (0, 0, 0, 0)
        # cycles 7-8: in router 0 (BW+RC at 7, VA at 8).
        assert t[7] == (0, 1, 0, 0)
        assert t[8] == (0, 1, 0, 0)
        # cycle 9: SA+ST at router 0 / on the link.
        assert t[9] == (0, 0, 0, 0)
        # cycles 10-11: in router 1.
        assert t[10] == (0, 0, 1, 0)
        assert t[11] == (0, 0, 1, 0)
        # cycle 12: on the ejection link.
        assert t[12] == (0, 0, 0, 0)
        # cycle 13: ejected.
        assert t[13] == (0, 0, 0, 1)


class TestMultiFlitSerialization:
    def test_flits_pipeline_back_to_back(self):
        """A 4-flit packet ejects one flit per cycle once the head
        arrives: tail latency = head latency + 3."""
        net = build_small_network(policy="baseline", flit_rate=0.0)
        occupancy_trace(net, inject_cycle=5, packet_len=4, cycles=26)
        record = net.interfaces[1].ejection_records[0]
        assert record.latency == 8 + 3  # head at 13, tail 3 cycles later
        assert record.length == 4

    def test_two_hop_path_adds_three_cycles(self):
        """0 -> 3 takes two router-to-router hops (east then south)."""
        net = build_small_network(policy="baseline", flit_rate=0.0)
        ni = net.interfaces[0]
        ni.enqueue(net.packet_factory.create(0, 3, 1, 0))
        # step from cycle 0 so the injection is picked up at cycle 0
        for _ in range(20):
            net.step()
        record = net.interfaces[3].ejection_records[0]
        assert record.latency == 11  # 8 + one extra hop (3 cycles)
        assert record.hops == 3


class TestGatingWakeSchedule:
    def test_gated_port_adds_wake_round_trip(self):
        """Under sensor-wise with no prior traffic every VC is gated; a
        new packet pays the policy/wake round-trip before VA."""
        lazy = build_small_network(policy="sensor-wise", flit_rate=0.0)
        eager = build_small_network(policy="baseline", flit_rate=0.0)
        for net in (lazy, eager):
            net.run(50)  # let policies settle (everything gated for lazy)
            net.interfaces[0].enqueue(net.packet_factory.create(0, 1, 1, net.cycle))
            for _ in range(30):
                net.step()
        lat_lazy = lazy.interfaces[1].ejection_records[0].latency
        lat_eager = eager.interfaces[1].ejection_records[0].latency
        assert lat_eager == 8
        # Wake round-trips: +2 cycles (link + wake) at the NI, and the
        # downstream ports wake while the flit is in flight.
        assert 9 <= lat_lazy <= 16

    def test_zero_wake_latency_narrows_the_penalty(self):
        slow = build_small_network(policy="sensor-wise", flit_rate=0.0, wake_latency=3)
        fast = build_small_network(policy="sensor-wise", flit_rate=0.0, wake_latency=0)
        for net in (slow, fast):
            net.run(50)
            net.interfaces[0].enqueue(net.packet_factory.create(0, 1, 1, net.cycle))
            for _ in range(40):
                net.step()
        lat_slow = slow.interfaces[1].ejection_records[0].latency
        lat_fast = fast.interfaces[1].ejection_records[0].latency
        assert lat_fast < lat_slow


class TestCreditStall:
    def test_send_stalls_without_credits(self):
        """With 1-deep buffers a 2-flit packet must stall between flits:
        the second flit waits for the first's credit round trip."""
        net = build_small_network(
            policy="baseline", flit_rate=0.0, buffer_depth=1, packet_length=2,
        )
        net.interfaces[0].enqueue(net.packet_factory.create(0, 1, 2, 0))
        for _ in range(40):
            net.step()
        record = net.interfaces[1].ejection_records[0]
        assert record.length == 2
        # Slower than the back-to-back case (9 cycles at depth 4: the
        # second flit waits for the first's credit round trip).
        assert record.latency > 9
