"""Tests for the multi-objective machinery (repro.dse.pareto)."""

from __future__ import annotations

import pytest

from repro.dse.pareto import (
    crowding_distance,
    dominates,
    hypervolume,
    knee_point,
    non_dominated_front,
    non_dominated_sort,
    normalized,
    reference_point,
)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (2, 2))
        assert not dominates((2, 2), (1, 2))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_incomparable(self):
        assert not dominates((1, 3), (3, 1))
        assert not dominates((3, 1), (1, 3))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))


class TestFronts:
    def test_simple_front(self):
        points = [(1, 3), (2, 2), (3, 1), (3, 3), (4, 4)]
        assert non_dominated_front(points) == [0, 1, 2]

    def test_duplicates_all_kept(self):
        points = [(1, 1), (1, 1), (2, 2)]
        assert non_dominated_front(points) == [0, 1]

    def test_sort_layers(self):
        points = [(1, 3), (3, 1), (2, 4), (4, 2), (5, 5)]
        fronts = non_dominated_sort(points)
        assert fronts[0] == [0, 1]
        assert fronts[1] == [2, 3]
        assert fronts[2] == [4]
        # Every index appears exactly once.
        flat = sorted(i for front in fronts for i in front)
        assert flat == list(range(len(points)))

    def test_sort_empty(self):
        assert non_dominated_sort([]) == []


class TestCrowding:
    def test_boundaries_infinite(self):
        points = [(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)]
        distance = crowding_distance(points)
        assert distance[0] == float("inf")
        assert distance[2] == float("inf")
        assert distance[1] == pytest.approx(2.0)

    def test_degenerate_objective_contributes_zero(self):
        points = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]
        distance = crowding_distance(points)
        assert distance[1] == pytest.approx(1.0)  # only the first axis counts

    def test_empty(self):
        assert crowding_distance([]) == []


class TestHypervolume:
    def test_known_2d_value(self):
        points = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        assert hypervolume(points, (4.0, 4.0)) == pytest.approx(6.0)

    def test_single_point(self):
        assert hypervolume([(1.0, 1.0)], (3.0, 4.0)) == pytest.approx(6.0)

    def test_point_beyond_reference_ignored(self):
        points = [(1.0, 1.0), (5.0, 0.5)]
        assert hypervolume(points, (3.0, 3.0)) == pytest.approx(4.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume([(1.0, 1.0)], (3.0, 3.0))
        with_dominated = hypervolume([(1.0, 1.0), (2.0, 2.0)], (3.0, 3.0))
        assert with_dominated == pytest.approx(base)

    def test_3d(self):
        # Two disjoint-ish boxes against (2,2,2): unit cube at origin
        # plus the sliver (1..2)x(0..2)x(0..1) the second point adds.
        points = [(1.0, 1.0, 1.0), (0.0, 0.0, 0.0)]
        assert hypervolume(points, (2.0, 2.0, 2.0)) == pytest.approx(8.0)

    def test_empty(self):
        assert hypervolume([], (1.0, 1.0)) == 0.0


class TestKneeAndNormalization:
    def test_normalized_unit_box(self):
        points = [(0.0, 10.0), (5.0, 5.0), (10.0, 0.0)]
        scaled = normalized(points)
        assert scaled[0] == (0.0, 1.0)
        assert scaled[1] == (0.5, 0.5)
        assert scaled[2] == (1.0, 0.0)

    def test_knee_prefers_balanced_point(self):
        # The middle point is closest to the (0,0) ideal after scaling.
        points = [(0.0, 10.0), (2.0, 2.0), (10.0, 0.0)]
        assert knee_point(points) == 1

    def test_knee_tie_breaks_low_index(self):
        points = [(0.0, 1.0), (1.0, 0.0)]
        assert knee_point(points) == 0

    def test_knee_empty(self):
        with pytest.raises(ValueError):
            knee_point([])

    def test_reference_point_strictly_worse(self):
        points = [(1.0, 3.0), (2.0, 1.0)]
        reference = reference_point(points)
        for p in points:
            assert all(x < r for x, r in zip(p, reference))

    def test_reference_point_degenerate_axis(self):
        reference = reference_point([(1.0, 5.0), (2.0, 5.0)])
        assert reference[1] > 5.0
