"""Tests for the explicit stress/recovery (short-term) NBTI integrator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nbti.constants import SECONDS_PER_YEAR
from repro.nbti.model import NBTIModel
from repro.nbti.shortterm import ShortTermNBTI, compare_with_long_term

YEAR = SECONDS_PER_YEAR


@pytest.fixture(scope="module")
def short():
    return ShortTermNBTI(NBTIModel.calibrated())


class TestStressPhase:
    def test_pure_stress_matches_long_term_at_anchor(self, short):
        """By construction: full duty, 3-year horizon."""
        shift = short.stress(0.0, 3 * YEAR)
        assert shift == pytest.approx(
            short.model.delta_vth(1.0, 3 * YEAR), rel=1e-9
        )

    def test_chunked_stress_composes_exactly(self, short):
        """Equivalent-time composition: 10 chunks == one long phase."""
        one_shot = short.stress(0.0, 1 * YEAR)
        chunked = 0.0
        for _ in range(10):
            chunked = short.stress(chunked, YEAR / 10)
        assert chunked == pytest.approx(one_shot, rel=1e-9)

    def test_stress_grows_sublinearly(self, short):
        s1 = short.stress(0.0, 1 * YEAR)
        s4 = short.stress(0.0, 4 * YEAR)
        assert s1 < s4 < 4 * s1  # t^(1/6) shape

    def test_zero_duration_is_identity(self, short):
        assert short.stress(0.010, 0.0) == 0.010

    def test_validation(self, short):
        with pytest.raises(ValueError):
            short.stress(-0.01, 1.0)
        with pytest.raises(ValueError):
            short.stress(0.0, -1.0)
        with pytest.raises(ValueError):
            short.equivalent_stress_time(-0.1)


class TestRecoveryPhase:
    def test_recovery_reduces_shift(self, short):
        shift = short.stress(0.0, YEAR)
        recovered = short.recover(shift, YEAR / 10, total_time_s=1.1 * YEAR)
        assert 0.0 <= recovered < shift

    def test_longer_recovery_anneals_more(self, short):
        shift = short.stress(0.0, YEAR)
        brief = short.recover(shift, YEAR / 100, total_time_s=2 * YEAR)
        long = short.recover(shift, YEAR, total_time_s=2 * YEAR)
        assert long < brief

    def test_old_damage_is_harder_to_anneal(self, short):
        shift = 0.020
        young = short.recover(shift, YEAR / 10, total_time_s=YEAR)
        old = short.recover(shift, YEAR / 10, total_time_s=20 * YEAR)
        assert old > young  # less of it recovers

    def test_recovery_never_goes_negative(self, short):
        assert short.recover(1e-6, 100 * YEAR, total_time_s=101 * YEAR) >= 0.0

    def test_zero_cases(self, short):
        assert short.recover(0.0, YEAR, total_time_s=YEAR) == 0.0
        assert short.recover(0.01, 0.0, total_time_s=YEAR) == 0.01

    def test_validation(self, short):
        with pytest.raises(ValueError):
            short.recover(-0.01, 1.0, 2.0)
        with pytest.raises(ValueError):
            short.recover(0.01, -1.0, 2.0)
        with pytest.raises(ValueError):
            short.recover(0.01, 1.0, 0.0)


class TestDutySimulation:
    def test_monotone_in_duty(self, short):
        shifts = [
            short.simulate_duty(alpha, YEAR / 100, YEAR)
            for alpha in (0.1, 0.5, 0.9, 1.0)
        ]
        assert shifts == sorted(shifts)

    def test_full_duty_equals_pure_stress(self, short):
        assert short.simulate_duty(1.0, YEAR / 50, YEAR) == pytest.approx(
            short.stress(0.0, YEAR), rel=1e-6
        )

    def test_agrees_with_long_term_within_small_factor(self, short):
        """The closed form and the integrator describe the same physics:
        same order of magnitude across the duty range."""
        for alpha in (0.25, 0.5, 0.75):
            s, l = compare_with_long_term(short.model, alpha, 3 * YEAR)
            assert 0.2 < s / l < 2.0

    def test_fine_alternation_recovers_more(self, short):
        """The constant tunneling term of the recovery front applies per
        window, so finely chopped recovery anneals more than one
        consolidated window of equal total recovery time."""
        fine = short.simulate_duty(0.5, 3 * YEAR / 1000, 3 * YEAR)
        coarse = short.simulate_duty(0.5, 3 * YEAR / 10, 3 * YEAR)
        assert fine < coarse

    def test_trajectory_checkpoints(self, short):
        traj = short.trajectory(0.5, YEAR / 100, [YEAR, 2 * YEAR, 3 * YEAR])
        times = [t for t, _ in traj]
        shifts = [s for _, s in traj]
        assert times == [YEAR, 2 * YEAR, 3 * YEAR]
        assert shifts == sorted(shifts)

    def test_validation(self, short):
        with pytest.raises(ValueError):
            short.simulate_duty(1.5, 1.0, 2.0)
        with pytest.raises(ValueError):
            short.simulate_duty(0.5, 0.0, 2.0)
        with pytest.raises(ValueError):
            short.simulate_duty(0.5, 1.0, 0.0)

    @settings(max_examples=15, deadline=None)
    @given(alpha=st.floats(min_value=0.05, max_value=1.0))
    def test_shift_positive_for_any_duty(self, alpha):
        short = ShortTermNBTI(NBTIModel.calibrated())
        assert short.simulate_duty(alpha, YEAR / 20, YEAR) > 0.0
