"""Tests for the network interface (injection/ejection endpoint)."""

from __future__ import annotations

import pytest

from repro.core.policies import BaselinePolicy, SensorWisePolicy
from repro.noc.buffer import VCBuffer
from repro.noc.flit import Flit, FlitType, Packet
from repro.noc.input_unit import InputUnit
from repro.noc.interface import NetworkInterface
from repro.noc.link import Channel
from repro.noc.output_unit import UpstreamPort
from repro.noc.topology import LOCAL


def make_ni(node_id=0, num_vcs=2, depth=4, policy=None):
    policy = policy if policy is not None else BaselinePolicy()
    data = Channel("inj.data", 1)
    ctrl = Channel("inj.ctrl", 1)
    injection = UpstreamPort(num_vcs, depth, policy, data, ctrl)
    eject_buffers = [VCBuffer(depth, track_nbti=False) for _ in range(num_vcs)]
    ejection = InputUnit(eject_buffers, Channel("ej.credit", 1), lambda dst: LOCAL)
    return NetworkInterface(node_id, injection, ejection), data


class TestInjection:
    def test_enqueue_validates_source(self):
        ni, _ = make_ni(node_id=1)
        with pytest.raises(ValueError):
            ni.enqueue(Packet(0, src=0, dst=1, length=2, injected_cycle=0))

    def test_new_traffic_flag(self):
        ni, _ = make_ni()
        assert not ni.has_new_traffic
        ni.enqueue(Packet(0, src=0, dst=1, length=2, injected_cycle=0))
        assert ni.has_new_traffic

    def test_va_allocates_one_packet_per_cycle(self):
        ni, _ = make_ni()
        for pid in range(3):
            ni.enqueue(Packet(pid, src=0, dst=1, length=2, injected_cycle=0))
        ni.phase_va(cycle=0)
        assert ni.packets_injected == 1
        assert len(ni.source_queue) == 2

    def test_send_one_flit_per_cycle_after_allocation(self):
        ni, data = make_ni()
        ni.enqueue(Packet(0, src=0, dst=1, length=3, injected_cycle=0))
        ni.phase_va(cycle=0)
        ni.phase_send(cycle=0)  # flits ready at cycle 1, nothing sent yet
        assert ni.flits_injected == 0
        for cycle in (1, 2, 3):
            ni.phase_send(cycle)
        assert ni.flits_injected == 3
        assert data.in_flight == 3
        assert ni.pending_flits == 0

    def test_pending_packets_counts_queue_and_inflight(self):
        ni, _ = make_ni()
        ni.enqueue(Packet(0, src=0, dst=1, length=2, injected_cycle=0))
        ni.enqueue(Packet(1, src=0, dst=1, length=2, injected_cycle=0))
        assert ni.pending_packets == 2
        ni.phase_va(cycle=0)
        assert ni.pending_packets == 2  # one queued + one allocated

    def test_va_respects_gated_vcs(self):
        ni, _ = make_ni(policy=SensorWisePolicy())
        # No traffic yet -> policy gates everything on its first run.
        ni.phase_policy(cycle=0)
        ni.enqueue(Packet(0, src=0, dst=1, length=1, injected_cycle=1))
        ni.phase_va(cycle=1)
        assert ni.packets_injected == 0  # all VCs gated, none allocatable
        # Policy sees traffic, wakes one VC (available at 1+1+1=3).
        ni.phase_policy(cycle=1)
        ni.phase_va(cycle=2)
        assert ni.packets_injected == 0
        ni.phase_va(cycle=3)
        assert ni.packets_injected == 1


class TestEjection:
    def push_packet(self, ni, length=2, cycle=0, pid=0):
        flits = Packet(pid, src=1, dst=ni.node_id, length=length,
                       injected_cycle=0).flits()
        for i, flit in enumerate(flits):
            ni.ejection_unit.receive_flit(0, flit, cycle + i)
        return flits

    def test_eject_records_latency(self):
        ni, _ = make_ni()
        self.push_packet(ni, length=2)
        ni.phase_eject(cycle=9)
        assert ni.packets_ejected == 1
        assert ni.flits_ejected == 2
        record = ni.ejection_records[0]
        assert record.latency == 9
        assert record.length == 2

    def test_misrouted_flit_detected(self):
        ni, _ = make_ni(node_id=0)
        bad = Flit(7, 0, FlitType.HEAD_TAIL, 1, 3, 0)  # dst=3 != 0
        ni.ejection_unit.receive_flit(0, bad, 0)
        with pytest.raises(RuntimeError):
            ni.phase_eject(cycle=1)

    def test_partial_packet_not_counted(self):
        ni, _ = make_ni()
        head = Flit(0, 0, FlitType.HEAD, 1, 0, 0)
        ni.ejection_unit.receive_flit(0, head, 0)
        ni.phase_eject(cycle=1)
        assert ni.flits_ejected == 1
        assert ni.packets_ejected == 0

    def test_reset_stats(self):
        ni, _ = make_ni()
        self.push_packet(ni)
        ni.phase_eject(cycle=5)
        ni.reset_stats()
        assert ni.packets_ejected == 0
        assert ni.ejection_records == []
