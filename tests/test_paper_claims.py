"""Integration tests of the paper's qualitative claims on small runs.

These check the *shape* of the results (orderings, signs, stability) on
reduced simulations; the benchmarks regenerate the full tables.  Module-
scoped fixtures share simulation results across assertions.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import REAL_TRAFFIC, ScenarioConfig
from repro.experiments.runner import run_policies, run_scenario
from repro.experiments.tables import run_cooperation_gain, run_vth_saving
from repro.stats.summary import std

CYCLES = dict(cycles=6000, warmup=1000)
ALL4 = ("baseline", "rr-no-sensor", "sensor-wise-no-traffic", "sensor-wise")


@pytest.fixture(scope="module")
def results_2vc():
    base = ScenarioConfig(num_nodes=4, num_vcs=2, injection_rate=0.1, **CYCLES)
    return run_policies(base, ALL4)


@pytest.fixture(scope="module")
def results_4vc():
    base = ScenarioConfig(num_nodes=4, num_vcs=4, injection_rate=0.1, **CYCLES)
    return run_policies(base, ALL4)


class TestBaselineClaim:
    """A non-NBTI-aware NoC keeps every buffer at 100 % stress."""

    def test_baseline_duty_is_100(self, results_2vc, results_4vc):
        for results in (results_2vc, results_4vc):
            assert results["baseline"].duty_cycles == pytest.approx(
                [100.0] * len(results["baseline"].duty_cycles)
            )


class TestRoundRobinClaim:
    """rr-no-sensor spreads stress evenly: it cannot target the MD VC."""

    def test_duty_roughly_uniform_across_vcs(self, results_4vc):
        duties = results_4vc["rr-no-sensor"].duty_cycles
        assert max(duties) - min(duties) < 6.0  # percentage points

    def test_rr_still_recovers_a_lot_vs_baseline(self, results_4vc):
        assert max(results_4vc["rr-no-sensor"].duty_cycles) < 50.0


class TestSensorWiseNoTrafficClaim:
    """Without traffic info, one idle VC is always awake: the survivor
    pays ~100 % duty while the most degraded VC recovers."""

    def test_one_vc_pinned_high(self, results_4vc):
        duties = results_4vc["sensor-wise-no-traffic"].duty_cycles
        assert sum(d > 90.0 for d in duties) == 1

    def test_md_vc_recovers(self, results_4vc):
        result = results_4vc["sensor-wise-no-traffic"]
        assert result.duty_cycles[result.md_vc] < 10.0


class TestSensorWiseClaims:
    """The proposed policy: lowest stress on the most-degraded VC, and a
    positive Gap against rr-no-sensor everywhere."""

    @pytest.mark.parametrize("fixture", ["results_2vc", "results_4vc"])
    def test_md_duty_is_the_minimum_across_policies(self, fixture, request):
        results = request.getfixturevalue(fixture)
        md = results["sensor-wise"].md_vc
        sw = results["sensor-wise"].duty_cycles[md]
        for other in ("baseline", "rr-no-sensor", "sensor-wise-no-traffic"):
            assert sw <= results[other].duty_cycles[md] + 1e-9

    @pytest.mark.parametrize("fixture", ["results_2vc", "results_4vc"])
    def test_gap_positive(self, fixture, request):
        results = request.getfixturevalue(fixture)
        md = results["sensor-wise"].md_vc
        gap = (
            results["rr-no-sensor"].duty_cycles[md]
            - results["sensor-wise"].duty_cycles[md]
        )
        assert gap > 0.0

    def test_md_vc_consistent_across_policies(self, results_4vc):
        mds = {r.md_vc for r in results_4vc.values()}
        assert len(mds) == 1  # frozen PV sample -> same MD everywhere

    def test_more_vcs_better_md_control(self, results_2vc, results_4vc):
        """Paper: the sensor-wise advantage grows with the VC count."""
        md2 = results_2vc["sensor-wise"].md_vc
        md4 = results_4vc["sensor-wise"].md_vc
        assert (
            results_4vc["sensor-wise"].duty_cycles[md4]
            <= results_2vc["sensor-wise"].duty_cycles[md2] + 1e-9
        )


class TestTrafficInformationClaim:
    """Cooperation (upstream traffic information) lowers MD stress."""

    def test_cooperation_gain_positive(self):
        report = run_cooperation_gain(
            ScenarioConfig(num_nodes=4, num_vcs=2, injection_rate=0.1, **CYCLES)
        )
        assert report.gain > 0.0

    def test_gain_visible_on_all_vcs_at_low_load(self, results_4vc):
        """Traffic info reduces stress on every VC, not only the MD one
        (paper Sec. IV-B first observation)."""
        sw = results_4vc["sensor-wise"].duty_cycles
        nt = results_4vc["sensor-wise-no-traffic"].duty_cycles
        assert sum(sw) < sum(nt)


class TestVthSavingClaim:
    """Net Vth saving vs the baseline NoC (paper: up to 54.2 %)."""

    def test_savings_ordering(self):
        scenario = ScenarioConfig(num_nodes=4, num_vcs=4, injection_rate=0.1, **CYCLES)
        report = run_vth_saving(scenario)
        s = {row.policy: row.saving_vs_baseline for row in report.rows}
        assert s["baseline"] == pytest.approx(0.0)
        # A fully recovered MD VC (0 % duty) yields a saving of exactly 1.
        assert 0.0 < s["rr-no-sensor"] < s["sensor-wise"] <= 1.0

    def test_headline_magnitude_reachable(self):
        """At low load with 4 VCs the saving reaches the paper's ~54 %
        scale (sub-linear in duty cycle: 1 % duty -> ~54 % saving)."""
        scenario = ScenarioConfig(num_nodes=4, num_vcs=4, injection_rate=0.1, **CYCLES)
        report = run_vth_saving(scenario)
        assert report.saving_of("sensor-wise") > 0.45


class TestRotationPeriodHazard:
    """A rotation period at or below the control-link + wake latency
    live-locks the NoC: the round-robin candidate is re-gated before it
    ever becomes allocatable, so VC allocation starves network-wide.
    (A finding of this reproduction; the paper leaves the period
    unspecified.)"""

    def _run(self, rotation_period):
        from repro.core.policies import make_policy_factory
        from repro.noc.config import NoCConfig
        from repro.noc.network import Network
        from repro.traffic.synthetic import SyntheticTraffic

        cfg = NoCConfig(num_nodes=4, num_vcs=2)
        traffic = SyntheticTraffic("uniform", 4, flit_rate=0.2,
                                   packet_length=4, seed=3)
        net = Network(
            cfg,
            make_policy_factory("rr-no-sensor", rotation_period=rotation_period),
            traffic,
        )
        net.run(1500)
        return net.stats()

    def test_too_fast_rotation_livelocks(self):
        assert self._run(rotation_period=1).packets_ejected == 0

    def test_rotation_beyond_latency_flows(self):
        assert self._run(rotation_period=4).packets_ejected > 100


class TestRealTrafficStability:
    """Paper Table IV: sensor-wise is *stable* — the std of the MD VC's
    duty cycle across benchmark mixes is smaller than rr-no-sensor's."""

    @pytest.fixture(scope="class")
    def iteration_duties(self):
        base = ScenarioConfig(
            num_nodes=4, num_vcs=2, traffic=REAL_TRAFFIC, cycles=4000, warmup=500
        )
        duties = {"rr-no-sensor": [], "sensor-wise": []}
        md = None
        for iteration in range(5):
            for policy in duties:
                result = run_scenario(base.with_policy(policy), iteration=iteration)
                md = result.md_vc
                duties[policy].append(result.duty_cycles[md])
        return duties

    def test_positive_average_gap(self, iteration_duties):
        avg_rr = sum(iteration_duties["rr-no-sensor"]) / 5
        avg_sw = sum(iteration_duties["sensor-wise"]) / 5
        assert avg_sw < avg_rr

    def test_sensor_wise_std_not_worse(self, iteration_duties):
        assert std(iteration_duties["sensor-wise"]) <= std(
            iteration_duties["rr-no-sensor"]
        ) + 1.0
