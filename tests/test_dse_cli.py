"""Tests for the ``repro-noc dse`` command group."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

MICRO = [
    "--nodes", "2", "--cycles", "300", "--warmup", "100",
]
MICRO_SEARCH = MICRO + [
    "--population", "4", "--generations", "2", "--surrogate-min-samples", "4",
]


class TestParser:
    def test_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["dse", "screen"]).dse_command == "screen"
        args = parser.parse_args(
            ["dse", "search", "--population", "6", "--param", "buffer_depth=2,4"]
        )
        assert args.dse_command == "search"
        assert args.population == 6
        assert args.param == ["buffer_depth=2,4"]
        assert parser.parse_args(["dse", "report", "r.json"]).json == "r.json"

    def test_dse_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse"])


class TestScreen:
    def test_screen_prints_ranking_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "effects.json"
        code = main(
            ["dse", "screen", *MICRO, "--param", "policy=rr-no-sensor,sensor-wise",
             "--param", "wake_latency=1,4", "--json", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "Factorial screening" in printed
        assert "policy" in printed
        blob = json.loads(out.read_text())
        assert blob["runs"] == 4
        assert set(blob["main_effects"]) == {"md_duty", "p95_latency"}

    def test_unknown_objective_exits_2(self, capsys):
        assert main(["dse", "screen", *MICRO, "--objectives", "bogus"]) == 2

    def test_bad_param_spec_exits_2(self):
        assert main(["dse", "screen", *MICRO, "--param", "bogus=1,2"]) == 2


class TestSearch:
    def test_search_writes_deterministic_report(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for out in (first, second):
            code = main(
                ["dse", "search", *MICRO_SEARCH, "--seed", "5",
                 "--out", str(out), "--csv", str(out.with_suffix(".csv"))]
            )
            assert code == 0
        assert first.read_bytes() == second.read_bytes()  # byte-identical
        blob = json.loads(first.read_text())
        assert blob["front"]
        assert blob["evaluated"] > 0
        printed = capsys.readouterr().out
        assert "Pareto front" in printed
        assert first.with_suffix(".csv").read_text().startswith("buffer_depth,")

    def test_search_with_custom_space_and_objectives(self, tmp_path):
        out = tmp_path / "r.json"
        code = main(
            ["dse", "search", *MICRO_SEARCH,
             "--param", "buffer_depth=2,4,8", "--param", "wake_latency=1,2",
             "--objectives", "md_duty,area_overhead", "--out", str(out)]
        )
        assert code == 0
        blob = json.loads(out.read_text())
        assert blob["objectives"] == ["md_duty", "area_overhead"]
        for member in blob["front"]:
            assert set(member["values"]) == {"buffer_depth", "wake_latency"}

    def test_search_checkpoint_then_cache_verify(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        out = tmp_path / "r.json"
        code = main(
            ["dse", "search", *MICRO_SEARCH,
             "--checkpoint-dir", str(ckpt), "--out", str(out)]
        )
        assert code == 0
        state = json.loads((ckpt / "campaign.state.json").read_text())
        assert state["status"] == "complete"
        ga_state = json.loads((ckpt / "ga.state.json").read_text())
        assert ga_state["status"] == "complete"

        code = main(["cache", "verify", "--checkpoint-dir", str(ckpt)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "ga.state.json OK" in printed

    def test_cache_verify_flags_corrupt_ga_state(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main(
            ["dse", "search", *MICRO_SEARCH, "--checkpoint-dir", str(ckpt),
             "--out", str(tmp_path / "r.json")]
        )
        assert code == 0
        (ckpt / "ga.state.json").write_text("{torn mid-write")
        capsys.readouterr()
        code = main(["cache", "verify", "--checkpoint-dir", str(ckpt)])
        assert code == 1
        assert "unreadable" in capsys.readouterr().out

    def test_search_resume_of_complete_run_is_idempotent(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        golden = tmp_path / "golden.json"
        assert main(
            ["dse", "search", *MICRO_SEARCH,
             "--checkpoint-dir", str(ckpt), "--out", str(golden)]
        ) == 0
        resumed = tmp_path / "resumed.json"
        assert main(
            ["dse", "search", "--resume", str(ckpt), "--out", str(resumed)]
        ) == 0
        assert resumed.read_bytes() == golden.read_bytes()

    def test_resume_restores_original_space_despite_flags(self, tmp_path):
        """--resume re-derives the space from the journal header, so
        conflicting retyped flags are ignored (same rule as campaigns)."""
        ckpt = tmp_path / "ckpt"
        golden = tmp_path / "golden.json"
        assert main(
            ["dse", "search", *MICRO_SEARCH, "--param", "buffer_depth=2,4",
             "--checkpoint-dir", str(ckpt), "--out", str(golden)]
        ) == 0
        resumed = tmp_path / "resumed.json"
        assert main(
            ["dse", "search", "--resume", str(ckpt), "--param", "wake_latency=1,4",
             "--generations", "9", "--out", str(resumed)]
        ) == 0
        assert resumed.read_bytes() == golden.read_bytes()

    def test_screen_checkpoint_not_resumable_as_search(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        assert main(
            ["dse", "screen", *MICRO, "--checkpoint-dir", str(ckpt)]
        ) == 0
        assert main(["dse", "search", "--resume", str(ckpt)]) == 2


class TestReportCommand:
    def test_report_rerenders_saved_front(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        assert main(
            ["dse", "search", *MICRO_SEARCH, "--out", str(out)]
        ) == 0
        capsys.readouterr()
        csv = tmp_path / "front.csv"
        assert main(["dse", "report", str(out), "--csv", str(csv)]) == 0
        printed = capsys.readouterr().out
        assert "Pareto front" in printed
        assert csv.exists()

    def test_report_missing_file_exits_2(self):
        assert main(["dse", "report", "/nonexistent/r.json"]) == 2
