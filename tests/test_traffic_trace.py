"""Tests for traffic trace recording and replay."""

from __future__ import annotations

import pytest

from repro.traffic.synthetic import SyntheticTraffic
from repro.traffic.trace import (
    TraceRecorder,
    TraceTraffic,
    load_trace,
    save_trace,
)


class TestTraceRecorder:
    def test_records_everything_forwarded(self):
        inner = SyntheticTraffic("uniform", 4, flit_rate=0.5, packet_length=2, seed=1)
        rec = TraceRecorder(inner, default_length=2)
        forwarded = []
        for cycle in range(200):
            forwarded.extend((cycle, s, d) for s, d, _ in rec.inject(cycle))
        assert [(c, s, d) for c, s, d, _ in rec.records] == forwarded

    def test_default_length_fills_none(self):
        inner = SyntheticTraffic("uniform", 4, flit_rate=0.5, packet_length=2, seed=1)
        rec = TraceRecorder(inner, default_length=7)
        for cycle in range(100):
            rec.inject(cycle)
        assert rec.records
        assert all(length == 7 for _, _, _, length in rec.records)

    def test_invalid_default_length(self):
        inner = SyntheticTraffic("uniform", 4, flit_rate=0.1)
        with pytest.raises(ValueError):
            TraceRecorder(inner, default_length=0)


class TestTraceTraffic:
    RECORDS = [(0, 0, 1, 4), (0, 2, 3, 4), (5, 1, 0, 2)]

    def test_replay_at_recorded_cycles(self):
        gen = TraceTraffic(self.RECORDS, num_nodes=4)
        assert gen.inject(0) == [(0, 1, 4), (2, 3, 4)]
        assert gen.inject(1) == []
        assert gen.inject(5) == [(1, 0, 2)]
        assert gen.exhausted

    def test_reset_rewinds(self):
        gen = TraceTraffic(self.RECORDS, num_nodes=4)
        gen.inject(0)
        gen.reset()
        assert gen.inject(0) == [(0, 1, 4), (2, 3, 4)]

    def test_skipped_past_records_not_bunched(self):
        gen = TraceTraffic(self.RECORDS, num_nodes=4)
        assert gen.inject(10) == []
        assert gen.exhausted

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceTraffic([(-1, 0, 1, 4)], num_nodes=4)
        with pytest.raises(ValueError):
            TraceTraffic([(0, 0, 9, 4)], num_nodes=4)
        with pytest.raises(ValueError):
            TraceTraffic([(0, 2, 2, 4)], num_nodes=4)
        with pytest.raises(ValueError):
            TraceTraffic([(0, 0, 1, 0)], num_nodes=4)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        records = [(0, 0, 1, 4), (3, 2, 0, 1)]
        save_trace(records, path)
        assert load_trace(path) == records

    def test_recorder_save(self, tmp_path):
        inner = SyntheticTraffic("uniform", 4, flit_rate=0.5, packet_length=2, seed=1)
        rec = TraceRecorder(inner, default_length=2)
        for cycle in range(50):
            rec.inject(cycle)
        path = tmp_path / "t.csv"
        rec.save(path)
        replay = TraceTraffic.load(path, num_nodes=4)
        assert replay.records == sorted(rec.records)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# header\n\n1,0,1,4\n")
        assert load_trace(path) == [(1, 0, 1, 4)]

    def test_malformed_lines_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,2,3\n")
        with pytest.raises(ValueError):
            load_trace(path)
        path.write_text("a,b,c,d\n")
        with pytest.raises(ValueError):
            load_trace(path)
