"""Kill-mid-search integration tests for ``repro-noc dse search``.

Mirrors ``tests/test_kill_resume.py``: the DSE engine's per-generation
``ga.state.json`` plus the executor's write-ahead scenario journal must
make an interrupted search resumable with byte-identical final output.

* SIGTERM — graceful drain: in-flight evaluations finish and are
  journaled, ``campaign.state.json`` and ``ga.state.json`` both record
  ``interrupted``, the process exits 75, and ``--resume`` completes the
  search byte-identically.
* In-process drain — deterministic variant driving
  ``Executor.request_drain`` directly, plus SIGKILL-style state checks.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.dse.ga import DSEEngine, GAConfig
from repro.dse.objectives import resolve_objectives
from repro.dse.report import DSEResult
from repro.dse.space import DesignSpace, Parameter
from repro.experiments.checkpoint import (
    EXIT_INTERRUPTED,
    CampaignInterrupted,
    CheckpointManager,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import Executor

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: ~24 evaluations of >= 0.05s each: a wide window to interrupt after
#: some results are journaled but before the search finishes.
SEARCH_ARGS = [
    "dse", "search",
    "--nodes", "2", "--cycles", "2500", "--warmup", "300",
    "--population", "6", "--generations", "4",
    "--surrogate-min-samples", "6", "--seed", "13",
]


def _spawn(args, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args, *extra],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def _run(args, extra=()):
    proc = _spawn(args, extra)
    _, stderr = proc.communicate(timeout=300)
    return proc.returncode, stderr.decode()


def _wait_for_journal_records(directory, minimum, deadline=120.0):
    journal = Path(directory) / "scenario.journal.jsonl"
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        if journal.exists():
            lines = journal.read_bytes().count(b"\n")
            if lines >= minimum + 1:  # + header line
                return
        time.sleep(0.01)
    raise AssertionError(f"journal never reached {minimum} records")


class TestSigtermDrain:
    def test_sigterm_drains_and_resumes_byte_identical(self, tmp_path):
        golden = tmp_path / "golden.json"
        code, stderr = _run(SEARCH_ARGS, ["--out", str(golden)])
        assert code == 0, stderr

        ckpt = tmp_path / "ckpt"
        victim = tmp_path / "victim.json"
        proc = _spawn(
            SEARCH_ARGS,
            ["--checkpoint-dir", str(ckpt), "--out", str(victim)],
        )
        interrupted = True
        try:
            _wait_for_journal_records(ckpt, minimum=2)
            proc.send_signal(signal.SIGTERM)
            _, stderr_bytes = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
        stderr = stderr_bytes.decode()
        if proc.returncode == 0:
            # The search outran the signal; nothing to resume.
            interrupted = False
        else:
            assert proc.returncode == EXIT_INTERRUPTED, stderr
            assert "--resume" in stderr
            assert not victim.exists()
            state = json.loads((ckpt / "campaign.state.json").read_text())
            assert state["status"] == "interrupted"
            ga_state = json.loads((ckpt / "ga.state.json").read_text())
            assert ga_state["status"] in ("interrupted", "running")

        resumed = tmp_path / "resumed.json"
        code, stderr = _run(
            ["dse", "search", "--resume", str(ckpt), "--out", str(resumed)]
        )
        assert code == 0, stderr
        assert resumed.read_bytes() == golden.read_bytes()
        if interrupted:
            # Resume reused journaled evaluations rather than starting over.
            assert "resumed from journal" in stderr
        state = json.loads((ckpt / "campaign.state.json").read_text())
        assert state["status"] == "complete"
        ga_state = json.loads((ckpt / "ga.state.json").read_text())
        assert ga_state["status"] == "complete"


class TestInProcessDrainResume:
    def space(self):
        base = ScenarioConfig(num_nodes=2, cycles=300, warmup=100)
        return DesignSpace(
            parameters=(
                Parameter.categorical("policy", ("rr-no-sensor", "sensor-wise")),
                Parameter("rotation_period", (16, 64, 256)),
                Parameter("wake_latency", (1, 2)),
                Parameter("buffer_depth", (2, 4)),
            ),
            base=base,
        )

    def config(self):
        return GAConfig(
            population=4, generations=3, seed=3, surrogate_min_samples=6,
        )

    def run_to_completion(self, checkpoint=None, executor=None):
        engine = DSEEngine(
            self.space(), resolve_objectives(["md_duty", "p95_latency"]),
            self.config(), executor=executor, checkpoint=checkpoint,
        )
        engine.run(resume=checkpoint is not None)
        return DSEResult.from_archive(
            engine.space, engine.objectives, engine.archive,
            counters=engine.counters, savings=engine.evaluations_saved(),
            surrogate_scores=engine.surrogate_scores,
        )

    def test_drain_mid_generation_then_resume_byte_identical(self, tmp_path):
        golden = self.run_to_completion().to_json()

        ckpt_dir = tmp_path / "ckpt"
        checkpoint = CheckpointManager(ckpt_dir, meta={"m": 1})
        executor = Executor(max_workers=1, checkpoint=checkpoint)
        completions = {"n": 0}

        def drain_mid_generation(line):
            completions["n"] += 1
            # 4 units in generation 0, 2 fresh in generation 1: draining
            # at the 7th completion tears generation 2 with exactly one
            # of its units already journaled.
            if completions["n"] >= 7:
                executor.request_drain()

        executor.progress = drain_mid_generation
        engine = DSEEngine(
            self.space(), resolve_objectives(["md_duty", "p95_latency"]),
            self.config(), executor=executor, checkpoint=checkpoint,
        )
        with pytest.raises(CampaignInterrupted):
            engine.run()
        checkpoint.close()

        # The drain hit mid-generation-1: ga.state.json still points at
        # the generation being evaluated, and the journal holds the
        # completed units of the torn generation.
        ga_state = json.loads((ckpt_dir / "ga.state.json").read_text())
        assert ga_state["status"] == "interrupted"
        done_before = len(
            (ckpt_dir / "scenario.journal.jsonl").read_text().splitlines()
        ) - 1
        assert done_before >= 6

        checkpoint = CheckpointManager(ckpt_dir, meta={"m": 1})
        executor = Executor(max_workers=1, checkpoint=checkpoint)
        resumed = self.run_to_completion(checkpoint=checkpoint, executor=executor)
        checkpoint.close()
        assert resumed.to_json() == golden
        # Journaled units of the interrupted generation were replayed,
        # not re-simulated.
        assert executor.stats.journal_hits >= 1
