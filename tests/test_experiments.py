"""Tests for the experiment harness (configs, runner, table builders).

Simulations here are deliberately short — behaviour shape, not paper
magnitudes (the benchmarks run the longer, table-scale versions).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    REAL_TRAFFIC,
    ScenarioConfig,
    format_experimental_setup,
)
from repro.experiments.report import pct, pct_pair, render_table
from repro.experiments.runner import (
    build_network,
    build_traffic,
    run_policies,
    run_scenario,
)
from repro.experiments.tables import (
    run_cooperation_gain,
    run_real_table,
    run_synthetic_table,
    run_vth_saving,
)

FAST = dict(cycles=2500, warmup=500)


class TestScenarioConfig:
    def test_label(self):
        assert ScenarioConfig(num_nodes=4, injection_rate=0.1).label == "4core-inj0.10"
        assert ScenarioConfig(num_nodes=16, traffic=REAL_TRAFFIC).label == "16core-real"

    def test_pv_seed_frozen_per_architecture_and_rate(self):
        a = ScenarioConfig(num_nodes=4, num_vcs=2, injection_rate=0.1)
        b = ScenarioConfig(num_nodes=4, num_vcs=2, injection_rate=0.1, policy="baseline")
        assert a.effective_pv_seed == b.effective_pv_seed
        c = ScenarioConfig(num_nodes=4, num_vcs=2, injection_rate=0.2)
        assert a.effective_pv_seed != c.effective_pv_seed
        d = ScenarioConfig(num_nodes=16, num_vcs=2, injection_rate=0.1)
        assert a.effective_pv_seed != d.effective_pv_seed

    def test_pv_seed_override(self):
        assert ScenarioConfig(pv_seed=42).effective_pv_seed == 42

    def test_with_policy_preserves_everything_else(self):
        a = ScenarioConfig(num_nodes=4, injection_rate=0.3)
        b = a.with_policy("baseline")
        assert b.policy == "baseline"
        assert b.effective_pv_seed == a.effective_pv_seed
        assert b.label == a.label

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(cycles=0)
        with pytest.raises(ValueError):
            ScenarioConfig(warmup=-1)
        with pytest.raises(ValueError):
            ScenarioConfig(injection_rate=2.0)

    def test_setup_table_text(self):
        text = format_experimental_setup()
        assert "TABLE I" in text
        assert "45nm" in text


class TestRunner:
    def test_run_scenario_shape(self):
        result = run_scenario(ScenarioConfig(num_nodes=4, num_vcs=2, **FAST))
        assert len(result.duty_cycles) == 2
        assert all(0.0 <= d <= 100.0 for d in result.duty_cycles)
        assert 0 <= result.md_vc < 2
        assert result.net_stats.packets_ejected > 0
        assert result.wall_seconds > 0.0

    def test_wall_seconds_splits_build_and_sim(self):
        result = run_scenario(ScenarioConfig(num_nodes=4, num_vcs=2, **FAST))
        assert result.build_seconds > 0.0
        assert result.sim_seconds > 0.0
        # build time covers construction only; sim time dominates.
        assert result.sim_seconds > result.build_seconds
        assert result.wall_seconds == pytest.approx(
            result.build_seconds + result.sim_seconds
        )

    def test_md_matches_initial_vth_argmax(self):
        result = run_scenario(ScenarioConfig(num_nodes=4, num_vcs=4, **FAST))
        assert result.md_vc == max(
            range(4), key=lambda v: (result.initial_vths[v], v)
        )

    def test_port_duty_covers_all_ports(self):
        result = run_scenario(ScenarioConfig(num_nodes=4, num_vcs=2, **FAST))
        # 2x2 mesh: every router has local + 2 mesh ports = 12 entries.
        assert len(result.port_duty) == 12
        assert set(result.port_duty) == set(result.port_initial_vths)

    def test_md_at_arbitrary_port(self):
        result = run_scenario(ScenarioConfig(num_nodes=4, num_vcs=2, **FAST))
        for (router, port), vths in result.port_initial_vths.items():
            md = result.md_at(router, port)
            assert vths[md] == max(vths)

    def test_policies_share_traffic_and_pv(self):
        base = ScenarioConfig(num_nodes=4, num_vcs=2, **FAST)
        results = run_policies(base, ("baseline", "sensor-wise"))
        assert (
            results["baseline"].initial_vths == results["sensor-wise"].initial_vths
        )
        # The offered traffic stream is policy-independent (allocation
        # timing may differ, the generated packets may not).
        t1 = build_traffic(base.with_policy("baseline"))
        t2 = build_traffic(base.with_policy("sensor-wise"))
        for cycle in range(500):
            assert t1.inject(cycle) == t2.inject(cycle)

    def test_real_traffic_scenario_runs(self):
        result = run_scenario(
            ScenarioConfig(num_nodes=4, num_vcs=2, traffic=REAL_TRAFFIC, **FAST)
        )
        assert len(result.duty_cycles) == 2

    def test_iterations_change_traffic_not_pv(self):
        base = ScenarioConfig(num_nodes=4, num_vcs=2, traffic=REAL_TRAFFIC, **FAST)
        r0 = run_scenario(base, iteration=0)
        r1 = run_scenario(base, iteration=1)
        assert r0.initial_vths == r1.initial_vths  # PV frozen
        assert r0.md_vc == r1.md_vc

    def test_build_traffic_kinds(self):
        synth = build_traffic(ScenarioConfig(traffic="uniform"))
        real = build_traffic(ScenarioConfig(traffic=REAL_TRAFFIC))
        assert synth.name == "uniform"
        assert real.name == "benchmark-mix"

    def test_build_network_uses_scenario_policy(self):
        net = build_network(ScenarioConfig(policy="baseline", **FAST))
        assert net.routers[0].outputs[0].upstream.policy.name == "baseline"


class TestSyntheticTable:
    def test_small_table_structure(self):
        table = run_synthetic_table(
            num_vcs=2, arches=(4,), rates=(0.1,), cycles=2500, warmup=500
        )
        assert len(table.rows) == 1
        row = table.rows[0]
        assert row.label == "4core-inj0.10"
        assert set(row.duty) == {
            "rr-no-sensor", "sensor-wise-no-traffic", "sensor-wise",
        }
        assert "Table III" in table.format()

    def test_gap_is_rr_minus_sensor_wise_on_md(self):
        table = run_synthetic_table(
            num_vcs=2, arches=(4,), rates=(0.2,), cycles=2500, warmup=500
        )
        row = table.rows[0]
        expected = (
            row.duty["rr-no-sensor"][row.md_vc]
            - row.duty["sensor-wise"][row.md_vc]
        )
        assert row.gap == pytest.approx(expected)

    def test_four_vc_table_label(self):
        table = run_synthetic_table(
            num_vcs=4, arches=(4,), rates=(0.1,), cycles=2000, warmup=500
        )
        assert "Table II" in table.format()
        assert len(table.rows[0].duty["sensor-wise"]) == 4


class TestRealTable:
    def test_small_real_table(self):
        table = run_real_table(
            num_vcs=2,
            iterations=2,
            arch_rows={4: ((0, "east"), (2, "east"))},
            cycles=2500,
            warmup=500,
        )
        assert len(table.rows) == 2
        row = table.rows[0]
        assert row.label == "4c-r0-E"
        assert len(row.avg["sensor-wise"]) == 2
        assert all(s >= 0.0 for s in row.std["sensor-wise"])
        assert "Table IV" in table.format()

    def test_gap_definition(self):
        table = run_real_table(
            num_vcs=2, iterations=2,
            arch_rows={4: ((0, "east"),)}, cycles=2000, warmup=500,
        )
        row = table.rows[0]
        assert row.gap == pytest.approx(
            row.avg["rr-no-sensor"][row.md_vc] - row.avg["sensor-wise"][row.md_vc]
        )


class TestAnalyses:
    def test_vth_saving_report(self):
        scenario = ScenarioConfig(num_nodes=4, num_vcs=2, injection_rate=0.1, **FAST)
        report = run_vth_saving(scenario)
        assert report.saving_of("baseline") == pytest.approx(0.0)
        assert report.saving_of("sensor-wise") > 0.0
        assert "54.2%" in report.format()
        with pytest.raises(KeyError):
            report.saving_of("unknown")

    def test_vth_saving_validation(self):
        with pytest.raises(ValueError):
            run_vth_saving(ScenarioConfig(**FAST), years=0.0)

    def test_cooperation_gain(self):
        scenario = ScenarioConfig(num_nodes=4, num_vcs=2, injection_rate=0.1, **FAST)
        report = run_cooperation_gain(scenario)
        assert report.gain == pytest.approx(
            report.md_duty_non_cooperative - report.md_duty_cooperative
        )
        assert "Cooperation gain" in report.format()


class TestReportHelpers:
    def test_render_table(self):
        text = render_table(("a", "bb"), [("1", "2")], title="T")
        assert text.splitlines()[0] == "T"
        assert "1" in text and "bb" in text

    def test_render_table_validates_width(self):
        with pytest.raises(ValueError):
            render_table(("a",), [("1", "2")])

    def test_pct_formats(self):
        assert pct(12.345) == "12.3%"
        assert pct_pair(12.3, 4.5) == "12.3%(4.5)"
