"""Tests for the network validator and the campaign runner."""

from __future__ import annotations

import pytest

from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.noc.validation import validate_network
from tests.conftest import build_small_network


class TestValidator:
    def test_healthy_network_has_no_violations(self):
        net = build_small_network(policy="sensor-wise", flit_rate=0.25)
        net.run(600)
        assert validate_network(net) == []

    @pytest.mark.parametrize("policy", ["baseline", "rr-no-sensor", "static-reserve"])
    def test_all_policies_validate_clean(self, policy):
        net = build_small_network(policy=policy, flit_rate=0.2)
        net.run(400)
        assert validate_network(net) == []

    def test_run_with_validate_every(self):
        net = build_small_network(policy="sensor-wise", flit_rate=0.2)
        net.run(300, validate_every=50)  # must not raise

    def test_validate_every_rejects_negative(self):
        net = build_small_network(flit_rate=0.0)
        with pytest.raises(ValueError):
            net.run(10, validate_every=-1)

    def test_detects_injected_corruption(self):
        """Manually corrupt upstream credit state: the sweep flags it."""
        net = build_small_network(policy="baseline", flit_rate=0.1)
        net.run(200)
        entry = net.routers[0].outputs[0].upstream.entries[0]
        entry.credits = entry.max_credits + 3
        violations = validate_network(net)
        assert any("credits" in v for v in violations)

    def test_detects_power_disagreement(self):
        """Gate a buffer behind the upstream's back: flagged."""
        net = build_small_network(policy="baseline", flit_rate=0.0)
        net.run(100)
        net.routers[0].inputs[0].unit.vcs[0].buffer.gate()
        violations = validate_network(net)
        assert any("gated" in v for v in violations)

    def test_run_raises_on_violation(self):
        net = build_small_network(policy="baseline", flit_rate=0.0)
        net.run(10)
        net.routers[0].inputs[0].unit.vcs[0].buffer.gate()
        with pytest.raises(RuntimeError, match="invariant violations"):
            net.run(10, validate_every=1)


class TestLatencyPercentiles:
    def test_percentiles_ordered(self):
        net = build_small_network(policy="sensor-wise", flit_rate=0.3)
        net.run(1500)
        stats = net.stats()
        assert (
            stats.p50_packet_latency
            <= stats.p95_packet_latency
            <= stats.p99_packet_latency
            <= stats.max_packet_latency
        )
        assert stats.p50_packet_latency > 0

    def test_empty_window_percentiles_zero(self):
        net = build_small_network(flit_rate=0.0)
        net.run(50)
        stats = net.stats()
        assert stats.p50_packet_latency == 0.0
        assert stats.p99_packet_latency == 0.0

    def test_str_mentions_p95(self):
        net = build_small_network(flit_rate=0.2)
        net.run(400)
        assert "p95" in str(net.stats())


class TestCampaign:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("campaign")
        config = CampaignConfig(cycles=1500, warmup=300, iterations=1)
        return run_campaign(
            config,
            report_path=out / "report.md",
            json_dir=out / "json",
        ), out

    def test_report_written(self, result):
        _, out = result
        text = (out / "report.md").read_text()
        assert "# Reproduction campaign report" in text
        assert "Table II" in text and "Table IV" in text
        assert "cooperation" in text.lower()

    def test_json_artifacts_written(self, result):
        _, out = result
        for name in ("table2.json", "table3.json", "table4.json", "vth_saving.json"):
            assert (out / "json" / name).exists()

    def test_json_round_trips(self, result):
        from repro.experiments.persistence import load_synthetic_table

        campaign, out = result
        loaded = load_synthetic_table(out / "json" / "table2.json")
        assert loaded.gaps() == pytest.approx(campaign.table2.gaps())

    def test_skip_real_traffic(self, tmp_path):
        config = CampaignConfig(cycles=1200, warmup=200, include_real_traffic=False)
        result = run_campaign(config)
        assert result.table4 is None
        assert "Table IV" not in result.to_markdown()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(cycles=0)
        with pytest.raises(ValueError):
            CampaignConfig(iterations=0)

    def test_cli_campaign(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main([
            "campaign", "--cycles", "1200", "--warmup", "200",
            "--iterations", "1", "--skip-real", "--out", str(out),
        ]) == 0
        assert out.exists()
        assert "report written" in capsys.readouterr().out
