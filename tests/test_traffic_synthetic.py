"""Tests for synthetic traffic patterns."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.base import (
    CompositeTraffic,
    NullTraffic,
    TrafficGenerator,
    grid_shape,
    validate_rate,
)
from repro.traffic.synthetic import PATTERNS, HotspotTraffic, SyntheticTraffic


class TestBase:
    def test_grid_shape(self):
        assert grid_shape(16) == (4, 4)
        assert grid_shape(4) == (2, 2)
        assert grid_shape(8) == (4, 2)
        assert grid_shape(2) == (2, 1)

    def test_validate_rate(self):
        assert validate_rate(0.5) == 0.5
        with pytest.raises(ValueError):
            validate_rate(-0.1)
        with pytest.raises(ValueError):
            validate_rate(1.1)

    def test_null_traffic_is_silent(self):
        gen = NullTraffic(4)
        assert all(gen.inject(c) == [] for c in range(50))

    def test_composite_superposes(self):
        a = SyntheticTraffic("uniform", 4, flit_rate=0.4, packet_length=1, seed=1)
        b = SyntheticTraffic("uniform", 4, flit_rate=0.4, packet_length=1, seed=2)
        both = CompositeTraffic([a, b])
        a2 = SyntheticTraffic("uniform", 4, flit_rate=0.4, packet_length=1, seed=1)
        b2 = SyntheticTraffic("uniform", 4, flit_rate=0.4, packet_length=1, seed=2)
        for cycle in range(100):
            assert both.inject(cycle) == a2.inject(cycle) + b2.inject(cycle)

    def test_composite_validation(self):
        with pytest.raises(ValueError):
            CompositeTraffic([])
        with pytest.raises(ValueError):
            CompositeTraffic([NullTraffic(4), NullTraffic(8)])

    def test_min_nodes(self):
        with pytest.raises(ValueError):
            NullTraffic(1)


class TestSyntheticTraffic:
    def test_rate_is_respected(self):
        gen = SyntheticTraffic("uniform", 16, flit_rate=0.2, packet_length=4, seed=1)
        packets = sum(len(gen.inject(c)) for c in range(20000))
        flits = packets * 4
        rate = flits / (20000 * 16)
        assert rate == pytest.approx(0.2, rel=0.05)

    def test_determinism(self):
        a = SyntheticTraffic("uniform", 4, flit_rate=0.3, packet_length=4, seed=9)
        b = SyntheticTraffic("uniform", 4, flit_rate=0.3, packet_length=4, seed=9)
        for cycle in range(200):
            assert a.inject(cycle) == b.inject(cycle)

    def test_no_self_addressed_packets(self):
        for pattern in PATTERNS:
            gen = SyntheticTraffic(pattern, 16, flit_rate=0.5, packet_length=1, seed=2)
            for cycle in range(300):
                for src, dst, _ in gen.inject(cycle):
                    assert src != dst
                    assert 0 <= src < 16 and 0 <= dst < 16

    def test_uniform_covers_all_destinations(self):
        gen = SyntheticTraffic("uniform", 4, flit_rate=0.9, packet_length=1, seed=3)
        dsts = {d for c in range(2000) for _, d, _ in gen.inject(c)}
        assert dsts == {0, 1, 2, 3}

    def test_transpose_is_deterministic_mapping(self):
        gen = SyntheticTraffic("transpose", 16, flit_rate=0.9, packet_length=1, seed=4)
        seen = {}
        for cycle in range(500):
            for src, dst, _ in gen.inject(cycle):
                seen.setdefault(src, dst)
                assert seen[src] == dst
        # Transpose of node 1 (1,0) is (0,1) = node 4 on a 4x4 grid.
        if 1 in seen:
            assert seen[1] == 4

    def test_bit_complement_mapping(self):
        gen = SyntheticTraffic("bit_complement", 16, flit_rate=0.9, packet_length=1, seed=5)
        for cycle in range(200):
            for src, dst, _ in gen.inject(cycle):
                assert dst == (~src) & 15

    def test_bit_complement_requires_power_of_two(self):
        with pytest.raises(ValueError):
            SyntheticTraffic("bit_complement", 6, flit_rate=0.1)

    def test_tornado_mapping(self):
        gen = SyntheticTraffic("tornado", 16, flit_rate=0.9, packet_length=1, seed=6)
        for cycle in range(200):
            for src, dst, _ in gen.inject(cycle):
                sx, sy = src % 4, src // 4
                assert dst == sy * 4 + (sx + 2) % 4

    def test_neighbor_mapping(self):
        gen = SyntheticTraffic("neighbor", 4, flit_rate=0.9, packet_length=1, seed=7)
        for cycle in range(200):
            for src, dst, _ in gen.inject(cycle):
                sx, sy = src % 2, src // 2
                assert dst == sy * 2 + (sx + 1) % 2

    def test_shuffle_and_bit_reverse_valid(self):
        for pattern in ("shuffle", "bit_reverse"):
            gen = SyntheticTraffic(pattern, 8, flit_rate=0.9, packet_length=1, seed=8)
            for cycle in range(100):
                for src, dst, _ in gen.inject(cycle):
                    assert 0 <= dst < 8

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTraffic("zigzag", 4, flit_rate=0.1)

    def test_invalid_packet_length_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTraffic("uniform", 4, flit_rate=0.5, packet_length=0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTraffic("uniform", 4, flit_rate=1.5)
        with pytest.raises(ValueError):
            SyntheticTraffic("uniform", 4, flit_rate=-0.1)

    def test_describe(self):
        gen = SyntheticTraffic("uniform", 4, flit_rate=0.1)
        assert "uniform" in gen.describe()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_injections_always_valid(self, seed):
        gen = SyntheticTraffic("uniform", 8, flit_rate=0.6, packet_length=2, seed=seed)
        for cycle in range(50):
            for src, dst, length in gen.inject(cycle):
                assert src != dst
                assert length is None


class TestHotspotTraffic:
    def test_hotspots_receive_more(self):
        gen = HotspotTraffic(
            16, flit_rate=0.5, hotspots=[5], hotspot_fraction=0.8,
            packet_length=1, seed=1,
        )
        counts = {}
        for cycle in range(5000):
            for _, dst, _ in gen.inject(cycle):
                counts[dst] = counts.get(dst, 0) + 1
        total = sum(counts.values())
        assert counts.get(5, 0) / total > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotTraffic(4, 0.1, hotspots=[])
        with pytest.raises(ValueError):
            HotspotTraffic(4, 0.1, hotspots=[9])
        with pytest.raises(ValueError):
            HotspotTraffic(4, 0.1, hotspots=[1], hotspot_fraction=1.5)

    def test_no_self_addressed(self):
        gen = HotspotTraffic(4, 0.8, hotspots=[0], hotspot_fraction=0.9,
                             packet_length=1, seed=2)
        for cycle in range(1000):
            for src, dst, _ in gen.inject(cycle):
                assert src != dst


def test_abstract_generator_requires_inject():
    gen = TrafficGenerator(4)
    with pytest.raises(NotImplementedError):
        gen.inject(0)
