"""Tests for JSON persistence of experiment artifacts."""

from __future__ import annotations

import json

import pytest

from repro.experiments.persistence import (
    PersistenceError,
    load_real_table,
    load_synthetic_table,
    load_vth_report,
    save_real_table,
    save_synthetic_table,
    save_vth_report,
)
from repro.experiments.tables import (
    RealRow,
    RealTable,
    SyntheticRow,
    SyntheticTable,
    VthSavingReport,
    VthSavingRow,
)


def make_synthetic_table() -> SyntheticTable:
    row = SyntheticRow(
        label="4core-inj0.10",
        md_vc=1,
        duty={
            "rr-no-sensor": [10.0, 11.0],
            "sensor-wise": [3.0, 1.0],
        },
        results={},
    )
    return SyntheticTable(
        num_vcs=2, policies=("rr-no-sensor", "sensor-wise"), rows=[row]
    )


def make_real_table() -> RealTable:
    row = RealRow(
        label="4c-r0-E", num_nodes=4, router=0, port="east", md_vc=0,
        avg={"rr-no-sensor": [8.0, 8.1], "sensor-wise": [3.0, 12.0]},
        std={"rr-no-sensor": [1.0, 1.1], "sensor-wise": [0.5, 2.0]},
    )
    return RealTable(
        num_vcs=2, iterations=10,
        policies=("rr-no-sensor", "sensor-wise"), rows=[row],
    )


def make_vth_report() -> VthSavingReport:
    return VthSavingReport(
        scenario_label="4core-inj0.30",
        years=3.0,
        rows=[
            VthSavingRow("baseline", 100.0, 50.0, 0.0),
            VthSavingRow("sensor-wise", 1.1, 23.6, 0.528),
        ],
    )


class TestSyntheticRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        table = make_synthetic_table()
        path = tmp_path / "t3.json"
        save_synthetic_table(table, path)
        loaded = load_synthetic_table(path)
        assert loaded.num_vcs == table.num_vcs
        assert loaded.policies == table.policies
        assert loaded.rows[0].label == table.rows[0].label
        assert loaded.rows[0].duty == table.rows[0].duty
        assert loaded.rows[0].gap == pytest.approx(table.rows[0].gap)

    def test_format_works_after_load(self, tmp_path):
        path = tmp_path / "t3.json"
        save_synthetic_table(make_synthetic_table(), path)
        assert "4core-inj0.10" in load_synthetic_table(path).format()

    def test_file_is_stable_json(self, tmp_path):
        path = tmp_path / "t3.json"
        save_synthetic_table(make_synthetic_table(), path)
        data = json.loads(path.read_text())
        assert data["kind"] == "synthetic_table"
        assert data["schema"] == 1


class TestRealRoundTrip:
    def test_roundtrip(self, tmp_path):
        table = make_real_table()
        path = tmp_path / "t4.json"
        save_real_table(table, path)
        loaded = load_real_table(path)
        assert loaded.iterations == 10
        assert loaded.rows[0].gap == pytest.approx(table.rows[0].gap)
        assert loaded.rows[0].md_std_improved == table.rows[0].md_std_improved


class TestVthRoundTrip:
    def test_roundtrip(self, tmp_path):
        report = make_vth_report()
        path = tmp_path / "vth.json"
        save_vth_report(report, path)
        loaded = load_vth_report(path)
        assert loaded.scenario_label == report.scenario_label
        assert loaded.saving_of("sensor-wise") == pytest.approx(0.528)


class TestErrorHandling:
    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        save_vth_report(make_vth_report(), path)
        with pytest.raises(PersistenceError):
            load_synthetic_table(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": 99, "kind": "vth_report", "payload": {}}))
        with pytest.raises(PersistenceError):
            load_vth_report(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PersistenceError):
            load_real_table(path)

    def test_truncated_file_distinguished_from_wrong_kind(self, tmp_path):
        """A crash-torn file reports truncation, not a kind mismatch."""
        path = tmp_path / "x.json"
        save_vth_report(make_vth_report(), path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(PersistenceError, match="truncated"):
            load_vth_report(path)

    def test_empty_file_reported_as_truncated(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("")
        with pytest.raises(PersistenceError, match="truncated"):
            load_vth_report(path)

    def test_not_json_reported_distinctly(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("this was never JSON\n")
        with pytest.raises(PersistenceError, match="not valid JSON"):
            load_vth_report(path)

    def test_save_leaves_no_temp_files(self, tmp_path):
        save_vth_report(make_vth_report(), tmp_path / "vth.json")
        assert [p.name for p in tmp_path.iterdir()] == ["vth.json"]
