"""Tests for the fault-injection layer (specs, channels, injector,
campaigns) and the determinism guarantees it advertises."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import Executor
from repro.experiments.runner import build_network, run_scenario
from repro.faults import (
    FAULT_KINDS,
    FaultCampaignConfig,
    FaultInjector,
    FaultSpec,
    FaultyChannel,
    derive_seed,
    make_specs,
    run_fault_campaign,
)
from repro.nbti.model import NBTIModel
from repro.nbti.sensor import SensorBank
from repro.nbti.transistor import PMOSDevice


# ----------------------------------------------------------------------
# FaultSpec
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_known_kinds_construct(self):
        for kind in FAULT_KINDS:
            kwargs = {}
            if kind == "stuck-sensor":
                kwargs["stuck_vc"] = 0
            if kind == "down-up-delay":
                kwargs["delay"] = 2
            spec = FaultSpec(kind, **kwargs)
            assert spec.kind == kind

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "no-such-fault"},
            {"kind": "sensor-dropout", "router": -1},
            {"kind": "sensor-dropout", "onset": -5},
            {"kind": "sensor-dropout", "duration": 0},
            {"kind": "down-up-drop", "rate": 1.5},
            {"kind": "down-up-delay", "delay": 0},
            {"kind": "stuck-sensor"},  # needs stuck_vc or stuck_reading
            {"kind": "stuck-gated", "extra_wake_cycles": 0},
            {"kind": "up-down-drop", "command": "reboot"},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_activity_window(self):
        spec = FaultSpec("sensor-dropout", onset=10, duration=5)
        assert not spec.active(9)
        assert spec.active(10)
        assert spec.active(14)
        assert not spec.active(15)
        forever = FaultSpec("sensor-dropout", onset=3)
        assert forever.active(10_000_000)

    def test_is_frozen_and_hashable(self):
        spec = FaultSpec("sensor-dropout")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.rate = 0.5
        assert hash(spec) == hash(FaultSpec("sensor-dropout"))


class TestDeriveSeed:
    def test_deterministic(self):
        spec = FaultSpec("down-up-drop", rate=0.5, seed=7)
        assert derive_seed(spec, 1) == derive_seed(spec, 1)

    def test_sensitive_to_all_inputs(self):
        spec = FaultSpec("down-up-drop", rate=0.5, seed=7)
        base = derive_seed(spec, 1)
        assert derive_seed(spec, 2) != base
        assert derive_seed(spec, 1, "other") != base
        assert derive_seed(dataclasses.replace(spec, seed=8), 1) != base


# ----------------------------------------------------------------------
# FaultyChannel
# ----------------------------------------------------------------------
class TestFaultyChannel:
    def test_inactive_is_transparent(self):
        ch = FaultyChannel("c", latency=1, onset=100, drop_probability=1.0)
        ch.send("a", 0)
        assert ch.pop_ready(1) == ["a"]
        assert ch.dropped == 0

    def test_drops_everything_at_rate_one(self):
        ch = FaultyChannel("c", latency=1, drop_probability=1.0)
        for cycle in range(5):
            ch.send(cycle, cycle)
        assert ch.pop_ready(10) == []
        assert ch.dropped == 5

    def test_drop_filter_restricts_drops(self):
        ch = FaultyChannel(
            "c", latency=1, drop_probability=1.0,
            drop_filter=lambda item: item[0] == "wake",
        )
        ch.send(("wake", 0), 0)
        ch.send(("gate", 1), 0)
        assert ch.pop_ready(1) == [("gate", 1)]
        assert ch.dropped == 1

    def test_extra_delay_shifts_arrival(self):
        ch = FaultyChannel("c", latency=1, extra_delay=3)
        ch.send("x", 0)
        assert ch.pop_ready(1) == []
        assert ch.pop_ready(4) == ["x"]
        assert ch.delayed == 1

    def test_noise_injects_at_most_one_item_per_cycle(self):
        ch = FaultyChannel(
            "c", latency=1, noise_probability=1.0, noise_values=[9], seed=3
        )
        got = ch.pop_ready(5)
        assert got == [9]
        # Second poll of the same cycle must not double-inject.
        assert ch.pop_ready(5) == []
        assert ch.corrupted == 1

    def test_noise_requires_values(self):
        with pytest.raises(ValueError):
            FaultyChannel("c", noise_probability=0.5)

    def test_adopt_preserves_in_flight_items(self):
        from repro.noc.link import Channel

        old = Channel("c", latency=2)
        old.send("legacy", 0)
        ch = FaultyChannel("c", latency=2, drop_probability=1.0).adopt(old)
        assert ch.pop_ready(2) == ["legacy"]


# ----------------------------------------------------------------------
# SensorBank.sample_age
# ----------------------------------------------------------------------
class TestSampleAge:
    def test_age_tracks_actual_measurements(self):
        model = NBTIModel.calibrated()
        bank = SensorBank(
            [PMOSDevice(0.18, model), PMOSDevice(0.181, model)],
            sample_period=10,
        )
        assert bank.last_sample_cycle == -1
        assert bank.sample_age(4) == 5  # never sampled: counts from -1
        bank.sample(4)
        assert bank.last_sample_cycle == 4
        assert bank.sample_age(4) == 0
        bank.sample(9)  # period not elapsed -> no measurement
        assert bank.sample_age(9) == 5
        bank.sample(14)  # period elapsed -> fresh measurement
        assert bank.sample_age(14) == 0


# ----------------------------------------------------------------------
# FaultInjector wiring
# ----------------------------------------------------------------------
def _tiny_scenario(**overrides):
    defaults = dict(
        num_nodes=4, num_vcs=2, cycles=200, warmup=50,
        sensor_sample_period=32,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestFaultInjector:
    def test_unknown_router_rejected(self):
        net = build_network(_tiny_scenario())
        spec = FaultSpec("sensor-dropout", router=99)
        with pytest.raises(ValueError, match="router 99"):
            FaultInjector([spec]).apply(net)

    def test_unknown_port_rejected(self):
        net = build_network(_tiny_scenario())
        # Router 0 of a 2x2 mesh has no west neighbour.
        spec = FaultSpec("sensor-dropout", router=0, port="west")
        with pytest.raises(ValueError, match="no input port"):
            FaultInjector([spec]).apply(net)

    def test_duplicate_site_rejected(self):
        net = build_network(_tiny_scenario())
        specs = [
            FaultSpec("down-up-drop", rate=0.5),
            FaultSpec("down-up-delay", delay=2),
        ]
        with pytest.raises(ValueError, match="same site"):
            FaultInjector(specs).apply(net)

    def test_double_apply_rejected(self):
        injector = FaultInjector([FaultSpec("sensor-dropout")])
        injector.apply(build_network(_tiny_scenario()))
        with pytest.raises(RuntimeError):
            injector.apply(build_network(_tiny_scenario()))

    def test_distinct_wires_on_one_port_compose(self):
        net = build_network(_tiny_scenario())
        injector = FaultInjector([
            FaultSpec("sensor-dropout"),
            FaultSpec("down-up-drop", rate=0.5),
            FaultSpec("up-down-drop", rate=0.5),
        ])
        injector.apply(net)
        assert len(injector.bank_faults) == 1
        assert len(injector.down_up_channels) == 1
        assert len(injector.up_down_channels) == 1

    def test_counters_cover_every_hook(self):
        injector = FaultInjector([FaultSpec("sensor-dropout")])
        injector.apply(build_network(_tiny_scenario()))
        counters = injector.counters()
        assert set(counters) == {
            "sensor_samples_dropped", "sensor_stuck_reports",
            "down_up_dropped", "down_up_delayed", "down_up_corrupted",
            "up_down_dropped", "wakes_blocked", "wakes_delayed",
            "emergency_wakes",
        }


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def _fault_kwargs(kind):
    kwargs = dict(kind=kind, router=0, port="east", seed=5)
    if kind == "stuck-sensor":
        kwargs["stuck_vc"] = 1
    if kind == "down-up-delay":
        kwargs["delay"] = 3
    if kind in ("down-up-drop", "down-up-corrupt", "up-down-drop", "stuck-gated"):
        kwargs["rate"] = 0.5
    return kwargs


class TestFaultDeterminism:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_identical_runs_identical_results(self, kind):
        scenario = _tiny_scenario(faults=(FaultSpec(**_fault_kwargs(kind)),))
        a = run_scenario(scenario)
        b = run_scenario(scenario)
        assert a.duty_cycles == b.duty_cycles
        assert a.net_stats.avg_packet_latency == b.net_stats.avg_packet_latency
        assert a.fault_counters == b.fault_counters
        assert a.violations == b.violations


# ----------------------------------------------------------------------
# Fault campaign
# ----------------------------------------------------------------------
class TestFaultCampaign:
    CONFIG = FaultCampaignConfig(
        num_nodes=4, num_vcs=2, cycles=150, warmup=50,
        sensor_sample_period=16, validate_every=25,
        kinds=("sensor-dropout", "down-up-drop"),
        fault_rates=(0.0, 1.0),
    )

    def test_make_specs_rate_zero_is_faultless(self):
        assert make_specs("sensor-dropout", 0.0, self.CONFIG) == ()

    def test_make_specs_window_kinds_scale_duration(self):
        (spec,) = make_specs("sensor-dropout", 0.5, self.CONFIG)
        assert spec.duration == (self.CONFIG.warmup + self.CONFIG.cycles) // 2
        (full,) = make_specs("sensor-dropout", 1.0, self.CONFIG)
        assert full.duration is None

    def test_report_json_identical_serial_vs_parallel(self):
        serial = run_fault_campaign(self.CONFIG)
        parallel = run_fault_campaign(
            self.CONFIG, executor=Executor(max_workers=2, timeout=300, retries=1)
        )
        assert serial.to_json() == parallel.to_json()

    def test_report_shape_and_baseline(self):
        report = run_fault_campaign(self.CONFIG)
        # 2 policies x (1 baseline + 2 kinds x 1 nonzero rate)
        assert len(report.rows) == 6
        for policy in self.CONFIG.policies:
            base = report.baseline(policy)
            assert base is not None and base.rate == 0.0
            assert base.violations == 0
        markdown = report.to_markdown()
        assert "sensor-dropout" in markdown and "| policy |" in markdown
