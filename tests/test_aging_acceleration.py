"""Tests for the aging-time-scale knob (accelerated in-simulation aging)."""

from __future__ import annotations

import pytest

from repro.nbti.constants import SECONDS_PER_YEAR, TECH_45NM
from repro.noc.config import NoCConfig
from tests.conftest import build_small_network


class TestConfig:
    def test_default_is_real_time(self):
        assert NoCConfig().aging_time_scale == 1.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            NoCConfig(aging_time_scale=0.0)
        with pytest.raises(ValueError):
            NoCConfig(aging_time_scale=-1.0)


class TestAcceleratedAging:
    def test_device_cycle_time_scaled(self):
        net = build_small_network(flit_rate=0.0, aging_time_scale=1e6)
        device = next(iter(net.devices.values()))
        assert device.cycle_time_s == pytest.approx(
            TECH_45NM.clock_period_s * 1e6
        )

    def test_elapsed_time_compresses_years(self):
        """At 1e12x (1 cycle ~ 1000 s), 32k cycles exceed a year."""
        net = build_small_network(flit_rate=0.0, policy="baseline",
                                  aging_time_scale=1e12)
        cycles = int(SECONDS_PER_YEAR / 1e12 / TECH_45NM.clock_period_s) + 1
        assert cycles < 40_000  # keep the test fast
        net.run(cycles)
        device = next(iter(net.devices.values()))
        assert device.elapsed_seconds >= SECONDS_PER_YEAR

    def test_accelerated_run_ages_more(self):
        slow = build_small_network(flit_rate=0.2, policy="baseline", seed=3)
        fast = build_small_network(flit_rate=0.2, policy="baseline", seed=3,
                                   aging_time_scale=1e9)
        slow.run(800)
        fast.run(800)
        key = next(iter(slow.devices))
        assert fast.devices[key].delta_vth() > slow.devices[key].delta_vth()

    def test_duty_cycles_unaffected_by_scale(self):
        """The knob stretches time, not the stress/recovery ratio."""
        a = build_small_network(flit_rate=0.2, policy="sensor-wise", seed=4)
        b = build_small_network(flit_rate=0.2, policy="sensor-wise", seed=4,
                                aging_time_scale=1e9)
        a.run(600)
        b.run(600)
        assert a.duty_cycles(0, "east") == b.duty_cycles(0, "east")

    def test_md_can_migrate_under_acceleration(self):
        """With strongly accelerated aging, a heavily stressed VC can
        overtake the PV-designated most-degraded one during the run."""
        net = build_small_network(
            flit_rate=0.15, policy="static-reserve", seed=11,
            aging_time_scale=1e10, sensor_sample_period=64,
        )
        bank = net.routers[0].inputs[0].unit.sensor_bank  # local port
        initial_md = bank.most_degraded
        net.run(4000)
        final_md = bank.most_degraded
        readings = bank.readings
        # The reserved VC 0 accrues far more stress; if it did not start
        # as the MD, acceleration must eventually crown it.
        device0 = net.routers[0].inputs[0].unit.vcs[0].buffer.device
        assert device0.duty_cycle > 90.0
        if initial_md != 0:
            assert final_md == 0, (initial_md, final_md, readings)
