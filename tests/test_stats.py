"""Tests for the streaming statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.summary import QuantileSketch, RunningStats, VectorStats, mean, std

FLOATS = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


def legacy_percentile(values, q):
    """The exact order-statistic SimStats used before the sketch."""
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


class TestRunningStats:
    def test_basic_moments(self):
        rs = RunningStats()
        rs.extend([2.0, 4.0, 6.0])
        assert rs.mean == pytest.approx(4.0)
        assert rs.std == pytest.approx(np.std([2.0, 4.0, 6.0]))

    def test_empty(self):
        rs = RunningStats()
        assert rs.count == 0
        assert rs.mean == 0.0
        assert rs.std == 0.0

    def test_single_value(self):
        rs = RunningStats()
        rs.add(5.0)
        assert rs.mean == 5.0
        assert rs.std == 0.0

    def test_min_max(self):
        rs = RunningStats()
        rs.extend([3.0, -1.0, 7.0])
        assert rs.min == -1.0
        assert rs.max == 7.0

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(FLOATS, min_size=1, max_size=100))
    def test_matches_numpy(self, values):
        rs = RunningStats()
        rs.extend(values)
        assert rs.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)
        assert rs.std == pytest.approx(float(np.std(values)), rel=1e-6, abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(
        left=st.lists(FLOATS, min_size=0, max_size=50),
        right=st.lists(FLOATS, min_size=0, max_size=50),
    )
    def test_merge_matches_single_stream(self, left, right):
        a = RunningStats()
        a.extend(left)
        b = RunningStats()
        b.extend(right)
        a.merge(b)
        combined = RunningStats()
        combined.extend(left + right)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
        assert a.std == pytest.approx(combined.std, rel=1e-6, abs=1e-6)
        if left or right:
            assert a.min == combined.min
            assert a.max == combined.max

    def test_merge_into_empty(self):
        a = RunningStats()
        b = RunningStats()
        b.extend([1.0, 2.0, 3.0])
        a.merge(b)
        assert a.count == 3
        assert a.mean == pytest.approx(2.0)
        assert a.min == 1.0 and a.max == 3.0

    def test_merge_clamps_cancellation_to_zero_variance(self):
        # Chan's combination can drive the sum-of-squares a few ulp
        # below zero when the merged means are nearly identical.  The
        # hazard is not reachable through add/extend alone (single
        # streams keep _m2 exact), so inject the residue of a prior
        # lossy merge directly and check the clamp holds.
        a = RunningStats()
        a.extend([0.1])
        a._m2 = -4e-17
        b = RunningStats()
        b.extend([0.1])
        a.merge(b)
        assert a.variance >= 0.0
        assert a.std == 0.0  # sqrt must not raise on a negative m2

    @given(
        chunks=st.lists(
            st.lists(FLOATS, min_size=0, max_size=20),
            min_size=2, max_size=5,
        )
    )
    def test_merge_order_invariance(self, chunks):
        def fold(order):
            acc = RunningStats()
            for chunk in order:
                part = RunningStats()
                part.extend(chunk)
                acc.merge(part)
            return acc

        forward = fold(chunks)
        backward = fold(reversed(chunks))
        assert forward.count == backward.count
        assert forward.variance >= 0.0
        assert backward.variance >= 0.0
        assert forward.mean == pytest.approx(backward.mean, rel=1e-9, abs=1e-6)
        assert forward.std == pytest.approx(backward.std, rel=1e-6, abs=1e-6)
        if forward.count:
            assert forward.min == backward.min
            assert forward.max == backward.max


class TestVectorStats:
    def test_per_component_moments(self):
        vs = VectorStats(2)
        vs.add([1.0, 10.0])
        vs.add([3.0, 30.0])
        assert vs.count == 2
        assert vs.means() == [pytest.approx(2.0), pytest.approx(20.0)]
        assert vs.stds() == [pytest.approx(1.0), pytest.approx(10.0)]

    def test_length_mismatch_rejected(self):
        vs = VectorStats(2)
        with pytest.raises(ValueError):
            vs.add([1.0])

    def test_size_validation(self):
        with pytest.raises(ValueError):
            VectorStats(0)


class TestFunctions:
    def test_mean_and_std(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert std([1.0, 2.0, 3.0]) == pytest.approx(float(np.std([1, 2, 3])))

    def test_degenerate_inputs(self):
        assert mean([]) == 0.0
        assert std([]) == 0.0
        assert std([4.0]) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(FLOATS, min_size=1, max_size=30))
    def test_std_matches_running_stats(self, values):
        # Regression: std() used to special-case n=1 while RunningStats
        # treated it as a valid population of one; both paths must agree
        # on any n >= 1 (population std, divisor n).
        rs = RunningStats()
        rs.extend(values)
        assert std(values) == pytest.approx(rs.std, rel=1e-6, abs=1e-6)

    def test_std_single_value_agrees_with_running_stats(self):
        rs = RunningStats()
        rs.add(7.5)
        assert std([7.5]) == rs.std == 0.0


class TestQuantileSketch:
    def test_empty(self):
        qs = QuantileSketch()
        assert qs.count == 0
        assert qs.quantile(0.5) == 0.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            QuantileSketch(max_samples=1)
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(FLOATS, min_size=1, max_size=200),
        q=st.sampled_from([0.0, 0.5, 0.9, 0.95, 0.99, 1.0]),
    )
    def test_exact_below_capacity(self, values, q):
        # SimStats percentiles moved from sorted-list indexing to the
        # sketch; byte-identical goldens require exact agreement while
        # no compaction has happened.
        qs = QuantileSketch(max_samples=256)
        qs.extend(values)
        assert qs.quantile(q) == legacy_percentile(values, q)

    def test_compaction_keeps_quantiles_close(self):
        values = list(range(10_000))
        qs = QuantileSketch(max_samples=64)
        qs.extend(float(v) for v in values)
        assert qs.count == 10_000
        for q in (0.5, 0.95, 0.99):
            exact = legacy_percentile(values, q)
            # Error bound: a few compaction resolutions of the range.
            assert abs(qs.quantile(q) - exact) <= len(values) * 0.1

    def test_deterministic_across_insertion_replay(self):
        values = [float((i * 37) % 101) for i in range(5000)]
        a = QuantileSketch(max_samples=32)
        b = QuantileSketch(max_samples=32)
        a.extend(values)
        b.extend(values)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert a.quantile(q) == b.quantile(q)

    @settings(max_examples=25, deadline=None)
    @given(
        left=st.lists(FLOATS, min_size=0, max_size=100),
        right=st.lists(FLOATS, min_size=0, max_size=100),
    )
    def test_merge_exact_below_capacity(self, left, right):
        a = QuantileSketch(max_samples=512)
        a.extend(left)
        b = QuantileSketch(max_samples=512)
        b.extend(right)
        a.merge(b)
        assert a.count == len(left) + len(right)
        if left or right:
            for q in (0.5, 0.95, 0.99):
                assert a.quantile(q) == legacy_percentile(left + right, q)

    def test_shorthand_properties(self):
        qs = QuantileSketch()
        qs.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        assert qs.p50 == 3.0
        assert qs.p95 == 4.0
        assert qs.p99 == 4.0
