"""Tests for the streaming statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.summary import RunningStats, VectorStats, mean, std

FLOATS = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestRunningStats:
    def test_basic_moments(self):
        rs = RunningStats()
        rs.extend([2.0, 4.0, 6.0])
        assert rs.mean == pytest.approx(4.0)
        assert rs.std == pytest.approx(np.std([2.0, 4.0, 6.0]))

    def test_empty(self):
        rs = RunningStats()
        assert rs.count == 0
        assert rs.mean == 0.0
        assert rs.std == 0.0

    def test_single_value(self):
        rs = RunningStats()
        rs.add(5.0)
        assert rs.mean == 5.0
        assert rs.std == 0.0

    def test_min_max(self):
        rs = RunningStats()
        rs.extend([3.0, -1.0, 7.0])
        assert rs.min == -1.0
        assert rs.max == 7.0

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(FLOATS, min_size=1, max_size=100))
    def test_matches_numpy(self, values):
        rs = RunningStats()
        rs.extend(values)
        assert rs.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)
        assert rs.std == pytest.approx(float(np.std(values)), rel=1e-6, abs=1e-6)


class TestVectorStats:
    def test_per_component_moments(self):
        vs = VectorStats(2)
        vs.add([1.0, 10.0])
        vs.add([3.0, 30.0])
        assert vs.count == 2
        assert vs.means() == [pytest.approx(2.0), pytest.approx(20.0)]
        assert vs.stds() == [pytest.approx(1.0), pytest.approx(10.0)]

    def test_length_mismatch_rejected(self):
        vs = VectorStats(2)
        with pytest.raises(ValueError):
            vs.add([1.0])

    def test_size_validation(self):
        with pytest.raises(ValueError):
            VectorStats(0)


class TestFunctions:
    def test_mean_and_std(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert std([1.0, 2.0, 3.0]) == pytest.approx(float(np.std([1, 2, 3])))

    def test_degenerate_inputs(self):
        assert mean([]) == 0.0
        assert std([]) == 0.0
        assert std([4.0]) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(FLOATS, min_size=1, max_size=30))
    def test_std_matches_running_stats(self, values):
        # Regression: std() used to special-case n=1 while RunningStats
        # treated it as a valid population of one; both paths must agree
        # on any n >= 1 (population std, divisor n).
        rs = RunningStats()
        rs.extend(values)
        assert std(values) == pytest.approx(rs.std, rel=1e-6, abs=1e-6)

    def test_std_single_value_agrees_with_running_stats(self):
        rs = RunningStats()
        rs.add(7.5)
        assert std([7.5]) == rs.std == 0.0
