"""Tests for the upstream port: out_vc_state, VA, credits, gating engine."""

from __future__ import annotations

import pytest

from repro.core.policies import BaselinePolicy, SensorWisePolicy
from repro.noc.flit import Flit, FlitType
from repro.noc.link import Channel
from repro.noc.output_unit import UpstreamPort
from repro.noc.policy_api import OutVCState, PolicyDecision


def make_port(num_vcs=2, depth=4, policy=None, wake_latency=1, latency=1):
    policy = policy if policy is not None else BaselinePolicy()
    data = Channel("data", latency)
    ctrl = Channel("ctrl", latency)
    return UpstreamPort(num_vcs, depth, policy, data, ctrl, wake_latency=wake_latency), data, ctrl


def head(pkt=0):
    return Flit(pkt, 0, FlitType.HEAD, 0, 1, 0)


def tail(pkt=0, seq=1):
    return Flit(pkt, seq, FlitType.TAIL, 0, 1, 0)


class TestAllocation:
    def test_allocate_idle_vc(self):
        port, _, _ = make_port()
        vc = port.allocate_vc(cycle=0, packet_id=9)
        assert vc is not None
        assert port.entries[vc].state is OutVCState.ACTIVE
        assert port.entries[vc].packet_id == 9

    def test_no_double_allocation(self):
        port, _, _ = make_port(num_vcs=2)
        a = port.allocate_vc(0)
        b = port.allocate_vc(0)
        assert {a, b} == {0, 1}
        assert port.allocate_vc(0) is None

    def test_gated_vc_not_allocatable(self):
        port, _, _ = make_port(num_vcs=2)
        port.apply_decision(PolicyDecision.keep_one(1), cycle=0)
        assert not port.allocatable(0, cycle=10)
        assert port.allocatable(1, cycle=10)

    def test_waking_vc_not_allocatable_until_available(self):
        port, _, _ = make_port(num_vcs=2, wake_latency=2, latency=1)
        port.apply_decision(PolicyDecision.gate_all(), cycle=0)
        port.apply_decision(PolicyDecision.keep_one(0), cycle=5)
        # available at 5 + link 1 + wake 2 = 8
        assert not port.allocatable(0, cycle=7)
        assert port.allocatable(0, cycle=8)

    def test_allocation_prefers_policy_idle_vc(self):
        port, _, _ = make_port(num_vcs=4, policy=SensorWisePolicy())
        port.set_most_degraded(2)
        port.set_new_traffic(True)
        port.run_policy(cycle=0)
        kept = port.last_decision.idle_vc
        assert port.allocate_vc(1) == kept


class TestCreditsAndRelease:
    def test_send_consumes_credit(self):
        port, data, _ = make_port(depth=2)
        vc = port.allocate_vc(0)
        port.send_flit(vc, head(), cycle=0)
        assert port.entries[vc].credits == 1
        assert data.in_flight == 1

    def test_send_without_credits_rejected(self):
        port, _, _ = make_port(depth=1)
        vc = port.allocate_vc(0)
        port.send_flit(vc, head(), 0)
        with pytest.raises(RuntimeError):
            port.send_flit(vc, tail(), 0)

    def test_send_on_idle_vc_rejected(self):
        port, _, _ = make_port()
        with pytest.raises(RuntimeError):
            port.send_flit(0, head(), 0)

    def test_release_after_tail_and_credits(self):
        port, _, _ = make_port(depth=2)
        vc = port.allocate_vc(0)
        port.send_flit(vc, head(), 0)
        port.send_flit(vc, tail(), 1)
        assert port.entries[vc].state is OutVCState.ACTIVE
        port.on_credit(vc)
        assert port.entries[vc].state is OutVCState.ACTIVE  # 1 of 2 back
        port.on_credit(vc)
        assert port.entries[vc].state is OutVCState.IDLE

    def test_tail_only_is_not_enough_for_release(self):
        port, _, _ = make_port(depth=2)
        vc = port.allocate_vc(0)
        port.send_flit(vc, tail(seq=0), 0)
        assert port.entries[vc].state is OutVCState.ACTIVE

    def test_credit_overflow_rejected(self):
        port, _, _ = make_port(depth=1)
        with pytest.raises(RuntimeError):
            port.on_credit(0)

    def test_can_send(self):
        port, _, _ = make_port(depth=1)
        assert not port.can_send(0)
        vc = port.allocate_vc(0)
        assert port.can_send(vc)
        port.send_flit(vc, head(), 0)
        assert not port.can_send(vc)


class TestGatingEngine:
    def test_gate_all_idle(self):
        port, _, ctrl = make_port(num_vcs=3)
        port.apply_decision(PolicyDecision.gate_all(), cycle=0)
        assert all(port.entries[v].gated for v in range(3))
        assert ctrl.in_flight == 3
        assert port.gate_commands == 3

    def test_diff_only_commands(self):
        port, _, ctrl = make_port(num_vcs=2)
        port.apply_decision(PolicyDecision.gate_all(), cycle=0)
        port.apply_decision(PolicyDecision.gate_all(), cycle=1)
        assert port.gate_commands == 2  # second application was a no-op

    def test_wake_sets_available_at(self):
        port, _, _ = make_port(num_vcs=2, wake_latency=1, latency=1)
        port.apply_decision(PolicyDecision.gate_all(), cycle=0)
        port.apply_decision(PolicyDecision.keep_one(0), cycle=4)
        assert port.entries[0].available_at == 6
        assert port.wake_commands == 1

    def test_active_vc_never_touched(self):
        port, _, ctrl = make_port(num_vcs=2)
        vc = port.allocate_vc(0)
        port.apply_decision(PolicyDecision.gate_all(), cycle=0)
        assert not port.entries[vc].gated

    def test_policy_state_view(self):
        port, _, _ = make_port(num_vcs=3)
        vc = port.allocate_vc(0)
        port.apply_decision(PolicyDecision.keep_one((vc + 1) % 3), cycle=0)
        states = [port.vc_policy_state(v) for v in range(3)]
        assert states.count(OutVCState.ACTIVE) == 1
        assert states.count(OutVCState.IDLE) == 1
        assert states.count(OutVCState.RECOVERY) == 1

    def test_idle_vc_count(self):
        port, _, _ = make_port(num_vcs=3)
        assert port.idle_vc_count() == 3
        port.apply_decision(PolicyDecision.keep_one(0), cycle=0)
        assert port.idle_vc_count() == 1


class TestMemoization:
    def test_stable_policy_not_rerun_without_changes(self):
        class CountingPolicy(BaselinePolicy):
            stable = True

            def __init__(self):
                self.calls = 0

            def decide(self, ctx):
                self.calls += 1
                return super().decide(ctx)

        policy = CountingPolicy()
        port, _, _ = make_port(policy=policy)
        for cycle in range(10):
            port.set_new_traffic(False)
            port.run_policy(cycle)
        assert policy.calls == 1

    def test_rerun_on_traffic_change(self):
        class CountingPolicy(BaselinePolicy):
            stable = True

            def __init__(self):
                self.calls = 0

            def decide(self, ctx):
                self.calls += 1
                return super().decide(ctx)

        policy = CountingPolicy()
        port, _, _ = make_port(policy=policy)
        port.set_new_traffic(False)
        port.run_policy(0)
        port.set_new_traffic(True)
        port.run_policy(1)
        assert policy.calls == 2

    def test_rerun_on_md_change(self):
        policy = SensorWisePolicy()
        port, _, _ = make_port(num_vcs=4, policy=policy)
        port.set_most_degraded(0)
        port.set_new_traffic(True)
        port.run_policy(0)
        first = port.last_decision
        port.set_most_degraded(3)
        port.run_policy(1)
        assert port.last_decision.awake != first.awake or True  # re-ran
        # VC 3 must now be gated first (it is the most degraded).
        assert 3 not in port.last_decision.awake

    def test_unstable_policy_always_runs(self):
        class CountingPolicy(BaselinePolicy):
            stable = False

            def __init__(self):
                self.calls = 0

            def decide(self, ctx):
                self.calls += 1
                return super().decide(ctx)

        policy = CountingPolicy()
        port, _, _ = make_port(policy=policy)
        for cycle in range(5):
            port.run_policy(cycle)
        assert policy.calls == 5


class TestDownUpSink:
    def test_set_most_degraded_validates(self):
        port, _, _ = make_port(num_vcs=2)
        with pytest.raises(ValueError):
            port.set_most_degraded(5)

    def test_set_most_degraded_latches(self):
        port, _, _ = make_port(num_vcs=2)
        port.set_most_degraded(1)
        assert port.most_degraded_vc == 1


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            make_port(num_vcs=0)
        with pytest.raises(ValueError):
            make_port(depth=0)
        with pytest.raises(ValueError):
            make_port(wake_latency=-1)

    def test_decision_validation(self):
        port, _, _ = make_port(num_vcs=2)
        with pytest.raises(ValueError):
            PolicyDecision.keep_one(5).validate(2)
        with pytest.raises(ValueError):
            PolicyDecision(awake=frozenset((3,)), enable=True, idle_vc=0).validate(2)
