"""Tests for the resource-governance layer (``repro.experiments.governor``).

Layered like the implementation:

* pure-logic tests — failure-kind classification, the deterministic
  cost estimator, budget derivation (explicit caps vs adaptive
  defaults), spec validation, the quarantine ledger riding on the
  LeaseTable poison rule, OverloadGuard verdicts and the commit
  CircuitBreaker;
* ``ResourceBudget.install`` probed in a forked child (the kernel-side
  rlimits must never be installed in the test process itself);
* live governed executors — a CPU-burning worker killed by ``SIGXCPU``
  and typed ``cpu``, a self-SIGKILLing worker typed ``oom``, a hanging
  worker typed ``timeout``, each quarantined after the configured
  number of breaches while healthy units complete;
* the plain-``map`` contract — a governed campaign with one
  budget-busting scenario raises :class:`BudgetExceeded` only after
  every other unit completed and was journaled, and a subsequent
  resume serves the completed set from the journal with identical
  results.

Worker functions live at module level so they survive the trip into
per-attempt worker processes.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import signal
import time

import pytest

from repro.experiments.checkpoint import CheckpointManager
from repro.experiments.config import FaultSpec, ScenarioConfig
from repro.experiments.governor import (
    BASE_CPU_SECONDS,
    BROWNOUT,
    BUDGET_KINDS,
    OK,
    SHED,
    WALL_SLACK_FACTOR,
    BudgetExceeded,
    CircuitBreaker,
    GovernorSpec,
    OverloadGuard,
    ResourceBudget,
    ScenarioGovernor,
    classify_failure_kind,
    estimate_cost,
)
from repro.experiments.parallel import Executor, ScenarioFailure, cache_key
from repro.experiments.runner import run_scenario


def _tiny_scenario(seed: int = 1) -> ScenarioConfig:
    return ScenarioConfig(
        num_nodes=4, num_vcs=2, cycles=60, warmup=10,
        sensor_sample_period=16, seed=seed,
    )


def _tiny_unit(seed: int = 1):
    return (_tiny_scenario(seed), 0)


#: A real scenario dense enough to burn well past a 1-second CPU
#: budget (validate-every-cycle invariant sweeps over a 4x4 mesh).
def _heavy_unit():
    return (
        ScenarioConfig(
            num_nodes=16, num_vcs=4, injection_rate=0.3,
            cycles=2000, warmup=500, validate_every=1, seed=3,
        ),
        0,
    )


def _fingerprint(result):
    return (result.duty_cycles, result.md_vc, result.net_stats, result.initial_vths)


def _burn_worker(unit):
    """Burns CPU forever; only a kernel rlimit stops it."""
    x = 0.0
    while True:
        x += math.sqrt((x % 97.0) + 1.0)


def _sigkill_worker(unit):
    """Dies exactly like the kernel OOM killer leaves a worker."""
    os.kill(os.getpid(), signal.SIGKILL)


def _oom_worker(unit):
    raise MemoryError("simulated allocation failure")


def _hang_worker(unit):
    time.sleep(30)


# ----------------------------------------------------------------------
# Failure-kind classification
# ----------------------------------------------------------------------
class TestClassifyFailureKind:
    def test_deadline_and_lease_expiry_are_timeouts(self):
        assert classify_failure_kind("Timeout") == "timeout"
        assert classify_failure_kind("LeaseExpired") == "timeout"
        assert classify_failure_kind("RuntimeError", timed_out=True) == "timeout"

    def test_sigxcpu_is_cpu(self):
        assert classify_failure_kind("WorkerDied", exitcode=-signal.SIGXCPU) == "cpu"

    def test_sigkill_and_memoryerror_are_oom(self):
        assert classify_failure_kind("WorkerDied", exitcode=-signal.SIGKILL) == "oom"
        assert classify_failure_kind("MemoryError") == "oom"

    def test_everything_else_is_crash(self):
        assert classify_failure_kind("RuntimeError") == "crash"
        assert classify_failure_kind("WorkerDied", exitcode=-signal.SIGTERM) == "crash"
        assert classify_failure_kind("WorkerDied", exitcode=1) == "crash"
        assert classify_failure_kind("") == "crash"

    def test_timeout_outranks_exit_signal(self):
        # A deadline kill arrives as SIGKILL too; the parent knows why.
        kind = classify_failure_kind(
            "WorkerDied", timed_out=True, exitcode=-signal.SIGKILL
        )
        assert kind == "timeout"


class TestScenarioFailureKind:
    def _failure(self, **kwargs):
        defaults = dict(
            scenario=_tiny_scenario(), iteration=0, error_type="RuntimeError",
            message="boom", attempts=1, timed_out=False, wall_seconds=0.1,
        )
        defaults.update(kwargs)
        return ScenarioFailure(**defaults)

    def test_kind_derived_from_error_type(self):
        assert self._failure().kind == "crash"
        assert self._failure(error_type="MemoryError").kind == "oom"
        assert self._failure(error_type="Timeout", timed_out=True).kind == "timeout"

    def test_explicit_kind_wins(self):
        assert self._failure(kind="cpu").kind == "cpu"

    def test_str_keeps_error_type_for_crashes(self):
        # The historical rendering (goldens depend on it).
        assert "RuntimeError" in str(self._failure())

    def test_str_shows_kind_and_quarantine_for_budget_failures(self):
        text = str(self._failure(kind="cpu", quarantined=True))
        assert "cpu" in text
        assert "[quarantined]" in text


# ----------------------------------------------------------------------
# Cost estimator + budget derivation
# ----------------------------------------------------------------------
class TestEstimateCost:
    def test_deterministic(self):
        a = estimate_cost(_tiny_scenario())
        b = estimate_cost(_tiny_scenario())
        assert a == b

    def test_monotonic_in_cycles_and_mesh_size(self):
        small = estimate_cost(_tiny_scenario())
        longer = estimate_cost(
            ScenarioConfig(num_nodes=4, num_vcs=2, cycles=600, warmup=10,
                           sensor_sample_period=16)
        )
        wider = estimate_cost(
            ScenarioConfig(num_nodes=16, num_vcs=4, cycles=60, warmup=10,
                           sensor_sample_period=16)
        )
        assert longer.work > small.work
        assert longer.cpu_seconds > small.cpu_seconds
        assert wider.work > small.work
        assert wider.rss_bytes > small.rss_bytes

    def test_expensive_features_raise_the_estimate(self):
        base = ScenarioConfig(num_nodes=4, num_vcs=2, cycles=60, warmup=10,
                              sensor_sample_period=16)
        plain = estimate_cost(base)
        faulty = estimate_cost(
            ScenarioConfig(
                num_nodes=4, num_vcs=2, cycles=60, warmup=10,
                sensor_sample_period=16,
                faults=(FaultSpec(kind="stuck-gated", rate=0.5),),
            )
        )
        validating = estimate_cost(
            ScenarioConfig(num_nodes=4, num_vcs=2, cycles=60, warmup=10,
                           sensor_sample_period=16, validate_every=1)
        )
        assert faulty.work > plain.work
        assert validating.work > plain.work

    def test_as_dict_round_trips_to_json_types(self):
        blob = estimate_cost(_tiny_scenario()).as_dict()
        assert set(blob) == {"work", "cpu_seconds", "rss_bytes"}
        assert all(isinstance(v, (int, float)) for v in blob.values())


class TestGovernorSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            GovernorSpec(cpu_seconds=0)
        with pytest.raises(ValueError):
            GovernorSpec(wall_seconds=-1.0)
        with pytest.raises(ValueError):
            GovernorSpec(rss_bytes=-5)
        with pytest.raises(ValueError):
            GovernorSpec(scale=0.0)
        with pytest.raises(ValueError):
            GovernorSpec(quarantine_threshold=0)

    def test_adaptive_budget_tracks_the_estimate(self):
        governor = ScenarioGovernor(GovernorSpec())
        scenario = _tiny_scenario()
        budget = governor.budget_for(scenario)
        estimate = estimate_cost(scenario)
        assert budget.cpu_seconds == pytest.approx(estimate.cpu_seconds)
        assert budget.wall_seconds == pytest.approx(
            estimate.cpu_seconds * WALL_SLACK_FACTOR
        )
        assert budget.rss_bytes == estimate.rss_bytes
        # Adaptive budgets must sit far above a healthy run.
        assert budget.cpu_seconds >= BASE_CPU_SECONDS

    def test_explicit_caps_override_adaptive_dimensions(self):
        governor = ScenarioGovernor(
            GovernorSpec(cpu_seconds=7.0, rss_bytes=123 << 20)
        )
        budget = governor.budget_for(_tiny_scenario())
        assert budget.cpu_seconds == 7.0
        assert budget.rss_bytes == 123 << 20
        # The explicit CPU cap bounds the derived wall limit too.
        assert budget.wall_seconds == pytest.approx(7.0 * WALL_SLACK_FACTOR)

    def test_scale_multiplies_adaptive_defaults_only(self):
        scenario = _tiny_scenario()
        scaled = ScenarioGovernor(GovernorSpec(scale=2.0)).budget_for(scenario)
        plain = ScenarioGovernor(GovernorSpec()).budget_for(scenario)
        assert scaled.cpu_seconds == pytest.approx(plain.cpu_seconds * 2.0)
        pinned = ScenarioGovernor(
            GovernorSpec(cpu_seconds=7.0, scale=2.0)
        ).budget_for(scenario)
        assert pinned.cpu_seconds == 7.0

    def test_non_adaptive_spec_leaves_unset_dimensions_open(self):
        governor = ScenarioGovernor(GovernorSpec(cpu_seconds=5.0, adaptive=False))
        budget = governor.budget_for(_tiny_scenario())
        assert budget.cpu_seconds == 5.0
        assert budget.wall_seconds is None
        assert budget.rss_bytes is None


class TestResourceBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceBudget(wall_seconds=0)
        with pytest.raises(ValueError):
            ResourceBudget(cpu_seconds=-1)
        with pytest.raises(ValueError):
            ResourceBudget(rss_bytes=0)

    def test_deadline_takes_the_tighter_limit(self):
        budget = ResourceBudget(wall_seconds=10.0)
        assert budget.deadline(None) == 10.0
        assert budget.deadline(5.0) == 5.0
        assert budget.deadline(20.0) == 10.0
        assert ResourceBudget().deadline(None) is None
        assert ResourceBudget().deadline(3.0) == 3.0

    def test_install_sets_kernel_limits_in_a_child(self):
        pytest.importorskip("resource")
        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_install_probe, args=(child,))
        proc.start()
        assert parent.poll(30), "install probe never reported"
        installed, cpu_limits = parent.recv()
        proc.join(timeout=10)
        assert "cpu" in installed
        # Soft limit at the (ceiled) budget, SIGKILL backstop one above.
        assert cpu_limits == (2, 3)
        assert any(name in installed for name in ("rlimit_as", "rlimit_data"))


def _install_probe(conn):
    budget = ResourceBudget(cpu_seconds=1.5, rss_bytes=8 << 30)
    installed = budget.install()
    import resource

    conn.send((installed, resource.getrlimit(resource.RLIMIT_CPU)))
    conn.close()


# ----------------------------------------------------------------------
# Quarantine ledger (LeaseTable poison rule, evaluated locally)
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_quarantined_after_threshold_breaches(self):
        governor = ScenarioGovernor(GovernorSpec(quarantine_threshold=2))
        scenario = _tiny_scenario()
        key = cache_key(scenario, 0)
        assert governor.record_breach(key, scenario, 0, "cpu", 1.0) is False
        assert not governor.is_quarantined(key)
        assert governor.record_breach(key, scenario, 0, "cpu", 1.1) is True
        assert governor.is_quarantined(key)
        assert governor.counters["breach_cpu"] == 2
        assert governor.counters["quarantined"] == 1

    def test_crashes_never_count_as_breaches(self):
        governor = ScenarioGovernor(GovernorSpec(quarantine_threshold=1))
        scenario = _tiny_scenario()
        key = cache_key(scenario, 0)
        assert governor.record_breach(key, scenario, 0, "crash", 1.0) is False
        assert not governor.is_quarantined(key)
        assert governor.summary() is None

    def test_quarantine_record_reports_predicted_vs_actual(self):
        governor = ScenarioGovernor(GovernorSpec(quarantine_threshold=1))
        scenario = _tiny_scenario()
        key = cache_key(scenario, 0)
        assert governor.record_breach(key, scenario, 0, "oom", 2.5) is True
        record = governor.quarantine_records[key]
        assert record["kind"] == "oom"
        assert record["label"] == scenario.label
        assert record["breaches"] == 1
        assert record["actual_wall_seconds"] == 2.5
        assert record["predicted"] == estimate_cost(scenario).as_dict()
        assert set(record["budget"]) == {"wall_seconds", "cpu_seconds", "rss_bytes"}

    def test_keys_quarantine_independently(self):
        governor = ScenarioGovernor(GovernorSpec(quarantine_threshold=1))
        a, b = _tiny_scenario(1), _tiny_scenario(2)
        assert governor.record_breach(cache_key(a, 0), a, 0, "timeout", 1.0)
        assert not governor.is_quarantined(cache_key(b, 0))

    def test_summary_counts_breaches_by_kind(self):
        governor = ScenarioGovernor(GovernorSpec(quarantine_threshold=2))
        scenario = _tiny_scenario()
        key = cache_key(scenario, 0)
        assert governor.summary() is None
        governor.record_breach(key, scenario, 0, "cpu", 1.0)
        governor.record_breach(key, scenario, 0, "timeout", 2.0)
        summary = governor.summary()
        assert "2 budget breach(es)" in summary
        assert "1 cpu" in summary
        assert "1 timeout" in summary
        assert "1 quarantined" in summary


class TestBudgetExceeded:
    def _failure(self, seed, quarantined=True):
        return ScenarioFailure(
            scenario=_tiny_scenario(seed), iteration=0, error_type="WorkerDied",
            message="budget", attempts=2, timed_out=False, wall_seconds=1.0,
            kind="cpu", quarantined=quarantined,
        )

    def test_message_counts_failures_and_quarantines(self):
        exc = BudgetExceeded([self._failure(1), self._failure(2, quarantined=False)])
        assert "2 scenario(s)" in str(exc)
        assert "(1 quarantined)" in str(exc)
        assert len(exc.failures) == 2

    def test_long_failure_lists_are_elided(self):
        exc = BudgetExceeded([self._failure(seed) for seed in range(5)])
        assert "... 2 more" in str(exc)


# ----------------------------------------------------------------------
# Overload guard + circuit breaker (coordinator-side)
# ----------------------------------------------------------------------
class TestOverloadGuard:
    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadGuard(max_queue_depth=0)
        with pytest.raises(ValueError):
            OverloadGuard(max_inflight=0)
        with pytest.raises(ValueError):
            OverloadGuard(brownout_fraction=0.0)
        with pytest.raises(ValueError):
            OverloadGuard(brownout_fraction=1.5)

    def test_verdict_escalates_with_pressure(self):
        guard = OverloadGuard(max_queue_depth=100, max_inflight=10)
        assert guard.verdict(0, 0) == OK
        assert guard.verdict(50, 2) == OK
        assert guard.verdict(80, 0) == BROWNOUT  # 0.8 of queue limit
        assert guard.verdict(0, 8) == BROWNOUT  # 0.8 of inflight limit
        assert guard.verdict(100, 0) == SHED
        assert guard.verdict(0, 10) == SHED
        assert guard.verdict(250, 10) == SHED

    def test_worst_signal_wins(self):
        guard = OverloadGuard(max_queue_depth=100, max_inflight=10)
        # Queue healthy, inflight saturated: still shed.
        assert guard.verdict(1, 10) == SHED

    def test_verdict_is_read_only_and_assess_counts(self):
        guard = OverloadGuard(max_queue_depth=10, max_inflight=10)
        guard.verdict(10, 0)
        guard.verdict(8, 0)
        assert guard.counters == {"brownouts": 0, "sheds": 0}
        assert guard.assess(10, 0) == SHED
        assert guard.assess(8, 0) == BROWNOUT
        assert guard.assess(0, 0) == OK
        assert guard.counters == {"brownouts": 1, "sheds": 1}


class TestCircuitBreaker:
    def test_opens_exactly_once_at_threshold(self):
        breaker = CircuitBreaker(threshold=3)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # the open transition
        assert breaker.open
        assert breaker.record_failure() is False  # already open
        assert breaker.trips == 1

    def test_any_success_closes(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.open
        breaker.record_success()
        assert not breaker.open
        assert breaker.consecutive_failures == 0
        # Re-opens after a fresh run of failures.
        breaker.record_failure()
        assert breaker.record_failure() is True
        assert breaker.trips == 2

    def test_snapshot_and_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        breaker = CircuitBreaker(threshold=5)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap == {
            "open": False, "consecutive_failures": 1,
            "threshold": 5, "trips": 0,
        }


# ----------------------------------------------------------------------
# Live governed executors
# ----------------------------------------------------------------------
class TestGovernedExecutor:
    def test_cpu_burner_killed_typed_and_quarantined(self):
        executor = Executor(
            max_workers=2, retries=2, retry_backoff=0.01,
            worker=_burn_worker,
            governor=GovernorSpec(cpu_seconds=1.0, wall_seconds=30.0,
                                  quarantine_threshold=2),
        )
        (outcome,) = executor.map_robust([_tiny_unit()])
        assert isinstance(outcome, ScenarioFailure)
        assert outcome.kind == "cpu"
        assert outcome.quarantined
        # Quarantine stops the retry ladder at the threshold, not at
        # the executor's retry budget.
        assert outcome.attempts == 2
        assert outcome.budget is not None
        assert outcome.budget["budget"]["cpu_seconds"] == 1.0
        assert outcome.budget["actual_wall_seconds"] > 0
        assert "governor" in executor.summary()
        assert "2 cpu" in executor.summary()

    def test_sigkilled_worker_typed_oom(self):
        executor = Executor(
            max_workers=2, retries=1, retry_backoff=0.01,
            worker=_sigkill_worker,
            governor=GovernorSpec(cpu_seconds=60.0, wall_seconds=30.0,
                                  quarantine_threshold=1),
        )
        (outcome,) = executor.map_robust([_tiny_unit()])
        assert isinstance(outcome, ScenarioFailure)
        assert outcome.error_type == "WorkerDied"
        assert outcome.kind == "oom"
        assert outcome.quarantined
        assert outcome.attempts == 1

    def test_sigkilled_worker_typed_oom_without_governor(self):
        # The typed kind rides every failure record, governed or not.
        executor = Executor(
            max_workers=2, retries=1, retry_backoff=0.01,
            worker=_sigkill_worker,
        )
        (outcome,) = executor.map_robust([_tiny_unit()])
        assert isinstance(outcome, ScenarioFailure)
        assert outcome.kind == "oom"
        assert not outcome.quarantined
        assert outcome.budget is None
        assert outcome.attempts == 2  # ungoverned: full retry ladder

    def test_wall_budget_breach_typed_timeout(self):
        executor = Executor(
            max_workers=2, retries=2, retry_backoff=0.01,
            worker=_hang_worker,
            governor=GovernorSpec(wall_seconds=0.5, cpu_seconds=60.0,
                                  quarantine_threshold=1),
        )
        (outcome,) = executor.map_robust([_tiny_unit()])
        assert isinstance(outcome, ScenarioFailure)
        assert outcome.timed_out
        assert outcome.kind == "timeout"
        assert outcome.quarantined
        assert outcome.attempts == 1

    def test_memoryerror_typed_oom_in_serial_executor(self):
        executor = Executor(
            max_workers=1, retries=1, retry_backoff=0.01,
            worker=_oom_worker,
            governor=GovernorSpec(cpu_seconds=60.0, wall_seconds=30.0,
                                  quarantine_threshold=1),
        )
        (outcome,) = executor.map_robust([_tiny_unit()])
        assert isinstance(outcome, ScenarioFailure)
        assert outcome.error_type == "MemoryError"
        assert outcome.kind == "oom"
        assert outcome.quarantined

    def test_healthy_units_complete_under_governance(self):
        executor = Executor(
            max_workers=2,
            governor=GovernorSpec(quarantine_threshold=2),
        )
        units = [_tiny_unit(seed=1), _tiny_unit(seed=2)]
        results = executor.map(units)
        assert [_fingerprint(r) for r in results] == [
            _fingerprint(run_scenario(s, i)) for s, i in units
        ]
        assert "governor" not in executor.summary()


class TestGovernedCampaignContract:
    def test_budget_exceeded_after_others_complete_then_resume(self, tmp_path):
        """The ISSUE's acceptance scenario, serially: one scenario busts
        its CPU budget and is quarantined, every other unit completes
        and is journaled, and a resume with a larger budget serves the
        completed set from the journal with identical results."""
        units = [_tiny_unit(seed=1), _tiny_unit(seed=2), _heavy_unit()]
        checkpoint = CheckpointManager(tmp_path / "ckpt")
        executor = Executor(
            max_workers=2, retries=0, retry_backoff=0.01,
            checkpoint=checkpoint,
            governor=GovernorSpec(cpu_seconds=1.0, wall_seconds=60.0,
                                  quarantine_threshold=1),
        )
        with pytest.raises(BudgetExceeded) as excinfo:
            executor.map(units)
        failures = excinfo.value.failures
        assert len(failures) == 1
        assert failures[0].kind == "cpu"
        assert failures[0].quarantined
        assert failures[0].scenario == units[2][0]
        # The healthy units were journaled before the raise.
        assert len(checkpoint.journal) == 2
        checkpoint.close()

        resumed = CheckpointManager(tmp_path / "ckpt")
        assert resumed.journal.replayed == 2
        retry = Executor(max_workers=2, checkpoint=resumed)
        results = retry.map(units)
        assert [_fingerprint(r) for r in results] == [
            _fingerprint(run_scenario(s, i)) for s, i in units
        ]
        # Only the quarantined offender actually re-ran.
        assert retry.stats.journal_hits == 2
