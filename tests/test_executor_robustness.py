"""Tests for Executor.map_robust: per-attempt timeouts, bounded retries
with backoff, structured ScenarioFailure records, and corrupt-cache
accounting.  Worker functions live at module level so they survive the
trip into per-attempt worker processes."""

from __future__ import annotations

import dataclasses
import os
import time

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import (
    Executor,
    ResultCache,
    RetryBackoff,
    ScenarioFailure,
    cache_key,
    make_executor,
)

#: Environment variable carrying the scratch path of the flaky workers
#: (inherited by worker processes under both fork and spawn).
_SCRATCH_ENV = "REPRO_TEST_FLAKY_PATH"


@dataclasses.dataclass
class _FakeResult:
    """Minimal stand-in for ScenarioResult (what _finish touches)."""

    payload: str = "ok"
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0


def _tiny_unit(seed: int = 1):
    return (
        ScenarioConfig(num_nodes=4, num_vcs=2, cycles=60, warmup=10,
                       sensor_sample_period=16, seed=seed),
        0,
    )


def _ok_worker(unit):
    return _FakeResult(payload=f"seed={unit[0].seed}")


def _crash_worker(unit):
    raise RuntimeError("boom")


def _hang_worker(unit):
    time.sleep(30)
    return _FakeResult()


def _selective_worker(unit):
    if unit[0].seed == 666:
        raise ValueError("cursed seed")
    return _FakeResult(payload=f"seed={unit[0].seed}")


def _flaky_worker(unit):
    """Crashes on the first attempt, succeeds on the second."""
    path = os.environ[_SCRATCH_ENV]
    if not os.path.exists(path):
        with open(path, "w") as fh:
            fh.write("tried")
        raise RuntimeError("first attempt always fails")
    return _FakeResult(payload="recovered")


def _hang_once_worker(unit):
    """Hangs on the first attempt, succeeds on the second."""
    path = os.environ[_SCRATCH_ENV]
    if not os.path.exists(path):
        with open(path, "w") as fh:
            fh.write("tried")
        time.sleep(30)
    return _FakeResult(payload="recovered-after-timeout")


class TestRetryBackoff:
    def test_jitter_stream_deterministic_under_fixed_seed(self):
        first = [RetryBackoff(0.1, jitter=0.5, seed=42).delay(k) for k in range(1, 6)]
        second = [RetryBackoff(0.1, jitter=0.5, seed=42).delay(k) for k in range(1, 6)]
        assert first == second
        other = [RetryBackoff(0.1, jitter=0.5, seed=43).delay(k) for k in range(1, 6)]
        assert first != other

    def test_delays_bounded_by_jitter_envelope(self):
        backoff = RetryBackoff(0.1, jitter=0.5, seed=7)
        for attempt in range(1, 8):
            base = 0.1 * 2 ** (attempt - 1)
            delay = backoff.delay(attempt)
            assert base <= delay <= base * 1.5

    def test_zero_jitter_recovers_pure_exponential(self):
        backoff = RetryBackoff(0.25, jitter=0.0)
        assert [backoff.delay(k) for k in (1, 2, 3)] == [0.25, 0.5, 1.0]

    def test_jitter_desynchronizes_consecutive_delays(self):
        # The point of jitter: two retries at the same attempt number
        # must not collide (anti-thundering-herd).
        backoff = RetryBackoff(1.0, jitter=0.5, seed=1)
        assert backoff.delay(1) != backoff.delay(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBackoff(-1.0)
        with pytest.raises(ValueError):
            RetryBackoff(1.0, jitter=-0.1)

    def test_executor_wires_retry_seed_into_backoff(self):
        """Same retry_seed => the same retry delay schedule."""
        schedules = [
            [
                Executor(
                    max_workers=1, retries=2, retry_backoff=0.05,
                    retry_jitter=0.5, retry_seed=123,
                )._backoff.delay(k)
                for k in (1, 2, 3)
            ]
            for _ in range(2)
        ]
        assert schedules[0] == schedules[1]
        unseeded = Executor(
            max_workers=1, retry_backoff=0.05, retry_jitter=0.0
        )._backoff
        assert unseeded.delay(2) == 0.1  # jitter off: pure exponential


class TestTimeouts:
    def test_hanging_worker_times_out(self):
        executor = Executor(max_workers=2, timeout=0.5, worker=_hang_worker)
        started = time.perf_counter()
        (outcome,) = executor.map_robust([_tiny_unit()])
        elapsed = time.perf_counter() - started
        assert isinstance(outcome, ScenarioFailure)
        assert outcome.timed_out
        assert outcome.error_type == "Timeout"
        assert outcome.attempts == 1
        assert executor.stats.timeouts == 1
        assert executor.stats.failures == 1
        # The 30s sleep was actually interrupted.
        assert elapsed < 10.0

    def test_timeout_then_retry_succeeds(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_SCRATCH_ENV, str(tmp_path / "hang-once"))
        executor = Executor(
            max_workers=1, timeout=0.5, retries=1, retry_backoff=0.01,
            worker=_hang_once_worker,
        )
        (outcome,) = executor.map_robust([_tiny_unit()])
        assert isinstance(outcome, _FakeResult)
        assert outcome.payload == "recovered-after-timeout"
        assert executor.stats.timeouts == 1
        assert executor.stats.retries == 1
        assert executor.stats.failures == 0


class TestRetries:
    def test_crash_exhausts_attempts_with_backoff(self):
        executor = Executor(
            max_workers=1, retries=2, retry_backoff=0.05, worker=_crash_worker
        )
        started = time.perf_counter()
        (outcome,) = executor.map_robust([_tiny_unit()])
        elapsed = time.perf_counter() - started
        assert isinstance(outcome, ScenarioFailure)
        assert outcome.attempts == 3
        assert outcome.error_type == "RuntimeError"
        assert "boom" in outcome.message
        assert not outcome.timed_out
        assert executor.stats.retries == 2
        # Exponential backoff 0.05 + 0.10 must actually have elapsed.
        assert elapsed >= 0.15

    def test_flaky_worker_recovers_on_retry(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_SCRATCH_ENV, str(tmp_path / "flaky"))
        executor = Executor(
            max_workers=1, retries=1, retry_backoff=0.01, worker=_flaky_worker
        )
        (outcome,) = executor.map_robust([_tiny_unit()])
        assert isinstance(outcome, _FakeResult)
        assert outcome.payload == "recovered"
        assert executor.stats.retries == 1
        assert executor.stats.failures == 0

    def test_failure_str_names_the_scenario(self):
        executor = Executor(max_workers=1, worker=_crash_worker)
        (outcome,) = executor.map_robust([_tiny_unit()])
        text = str(outcome)
        assert "4core-inj0.10" in text
        assert "RuntimeError" in text


class TestMixedCampaign:
    def test_failures_keep_their_slots(self):
        units = [_tiny_unit(seed=1), _tiny_unit(seed=666), _tiny_unit(seed=3)]
        executor = Executor(
            max_workers=2, retries=1, retry_backoff=0.01, worker=_selective_worker
        )
        results = executor.map_robust(units)
        assert isinstance(results[0], _FakeResult)
        assert results[0].payload == "seed=1"
        assert isinstance(results[1], ScenarioFailure)
        assert results[1].error_type == "ValueError"
        assert isinstance(results[2], _FakeResult)
        assert results[2].payload == "seed=3"
        assert executor.stats.failures == 1

    def test_summary_reports_failures(self):
        executor = Executor(max_workers=1, worker=_crash_worker)
        executor.map_robust([_tiny_unit()])
        summary = executor.summary()
        assert "1 failed" in summary
        assert "0 timeouts" in summary

    def test_clean_summary_stays_clean(self):
        executor = Executor(max_workers=1, worker=_ok_worker)
        executor.map_robust([_tiny_unit()])
        assert "failed" not in executor.summary()


class TestRobustVsPlainMap:
    def test_real_scenarios_identical_results(self):
        units = [_tiny_unit(seed=1), _tiny_unit(seed=2)]
        plain = Executor(max_workers=1).map(units)
        robust = Executor(max_workers=2, timeout=300).map_robust(units)
        for a, b in zip(plain, robust):
            assert a.duty_cycles == b.duty_cycles
            assert a.md_vc == b.md_vc
            assert a.net_stats.avg_packet_latency == b.net_stats.avg_packet_latency


class TestCorruptCache:
    def test_corrupt_entries_counted_and_warned(self, tmp_path):
        unit = _tiny_unit()
        cache = ResultCache(tmp_path)
        key = cache_key(*unit)
        (tmp_path / f"{key}.pkl").write_bytes(b"this is not a pickle")

        lines = []
        executor = Executor(max_workers=1, cache=cache, progress=lines.append)
        (result,) = executor.map([unit])
        # Served as a miss: the scenario was recomputed...
        assert result.duty_cycles
        # ...and the corruption is visible exactly once.
        assert executor.stats.cache_corrupt == 1
        assert "1 corrupt cache entries" in executor.summary()
        warnings = [l for l in lines if "corrupt result-cache" in l]
        assert len(warnings) == 1

    def test_plain_miss_is_not_corruption(self, tmp_path):
        executor = Executor(max_workers=1, cache=ResultCache(tmp_path))
        executor.map([_tiny_unit()])
        assert executor.stats.cache_corrupt == 0
        assert "corrupt" not in executor.summary()


class TestMakeExecutor:
    def test_plain_serial_returns_none(self):
        assert make_executor(1) is None
        assert make_executor(None) is None

    def test_robustness_knobs_force_an_executor(self, tmp_path):
        assert isinstance(make_executor(1, timeout=5.0), Executor)
        assert isinstance(make_executor(1, retries=2), Executor)
        assert isinstance(make_executor(1, cache_dir=tmp_path), Executor)
        assert isinstance(make_executor(4), Executor)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            Executor(timeout=0)
        with pytest.raises(ValueError):
            Executor(retries=-1)
        with pytest.raises(ValueError):
            Executor(retry_backoff=-0.1)
