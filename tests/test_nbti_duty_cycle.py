"""Tests for NBTI-duty-cycle accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nbti.duty_cycle import DutyCycleCounter, WindowedDutyCycle, duty_cycles_percent


class TestDutyCycleCounter:
    def test_paper_definition(self):
        c = DutyCycleCounter()
        c.record(stressed=True, cycles=3)
        c.record(stressed=False, cycles=1)
        assert c.duty_cycle == pytest.approx(75.0)

    def test_empty_counter_reports_full_stress(self):
        assert DutyCycleCounter().duty_cycle == 100.0

    def test_alpha_is_duty_over_100(self):
        c = DutyCycleCounter(stress_cycles=1, recovery_cycles=3)
        assert c.alpha == pytest.approx(0.25)

    def test_total_cycles(self):
        c = DutyCycleCounter(stress_cycles=5, recovery_cycles=7)
        assert c.total_cycles == 12

    def test_reset(self):
        c = DutyCycleCounter(stress_cycles=5, recovery_cycles=7)
        c.reset()
        assert c.snapshot() == (0, 0)
        assert c.duty_cycle == 100.0

    def test_merge_sums_tallies(self):
        a = DutyCycleCounter(stress_cycles=2, recovery_cycles=3)
        b = DutyCycleCounter(stress_cycles=4, recovery_cycles=1)
        merged = a.merge(b)
        assert merged.snapshot() == (6, 4)
        # Originals untouched.
        assert a.snapshot() == (2, 3)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            DutyCycleCounter(stress_cycles=-1)
        with pytest.raises(ValueError):
            DutyCycleCounter().record(True, cycles=-2)

    def test_record_default_single_cycle(self):
        c = DutyCycleCounter()
        c.record(True)
        c.record(False)
        assert c.snapshot() == (1, 1)

    def test_zero_cycle_record_is_a_no_op(self):
        # The interval-accounting flush emits zero-length spans at
        # state-change boundaries; they must not move the tallies or
        # flip an unobserved counter away from the 100% convention.
        c = DutyCycleCounter()
        c.record(True, cycles=0)
        c.record(False, cycles=0)
        assert c.snapshot() == (0, 0)
        assert c.total_cycles == 0
        assert c.duty_cycle == 100.0
        c.record(False, cycles=10)
        c.record(True, cycles=0)
        assert c.snapshot() == (0, 10)
        assert c.duty_cycle == 0.0

    def test_reset_after_warmup_restarts_accounting(self):
        # The scenario runner's warm-up discard: reset must return the
        # counter to the pristine fully-stressed convention, and the
        # measured run must then accumulate from zero.
        c = DutyCycleCounter()
        for _ in range(100):
            c.record(True)
        for _ in range(60):
            c.record(False)
        c.reset()
        assert c.snapshot() == (0, 0)
        assert c.total_cycles == 0
        assert c.duty_cycle == 100.0
        c.record(True, cycles=3)
        c.record(False, cycles=9)
        assert c.snapshot() == (3, 9)
        assert c.duty_cycle == pytest.approx(25.0)

    @settings(max_examples=50, deadline=None)
    @given(bits=st.lists(st.booleans(), min_size=1, max_size=200))
    def test_duty_cycle_always_in_range(self, bits):
        c = DutyCycleCounter()
        for b in bits:
            c.record(b)
        assert 0.0 <= c.duty_cycle <= 100.0
        assert c.duty_cycle == pytest.approx(100.0 * sum(bits) / len(bits))

    @settings(max_examples=30, deadline=None)
    @given(
        bits_a=st.lists(st.booleans(), max_size=50),
        bits_b=st.lists(st.booleans(), max_size=50),
    )
    def test_merge_equals_concatenation(self, bits_a, bits_b):
        a, b, both = DutyCycleCounter(), DutyCycleCounter(), DutyCycleCounter()
        for bit in bits_a:
            a.record(bit)
            both.record(bit)
        for bit in bits_b:
            b.record(bit)
            both.record(bit)
        assert a.merge(b).snapshot() == both.snapshot()


class TestWindowedDutyCycle:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            WindowedDutyCycle(0)

    def test_empty_window_reports_full_stress(self):
        assert WindowedDutyCycle(8).duty_cycle == 100.0

    def test_partial_window(self):
        w = WindowedDutyCycle(10)
        w.record(True)
        w.record(False)
        assert w.samples == 2
        assert w.duty_cycle == pytest.approx(50.0)

    def test_old_samples_fall_out(self):
        w = WindowedDutyCycle(4)
        for _ in range(4):
            w.record(True)
        assert w.duty_cycle == 100.0
        for _ in range(4):
            w.record(False)
        assert w.duty_cycle == 0.0

    def test_window_exactly_full(self):
        # The boundary where eviction starts: samples == window must
        # report the exact duty of the window contents, and the very
        # next push must evict the oldest bit.
        w = WindowedDutyCycle(4)
        for bit in (True, False, True, True):
            w.record(bit)
        assert w.samples == w.window == 4
        assert w.duty_cycle == pytest.approx(75.0)
        w.record(False)  # evicts the leading True
        assert w.samples == 4
        assert w.duty_cycle == pytest.approx(50.0)

    @settings(max_examples=40, deadline=None)
    @given(
        window=st.integers(min_value=1, max_value=32),
        bits=st.lists(st.booleans(), min_size=1, max_size=120),
    )
    def test_window_matches_tail_of_stream(self, window, bits):
        w = WindowedDutyCycle(window)
        for b in bits:
            w.record(b)
        tail = bits[-window:]
        assert w.samples == len(tail)
        assert w.duty_cycle == pytest.approx(100.0 * sum(tail) / len(tail))


def test_duty_cycles_percent_helper():
    counters = [
        DutyCycleCounter(stress_cycles=1, recovery_cycles=1),
        DutyCycleCounter(stress_cycles=3, recovery_cycles=1),
    ]
    assert duty_cycles_percent(counters) == [pytest.approx(50.0), pytest.approx(75.0)]
