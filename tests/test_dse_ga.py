"""Tests for the NSGA-II engine, dedup accounting and Pareto reports.

Covers the two headline invariants of ``repro-noc dse search``:

* **Determinism** — same seed, byte-identical Pareto-front JSON, with
  all randomness routed through labeled ``scenario_seed`` streams.
* **Dedup** — a genome re-proposed in a later generation (or a rerun
  sharing the result cache) costs zero additional simulator runs,
  asserted through the engine counters AND ``ExecutorStats``.
"""

from __future__ import annotations

import json

import pytest

from repro.dse.ga import DSEEngine, GAConfig, verify_ga_state
from repro.dse.objectives import resolve_objectives
from repro.dse.report import DSEResult
from repro.dse.space import DesignSpace, Parameter
from repro.experiments.checkpoint import CheckpointManager
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import Executor
from repro.nbti.process_variation import scenario_seed


def micro_space():
    base = ScenarioConfig(num_nodes=2, cycles=300, warmup=100)
    return DesignSpace(
        parameters=(
            Parameter.categorical("policy", ("rr-no-sensor", "sensor-wise")),
            Parameter("rotation_period", (16, 64, 256)),
            Parameter("wake_latency", (1, 2)),
            Parameter("buffer_depth", (2, 4)),
        ),
        base=base,
    )


def micro_objectives():
    return resolve_objectives(["md_duty", "p95_latency"])


def run_engine(config, **kwargs):
    engine = DSEEngine(micro_space(), micro_objectives(), config, **kwargs)
    engine.run()
    return engine


def report_of(engine):
    return DSEResult.from_archive(
        engine.space, engine.objectives, engine.archive,
        counters=engine.counters, savings=engine.evaluations_saved(),
        surrogate_scores=engine.surrogate_scores,
    )


class TestGAConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GAConfig(population=1)
        with pytest.raises(ValueError):
            GAConfig(generations=0)
        with pytest.raises(ValueError):
            GAConfig(offspring_multiplier=0)


class TestDeterminism:
    def test_same_seed_byte_identical_pareto_json(self):
        """Satellite invariant: the whole report is a pure function of
        the seed (and the space/config), byte for byte."""
        config = GAConfig(
            population=4, generations=3, seed=11, surrogate_min_samples=6,
        )
        first = report_of(run_engine(config)).to_json()
        second = report_of(run_engine(config)).to_json()
        assert first == second
        assert first.endswith("\n")
        json.loads(first)  # well-formed

    def test_rng_streams_are_labeled_and_stable(self):
        config = GAConfig(population=4, generations=1, seed=5)
        engine = DSEEngine(micro_space(), micro_objectives(), config)
        assert (
            engine._rng(2, "vary").random()
            == engine._rng(2, "vary").random()
        )
        assert (
            engine._rng(2, "vary").random()
            != engine._rng(3, "vary").random()
        )
        # The stream is rooted in the shared scenario_seed derivation.
        import random as random_module

        expected = random_module.Random(
            scenario_seed("dse", 5, 2, "vary")
        ).random()
        assert engine._rng(2, "vary").random() == expected

    def test_digest_changes_with_space_and_config(self):
        config = GAConfig(population=4, generations=1, seed=5)
        engine = DSEEngine(micro_space(), micro_objectives(), config)
        other_config = GAConfig(population=6, generations=1, seed=5)
        other = DSEEngine(micro_space(), micro_objectives(), other_config)
        assert engine.digest() != other.digest()


class TestDedup:
    def test_reproposed_genomes_cost_zero_new_simulations(self):
        """Satellite invariant: a 2-generation GA whose second generation
        re-proposes the first generation's genomes performs zero new
        simulator invocations (mutation off => offspring clone parents)."""
        config = GAConfig(
            population=4, generations=2, seed=3,
            mutation_rate=0.0, crossover_rate=0.0, use_surrogate=False,
        )
        executor = Executor(max_workers=1)
        engine = run_engine(config, executor=executor)
        stats = executor.stats
        # Generation 0 simulated the initial population; generation 1's
        # clones were all served from the archive.
        assert engine.counters["simulated"] == config.population
        assert stats.units_total == config.population
        assert engine.counters["archive_hits"] == config.population
        assert engine.counters["proposed"] == 2 * config.population

    def test_shared_cache_rerun_is_100_percent_cache_hits(self, tmp_path):
        """Satellite invariant: re-running the same search against the
        same result cache reports 100% cache hits via ExecutorStats."""
        config = GAConfig(
            population=4, generations=2, seed=3, surrogate_min_samples=6,
        )
        cache_dir = tmp_path / "cache"
        first = Executor(max_workers=1, cache=str(cache_dir))
        engine_one = run_engine(config, executor=first)
        assert first.stats.cache_hits == 0
        assert first.stats.units_total == engine_one.counters["simulated"]

        second = Executor(max_workers=1, cache=str(cache_dir))
        engine_two = run_engine(config, executor=second)
        stats = second.stats
        assert stats.units_total > 0
        assert stats.cache_hits == stats.units_total  # 100% cache hits
        # And the two runs agree exactly.
        assert report_of(engine_one).to_json() == report_of(engine_two).to_json()

    def test_savings_accounting(self):
        config = GAConfig(
            population=4, generations=4, seed=9,
            surrogate_min_samples=6, offspring_multiplier=3,
        )
        engine = run_engine(config)
        savings = engine.evaluations_saved()
        assert savings["proposed"] >= savings["simulated"]
        assert savings["saved"] == savings["proposed"] - savings["simulated"]
        counted = (
            engine.counters["archive_hits"]
            + engine.counters["surrogate_skipped"]
        )
        assert savings["saved"] <= counted


class TestCheckpointing:
    def make_checkpoint(self, tmp_path):
        return CheckpointManager(tmp_path / "ckpt", meta={"command": "dse"})

    def test_state_written_each_generation_and_verifies(self, tmp_path):
        config = GAConfig(population=4, generations=2, seed=3)
        checkpoint = self.make_checkpoint(tmp_path)
        executor = Executor(max_workers=1, checkpoint=checkpoint)
        engine = run_engine(config, executor=executor, checkpoint=checkpoint)
        checkpoint.close()
        state_path = tmp_path / "ckpt" / "ga.state.json"
        ok, summary = verify_ga_state(state_path)
        assert ok, summary
        blob = json.loads(state_path.read_text())
        assert blob["status"] == "complete"
        assert blob["next_generation"] == 2
        assert blob["digest"] == engine.digest()
        assert len(blob["archive"]) == len(engine.archive)

    def test_resume_skips_completed_generations(self, tmp_path):
        config = GAConfig(population=4, generations=3, seed=3)
        checkpoint = self.make_checkpoint(tmp_path)
        executor = Executor(max_workers=1, checkpoint=checkpoint)
        golden = report_of(
            run_engine(config, executor=executor, checkpoint=checkpoint)
        ).to_json()
        checkpoint.close()

        checkpoint = self.make_checkpoint(tmp_path)
        executor = Executor(max_workers=1, checkpoint=checkpoint)
        engine = DSEEngine(
            micro_space(), micro_objectives(), config,
            executor=executor, checkpoint=checkpoint,
        )
        engine.run(resume=True)
        checkpoint.close()
        assert executor.stats.units_total == 0  # nothing re-simulated
        assert report_of(engine).to_json() == golden

    def test_resume_rejects_different_space(self, tmp_path):
        from repro.experiments.checkpoint import CheckpointError

        config = GAConfig(population=4, generations=1, seed=3)
        checkpoint = self.make_checkpoint(tmp_path)
        run_engine(config, checkpoint=checkpoint)
        checkpoint.close()

        other_config = GAConfig(population=6, generations=2, seed=3)
        checkpoint = self.make_checkpoint(tmp_path)
        engine = DSEEngine(
            micro_space(), micro_objectives(), other_config,
            checkpoint=checkpoint,
        )
        with pytest.raises(CheckpointError):
            engine.run(resume=True)
        checkpoint.close()

    def test_verify_ga_state_rejects_garbage(self, tmp_path):
        path = tmp_path / "ga.state.json"
        path.write_text("{not json")
        ok, summary = verify_ga_state(path)
        assert not ok
        path.write_text(json.dumps({"schema": 999}))
        ok, summary = verify_ga_state(path)
        assert not ok and "schema" in summary


class TestReport:
    def test_front_members_carry_raw_objective_values(self):
        config = GAConfig(population=4, generations=2, seed=7)
        engine = run_engine(config)
        result = report_of(engine)
        assert result.objective_names == ("md_duty", "p95_latency")
        assert len(result.front) >= 1
        assert sum(1 for member in result.front if member.knee) == 1
        for member in result.front:
            assert set(member.values) == {
                "policy", "rotation_period", "wake_latency", "buffer_depth",
            }
            assert member.objectives["md_duty"] >= 0.0

    def test_json_roundtrip(self, tmp_path):
        config = GAConfig(population=4, generations=2, seed=7)
        result = report_of(run_engine(config))
        path = tmp_path / "report.json"
        result.write_json(path)
        loaded = DSEResult.load(path)
        assert loaded.to_json() == result.to_json()

    def test_csv_export(self, tmp_path):
        config = GAConfig(population=4, generations=2, seed=7)
        result = report_of(run_engine(config))
        path = tmp_path / "front.csv"
        result.write_csv(path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(result.front) + 1
        assert lines[0].endswith("md_duty,p95_latency,knee")

    def test_empty_archive_rejected(self):
        with pytest.raises(ValueError):
            DSEResult.from_archive(micro_space(), micro_objectives(), {})

    def test_schema_gate(self):
        with pytest.raises(ValueError):
            DSEResult.from_dict({"schema": 0})
