"""Tests for the activity-driven thermal model and aging feedback."""

from __future__ import annotations

import pytest

from repro.area.power import per_router_power_pj
from repro.nbti.thermal import (
    DEFAULT_AMBIENT_K,
    ThermalProfile,
    router_temperatures,
    thermal_aware_projection,
)
from repro.traffic.synthetic import HotspotTraffic
from tests.conftest import build_small_network


def run_network(traffic=None, num_nodes=4, rate=0.3, policy="baseline", cycles=1200):
    net = build_small_network(
        policy=policy, num_nodes=num_nodes, flit_rate=rate, traffic=traffic
    )
    net.run(cycles)
    return net


class TestPerRouterPower:
    def test_every_router_accounted(self):
        net = run_network()
        energies = per_router_power_pj(net)
        assert set(energies) == {0, 1, 2, 3}
        assert all(e > 0 for e in energies.values())

    def test_idle_network_is_leakage_only(self):
        net = run_network(rate=0.0)
        energies = per_router_power_pj(net)
        # Baseline never gates: leakage accrues even with zero traffic.
        assert all(e > 0 for e in energies.values())

    def test_gating_reduces_router_energy(self):
        busy = per_router_power_pj(run_network(rate=0.0, policy="baseline"))
        gated = per_router_power_pj(run_network(rate=0.0, policy="sensor-wise"))
        for router in busy:
            assert gated[router] < busy[router]


class TestRouterTemperatures:
    def test_above_ambient_under_load(self):
        profile = router_temperatures(run_network())
        assert all(t > DEFAULT_AMBIENT_K for t in profile.temperatures_k.values())

    def test_center_hotter_than_corners_on_big_mesh(self):
        """XY routing concentrates traffic through the mesh center."""
        net = run_network(num_nodes=16, rate=0.3, cycles=1500)
        profile = router_temperatures(net)
        corners = [0, 3, 12, 15]
        centers = [5, 6, 9, 10]
        avg_corner = sum(profile.temperatures_k[r] for r in corners) / 4
        avg_center = sum(profile.temperatures_k[r] for r in centers) / 4
        assert avg_center > avg_corner

    def test_hotspot_router_is_hottest(self):
        traffic = HotspotTraffic(
            16, flit_rate=0.4, hotspots=[5], hotspot_fraction=0.8,
            packet_length=4, seed=3,
        )
        net = run_network(traffic=traffic, num_nodes=16, cycles=1500)
        profile = router_temperatures(net)
        assert profile.hottest_router in (5, 1, 4, 6, 9)  # hotspot + feeders

    def test_rth_scales_the_rise(self):
        net = run_network()
        cool = router_temperatures(net, rth_k_per_mw=0.5)
        hot = router_temperatures(net, rth_k_per_mw=2.0)
        for r in cool.temperatures_k:
            cool_rise = cool.temperatures_k[r] - cool.ambient_k
            hot_rise = hot.temperatures_k[r] - hot.ambient_k
            assert hot_rise == pytest.approx(4 * cool_rise, rel=1e-6)

    def test_validation(self):
        net = run_network(cycles=100)
        with pytest.raises(ValueError):
            router_temperatures(net, ambient_k=0.0)
        with pytest.raises(ValueError):
            router_temperatures(net, rth_k_per_mw=-1.0)

    def test_as_text(self):
        profile = router_temperatures(run_network(cycles=200))
        text = profile.as_text()
        assert "router  0" in text
        assert "spread" in text


class TestThermalAwareProjection:
    def test_covers_every_device(self):
        net = run_network()
        projection = thermal_aware_projection(net, years=3.0)
        assert set(projection) == set(net.devices)
        for key, vth in projection.items():
            assert vth > net.devices[key].initial_vth

    def test_hotter_profile_ages_more(self):
        net = run_network()
        base = router_temperatures(net)
        hotter = ThermalProfile(
            ambient_k=base.ambient_k,
            rth_k_per_mw=base.rth_k_per_mw,
            temperatures_k={r: t + 30.0 for r, t in base.temperatures_k.items()},
        )
        cool = thermal_aware_projection(net, years=3.0, profile=base)
        hot = thermal_aware_projection(net, years=3.0, profile=hotter)
        assert all(hot[k] > cool[k] for k in cool)

    def test_invalid_years_rejected(self):
        net = run_network(cycles=100)
        with pytest.raises(ValueError):
            thermal_aware_projection(net, years=0.0)
