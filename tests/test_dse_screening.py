"""Tests for fractional-factorial screening (repro.dse.screening)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse.objectives import resolve_objectives
from repro.dse.screening import (
    ScreeningReport,
    run_screening,
    two_level_design,
)
from repro.dse.space import DesignSpace, Parameter
from repro.experiments.config import ScenarioConfig


class TestDesignMatrix:
    @pytest.mark.parametrize("factors", [1, 2, 3, 4, 6, 7, 10])
    def test_shape_and_levels(self, factors):
        design = two_level_design(factors)
        runs = design.shape[0]
        assert design.shape == (runs, factors)
        assert runs > factors and (runs & (runs - 1)) == 0  # power of two
        assert set(np.unique(design)) <= {-1, 1}

    def test_balanced_columns(self):
        """Every factor spends exactly half the runs at each level."""
        design = two_level_design(6)
        assert np.all(design.sum(axis=0) == 0)

    def test_main_effect_columns_orthogonal(self):
        design = two_level_design(5).astype(int)
        gram = design.T @ design
        runs = design.shape[0]
        assert np.array_equal(np.diag(gram), np.full(5, runs))
        off_diagonal = gram - np.diag(np.diag(gram))
        assert np.all(off_diagonal == 0)

    def test_three_factors_is_classic_half_fraction(self):
        design = two_level_design(3)
        # 2^(3-1): the third column is the product of the first two.
        assert np.array_equal(design[:, 2], design[:, 0] * design[:, 1])

    def test_deterministic(self):
        assert np.array_equal(two_level_design(7), two_level_design(7))

    def test_rejects_zero_factors(self):
        with pytest.raises(ValueError):
            two_level_design(0)


def micro_space(**kwargs):
    base = ScenarioConfig(num_nodes=2, cycles=400, warmup=100)
    return DesignSpace(
        parameters=(
            Parameter.categorical("policy", ("rr-no-sensor", "sensor-wise")),
            Parameter("rotation_period", (16, 256)),
            Parameter("wake_latency", (1, 4)),
        ),
        base=base,
        **kwargs,
    )


class TestRunScreening:
    def test_effects_estimated_for_every_axis(self):
        objectives = resolve_objectives(["md_duty", "area_overhead"])
        report = run_screening(micro_space(), objectives)
        assert report.parameters == ("policy", "rotation_period", "wake_latency")
        assert report.objectives == ("md_duty", "area_overhead")
        assert report.evaluations == report.runs == 4
        for effects in report.main_effects.values():
            assert set(effects) == set(report.parameters)

    def test_pure_config_objective_has_exact_effects(self):
        """area_overhead depends on no searched axis here => all zero."""
        objectives = resolve_objectives(["area_overhead"])
        report = run_screening(micro_space(), objectives)
        for value in report.main_effects["area_overhead"].values():
            assert value == pytest.approx(0.0)
        # and the ranking degrades gracefully (no division blow-up).
        assert all(strength == 0.0 for _, strength in report.ranking())
        assert report.prune() == sorted(report.parameters)

    def test_policy_dominates_md_duty(self):
        """Disabling the sensor policy must move duty cycle the most."""
        objectives = resolve_objectives(["md_duty"])
        report = run_screening(micro_space(), objectives)
        assert report.ranking()[0][0] == "policy"

    def test_invalid_corners_skipped(self):
        space = micro_space(constraints=(lambda s: s.wake_latency < 4,))
        objectives = resolve_objectives(["md_duty"])
        report = run_screening(space, objectives)
        assert report.skipped_invalid == 2
        assert report.evaluations == 2

    def test_all_invalid_raises(self):
        space = micro_space(constraints=(lambda s: False,))
        with pytest.raises(ValueError):
            run_screening(space, resolve_objectives(["md_duty"]))

    def test_report_roundtrips_to_dict(self):
        objectives = resolve_objectives(["md_duty"])
        report = run_screening(micro_space(), objectives)
        blob = report.to_dict()
        assert blob["runs"] == 4
        assert set(blob["main_effects"]["md_duty"]) == set(report.parameters)
        assert isinstance(report.format(), str)

    def test_deterministic(self):
        objectives = resolve_objectives(["md_duty", "p95_latency"])
        a = run_screening(micro_space(), objectives)
        b = run_screening(micro_space(), objectives)
        assert a.to_dict() == b.to_dict()


class TestReportPruning:
    def make_report(self):
        return ScreeningReport(
            parameters=("a_axis", "b_axis", "c_axis"),
            objectives=("obj",),
            runs=8,
            evaluations=8,
            skipped_invalid=0,
            failed=0,
            main_effects={"obj": {"a_axis": 10.0, "b_axis": -0.8, "c_axis": 0.0}},
            interactions={"obj": {}},
        )

    def test_ranking_by_normalized_strength(self):
        ranking = self.make_report().ranking()
        assert [name for name, _ in ranking] == ["a_axis", "b_axis", "c_axis"]
        assert ranking[0][1] == pytest.approx(1.0)

    def test_prune_threshold(self):
        report = self.make_report()
        assert report.prune(threshold=0.05) == ["c_axis"]
        assert report.prune(threshold=0.5) == ["b_axis", "c_axis"]
