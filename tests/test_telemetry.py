"""Tests for the telemetry subsystem: tracing, metrics, sinks, logging.

The binding guarantees under test:

* telemetry **off** (the default) leaves the paper artifacts
  byte-identical to the pre-telemetry goldens — instrumentation is a
  null-object, not a code path;
* telemetry **on** produces a Chrome/JSONL trace whose gate/wake events
  replay to *exactly* the NBTI stress/recovery counters the simulator
  reports (cycle-accurate reconciliation);
* traced runs are deterministic: serial and process-pool execution
  emit identical events and metrics (host-time ``phase.*`` gauges are
  the one documented exception).
"""

from __future__ import annotations

import json
import pathlib
import re

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.telemetry import (
    EVENT_FIELDS,
    ListSink,
    MetricsRegistry,
    NullTracer,
    TelemetryConfig,
    Tracer,
    emit,
    probes,
    verbosity_to_level,
)

DATA = pathlib.Path(__file__).parent / "data"


def small_scenario(**overrides) -> ScenarioConfig:
    defaults = dict(
        num_nodes=4, num_vcs=2, injection_rate=0.1, policy="sensor-wise",
        cycles=600, warmup=150, seed=1, sensor_sample_period=64,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestGoldenByteIdentity:
    """Telemetry-off output must be byte-identical to the seed goldens."""

    def test_table3_json_unchanged(self, tmp_path):
        from repro.experiments.persistence import save_synthetic_table
        from repro.experiments.tables import run_synthetic_table

        table = run_synthetic_table(
            num_vcs=2, arches=(4,), rates=(0.1, 0.2),
            cycles=800, warmup=200, seed=1,
        )
        out = tmp_path / "table3.json"
        save_synthetic_table(table, out)
        assert out.read_bytes() == (DATA / "table3_small_golden.json").read_bytes()

    def test_fault_campaign_json_unchanged(self):
        from repro.faults.campaign import FaultCampaignConfig, run_fault_campaign

        config = FaultCampaignConfig(
            num_nodes=4, num_vcs=2, injection_rate=0.1,
            cycles=300, warmup=100, seed=1, sensor_sample_period=32,
            kinds=("sensor-dropout", "up-down-drop"),
            fault_rates=(0.0, 1.0),
            policies=("rr-no-sensor", "sensor-wise"),
            validate_every=16,
        )
        report = run_fault_campaign(config)
        golden = (DATA / "fault_campaign_small_golden.json").read_text()
        assert report.to_json() == golden


class TestTraceArtifacts:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        trace_dir = tmp_path_factory.mktemp("traces")
        scenario = small_scenario().traced(
            trace_dir=str(trace_dir), formats=("chrome", "jsonl", "csv")
        )
        result = run_scenario(scenario)
        return scenario, result

    def test_summary_counts_match_files(self, traced):
        _, result = traced
        summary = result.telemetry
        assert summary is not None
        assert len(summary.trace_files) == 3
        assert summary.total_events > 0
        jsonl = next(p for p in summary.trace_files if p.endswith(".events.jsonl"))
        lines = pathlib.Path(jsonl).read_text().splitlines()
        # JSONL carries every event plus the track-name metadata records.
        metadata = sum(1 for ln in lines if json.loads(ln)["ph"] == "M")
        assert len(lines) - metadata == summary.total_events

    def test_chrome_trace_schema(self, traced):
        _, result = traced
        chrome = next(
            p for p in result.telemetry.trace_files if p.endswith(".trace.json")
        )
        events = json.loads(pathlib.Path(chrome).read_text())
        assert isinstance(events, list) and events
        for event in events:
            assert set(("ph", "name", "ts", "pid", "tid")) <= set(event)
            assert event["ph"] in ("i", "X", "M")
            if event["ph"] == "X":
                assert "dur" in event
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_every_event_name_is_catalogued(self, traced):
        _, result = traced
        for name in result.telemetry.event_counts:
            assert name in probes.CATALOG, f"uncatalogued probe {name!r}"

    def test_csv_rollup_schema(self, traced):
        _, result = traced
        csv_path = next(
            p for p in result.telemetry.trace_files if p.endswith(".rollup.csv")
        )
        lines = pathlib.Path(csv_path).read_text().splitlines()
        assert lines[0] == "category,name,events,first_ts,last_ts"
        rolled = {row.split(",")[1]: int(row.split(",")[2]) for row in lines[1:]}
        assert rolled == dict(result.telemetry.event_counts)

    def test_gate_wake_events_reconcile_with_nbti_counters(self, traced):
        """The acceptance criterion: replaying the trace's power-state
        transitions reproduces the simulator's stress/recovery counters
        exactly, for every VC of the measured port."""
        scenario, result = traced
        summary = result.telemetry
        jsonl = next(p for p in summary.trace_files if p.endswith(".events.jsonl"))
        events = [
            json.loads(line)
            for line in pathlib.Path(jsonl).read_text().splitlines()
        ]

        track_names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        pattern = re.compile(
            rf"^r{scenario.measure_router}\.{scenario.measure_port}\.vc(\d+)$"
        )
        vc_tids = {}
        for tid, label in track_names.items():
            match = pattern.match(label)
            if match:
                vc_tids[int(match.group(1))] = tid
        total_vcs = scenario.num_vcs * scenario.num_vnets
        assert sorted(vc_tids) == list(range(total_vcs))

        window = (summary.window_start, summary.end_cycle)
        for vc, tid in sorted(vc_tids.items()):
            recovery = self._replay_recovery(events, tid, *window)
            span = summary.end_cycle - summary.window_start
            assert recovery == summary.measured_recovery_cycles[vc]
            assert span - recovery == summary.measured_stress_cycles[vc]

    @staticmethod
    def _replay_recovery(events, tid, window_start, end_cycle):
        """Recovery cycles in [window_start, end_cycle) from the event log.

        A buffer is recovering exactly while GATED: a ``buffer.gate`` at
        ts=c means cycle c counted as recovery (commands apply before
        the NBTI phase); any wake at ts=c means cycle c counted as
        stress.  ``wake_complete`` (WAKING->ON) is not a power-state
        edge for NBTI purposes: WAKING already counts as stress.
        """
        gated_since = None
        recovery = 0
        for event in events:
            if event.get("tid") != tid or event["ph"] != "i":
                continue
            ts = event["ts"]
            if event["name"] == probes.BUFFER_GATE:
                if gated_since is None:
                    gated_since = ts
            elif event["name"] in (
                probes.BUFFER_WAKE, probes.BUFFER_EMERGENCY_WAKE
            ):
                if gated_since is not None:
                    lo = max(gated_since, window_start)
                    hi = min(ts, end_cycle)
                    recovery += max(0, hi - lo)
                    gated_since = None
        if gated_since is not None:
            lo = max(gated_since, window_start)
            recovery += max(0, end_cycle - lo)
        return recovery


class TestDeterminism:
    def test_serial_and_pool_runs_agree(self):
        from repro.experiments.parallel import Executor

        scenario = small_scenario().traced(trace_dir=None, formats=())
        serial = run_scenario(scenario)
        executor = Executor(max_workers=4)
        (pooled,) = executor.map([(scenario, 0)])

        assert pooled.duty_cycles == serial.duty_cycles
        assert pooled.telemetry.event_counts == serial.telemetry.event_counts
        assert self._stable(pooled.telemetry.metrics) == self._stable(
            serial.telemetry.metrics
        )

    @staticmethod
    def _stable(metrics):
        """Metrics minus the documented host-time ``phase.*`` gauges."""
        return {
            kind: {
                name: value
                for name, value in entries.items()
                if not name.startswith("phase.")
            }
            for kind, entries in metrics.items()
        }


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2)
        registry.set("level", 0.5)
        for v in (1.0, 2.0, 3.0, 4.0):
            registry.observe("lat", v)
        snapshot = registry.as_dict()
        assert snapshot["counters"]["hits"] == 3
        assert snapshot["gauges"]["level"] == 0.5
        assert snapshot["histograms"]["lat"]["count"] == 4
        assert snapshot["histograms"]["lat"]["p50"] == 2.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("hits", -1)

    def test_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        b.set("g", 7.0)
        a.observe("h", 1.0)
        b.observe("h", 3.0)
        a.merge(b)
        snapshot = a.as_dict()
        assert snapshot["counters"]["n"] == 5
        assert snapshot["gauges"]["g"] == 7.0
        assert snapshot["histograms"]["h"]["count"] == 2


class TestTracer:
    def test_instant_and_span_through_list_sink(self):
        sink = ListSink()
        cycle = {"now": 10}
        tracer = Tracer(clock=lambda: cycle["now"], sinks=[sink])
        tid = tracer.register_track("r0.east.vc0")
        tracer.instant(probes.BUFFER_GATE, cat="buffer", tid=tid)
        cycle["now"] = 25
        tracer.instant(probes.BUFFER_WAKE, cat="buffer", tid=tid, args={"latency": 1})
        tracer.close()
        names = [e["name"] for e in sink.events]
        assert probes.BUFFER_GATE in names and probes.BUFFER_WAKE in names
        gate = next(e for e in sink.events if e["name"] == probes.BUFFER_GATE)
        assert gate["ts"] == 10  # ts from the injected clock
        assert tracer.counts[probes.BUFFER_GATE] == 1
        assert sink.closed

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        tid = tracer.register_track("anything")
        tracer.instant("x", cat="y", tid=tid)
        assert tracer.total_events == 0

    def test_event_tuple_shape(self):
        assert EVENT_FIELDS == ("ph", "name", "cat", "ts", "dur", "pid", "tid", "args")


class TestCli:
    def test_trace_command(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "traces"
        rc = main([
            "trace", "--cycles", "300", "--warmup", "100",
            "--out-dir", str(out_dir), "--formats", "chrome,jsonl",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "trace files" in captured.out
        written = sorted(p.name for p in out_dir.iterdir())
        assert len(written) == 2
        assert any(name.endswith(".trace.json") for name in written)
        assert any(name.endswith(".events.jsonl") for name in written)

    def test_metrics_command_json(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "metrics.json"
        rc = main([
            "metrics", "--cycles", "300", "--warmup", "100",
            "--json", str(json_path),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "counters:" in captured.out
        payload = json.loads(json_path.read_text())
        assert payload["counters"]["sim.packets_injected"] > 0

    def test_metrics_command_leaves_no_trace_files(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["metrics", "--cycles", "200", "--warmup", "50"]) == 0
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []


class TestLogging:
    def test_emit_writes_plain_stdout_line(self, capsys):
        emit("TABLE ROW")
        captured = capsys.readouterr()
        assert captured.out == "TABLE ROW\n"
        assert captured.err == ""

    def test_verbosity_mapping(self):
        import logging

        assert verbosity_to_level(1) == logging.DEBUG
        assert verbosity_to_level(0) == logging.INFO
        assert verbosity_to_level(-1) == logging.WARNING
        assert verbosity_to_level(-2) == logging.ERROR

    def test_quiet_flag_silences_progress(self, capsys):
        from repro.cli import main

        assert main(["-q", "-q", "table3", "--cycles", "200", "--warmup", "50",
                     "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        assert "Table III" in captured.out
        assert captured.err == ""


class TestTelemetryConfig:
    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            TelemetryConfig(formats=("xml",))

    def test_traced_builder(self):
        scenario = small_scenario().traced(formats=("jsonl",), sensors=False)
        assert scenario.telemetry is not None
        assert scenario.telemetry.formats == ("jsonl",)
        assert scenario.telemetry.sensors is False
        assert small_scenario().telemetry is None
