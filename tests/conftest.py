"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.policies import make_policy_factory
from repro.nbti.process_variation import ProcessVariationModel
from repro.noc.config import NoCConfig
from repro.noc.network import Network
from repro.traffic.base import NullTraffic
from repro.traffic.synthetic import SyntheticTraffic


def build_small_network(
    policy: str = "sensor-wise",
    num_nodes: int = 4,
    num_vcs: int = 2,
    flit_rate: float = 0.2,
    seed: int = 7,
    pv_seed: int = 11,
    traffic=None,
    **config_kwargs,
) -> Network:
    """A 2x2 (default) mesh with uniform traffic — the test workhorse."""
    config = NoCConfig(num_nodes=num_nodes, num_vcs=num_vcs, seed=seed, **config_kwargs)
    if traffic is None:
        if flit_rate > 0.0:
            traffic = SyntheticTraffic(
                "uniform", num_nodes, flit_rate=flit_rate,
                packet_length=config.packet_length, seed=seed,
            )
        else:
            traffic = NullTraffic(num_nodes)
    pv = ProcessVariationModel(seed=pv_seed)
    return Network(config, make_policy_factory(policy), traffic, pv_model=pv)


@pytest.fixture
def small_network():
    """Factory fixture: ``small_network(policy=..., ...) -> Network``."""
    return build_small_network


def drain(network: Network, max_cycles: int = 2000) -> int:
    """Run with no further injection until every flit is delivered.

    Returns the number of cycles it took.  Fails the test if the network
    does not drain within ``max_cycles`` (a liveness violation).
    """
    network.traffic = None
    for elapsed in range(max_cycles):
        if network.in_flight_flits() == 0:
            return elapsed
        network.step()
    raise AssertionError(
        f"network failed to drain within {max_cycles} cycles; "
        f"{network.in_flight_flits()} flits still in flight"
    )
