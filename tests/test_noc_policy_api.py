"""Tests for the policy API types (context, decision, base class)."""

from __future__ import annotations

import pytest

from repro.noc.policy_api import (
    OutVCState,
    PolicyContext,
    PolicyDecision,
    RecoveryPolicy,
    states_of,
)


class TestStatesOf:
    def test_builds_state_tuple(self):
        states = states_of(["idle", "active", "recovery"])
        assert states == (OutVCState.IDLE, OutVCState.ACTIVE, OutVCState.RECOVERY)

    def test_rejects_unknown_state(self):
        with pytest.raises(ValueError):
            states_of(["asleep"])


class TestPolicyContext:
    def make(self):
        return PolicyContext(
            cycle=10,
            vc_states=states_of(["idle", "active", "recovery", "idle"]),
            new_traffic=True,
            most_degraded_vc=2,
        )

    def test_num_vcs(self):
        assert self.make().num_vcs == 4

    def test_state_predicates(self):
        ctx = self.make()
        assert ctx.is_idle(0) and not ctx.is_idle(1)
        assert ctx.is_active(1)
        assert ctx.is_recovery(2)

    def test_gateable_vcs_excludes_active(self):
        assert self.make().gateable_vcs() == (0, 2, 3)

    def test_context_is_immutable(self):
        ctx = self.make()
        with pytest.raises(AttributeError):
            ctx.cycle = 11


class TestPolicyDecision:
    def test_gate_all(self):
        d = PolicyDecision.gate_all(idle_vc=1)
        assert d.awake == frozenset()
        assert not d.enable
        assert d.idle_vc == 1

    def test_keep_one(self):
        d = PolicyDecision.keep_one(2)
        assert d.awake == frozenset((2,))
        assert d.enable
        assert d.idle_vc == 2

    def test_all_awake(self):
        d = PolicyDecision.all_awake(3)
        assert d.awake == frozenset((0, 1, 2))
        assert not d.enable

    def test_validate_bounds(self):
        PolicyDecision.keep_one(1).validate(2)
        with pytest.raises(ValueError):
            PolicyDecision.keep_one(2).validate(2)
        with pytest.raises(ValueError):
            PolicyDecision(awake=frozenset((5,)), enable=False, idle_vc=0).validate(2)

    def test_decision_is_hashable(self):
        a = PolicyDecision.keep_one(1)
        b = PolicyDecision.keep_one(1)
        assert a == b
        assert hash(a) == hash(b)


class TestRecoveryPolicyBase:
    def test_decide_is_abstract(self):
        with pytest.raises(NotImplementedError):
            RecoveryPolicy().decide(
                PolicyContext(cycle=0, vc_states=states_of(["idle"]), new_traffic=False)
            )

    def test_default_epoch_constant(self):
        policy = RecoveryPolicy()
        assert policy.epoch(0) == policy.epoch(10_000) == 0

    def test_default_flags(self):
        policy = RecoveryPolicy()
        assert not policy.stable
        assert not policy.uses_sensor
        assert not policy.uses_traffic

    def test_reset_default_noop(self):
        RecoveryPolicy().reset()

    def test_repr(self):
        assert "abstract" in repr(RecoveryPolicy())
