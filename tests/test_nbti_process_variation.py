"""Tests for within-die process-variation sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nbti.constants import TECH_32NM, TECH_45NM
from repro.nbti.process_variation import ProcessVariationModel, scenario_seed


class TestScenarioSeed:
    def test_deterministic(self):
        assert scenario_seed("4core", 0.1) == scenario_seed("4core", 0.1)

    def test_sensitive_to_every_part(self):
        base = scenario_seed("a", 1, 0.1)
        assert base != scenario_seed("b", 1, 0.1)
        assert base != scenario_seed("a", 2, 0.1)
        assert base != scenario_seed("a", 1, 0.2)

    def test_order_sensitive(self):
        assert scenario_seed("a", "b") != scenario_seed("b", "a")

    def test_fits_in_63_bits(self):
        for parts in (("x",), ("x", 1, 2.5), (b"bytes",)):
            seed = scenario_seed(*parts)
            assert 0 <= seed < 2**63

    def test_distinct_types_distinct_seeds(self):
        # repr-based hashing distinguishes 1 from "1".
        assert scenario_seed(1) != scenario_seed("1")


class TestProcessVariationModel:
    def test_same_seed_same_samples(self):
        a = ProcessVariationModel(seed=5).sample(10)
        b = ProcessVariationModel(seed=5).sample(10)
        assert a == b

    def test_different_seed_different_samples(self):
        a = ProcessVariationModel(seed=5).sample(10)
        b = ProcessVariationModel(seed=6).sample(10)
        assert a != b

    def test_sample_statistics_match_parameters(self):
        model = ProcessVariationModel(mean_vth=0.180, sigma_vth=0.005, seed=1)
        draws = model.sample(20000)
        assert np.mean(draws) == pytest.approx(0.180, abs=2e-4)
        assert np.std(draws) == pytest.approx(0.005, abs=3e-4)

    def test_paper_parameters_are_default(self):
        model = ProcessVariationModel()
        assert model.mean_vth == TECH_45NM.vth_nominal == 0.180
        assert model.sigma_vth == TECH_45NM.vth_sigma == 0.005

    def test_for_technology(self):
        model = ProcessVariationModel.for_technology(TECH_32NM, seed=3)
        assert model.mean_vth == 0.160

    def test_clipping_at_four_sigma(self):
        model = ProcessVariationModel(mean_vth=0.180, sigma_vth=0.005, seed=2)
        draws = model.sample(50000)
        assert max(draws) <= 0.180 + 4 * 0.005 + 1e-12
        assert min(draws) >= 0.180 - 4 * 0.005 - 1e-12

    def test_die_to_die_offset_shifts_everything(self):
        base = ProcessVariationModel(seed=4).sample(100)
        shifted = ProcessVariationModel(seed=4, die_to_die_offset=0.010).sample(100)
        for b, s in zip(base, shifted):
            assert s == pytest.approx(b + 0.010)

    def test_zero_count(self):
        assert ProcessVariationModel().sample(0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessVariationModel().sample(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ProcessVariationModel(mean_vth=0.0)
        with pytest.raises(ValueError):
            ProcessVariationModel(sigma_vth=-0.001)

    def test_samples_always_positive(self):
        model = ProcessVariationModel(mean_vth=0.005, sigma_vth=0.01, seed=9)
        assert all(v > 0.0 for v in model.sample(1000))


class TestSampleChip:
    KEYS = [(r, p, v) for r in range(2) for p in range(2) for v in range(2)]

    def test_every_key_assigned(self):
        vths = ProcessVariationModel(seed=1).sample_chip(self.KEYS)
        assert set(vths) == set(self.KEYS)

    def test_reproducible_assignment(self):
        a = ProcessVariationModel(seed=1).sample_chip(self.KEYS)
        b = ProcessVariationModel(seed=1).sample_chip(self.KEYS)
        assert a == b

    def test_most_degraded_is_argmax(self):
        model = ProcessVariationModel(seed=1)
        vths = model.sample_chip(self.KEYS)
        md = model.most_degraded(vths)
        assert vths[md] == max(vths.values())

    def test_most_degraded_of_empty_chip_rejected(self):
        with pytest.raises(ValueError):
            ProcessVariationModel().most_degraded({})

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_most_degraded_tie_break_deterministic(self, seed):
        model = ProcessVariationModel(seed=seed)
        vths = model.sample_chip(self.KEYS)
        md1 = model.most_degraded(vths)
        md2 = model.most_degraded(dict(reversed(list(vths.items()))))
        assert md1 == md2
