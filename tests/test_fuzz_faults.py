"""Property-based fuzzing of the fault-injection layer: a faulted small
mesh must keep the cross-cutting invariants every cycle.

The sensor-plane and Down_Up kinds never touch power commands, so they
must produce *zero* violations.  The wake-losing kinds (``up-down-drop``,
``stuck-gated``) run under the documented emergency wake-on-arrival
relaxation: the only violation class they may produce is the transient
upstream/downstream power disagreement (see docs/RESILIENCE.md §limits);
anything else — conservation, wormhole order, credit bounds — is a bug.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policies import make_policy_factory
from repro.faults import FAULT_KINDS, FaultInjector, FaultSpec
from repro.nbti.process_variation import ProcessVariationModel
from repro.noc.config import NoCConfig
from repro.noc.network import Network
from repro.noc.validation import validate_network
from repro.traffic.synthetic import SyntheticTraffic

#: Kinds that must never cause any invariant violation.
SAFE_KINDS = (
    "stuck-sensor",
    "sensor-dropout",
    "down-up-drop",
    "down-up-delay",
    "down-up-corrupt",
)
#: Kinds that may lose wake commands: only the power-agreement check is
#: allowed to fire (the documented relaxation), nothing else.
WAKE_LOSING_KINDS = ("up-down-drop", "stuck-gated")

assert set(SAFE_KINDS) | set(WAKE_LOSING_KINDS) == set(FAULT_KINDS)

RUN_CYCLES = 250


def _build_faulted_network(kind, rate, onset, duration, policy, seed):
    config = NoCConfig(num_nodes=4, num_vcs=2, seed=seed % 1000,
                       sensor_sample_period=32)
    traffic = SyntheticTraffic("uniform", 4, flit_rate=0.2,
                               packet_length=4, seed=seed)
    network = Network(
        config,
        make_policy_factory(policy),
        traffic,
        pv_model=ProcessVariationModel(seed=seed // 5),
    )
    kwargs = dict(kind=kind, router=0, port="east", onset=onset,
                  duration=duration, seed=seed % 97)
    if kind == "stuck-sensor":
        kwargs["stuck_vc"] = seed % 2
    if kind == "down-up-delay":
        kwargs["delay"] = 1 + seed % 5
    if kind in ("down-up-drop", "down-up-corrupt", "up-down-drop", "stuck-gated"):
        kwargs["rate"] = rate
    FaultInjector([FaultSpec(**kwargs)], master_seed=seed % 13).apply(network)
    return network


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    kind=st.sampled_from(SAFE_KINDS),
    rate=st.floats(min_value=0.1, max_value=1.0),
    onset=st.integers(min_value=0, max_value=100),
    duration=st.one_of(st.none(), st.integers(min_value=1, max_value=150)),
    policy=st.sampled_from(["sensor-wise", "rr-no-sensor"]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_safe_kinds_keep_every_invariant(kind, rate, onset, duration, policy, seed):
    network = _build_faulted_network(kind, rate, onset, duration, policy, seed)
    for _ in range(RUN_CYCLES):
        network.step()
        violations = validate_network(network)
        assert violations == [], (
            f"{kind} rate={rate} onset={onset} duration={duration} "
            f"policy={policy} seed={seed}: {violations}"
        )


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    kind=st.sampled_from(WAKE_LOSING_KINDS),
    rate=st.floats(min_value=0.1, max_value=1.0),
    onset=st.integers(min_value=0, max_value=100),
    duration=st.one_of(st.none(), st.integers(min_value=1, max_value=150)),
    policy=st.sampled_from(["sensor-wise", "rr-no-sensor"]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_wake_losing_kinds_only_break_power_agreement(
    kind, rate, onset, duration, policy, seed
):
    network = _build_faulted_network(kind, rate, onset, duration, policy, seed)
    for _ in range(RUN_CYCLES):
        network.step()
        unexpected = [
            v for v in validate_network(network)
            if "upstream gated=" not in v
        ]
        assert unexpected == [], (
            f"{kind} rate={rate} onset={onset} duration={duration} "
            f"policy={policy} seed={seed}: {unexpected}"
        )
