"""Tests for the area model and the Sec. III-D overhead report."""

from __future__ import annotations

import pytest

from repro.area.orion import (
    RouterGeometry,
    allocator_area_um2,
    buffer_area_um2,
    crossbar_area_um2,
    link_area_um2,
    router_area_um2,
    tech_scale,
)
from repro.area.overhead import (
    SENSOR_AREA_UM2,
    compute_overhead_report,
    down_up_wires,
    up_down_wires,
)
from repro.nbti.constants import TECH_32NM, TECH_45NM


class TestGeometry:
    def test_paper_reference_defaults(self):
        geom = RouterGeometry()
        assert geom.num_ports == 4
        assert geom.num_vcs == 4
        assert geom.buffer_depth == 4
        assert geom.flit_width_bits == 64
        assert geom.buffer_bits == 4096
        assert geom.sensor_count == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            RouterGeometry(num_ports=1)
        with pytest.raises(ValueError):
            RouterGeometry(num_vcs=0)
        with pytest.raises(ValueError):
            RouterGeometry(buffer_depth=0)
        with pytest.raises(ValueError):
            RouterGeometry(flit_width_bits=0)


class TestAreaComponents:
    def test_areas_positive(self):
        geom = RouterGeometry()
        assert buffer_area_um2(geom) > 0
        assert crossbar_area_um2(geom) > 0
        assert allocator_area_um2(geom) > 0
        assert router_area_um2(geom) > buffer_area_um2(geom)

    def test_buffer_area_scales_with_vcs(self):
        small = buffer_area_um2(RouterGeometry(num_vcs=2))
        big = buffer_area_um2(RouterGeometry(num_vcs=4))
        assert big == pytest.approx(2 * small)

    def test_crossbar_quadratic_in_width(self):
        narrow = crossbar_area_um2(RouterGeometry(flit_width_bits=32))
        wide = crossbar_area_um2(RouterGeometry(flit_width_bits=64))
        assert wide == pytest.approx(4 * narrow)

    def test_tech_scaling(self):
        assert tech_scale(TECH_45NM) == pytest.approx(1.0)
        assert tech_scale(TECH_32NM) == pytest.approx((32 / 45) ** 2)
        g45 = router_area_um2(RouterGeometry(tech=TECH_45NM))
        g32 = router_area_um2(RouterGeometry(tech=TECH_32NM))
        assert g32 < g45

    def test_link_area(self):
        data = link_area_um2(64, 1.0, global_wires=True)
        control = link_area_um2(5, 1.0, global_wires=False)
        assert control < data
        with pytest.raises(ValueError):
            link_area_um2(0)
        with pytest.raises(ValueError):
            link_area_um2(64, length_mm=0.0)

    def test_link_area_proportional_to_length(self):
        assert link_area_um2(64, 2.0) == pytest.approx(2 * link_area_um2(64, 1.0))


class TestSidebandWires:
    def test_paper_reference_wire_counts(self):
        # 4 VCs: Up_Down = log2(4) + enable = 3; Down_Up = log2(4) = 2.
        assert up_down_wires(4) == 3
        assert down_up_wires(4) == 2

    def test_two_vcs(self):
        assert up_down_wires(2) == 2
        assert down_up_wires(2) == 1

    def test_single_vc_degenerate(self):
        assert up_down_wires(1) == 1
        assert down_up_wires(1) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            up_down_wires(0)
        with pytest.raises(ValueError):
            down_up_wires(0)


class TestOverheadReport:
    """The paper's Sec. III-D numbers."""

    def test_sensor_overhead_matches_paper(self):
        report = compute_overhead_report()
        assert report.sensor_count == 16
        assert report.sensor_fraction_of_router == pytest.approx(0.0325, abs=0.004)

    def test_control_link_overhead_matches_paper(self):
        report = compute_overhead_report()
        assert report.control_fraction_of_link == pytest.approx(0.038, abs=0.004)

    def test_policy_logic_is_negligible(self):
        report = compute_overhead_report()
        assert report.policy_fraction_of_router < 0.01

    def test_total_overhead_below_four_percent(self):
        report = compute_overhead_report()
        assert report.total_fraction_of_noc < 0.04

    def test_report_text_mentions_key_numbers(self):
        text = compute_overhead_report().as_text()
        assert "3.25%" in text  # the paper reference values
        assert "< 4%" in text

    def test_fewer_links_raise_relative_overhead(self):
        """Edge routers amortize the sensors over fewer links."""
        interior = compute_overhead_report(links_per_router=4)
        corner = compute_overhead_report(links_per_router=2)
        assert corner.total_fraction_of_noc != interior.total_fraction_of_noc

    def test_two_vc_router_overhead_still_small(self):
        geom = RouterGeometry(num_vcs=2)
        report = compute_overhead_report(geom)
        assert report.sensor_count == 8
        assert report.total_fraction_of_noc < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_overhead_report(links_per_router=0)

    def test_sensor_area_scales_with_tech(self):
        r45 = compute_overhead_report(RouterGeometry(tech=TECH_45NM))
        r32 = compute_overhead_report(RouterGeometry(tech=TECH_32NM))
        assert r32.sensor_area_total < r45.sensor_area_total
        # Ratios stay in the same ballpark across nodes.
        assert r32.sensor_fraction_of_router == pytest.approx(
            r45.sensor_fraction_of_router, rel=0.2
        )
