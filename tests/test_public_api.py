"""Tests for the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version_matches_pyproject(self):
        import pathlib

        pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
        assert f'version = "{repro.__version__}"' in pyproject.read_text()

    def test_quick_simulation_defaults(self):
        result = repro.quick_simulation(cycles=1200)
        assert len(result.duty_cycles) == 2
        assert all(0.0 <= d <= 100.0 for d in result.duty_cycles)
        assert result.net_stats.packets_ejected > 0

    def test_quick_simulation_policy_choice(self):
        base = repro.quick_simulation(policy="baseline", cycles=800)
        assert base.duty_cycles == [100.0, 100.0]

    def test_quick_simulation_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            repro.quick_simulation(policy="nope", cycles=100)


class TestSubpackageExports:
    """Every name in each subpackage's __all__ must actually resolve."""

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.nbti",
            "repro.noc",
            "repro.core",
            "repro.traffic",
            "repro.area",
            "repro.stats",
            "repro.experiments",
            "repro.telemetry",
        ],
    )
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__") and module.__all__
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_paper_policies_importable_from_core(self):
        from repro.core import PAPER_POLICIES, make_policy_factory

        for name in PAPER_POLICIES:
            assert make_policy_factory(name)().name == name

    def test_docstrings_on_public_modules(self):
        for module_name in (
            "repro", "repro.nbti.model", "repro.noc.router",
            "repro.core.policies", "repro.experiments.tables",
        ):
            module = importlib.import_module(module_name)
            assert module.__doc__ and len(module.__doc__) > 40
