"""Graceful-degradation tests: the sensor-wise policy must fall back to
round-robin behaviour while its downstream sensor feed is broken, count
the degradation, and re-engage once the feed heals."""

from __future__ import annotations

import dataclasses

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_network, run_scenario
from repro.faults import FaultInjector, FaultSpec
from repro.noc.topology import port_name


def _scenario(**overrides) -> ScenarioConfig:
    defaults = dict(
        num_nodes=4, num_vcs=2, injection_rate=0.1,
        cycles=1_500, warmup=400, sensor_sample_period=64,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def _all_port_specs(scenario: ScenarioConfig, **fault_kwargs):
    """One FaultSpec per router input port (sensor bank site)."""
    probe = build_network(scenario)
    return tuple(
        FaultSpec(router=router.router_id, port=port_name(port), **fault_kwargs)
        for router in probe.routers
        for port in router.input_ports
    )


class TestFullSensorDropout:
    """Acceptance: under 100 % sensor dropout everywhere, sensor-wise
    must perform like rr-no-sensor instead of acting on stale verdicts."""

    def test_degrades_to_round_robin_levels(self):
        base = _scenario()
        specs = _all_port_specs(base, kind="sensor-dropout", onset=0)

        rr = run_scenario(base.with_policy("rr-no-sensor"))
        sw_healthy = run_scenario(base.with_policy("sensor-wise"))
        sw_faulted = run_scenario(
            dataclasses.replace(base, policy="sensor-wise", faults=specs)
        )

        # The healthy sensor-wise policy beats round-robin on the MD VC
        # (that's the paper's point) — so matching rr under dropout is a
        # real behavioural change, not a no-op.
        assert sw_healthy.md_duty < rr.md_duty

        # Degraded sensor-wise ~ rr-no-sensor on the measured port.
        assert abs(sw_faulted.md_duty - rr.md_duty) <= 3.0
        assert (
            sw_faulted.net_stats.avg_packet_latency
            <= rr.net_stats.avg_packet_latency * 1.10 + 1.0
        )

        # The network made progress (no deadlock) and the degradation
        # was detected and counted.
        assert sw_faulted.net_stats.flits_ejected > 0
        assert sw_faulted.net_stats.sensor_degraded_cycles > 0
        assert sw_faulted.fault_counters["sensor_samples_dropped"] > 0

    def test_rr_policy_is_immune(self):
        base = _scenario(cycles=400, warmup=100)
        specs = _all_port_specs(base, kind="sensor-dropout", onset=0)
        faulted = run_scenario(
            dataclasses.replace(base, policy="rr-no-sensor", faults=specs)
        )
        clean = run_scenario(base.with_policy("rr-no-sensor"))
        # A sensor-less policy never consults the feed: identical runs,
        # and the watchdog never degrades a non-sensor engine.
        assert faulted.duty_cycles == clean.duty_cycles
        assert faulted.net_stats.sensor_degrade_events == 0
        assert faulted.net_stats.sensor_degraded_cycles == 0


class TestDegradationAccounting:
    def test_healthy_run_never_degrades(self):
        result = run_scenario(_scenario(cycles=600, warmup=150, policy="sensor-wise"))
        assert result.net_stats.sensor_degrade_events == 0
        assert result.net_stats.sensor_degraded_cycles == 0

    def test_mid_window_onset_counts_an_event(self):
        base = _scenario(cycles=1_000, warmup=200, policy="sensor-wise")
        spec = FaultSpec(
            "sensor-dropout", router=0, port="east", onset=base.warmup + 100
        )
        result = run_scenario(dataclasses.replace(base, faults=(spec,)))
        stats = result.net_stats
        assert stats.sensor_degrade_events >= 1
        # Degradation starts mid-window, so only part of it is degraded.
        assert 0 < stats.sensor_degraded_cycles < stats.cycles

    def test_plausibility_watchdog_trips_on_wire_noise(self):
        base = _scenario(cycles=800, warmup=200, policy="sensor-wise")
        spec = FaultSpec("down-up-corrupt", router=0, port="east", rate=1.0)
        result = run_scenario(dataclasses.replace(base, faults=(spec,)))
        stats = result.net_stats
        # Reports flapping every cycle are implausible for a sensor that
        # samples every 64 cycles: the port must ride its fallback for
        # essentially the whole window.
        assert stats.sensor_degraded_cycles >= stats.cycles * 0.9
        assert result.fault_counters["down_up_corrupted"] > 0


class TestHealing:
    def test_reengages_after_fault_window_closes(self):
        scenario = _scenario(cycles=1_200, warmup=0, policy="sensor-wise")
        spec = FaultSpec("sensor-dropout", router=0, port="east", onset=100, duration=300)
        network = build_network(scenario)
        FaultInjector([spec], master_seed=scenario.seed).apply(network)
        network.run(scenario.cycles)

        stats = network.stats()
        assert stats.sensor_degrade_events >= 1
        # Healed well before the end: the port must not still be faulted.
        for port in network.upstream_ports():
            for engine in port.engines:
                assert not engine.faulted
        # Degradation covered the dropout window plus detection lag, not
        # the whole run.
        assert 0 < stats.sensor_degraded_cycles < scenario.cycles * 0.75
