"""Wormhole-switching stress tests: backpressure, long packets, tiny
buffers, hotspot contention — the flow-control invariants must hold in
every regime (no overflow, no loss, no deadlock below saturation)."""

from __future__ import annotations

import pytest

from repro.traffic.synthetic import HotspotTraffic, SyntheticTraffic
from tests.conftest import build_small_network, drain


class TestLongPackets:
    def test_packet_longer_than_buffer(self):
        """8-flit packets through 4-flit buffers: the worm spans several
        routers and must still deliver intact."""
        net = build_small_network(
            policy="sensor-wise", flit_rate=0.2, packet_length=8, buffer_depth=4,
        )
        net.run(1200)
        drain(net)
        records = [r for ni in net.interfaces for r in ni.ejection_records]
        assert records
        assert all(r.length == 8 for r in records)
        injected = sum(ni.packets_injected for ni in net.interfaces)
        ejected = sum(ni.packets_ejected for ni in net.interfaces)
        assert ejected == injected

    def test_single_flit_packets(self):
        net = build_small_network(
            policy="rr-no-sensor", flit_rate=0.2, packet_length=1,
        )
        net.run(1200)
        drain(net)
        records = [r for ni in net.interfaces for r in ni.ejection_records]
        assert records
        assert all(r.length == 1 for r in records)


class TestTinyBuffers:
    @pytest.mark.parametrize("depth", [1, 2])
    def test_depth_constrained_buffers_still_deliver(self, depth):
        net = build_small_network(
            policy="sensor-wise", flit_rate=0.15,
            packet_length=2, buffer_depth=depth,
        )
        net.run(1500)
        drain(net)
        injected = sum(ni.packets_injected for ni in net.interfaces)
        ejected = sum(ni.packets_ejected for ni in net.interfaces)
        assert ejected == injected > 20


class TestSingleVC:
    def test_one_vc_per_port(self):
        """num_vcs=1 degenerates every policy to on/off gating of the
        only VC; traffic must still flow."""
        for policy in ("baseline", "rr-no-sensor", "sensor-wise"):
            net = build_small_network(policy=policy, num_vcs=1, flit_rate=0.1)
            net.run(1200)
            drain(net)
            ejected = sum(ni.packets_ejected for ni in net.interfaces)
            assert ejected > 10, f"no delivery with {policy} and 1 VC"


class TestHotspotContention:
    def test_hotspot_backpressure_is_lossless(self):
        """Everyone hammers node 0: heavy contention on its local port,
        but flow control never drops or duplicates a flit."""
        traffic = HotspotTraffic(
            4, flit_rate=0.4, hotspots=[0], hotspot_fraction=0.9,
            packet_length=4, seed=5,
        )
        net = build_small_network(policy="sensor-wise", traffic=traffic)
        net.run(1500)
        drain(net, max_cycles=5000)
        injected = sum(ni.packets_injected for ni in net.interfaces)
        ejected = sum(ni.packets_ejected for ni in net.interfaces)
        assert ejected == injected > 50

    def test_saturated_uniform_load_keeps_invariants(self):
        """Near saturation the network may queue heavily, but per-cycle
        invariants (enforced as exceptions inside the model) must hold."""
        traffic = SyntheticTraffic("uniform", 4, flit_rate=0.9,
                                   packet_length=4, seed=6)
        net = build_small_network(policy="rr-no-sensor", traffic=traffic)
        net.run(1200)  # would raise on any overflow/credit violation
        stats = net.stats()
        assert stats.flits_ejected > 0


class TestAdversarialPatterns:
    @pytest.mark.parametrize("pattern", ["transpose", "tornado", "bit_complement"])
    def test_structured_patterns_deliver(self, pattern):
        traffic = SyntheticTraffic(pattern, 16, flit_rate=0.1,
                                   packet_length=4, seed=8)
        net = build_small_network(
            policy="sensor-wise", num_nodes=16, traffic=traffic,
        )
        net.run(800)
        drain(net, max_cycles=4000)
        injected = sum(ni.packets_injected for ni in net.interfaces)
        ejected = sum(ni.packets_ejected for ni in net.interfaces)
        assert ejected == injected > 10
