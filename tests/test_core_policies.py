"""Unit tests for the recovery policies (Algorithms 1 and 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    ALL_POLICIES,
    PAPER_POLICIES,
    BaselinePolicy,
    RoundRobinNoTrafficPolicy,
    RoundRobinSensorlessPolicy,
    SensorWisePolicy,
    make_policy_factory,
)
from repro.noc.policy_api import OutVCState, PolicyContext, PolicyDecision, states_of


def ctx(states, new_traffic=False, md=None, cycle=0):
    return PolicyContext(
        cycle=cycle,
        vc_states=states_of(states),
        new_traffic=new_traffic,
        most_degraded_vc=md,
    )


class TestBaseline:
    def test_everything_stays_awake(self):
        decision = BaselinePolicy().decide(ctx(["idle", "recovery", "active"]))
        assert decision.awake == frozenset((0, 1, 2))
        assert not decision.enable

    def test_flags(self):
        p = BaselinePolicy()
        assert not p.uses_sensor and not p.uses_traffic and p.stable


class TestRoundRobinSensorless:
    """Algorithm 1 truth table."""

    def test_no_traffic_gates_everything(self):
        p = RoundRobinSensorlessPolicy(rotation_period=1)
        decision = p.decide(ctx(["idle", "idle"], new_traffic=False))
        assert decision.awake == frozenset()
        assert not decision.enable

    def test_traffic_keeps_candidate_awake(self):
        p = RoundRobinSensorlessPolicy(rotation_period=1)
        decision = p.decide(ctx(["idle", "idle", "idle"], new_traffic=True, cycle=0))
        assert decision.enable
        assert decision.awake == frozenset((0,))
        assert decision.idle_vc == 0

    def test_candidate_rotates_with_cycle(self):
        p = RoundRobinSensorlessPolicy(rotation_period=1)
        for cycle in range(6):
            decision = p.decide(ctx(["idle"] * 3, new_traffic=True, cycle=cycle))
            assert decision.idle_vc == cycle % 3

    def test_rotation_period_slows_candidate(self):
        p = RoundRobinSensorlessPolicy(rotation_period=10)
        assert p.candidate(ctx(["idle"] * 4, cycle=9)) == 0
        assert p.candidate(ctx(["idle"] * 4, cycle=10)) == 1

    def test_scan_skips_active_vcs(self):
        p = RoundRobinSensorlessPolicy(rotation_period=1)
        decision = p.decide(ctx(["active", "idle", "idle"], new_traffic=True, cycle=0))
        assert decision.idle_vc == 1

    def test_recovery_vc_can_be_selected(self):
        p = RoundRobinSensorlessPolicy(rotation_period=1)
        decision = p.decide(ctx(["recovery", "idle"], new_traffic=True, cycle=0))
        assert decision.idle_vc == 0
        assert decision.awake == frozenset((0,))

    def test_all_active_nothing_to_keep(self):
        p = RoundRobinSensorlessPolicy(rotation_period=1)
        decision = p.decide(ctx(["active", "active"], new_traffic=True, cycle=0))
        assert decision.awake == frozenset()

    def test_wraparound_scan(self):
        p = RoundRobinSensorlessPolicy(rotation_period=1)
        # cycle 2 -> candidate 2; VC2 active -> wraps to VC0.
        decision = p.decide(ctx(["idle", "active", "active"], new_traffic=True, cycle=2))
        assert decision.idle_vc == 0

    def test_invalid_rotation_period(self):
        with pytest.raises(ValueError):
            RoundRobinSensorlessPolicy(rotation_period=0)

    def test_epoch_tracks_rotation(self):
        p = RoundRobinSensorlessPolicy(rotation_period=8)
        assert p.epoch(7) == 0
        assert p.epoch(8) == 1


class TestRoundRobinNoTraffic:
    def test_always_keeps_one_awake(self):
        p = RoundRobinNoTrafficPolicy(rotation_period=1)
        decision = p.decide(ctx(["idle", "idle"], new_traffic=False, cycle=0))
        assert decision.enable
        assert decision.awake == frozenset((0,))


class TestSensorWise:
    """Algorithm 2 truth table."""

    def test_no_traffic_gates_everything_including_md(self):
        p = SensorWisePolicy()
        decision = p.decide(ctx(["idle"] * 4, new_traffic=False, md=1))
        assert decision.awake == frozenset()
        assert not decision.enable

    def test_traffic_keeps_last_scanned_idle_awake(self):
        p = SensorWisePolicy()
        decision = p.decide(ctx(["idle"] * 4, new_traffic=True, md=1))
        # MD (1) gated first, then 0 and 2; survivor is VC3.
        assert decision.awake == frozenset((3,))
        assert decision.enable
        assert decision.idle_vc == 3

    def test_md_gated_first_even_when_last(self):
        p = SensorWisePolicy()
        decision = p.decide(ctx(["idle"] * 4, new_traffic=True, md=3))
        assert 3 not in decision.awake
        assert decision.awake == frozenset((2,))

    def test_md_survives_when_only_idle(self):
        p = SensorWisePolicy()
        decision = p.decide(
            ctx(["active", "idle", "active", "active"], new_traffic=True, md=1)
        )
        assert decision.awake == frozenset((1,))
        assert decision.idle_vc == 1

    def test_recovery_vcs_reconsidered_each_cycle(self):
        """Lines 5-8: previously gated VCs are part of the idle pool."""
        p = SensorWisePolicy()
        decision = p.decide(
            ctx(["recovery", "recovery", "idle"], new_traffic=True, md=2)
        )
        # Pool {0,1,2}; gate MD=2, then 0; survivor 1 (woken from recovery).
        assert decision.awake == frozenset((1,))

    def test_all_active_no_survivor(self):
        p = SensorWisePolicy()
        decision = p.decide(ctx(["active", "active"], new_traffic=True, md=0))
        assert decision.awake == frozenset()
        assert not decision.enable  # nothing kept idle -> enable meaningless

    def test_missing_md_falls_back_to_vc0(self):
        p = SensorWisePolicy()
        decision = p.decide(ctx(["idle", "idle"], new_traffic=True, md=None))
        assert 0 not in decision.awake  # VC0 treated as most degraded

    def test_no_traffic_variant_always_reserves_one(self):
        p = SensorWisePolicy(use_traffic=False)
        assert p.name == "sensor-wise-no-traffic"
        decision = p.decide(ctx(["idle"] * 4, new_traffic=False, md=1))
        assert len(decision.awake) == 1
        assert decision.enable

    def test_no_traffic_variant_survivor_is_highest_non_md(self):
        p = SensorWisePolicy(use_traffic=False)
        for md in range(4):
            decision = p.decide(ctx(["idle"] * 4, new_traffic=False, md=md))
            expected = 2 if md == 3 else 3
            assert decision.awake == frozenset((expected,))

    def test_flags(self):
        full = SensorWisePolicy()
        assert full.uses_sensor and full.uses_traffic and full.stable
        ablated = SensorWisePolicy(use_traffic=False)
        assert ablated.uses_sensor and not ablated.uses_traffic


STATE_STRATEGY = st.lists(
    st.sampled_from(["idle", "active", "recovery"]), min_size=2, max_size=6
)


class TestPolicyProperties:
    @settings(max_examples=80, deadline=None)
    @given(states=STATE_STRATEGY, traffic=st.booleans(), data=st.data())
    def test_sensor_wise_invariants(self, states, traffic, data):
        md = data.draw(st.integers(min_value=0, max_value=len(states) - 1))
        p = SensorWisePolicy()
        decision = p.decide(ctx(states, new_traffic=traffic, md=md))
        decision.validate(len(states))
        non_active = {i for i, s in enumerate(states) if s != "active"}
        # Awake VCs are all from the non-active pool.
        assert decision.awake <= non_active
        # At most one VC is reserved.
        assert len(decision.awake) <= 1
        # With traffic and >= 2 non-active VCs, the MD VC must recover.
        if traffic and md in non_active and len(non_active) >= 2:
            assert md not in decision.awake

    @settings(max_examples=80, deadline=None)
    @given(states=STATE_STRATEGY, traffic=st.booleans(), cycle=st.integers(0, 1000))
    def test_rr_invariants(self, states, traffic, cycle):
        p = RoundRobinSensorlessPolicy(rotation_period=7)
        decision = p.decide(ctx(states, new_traffic=traffic, cycle=cycle))
        decision.validate(len(states))
        non_active = {i for i, s in enumerate(states) if s != "active"}
        assert decision.awake <= non_active
        assert len(decision.awake) <= 1
        if not traffic:
            assert decision.awake == frozenset()

    @settings(max_examples=80, deadline=None)
    @given(states=STATE_STRATEGY, traffic=st.booleans(), data=st.data())
    def test_stable_policies_are_fixed_points(self, states, traffic, data):
        """Re-deciding on the post-decision states yields the same
        decision — the property the memoization relies on."""
        md = data.draw(st.integers(min_value=0, max_value=len(states) - 1))
        for policy in (
            SensorWisePolicy(),
            SensorWisePolicy(use_traffic=False),
            RoundRobinSensorlessPolicy(rotation_period=1_000_000),
            BaselinePolicy(),
        ):
            first = policy.decide(ctx(states, new_traffic=traffic, md=md))
            after = [
                "active" if s == "active"
                else ("idle" if i in first.awake else "recovery")
                for i, s in enumerate(states)
            ]
            second = policy.decide(ctx(after, new_traffic=traffic, md=md))
            assert second.awake == first.awake
            assert second.enable == first.enable


class TestFactory:
    def test_all_policies_constructible(self):
        for name in ALL_POLICIES:
            policy = make_policy_factory(name)()
            assert policy.name == name

    def test_factory_produces_fresh_instances(self):
        factory = make_policy_factory("sensor-wise")
        assert factory() is not factory()

    def test_rotation_period_forwarded(self):
        policy = make_policy_factory("rr-no-sensor", rotation_period=5)()
        assert policy.rotation_period == 5

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy_factory("magic")

    def test_paper_policies_subset(self):
        assert set(PAPER_POLICIES) <= set(ALL_POLICIES)
        assert PAPER_POLICIES == ("rr-no-sensor", "sensor-wise-no-traffic", "sensor-wise")
