"""Tests for the ORION-class power model and leakage/gating accounting."""

from __future__ import annotations

import pytest

from repro.area.power import (
    PowerBreakdown,
    buffer_leakage_spread,
    compute_power_report,
    leakage_scale,
    thermal_voltage,
)
from repro.nbti.constants import TECH_45NM
from repro.nbti.process_variation import ProcessVariationModel
from tests.conftest import build_small_network


class TestLeakageScale:
    def test_nominal_is_unity(self):
        assert leakage_scale(TECH_45NM.vth_nominal) == pytest.approx(1.0)

    def test_lower_vth_leaks_more(self):
        assert leakage_scale(0.160) > 1.0 > leakage_scale(0.200)

    def test_monotone_decreasing_in_vth(self):
        vths = [0.15, 0.17, 0.18, 0.19, 0.21]
        scales = [leakage_scale(v) for v in vths]
        assert scales == sorted(scales, reverse=True)

    def test_hotter_means_flatter(self):
        """At higher T the exponential sensitivity to Vth weakens."""
        cold = leakage_scale(0.160, temperature_k=300.0)
        hot = leakage_scale(0.160, temperature_k=400.0)
        assert cold > hot > 1.0

    def test_invalid_vth_rejected(self):
        with pytest.raises(ValueError):
            leakage_scale(0.0)

    def test_thermal_voltage(self):
        assert thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)


class TestLeakageSpread:
    def test_paper_variation_regime(self):
        """The paper cites ~90 % buffer leakage variation from PV; a
        realistic per-chip sample lands in the +50..+200 % band."""
        vths = ProcessVariationModel(seed=3).sample(64)
        spread = buffer_leakage_spread(vths)
        assert 1.5 <= spread <= 3.0

    def test_uniform_population_has_no_spread(self):
        assert buffer_leakage_spread([0.18, 0.18]) == pytest.approx(1.0)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            buffer_leakage_spread([])


class TestPowerReport:
    def run_net(self, policy, cycles=800, rate=0.2):
        net = build_small_network(policy=policy, flit_rate=rate)
        net.run(cycles)
        return net

    def test_breakdown_fields_positive_under_traffic(self):
        report = compute_power_report(self.run_net("baseline"))
        assert report.dynamic_buffer_pj > 0
        assert report.dynamic_crossbar_pj > 0
        assert report.dynamic_arbitration_pj > 0
        assert report.dynamic_link_pj > 0
        assert report.leakage_actual_pj > 0
        assert report.total_pj == pytest.approx(
            report.dynamic_pj + report.leakage_actual_pj
        )

    def test_baseline_saves_no_leakage(self):
        report = compute_power_report(self.run_net("baseline"))
        assert report.leakage_saving == pytest.approx(0.0)
        assert report.leakage_actual_pj == pytest.approx(report.leakage_ungated_pj)

    def test_gating_policies_save_leakage(self):
        rr = compute_power_report(self.run_net("rr-no-sensor"))
        sw = compute_power_report(self.run_net("sensor-wise"))
        assert rr.leakage_saving > 0.5
        assert sw.leakage_saving > 0.5

    def test_dynamic_energy_similar_across_policies(self):
        """Same traffic -> roughly the same switching energy."""
        base = compute_power_report(self.run_net("baseline"))
        sw = compute_power_report(self.run_net("sensor-wise"))
        assert sw.dynamic_pj == pytest.approx(base.dynamic_pj, rel=0.1)

    def test_idle_network_is_leakage_only(self):
        net = build_small_network(policy="baseline", flit_rate=0.0)
        net.run(200)
        report = compute_power_report(net)
        assert report.dynamic_pj == 0.0
        assert report.leakage_actual_pj > 0.0

    def test_power_mw_scales_with_window(self):
        report = compute_power_report(self.run_net("baseline", cycles=400))
        mw = report.power_mw(TECH_45NM.clock_period_s)
        assert mw > 0.0
        assert report.power_mw(2 * TECH_45NM.clock_period_s) == pytest.approx(mw / 2)

    def test_empty_window_power_zero(self):
        empty = PowerBreakdown(0, 0, 0, 0, 0, 0, 0)
        assert empty.power_mw(1e-9) == 0.0
        assert empty.leakage_saving == 0.0

    def test_as_text_mentions_saving(self):
        report = compute_power_report(self.run_net("sensor-wise"))
        assert "gating saved" in report.as_text()

    def test_aging_leakage_toggle(self):
        net = self.run_net("baseline")
        with_aging = compute_power_report(net, include_aging_leakage=True)
        without = compute_power_report(net, include_aging_leakage=False)
        # NBTI raises |Vth|, so the aged population leaks *less*; the
        # long-term model's weak time dependence makes the effect a few
        # percent even at simulation-scale horizons.
        assert with_aging.leakage_actual_pj < without.leakage_actual_pj
        assert with_aging.leakage_actual_pj == pytest.approx(
            without.leakage_actual_pj, rel=0.15
        )
