"""Differential tests: the struct-of-arrays engine vs the per-object oracle.

The SoA engine (``repro.noc.soa``) promises *bit-identical* simulation:
any observable difference from the seed's per-object stepped engine is a
bug by definition.  These tests enforce that contract four ways:

* **Directed cases** — one case per recovery policy, plus regression
  pins for the configurations that diverged during engine bring-up
  (same-cycle channel-event ordering with 4 VCs, the cycle-0
  injection-scout sentinel at zero rate, non-unit wake/link latency,
  multi-vnet scheduling, short sensor sample periods).
* **Three-way engine equality** — stepped vs fast-forward vs SoA must
  agree on the full state fingerprint.
* **Scenario-level identity** — ``run_scenario`` must serialize to
  byte-identical JSON under the SoA and stepped engines for every
  policy.
* **Randomized fuzz** (``-m slow``) — a seeded cross-engine sweep over
  policies x traffic patterns x topologies x micro-architecture knobs.

The fingerprint intentionally reaches into private state: it must
capture *everything* that can influence future behavior (arbiter
pointers, credit counts, NBTI anchors, sensor readings, RNG position),
not just the public statistics, so a divergence is caught near the
cycle it happens instead of thousands of cycles later.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import pathlib
import random

import pytest

from repro.core import ALL_POLICIES
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.noc.network import Network
from repro.traffic.synthetic import HotspotTraffic, SyntheticTraffic

from tests.conftest import build_small_network


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
@contextlib.contextmanager
def forced_engine(mode):
    """Pin ``Network.force_engine`` for the duration of a run."""
    Network.force_engine = mode
    try:
        yield
    finally:
        Network.force_engine = None


def fingerprint(net: Network) -> dict:
    """Every piece of state that can influence future behavior."""
    fp = {"cycle": net.cycle}
    for r in net.routers:
        rid = r.router_id
        fp[f"r{rid}.va_pending"] = {p: list(v) for p, v in r.va_pending.items()}
        fp[f"r{rid}.flits_routed"] = r.flits_routed
        for (p, vn), arb in r._va_arbiters.items():
            fp[f"r{rid}.va_arb.{p}.{vn}"] = arb.pointer
        for p, arb in r._sa_input_arbiters.items():
            fp[f"r{rid}.sa_in.{p}"] = arb.pointer
        for p, arb in r._sa_output_arbiters.items():
            fp[f"r{rid}.sa_out.{p}"] = arb.pointer
        for p in r.input_ports:
            u = r.inputs[p].unit
            fp[f"r{rid}.in{p}.busy"] = u.busy_count
            fp[f"r{rid}.in{p}.rx"] = u.flits_received
            for i, ivc in enumerate(u.vcs):
                b = ivc.buffer
                fp[f"r{rid}.in{p}.vc{i}"] = (
                    ivc.busy, ivc.outport, ivc.out_vc, ivc.sa_ready_at,
                    len(b), b.state.name, b._nbti_anchor,
                    b.device.counter.snapshot() if b.device else None,
                )
            bank = u.sensor_bank
            if bank is not None:
                fp[f"r{rid}.in{p}.bank"] = (
                    bank.last_sample_cycle, tuple(bank.readings)
                )
        for p in r.output_ports:
            up = r.outputs[p].upstream
            for vc, e in enumerate(up.entries):
                fp[f"r{rid}.out{p}.vc{vc}"] = (
                    e.state.name, e.credits, e.gated, e.available_at,
                    e.packet_id,
                )
            for e in up.engines:
                fp[f"r{rid}.out{p}.eng{e.vnet}"] = (
                    e.new_traffic, e.most_degraded_vc, e.md_updated_cycle,
                    e.faulted, e._ctx_version, e._alloc_arbiter.pointer,
                )
    for ni in net.interfaces:
        fp[f"ni{ni.node_id}.src"] = [len(q) for q in ni.source_queues]
        fp[f"ni{ni.node_id}.send"] = [len(q) for q in ni._send_queues]
        fp[f"ni{ni.node_id}.stats"] = (
            ni.packets_injected, ni.packets_ejected,
            ni.flits_injected, ni.flits_ejected,
        )
        up = ni.injection_port
        for vc, e in enumerate(up.entries):
            fp[f"ni{ni.node_id}.vc{vc}"] = (
                e.state.name, e.credits, e.gated, e.available_at, e.packet_id
            )
        for e in up.engines:
            fp[f"ni{ni.node_id}.eng{e.vnet}"] = (
                e.new_traffic, e.most_degraded_vc, e.md_updated_cycle,
                e.faulted, e._ctx_version, e._alloc_arbiter.pointer,
            )
    # Flit has identity equality only, so in-flight items compare by repr.
    for i, ch in enumerate(net._all_channels):
        fp[f"chan{i}"] = [(due, repr(item)) for due, item in ch._queue]
    if net.traffic is not None and hasattr(net.traffic, "_rng"):
        fp["rng"] = str(net.traffic._rng.bit_generator.state)
    return fp


def diff(a: dict, b: dict) -> list:
    """Keys on which two fingerprints disagree, with both values."""
    out = []
    for k in sorted(set(a) | set(b)):
        if a.get(k) != b.get(k):
            out.append((k, a.get(k), b.get(k)))
    return out


def run_with_engine(mode, policy, rate, cycles, seed,
                    segments=4, traffic=None, **config_kwargs) -> Network:
    """Build and run one network with the engine pinned.

    The run is split into segments so the engines are also exercised
    mid-stream: resuming from an arbitrary cycle must not change the
    outcome (the SoA engine re-attaches its work sets from live object
    state on every ``run`` call).
    """
    with forced_engine(mode):
        net = build_small_network(
            policy=policy, flit_rate=rate, seed=seed, traffic=traffic,
            **config_kwargs,
        )
        seg = cycles // segments
        for _ in range(segments):
            net.run(seg)
        net.run(cycles - seg * segments)
        net.flush_nbti()
    return net


def assert_engines_agree(policy, rate, cycles, seed,
                         engines=("stepped", "soa"), **kw):
    prints = {
        mode: fingerprint(
            run_with_engine(mode, policy, rate, cycles, seed, **kw)
        )
        for mode in engines
    }
    reference = engines[0]
    for mode in engines[1:]:
        divergences = diff(prints[reference], prints[mode])
        assert not divergences, (
            f"{reference} and {mode} engines diverged on "
            f"{len(divergences)} state keys; first few: "
            + "; ".join(
                f"{k}: {reference}={va!r} {mode}={vb!r}"
                for k, va, vb in divergences[:5]
            )
        )


# ----------------------------------------------------------------------
# Directed cases (default tier)
# ----------------------------------------------------------------------
#: (id, policy, rate, cycles, seed, config kwargs).  The first block is
#: one case per recovery policy; the second block pins configurations
#: that produced cross-engine divergences during bring-up.
DIRECTED_CASES = [
    ("sensor_wise_quiet", "sensor-wise", 0.02, 3000, 7, {}),
    ("sensor_wise_loaded", "sensor-wise", 0.2, 1500, 7, {}),
    ("baseline", "baseline", 0.05, 2000, 3, {}),
    ("rr_no_sensor", "rr-no-sensor", 0.05, 2000, 3, {}),
    ("rr_no_sensor_no_traffic", "rr-no-sensor-no-traffic", 0.05, 2000, 3, {}),
    ("sensor_wise_no_traffic", "sensor-wise-no-traffic", 0.05, 2000, 3, {}),
    ("static_reserve", "static-reserve", 0.05, 2000, 3, {}),
    # Zero injection rate: pins the injection-scout sentinel (an
    # uninitialized next-injection cycle of 0 falsely fired at cycle 0).
    ("zero_rate_idle", "sensor-wise", 0.0, 2000, 1, {}),
    # 3x3 mesh: pins multi-hop XY routes where same-cycle data and
    # credit events interleave across routers.
    ("nine_node_mesh", "sensor-wise", 0.02, 2500, 5, {"num_nodes": 9}),
    # 4 VCs: pins the ordering of same-cycle channel events popped from
    # the SoA heap (must replay in the stepped engine's phase order).
    ("four_vcs", "rr-no-sensor", 0.1, 1500, 5, {"num_vcs": 4}),
    # Non-unit wake and link latency: pins power-gating wake ticks that
    # span quiescence-jump boundaries.
    ("slow_wake_slow_links", "sensor-wise", 0.1, 1500, 9,
     {"wake_latency": 3, "link_latency": 2}),
    # Two vnets with single-flit packets: pins per-vnet policy engines
    # and head==tail flits (allocate and release on the same cycle).
    ("two_vnets_single_flit", "sensor-wise", 0.1, 1500, 11,
     {"num_vnets": 2, "num_vcs": 4, "packet_length": 1}),
    # Short sample period: pins the synchronized NBTI sample schedule
    # (flush anchors must land exactly on sample cycles).
    ("short_sample_period", "sensor-wise", 0.05, 1500, 13,
     {"sensor_sample_period": 64}),
]


@pytest.mark.parametrize(
    "policy, rate, cycles, seed, kw",
    [case[1:] for case in DIRECTED_CASES],
    ids=[case[0] for case in DIRECTED_CASES],
)
def test_soa_matches_stepped(policy, rate, cycles, seed, kw):
    assert_engines_agree(policy, rate, cycles, seed, **kw)


def test_hotspot_traffic_matches():
    """Hotspot destinations draw extra RNG values per injection, so the
    SoA traffic scout must replay the exact stream order."""
    def mk_traffic():
        return HotspotTraffic(9, flit_rate=0.1, hotspots=[4],
                              packet_length=4, seed=23)

    prints = {}
    for mode in ("stepped", "soa"):
        net = run_with_engine(mode, "sensor-wise", 0.1, 1800, 23,
                              num_nodes=9, traffic=mk_traffic())
        prints[mode] = fingerprint(net)
    assert not diff(prints["stepped"], prints["soa"])


def test_three_engines_agree():
    """stepped, fast-forward and SoA all produce the same fingerprint."""
    assert_engines_agree("sensor-wise", 0.02, 2400, 7,
                         engines=("stepped", "fast", "soa"))


def test_force_soa_rejects_ineligible_network():
    """force_engine='soa' must fail loudly when the network cannot use
    the SoA engine rather than silently falling back."""
    with forced_engine("soa"):
        net = build_small_network()
        net.use_per_cycle_nbti()
        with pytest.raises(RuntimeError, match="not SoA-eligible"):
            net.run(10)


def test_auto_selection_prefers_soa_when_eligible():
    """The default engine choice (force_engine=None) must agree with an
    explicit SoA run and with the stepped oracle."""
    nets = {}
    for mode in (None, "soa", "stepped"):
        with forced_engine(mode):
            net = build_small_network(flit_rate=0.05, seed=3)
            net.run(1500)
            net.flush_nbti()
        nets[mode] = fingerprint(net)
    assert not diff(nets[None], nets["soa"])
    assert not diff(nets[None], nets["stepped"])


# ----------------------------------------------------------------------
# Scenario-level identity (default tier)
# ----------------------------------------------------------------------
def scenario_payload(result) -> str:
    """A ScenarioResult as canonical JSON (host timings excluded)."""
    return json.dumps({
        "scenario": dataclasses.asdict(result.scenario),
        "iteration": result.iteration,
        "duty_cycles": result.duty_cycles,
        "md_vc": result.md_vc,
        "port_duty": {
            f"{r}.{p}": d for (r, p), d in sorted(result.port_duty.items())
        },
        "initial_vths": result.initial_vths,
        "port_initial_vths": {
            f"{r}.{p}": v
            for (r, p), v in sorted(result.port_initial_vths.items())
        },
        "net_stats": dataclasses.asdict(result.net_stats),
        "violations": result.violations,
    }, sort_keys=True)


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_scenario_result_identity(policy):
    scenario = ScenarioConfig(
        num_nodes=4, num_vcs=2, injection_rate=0.1, policy=policy,
        traffic="uniform", cycles=1200, warmup=200, seed=1,
    )
    payloads = {}
    for mode in ("soa", "stepped"):
        with forced_engine(mode):
            payloads[mode] = scenario_payload(run_scenario(scenario))
    assert payloads["soa"] == payloads["stepped"]


# ----------------------------------------------------------------------
# Golden bytes under the SoA engine (default tier)
# ----------------------------------------------------------------------
GOLDEN = pathlib.Path(__file__).parent / "data"


def test_table3_golden_bytes_under_soa(tmp_path):
    """The seed's Table 3 golden was produced by the stepped engine; the
    SoA engine must reproduce it byte for byte.  Because the bytes are
    unchanged, the experiment cache schema stays at version 4 — bump it
    only if an engine change ever alters results on purpose."""
    from repro.experiments.parallel import CACHE_SCHEMA_VERSION
    from repro.experiments.persistence import save_synthetic_table
    from repro.experiments.tables import run_synthetic_table

    assert CACHE_SCHEMA_VERSION == 4
    with forced_engine("soa"):
        table = run_synthetic_table(
            num_vcs=2, arches=(4,), rates=(0.1, 0.2),
            cycles=800, warmup=200, seed=1,
        )
    out = tmp_path / "table3.json"
    save_synthetic_table(table, out)
    golden = (GOLDEN / "table3_small_golden.json").read_bytes()
    assert out.read_bytes() == golden


def test_fault_campaign_golden_bytes_with_auto_selection():
    """Fault campaigns inject sensor faults and validate invariants
    mid-run, which makes their networks SoA-ineligible — the automatic
    engine selection must fall back to dense stepping and leave the
    campaign report byte-identical to the seed golden."""
    from repro.faults.campaign import FaultCampaignConfig, run_fault_campaign

    config = FaultCampaignConfig(
        num_nodes=4, num_vcs=2, injection_rate=0.1,
        cycles=300, warmup=100, seed=1, sensor_sample_period=32,
        kinds=("sensor-dropout", "up-down-drop"),
        fault_rates=(0.0, 1.0),
        policies=("rr-no-sensor", "sensor-wise"),
        validate_every=16,
    )
    with forced_engine("auto"):
        report = run_fault_campaign(config)
    golden = (GOLDEN / "fault_campaign_small_golden.json").read_text()
    assert report.to_json() == golden


# ----------------------------------------------------------------------
# Randomized cross-engine fuzz (slow tier: pytest -m slow)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_fuzz_soa_vs_stepped():
    """Seeded sweep over policies, patterns, topologies and
    micro-architecture knobs.  Any divergence prints the drawn
    configuration so it can be minimized into a directed pin above."""
    rng = random.Random(20130318)  # the paper's conference date
    patterns = ["uniform", "transpose", "neighbor", "bit_complement",
                "hotspot"]
    failures = []
    for trial in range(25):
        policy = rng.choice(ALL_POLICIES)
        pattern = rng.choice(patterns)
        nodes = rng.choice([4, 16]) if pattern == "bit_complement" \
            else rng.choice([4, 9, 16])
        rate = rng.choice([0.0, 0.005, 0.02, 0.1, 0.3])
        cycles = rng.choice([800, 1500, 2600])
        segments = rng.choice([1, 3, 5])
        seed = rng.randint(0, 10_000)
        cfg = dict(
            num_vcs=rng.choice([2, 4]),
            num_vnets=rng.choice([1, 1, 2]),
            buffer_depth=rng.choice([2, 4]),
            packet_length=rng.choice([1, 4]),
            link_latency=rng.choice([1, 2]),
            wake_latency=rng.choice([0, 1, 3]),
            sensor_sample_period=rng.choice([64, 256, 1024]),
        )

        def mk_traffic():
            if rate == 0.0:
                return None
            if pattern == "hotspot":
                return HotspotTraffic(
                    nodes, flit_rate=rate, hotspots=[nodes // 2],
                    packet_length=cfg["packet_length"], seed=seed,
                )
            return SyntheticTraffic(
                pattern, nodes, flit_rate=rate,
                packet_length=cfg["packet_length"], seed=seed,
            )

        tag = (f"[{trial}] {policy}/{pattern} n={nodes} r={rate} "
               f"c={cycles} seg={segments} seed={seed} {cfg}")
        prints = {}
        for mode in ("stepped", "soa"):
            net = run_with_engine(
                mode, policy, rate, cycles, seed, segments=segments,
                num_nodes=nodes, traffic=mk_traffic(), **cfg,
            )
            prints[mode] = fingerprint(net)
        divergences = diff(prints["stepped"], prints["soa"])
        if divergences:
            failures.append(
                f"{tag}: {len(divergences)} keys, first "
                f"{divergences[0]!r}"
            )
    assert not failures, "cross-engine divergences:\n" + "\n".join(failures)
