"""Kill-mid-campaign integration tests: the resume bar is byte-identity.

Two interruption modes are exercised end to end:

* SIGKILL — no cleanup code runs at all; only the write-ahead journal's
  per-record fsync protects finished scenarios.  A resumed run must
  produce final JSON byte-identical to an uninterrupted run.
* SIGTERM — the graceful path: the campaign drains (in-flight scenarios
  finish and are journaled), writes ``campaign.state.json`` with status
  ``interrupted`` and exits with the distinct resumable code 75.

Plus an in-process campaign drain/resume asserting the persisted table
JSON is byte-identical.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.experiments.checkpoint import (
    EXIT_INTERRUPTED,
    CampaignInterrupted,
    CheckpointManager,
)
from repro.experiments.parallel import Executor

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Small but not instant: ~10 cells of >= 0.1s each, so there is a wide
#: window to interrupt after some results are journaled but before the
#: campaign finishes.
FAULT_ARGS = [
    "fault-campaign",
    "--cycles", "1200", "--warmup", "200", "--sample-period", "32",
    "--kinds", "sensor-dropout,up-down-drop",
    "--fault-rates", "0.0,0.5,1.0",
]


def _spawn(args, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args, *extra],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def _run(args, extra=()):
    proc = _spawn(args, extra)
    _, stderr = proc.communicate(timeout=300)
    return proc.returncode, stderr.decode()


def _wait_for_journal_records(directory, minimum, deadline=120.0):
    """Block until the journal holds ``minimum`` result records."""
    journal = Path(directory) / "scenario.journal.jsonl"
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        if journal.exists():
            lines = journal.read_bytes().count(b"\n")
            if lines >= minimum + 1:  # + header line
                return
        time.sleep(0.01)
    raise AssertionError(f"journal never reached {minimum} records")


class TestSigkillResume:
    def test_sigkill_then_resume_byte_identical(self, tmp_path):
        golden = tmp_path / "golden.json"
        code, stderr = _run(FAULT_ARGS, ["--json", str(golden)])
        assert code == 0, stderr

        ckpt = tmp_path / "ckpt"
        victim_json = tmp_path / "victim.json"
        proc = _spawn(
            FAULT_ARGS, ["--checkpoint-dir", str(ckpt), "--json", str(victim_json)]
        )
        try:
            _wait_for_journal_records(ckpt, minimum=2)
            proc.kill()  # SIGKILL: no handlers, no flush, no atexit
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == -signal.SIGKILL
        assert not victim_json.exists()

        resumed_json = tmp_path / "resumed.json"
        code, stderr = _run(
            ["fault-campaign", "--resume", str(ckpt), "--json", str(resumed_json)]
        )
        assert code == 0, stderr
        assert resumed_json.read_bytes() == golden.read_bytes()
        # Resume actually reused journaled work rather than starting over.
        assert "resumed from journal" in stderr

    def test_sigkill_torn_tail_tolerated(self, tmp_path):
        """A journal truncated mid-record still resumes byte-identically."""
        golden = tmp_path / "golden.json"
        code, stderr = _run(FAULT_ARGS, ["--json", str(golden)])
        assert code == 0, stderr

        ckpt = tmp_path / "ckpt"
        proc = _spawn(FAULT_ARGS, ["--checkpoint-dir", str(ckpt)])
        try:
            _wait_for_journal_records(ckpt, minimum=2)
            proc.kill()
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()

        # Tear the tail record as a mid-append crash would.
        journal = ckpt / "scenario.journal.jsonl"
        raw = journal.read_bytes()
        journal.write_bytes(raw[: len(raw) - 37])

        resumed_json = tmp_path / "resumed.json"
        code, stderr = _run(
            ["fault-campaign", "--resume", str(ckpt), "--json", str(resumed_json)]
        )
        assert code == 0, stderr
        assert resumed_json.read_bytes() == golden.read_bytes()


class TestSigtermDrain:
    def test_sigterm_drains_and_resumes(self, tmp_path):
        golden = tmp_path / "golden.json"
        code, stderr = _run(FAULT_ARGS, ["--json", str(golden)])
        assert code == 0, stderr

        ckpt = tmp_path / "ckpt"
        proc = _spawn(FAULT_ARGS, ["--checkpoint-dir", str(ckpt)])
        try:
            _wait_for_journal_records(ckpt, minimum=1)
            proc.send_signal(signal.SIGTERM)
            _, stderr_bytes = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
        stderr = stderr_bytes.decode()
        assert proc.returncode == EXIT_INTERRUPTED, stderr
        assert "draining" in stderr
        assert "--resume" in stderr  # the hint names the flag

        state = json.loads((ckpt / "campaign.state.json").read_text())
        assert state["status"] == "interrupted"
        assert state["pending"] > 0
        assert state["done"] >= 1
        # Drain flushed the journal: every done unit is on disk.
        journal = (ckpt / "scenario.journal.jsonl").read_text().splitlines()
        assert len(journal) == state["done"] + 1  # + header

        resumed_json = tmp_path / "resumed.json"
        code, stderr = _run(
            ["fault-campaign", "--resume", str(ckpt), "--json", str(resumed_json)]
        )
        assert code == 0, stderr
        assert resumed_json.read_bytes() == golden.read_bytes()
        state = json.loads((ckpt / "campaign.state.json").read_text())
        assert state["status"] == "complete"
        assert state["pending"] == 0


class TestInProcessCampaignResume:
    def test_campaign_drain_then_resume_tables_byte_identical(self, tmp_path):
        config = CampaignConfig(
            cycles=150, warmup=50, iterations=1, seed=1,
            include_real_traffic=False,
        )
        golden_dir = tmp_path / "golden"
        run_campaign(config, json_dir=golden_dir)

        ckpt_dir = tmp_path / "ckpt"
        interrupted_dir = tmp_path / "interrupted"
        checkpoint = CheckpointManager(ckpt_dir, meta={"m": 1})
        executor = Executor(max_workers=1, checkpoint=checkpoint)
        completions = {"n": 0}

        def drain_after_five(line):
            completions["n"] += 1
            if completions["n"] >= 5:
                executor.request_drain()

        executor.progress = drain_after_five
        with pytest.raises(CampaignInterrupted):
            run_campaign(
                config, json_dir=interrupted_dir,
                executor=executor, checkpoint=checkpoint,
            )
        checkpoint.close()
        state = json.loads((ckpt_dir / "campaign.state.json").read_text())
        assert state["status"] == "interrupted"
        done_at_interrupt = state["done"]
        assert done_at_interrupt >= 1

        resumed_dir = tmp_path / "resumed"
        checkpoint = CheckpointManager(ckpt_dir, meta={"m": 1})
        result = run_campaign(
            config, json_dir=resumed_dir, checkpoint=checkpoint
        )
        checkpoint.close()
        assert result.table3 is not None

        golden_files = sorted(p.name for p in golden_dir.iterdir())
        assert golden_files == sorted(p.name for p in resumed_dir.iterdir())
        for name in golden_files:
            assert (resumed_dir / name).read_bytes() == (
                golden_dir / name
            ).read_bytes(), name

        state = json.loads((ckpt_dir / "campaign.state.json").read_text())
        assert state["status"] == "complete"
        # The resumed run re-used (not re-ran) the journaled scenarios.
        assert state["journal"]["replayed"] == done_at_interrupt
