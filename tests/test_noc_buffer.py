"""Tests for the power-gateable VC buffer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nbti.model import NBTIModel
from repro.nbti.transistor import PMOSDevice
from repro.noc.buffer import BufferError, PowerState, VCBuffer
from repro.noc.flit import Flit, FlitType


def make_flit(seq: int = 0) -> Flit:
    return Flit(0, seq, FlitType.BODY, 0, 1, 0)


class TestFIFOBehaviour:
    def test_fifo_order(self):
        buf = VCBuffer(4)
        flits = [make_flit(i) for i in range(4)]
        for f in flits:
            buf.push(f)
        assert [buf.pop().seq for _ in range(4)] == [0, 1, 2, 3]

    def test_front_peeks_without_removing(self):
        buf = VCBuffer(2)
        buf.push(make_flit(7))
        assert buf.front().seq == 7
        assert len(buf) == 1

    def test_front_of_empty_is_none(self):
        assert VCBuffer(2).front() is None

    def test_overflow_rejected(self):
        buf = VCBuffer(1)
        buf.push(make_flit())
        assert buf.is_full
        with pytest.raises(BufferError):
            buf.push(make_flit(1))

    def test_pop_empty_rejected(self):
        with pytest.raises(BufferError):
            VCBuffer(1).pop()

    def test_free_slots(self):
        buf = VCBuffer(3)
        assert buf.free_slots == 3
        buf.push(make_flit())
        assert buf.free_slots == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            VCBuffer(0)

    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(st.booleans(), max_size=60))
    def test_occupancy_invariant(self, ops):
        """Random push/pop stream keeps occupancy in [0, capacity] and
        preserves FIFO order."""
        buf = VCBuffer(4)
        pushed = []
        popped = []
        seq = 0
        for do_push in ops:
            if do_push and not buf.is_full:
                f = make_flit(seq)
                seq += 1
                buf.push(f)
                pushed.append(f.seq)
            elif not do_push and not buf.is_empty:
                popped.append(buf.pop().seq)
            assert 0 <= len(buf) <= 4
        while not buf.is_empty:
            popped.append(buf.pop().seq)
        assert popped == pushed


class TestPowerGating:
    def test_initially_on(self):
        buf = VCBuffer(2)
        assert buf.state is PowerState.ON
        assert buf.powered
        assert buf.can_accept

    def test_gate_empty_buffer(self):
        buf = VCBuffer(2)
        buf.gate()
        assert buf.state is PowerState.GATED
        assert not buf.powered
        assert not buf.can_accept

    def test_gate_nonempty_rejected(self):
        buf = VCBuffer(2)
        buf.push(make_flit())
        with pytest.raises(BufferError):
            buf.gate()

    def test_push_into_gated_rejected(self):
        buf = VCBuffer(2)
        buf.gate()
        with pytest.raises(BufferError):
            buf.push(make_flit())

    def test_gate_is_idempotent(self):
        buf = VCBuffer(2)
        buf.gate()
        buf.gate()
        assert buf.state is PowerState.GATED

    def test_wake_with_latency(self):
        buf = VCBuffer(2)
        buf.gate()
        buf.wake(latency=2)
        assert buf.state is PowerState.WAKING
        assert buf.powered  # rail energized counts as stress
        assert not buf.can_accept
        buf.tick_power()
        assert buf.state is PowerState.WAKING
        buf.tick_power()
        assert buf.state is PowerState.ON

    def test_wake_zero_latency_immediate(self):
        buf = VCBuffer(2)
        buf.gate()
        buf.wake(latency=0)
        assert buf.state is PowerState.ON

    def test_wake_on_buffer_is_noop(self):
        buf = VCBuffer(2)
        buf.wake(latency=3)
        assert buf.state is PowerState.ON

    def test_rewake_does_not_extend_countdown(self):
        buf = VCBuffer(2)
        buf.gate()
        buf.wake(latency=1)
        buf.wake(latency=5)  # ignored
        buf.tick_power()
        assert buf.state is PowerState.ON

    def test_negative_latency_rejected(self):
        buf = VCBuffer(2)
        buf.gate()
        with pytest.raises(ValueError):
            buf.wake(latency=-1)

    def test_push_while_waking_rejected(self):
        buf = VCBuffer(2)
        buf.gate()
        buf.wake(latency=2)
        with pytest.raises(BufferError):
            buf.push(make_flit())


class TestNBTIHooks:
    def test_tick_records_stress_when_powered(self):
        dev = PMOSDevice(0.18, NBTIModel.calibrated())
        buf = VCBuffer(2, device=dev)
        buf.nbti_tick()
        assert dev.counter.snapshot() == (1, 0)

    def test_tick_records_recovery_when_gated(self):
        dev = PMOSDevice(0.18, NBTIModel.calibrated())
        buf = VCBuffer(2, device=dev)
        buf.gate()
        buf.nbti_tick()
        assert dev.counter.snapshot() == (0, 1)

    def test_waking_counts_as_stress(self):
        dev = PMOSDevice(0.18, NBTIModel.calibrated())
        buf = VCBuffer(2, device=dev)
        buf.gate()
        buf.wake(latency=3)
        buf.nbti_tick()
        assert dev.counter.snapshot() == (1, 0)

    def test_untracked_buffer_records_nothing(self):
        dev = PMOSDevice(0.18, NBTIModel.calibrated())
        buf = VCBuffer(2, device=dev, track_nbti=False)
        buf.nbti_tick()
        assert dev.counter.snapshot() == (0, 0)

    def test_deviceless_buffer_tick_is_safe(self):
        VCBuffer(2).nbti_tick()  # must not raise


class TestFlitsView:
    def test_flits_is_a_read_only_snapshot(self):
        buf = VCBuffer(4)
        flits = [make_flit(i) for i in range(3)]
        for f in flits:
            buf.push(f)
        view = buf.flits
        assert isinstance(view, tuple)
        assert [f.seq for f in view] == [0, 1, 2]
        # A snapshot: later pops don't mutate an already-taken view.
        buf.pop()
        assert [f.seq for f in view] == [0, 1, 2]
        assert [f.seq for f in buf.flits] == [1, 2]

    def test_empty_buffer_has_empty_view(self):
        assert VCBuffer(2).flits == ()
