"""Tests for the declarative design-space layer (repro.dse.space)."""

from __future__ import annotations

import random

import pytest

from repro.dse.space import (
    DesignSpace,
    DesignSpaceError,
    Parameter,
    default_space,
    parse_param_spec,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import cache_key


class TestParameter:
    def test_levels_required(self):
        with pytest.raises(DesignSpaceError):
            Parameter("buffer_depth", ())

    def test_duplicate_levels_rejected(self):
        with pytest.raises(DesignSpaceError):
            Parameter("buffer_depth", (4, 4))

    def test_unknown_field_rejected(self):
        with pytest.raises(DesignSpaceError):
            Parameter("not_a_field", (1, 2))

    def test_int_range_linear(self):
        p = Parameter.int_range("buffer_depth", 2, 8, count=4)
        assert p.levels == (2, 4, 6, 8)
        assert p.numeric

    def test_int_range_log(self):
        p = Parameter.int_range("rotation_period", 16, 4096, count=5, log=True)
        assert p.levels == (16, 64, 256, 1024, 4096)

    def test_int_range_dedups_rounding_collisions(self):
        p = Parameter.int_range("wake_latency", 1, 2, count=5)
        assert p.levels == (1, 2)

    def test_int_range_empty_rejected(self):
        with pytest.raises(DesignSpaceError):
            Parameter.int_range("buffer_depth", 8, 2)

    def test_value_bounds(self):
        p = Parameter("buffer_depth", (2, 4))
        assert p.value(1) == 4
        with pytest.raises(DesignSpaceError):
            p.value(2)

    def test_categorical_not_numeric(self):
        p = Parameter.categorical("policy", ("a", "b"))
        assert not p.numeric


class TestDesignSpace:
    def space(self, **kwargs):
        base = ScenarioConfig(num_nodes=2, cycles=400, warmup=100)
        return DesignSpace(
            parameters=(
                Parameter.categorical("policy", ("rr-no-sensor", "sensor-wise")),
                Parameter("buffer_depth", (2, 4, 8)),
            ),
            base=base,
            **kwargs,
        )

    def test_size_and_enumeration(self):
        space = self.space()
        genomes = list(space.enumerate_genomes())
        assert space.size == 6
        assert len(genomes) == 6
        assert genomes[0] == (0, 0)
        assert genomes[-1] == (1, 2)
        assert genomes == sorted(genomes)  # lexicographic

    def test_decode_overrides_only_named_fields(self):
        space = self.space()
        scenario = space.decode((1, 2))
        assert scenario.policy == "sensor-wise"
        assert scenario.buffer_depth == 8
        assert scenario.num_nodes == 2      # frozen base field
        assert scenario.cycles == 400

    def test_decode_wrong_arity(self):
        with pytest.raises(DesignSpaceError):
            self.space().decode((0,))

    def test_values_mapping(self):
        assert self.space().values((0, 1)) == {
            "policy": "rr-no-sensor", "buffer_depth": 4,
        }

    def test_genome_identity_is_cache_identity(self):
        """The core dedup invariant: genome hash == executor cache key."""
        space = self.space()
        genome = (1, 1)
        assert space.scenario_hash(genome) == cache_key(space.decode(genome), 0)
        # Stable across independently constructed spaces.
        assert space.scenario_hash(genome) == self.space().scenario_hash(genome)

    def test_structural_validity(self):
        base = ScenarioConfig(num_nodes=2, cycles=400, warmup=100)
        space = DesignSpace(
            (Parameter("buffer_depth", (0, 4)),), base=base
        )
        assert not space.valid((0,))   # zero-depth buffer fails validation
        assert space.valid((1,))

    def test_user_constraints(self):
        space = self.space(
            constraints=(lambda s: s.buffer_depth <= 4,),
        )
        assert space.valid((0, 1))
        assert not space.valid((0, 2))

    def test_random_genome_deterministic_and_valid(self):
        space = self.space(constraints=(lambda s: s.buffer_depth <= 4,))
        a = [space.random_genome(random.Random(3)) for _ in range(5)]
        b = [space.random_genome(random.Random(3)) for _ in range(5)]
        assert a == b
        assert all(space.valid(g) for g in a)

    def test_random_genome_exhausted_constraints(self):
        space = self.space(constraints=(lambda s: False,))
        with pytest.raises(DesignSpaceError):
            space.random_genome(random.Random(0), max_attempts=16)

    def test_corner_genomes(self):
        space = self.space()
        assert space.corner_genome(False) == (0, 0)
        assert space.corner_genome(True) == (1, 2)

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace(
                (Parameter("buffer_depth", (2,)), Parameter("buffer_depth", (4,))),
            )

    def test_describe_is_deterministic(self):
        assert self.space().describe() == self.space().describe()


class TestDefaultSpaceAndSpecs:
    def test_default_space_covers_paper_knobs(self):
        space = default_space()
        names = {p.name for p in space.parameters}
        assert {"policy", "rotation_period", "buffer_depth", "num_vcs"} <= names
        assert space.size > 100

    def test_parse_int_spec(self):
        p = parse_param_spec("buffer_depth=2,4,8")
        assert p.levels == (2, 4, 8)
        assert p.numeric

    def test_parse_float_spec(self):
        p = parse_param_spec("injection_rate=0.1,0.3")
        assert p.levels == (0.1, 0.3)

    def test_parse_categorical_spec(self):
        p = parse_param_spec("policy=rr-no-sensor,sensor-wise")
        assert p.levels == ("rr-no-sensor", "sensor-wise")
        assert not p.numeric

    def test_parse_rejects_unknown_field(self):
        with pytest.raises(DesignSpaceError):
            parse_param_spec("bogus=1,2")

    def test_parse_rejects_missing_values(self):
        with pytest.raises(DesignSpaceError):
            parse_param_spec("buffer_depth=")
