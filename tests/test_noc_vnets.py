"""Tests for virtual-network support (paper Table I: 2/6 vnets).

The partition is strict: a packet may only use VCs of its own vnet, the
recovery policy runs per vnet, and the Down_Up most-degraded markers are
maintained per vnet.
"""

from __future__ import annotations

import pytest

from repro.core.policies import BaselinePolicy, SensorWisePolicy, make_policy_factory
from repro.nbti.process_variation import ProcessVariationModel
from repro.noc.config import NoCConfig
from repro.noc.link import Channel
from repro.noc.network import Network
from repro.noc.output_unit import UpstreamPort
from repro.noc.policy_api import OutVCState
from repro.traffic.base import TrafficGenerator
from repro.traffic.real import BenchmarkTraffic
from repro.traffic.benchmarks import get_profile
from tests.conftest import drain


class TwoVnetTraffic(TrafficGenerator):
    """Deterministic generator: alternating packets on vnets 0 and 1."""

    name = "two-vnet"

    def __init__(self, num_nodes: int, period: int = 7) -> None:
        super().__init__(num_nodes)
        self.period = period

    def inject(self, cycle):
        if cycle % self.period:
            return []
        src = cycle % self.num_nodes
        dst = (src + 1) % self.num_nodes
        vnet = (cycle // self.period) % 2
        return [(src, dst, 2, vnet)]


def build_vnet_network(policy="sensor-wise", num_vnets=2, num_vcs=2, traffic=None):
    config = NoCConfig(num_nodes=4, num_vcs=num_vcs, num_vnets=num_vnets)
    traffic = traffic if traffic is not None else TwoVnetTraffic(4)
    return Network(
        config,
        make_policy_factory(policy),
        traffic,
        pv_model=ProcessVariationModel(seed=21),
    )


class TestConfig:
    def test_total_vcs(self):
        assert NoCConfig(num_vcs=2, num_vnets=3).total_vcs == 6

    def test_invalid_vnets_rejected(self):
        with pytest.raises(ValueError):
            NoCConfig(num_vnets=0)


class TestUpstreamPortVnets:
    def make_port(self, num_vcs=2, num_vnets=2):
        return UpstreamPort(
            num_vcs, 4, None,
            Channel("d", 1), Channel("c", 1),
            num_vnets=num_vnets,
            policy_factory=SensorWisePolicy,
        )

    def test_multi_vnet_requires_factory(self):
        with pytest.raises(ValueError):
            UpstreamPort(2, 4, BaselinePolicy(), Channel("d", 1), Channel("c", 1),
                         num_vnets=2)

    def test_engines_cover_slices(self):
        port = self.make_port()
        assert port.total_vcs == 4
        assert [(e.start, e.count) for e in port.engines] == [(0, 2), (2, 2)]
        assert port.engines[0].policy is not port.engines[1].policy

    def test_vnet_of(self):
        port = self.make_port()
        assert [port.vnet_of(v) for v in range(4)] == [0, 0, 1, 1]
        with pytest.raises(ValueError):
            port.vnet_of(4)

    def test_allocation_respects_vnet(self):
        port = self.make_port()
        port.set_new_traffic(True, vnet=1)
        port.run_policy(0)
        vc = port.allocate_vc(10, vnet=1)
        assert vc is not None and port.vnet_of(vc) == 1
        # vnet 0 had no traffic: all of its VCs are gated, none grantable.
        assert port.allocate_vc(10, vnet=0) is None

    def test_policies_run_independently(self):
        port = self.make_port()
        port.set_new_traffic(True, vnet=0)
        port.set_new_traffic(False, vnet=1)
        decisions = port.run_policy(0)
        assert decisions[0].enable
        assert not decisions[1].enable
        # One idle VC awake in vnet 0's slice, none in vnet 1's.
        states = [port.vc_policy_state(v) for v in range(4)]
        assert states[:2].count(OutVCState.IDLE) == 1
        assert states[2:].count(OutVCState.IDLE) == 0

    def test_most_degraded_routed_to_owning_vnet(self):
        port = self.make_port()
        port.set_most_degraded(3)  # global id -> vnet 1, local 1
        assert port.engines[1].most_degraded_vc == 1
        assert port.engines[0].most_degraded_vc is None

    def test_single_vnet_shims(self):
        port = UpstreamPort(2, 4, SensorWisePolicy(), Channel("d", 1), Channel("c", 1))
        port.set_most_degraded(1)
        assert port.most_degraded_vc == 1
        assert port.policy.name == "sensor-wise"


class TestVnetNetwork:
    def test_packets_stay_in_their_vnet(self):
        """Flits of vnet-v packets only ever occupy vnet-v buffers."""
        net = build_vnet_network(policy="baseline")
        violations = []
        for _ in range(400):
            net.step()
            for router in net.routers:
                for port in router.input_ports:
                    for vc, ivc in enumerate(router.inputs[port].unit.vcs):
                        for flit in list(ivc.buffer._flits):
                            if vc // net.config.num_vcs != flit.vnet:
                                violations.append((router.router_id, port, vc, flit))
        assert not violations

    def test_delivery_across_vnets(self):
        net = build_vnet_network(policy="sensor-wise")
        net.run(900)
        drain(net)
        injected = sum(ni.packets_injected for ni in net.interfaces)
        ejected = sum(ni.packets_ejected for ni in net.interfaces)
        assert ejected == injected > 50

    def test_policy_reserves_per_vnet(self):
        """With traffic on both vnets, each vnet keeps its own idle VC —
        the quiet vnet's VCs all recover."""
        class Vnet0Only(TrafficGenerator):
            name = "v0"

            def inject(self, cycle):
                if cycle % 5:
                    return []
                return [(0, 1, 2, 0)]

        net = build_vnet_network(policy="sensor-wise", traffic=Vnet0Only(4))
        net.run(600)
        # Router 1 west input port receives node0->node1 traffic.
        duties = net.duty_cycles(1, "west")
        vnet0, vnet1 = duties[:2], duties[2:]
        assert max(vnet0) > 5.0       # active message class
        assert max(vnet1) < 5.0       # quiet class fully recovers

    def test_real_traffic_on_two_vnets(self):
        profiles = [get_profile("matmult")] * 4
        traffic = BenchmarkTraffic(profiles, seed=3, response_vnet=1)
        net = build_vnet_network(policy="sensor-wise", traffic=traffic)
        net.run(2500)
        drain(net, max_cycles=4000)
        injected = sum(ni.packets_injected for ni in net.interfaces)
        ejected = sum(ni.packets_ejected for ni in net.interfaces)
        assert ejected == injected > 20

    def test_ni_rejects_out_of_range_vnet(self):
        net = build_vnet_network(num_vnets=2)
        from repro.noc.flit import Packet

        with pytest.raises(ValueError):
            net.interfaces[0].enqueue(
                Packet(999, src=0, dst=1, length=1, injected_cycle=0, vnet=5)
            )

    def test_duty_accounting_covers_all_vnets(self):
        net = build_vnet_network(policy="baseline")
        net.run(100)
        duties = net.duty_cycles(0, "east")
        assert len(duties) == net.config.total_vcs
        assert duties == [100.0] * len(duties)


class TestVnetSidebandWires:
    def test_wires_scale_with_vnets(self):
        from repro.area.overhead import down_up_wires, up_down_wires

        assert up_down_wires(4, num_vnets=2) == 6
        assert down_up_wires(4, num_vnets=2) == 4
        with pytest.raises(ValueError):
            up_down_wires(4, num_vnets=0)
