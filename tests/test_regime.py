"""Tests for the aging-regime subsystem: burn-in pre-stress, joint
NBTI+PBTI accounting, technology overrides and the rejuvenation policy
family — plus the guarantee that the default ``fresh`` regime is a
byte-exact no-op on the historical behaviour."""

from __future__ import annotations

import math

import pytest

from repro.core.policies import (
    RejuvenationPolicy,
    RejuvenationSensorPolicy,
    make_policy_factory,
)
from repro.dse.space import DesignSpace, Parameter, default_space, parse_param_spec
from repro.experiments.campaign import CampaignConfig
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_network
from repro.nbti.constants import (
    PBTI_ANCHOR_DELTA_VTH,
    SECONDS_PER_YEAR,
    TECH_45NM,
)
from repro.nbti.delay import delay_factor, joint_bti_delay_factor
from repro.nbti.duty_cycle import DutyCycleCounter
from repro.nbti.model import NBTIModel
from repro.nbti.regime import ALL_REGIMES, STRESS_REGIMES, StressRegime, get_regime
from repro.nbti.transistor import PMOSDevice
from repro.noc.policy_api import OutVCState, PolicyContext

IDLE = OutVCState.IDLE
ACTIVE = OutVCState.ACTIVE
RECOVERY = OutVCState.RECOVERY


def ctx(cycle, states, new_traffic=True, md=None, faulted=False) -> PolicyContext:
    return PolicyContext(
        cycle=cycle,
        vc_states=tuple(states),
        new_traffic=new_traffic,
        most_degraded_vc=md,
        sensor_faulted=faulted,
    )


# ----------------------------------------------------------------------
# Regime registry and validation
# ----------------------------------------------------------------------
class TestRegimeRegistry:
    def test_known_regimes(self):
        assert set(ALL_REGIMES) == {"fresh", "burn-in", "nbti-pbti", "finfet-pbti"}
        assert ALL_REGIMES == tuple(sorted(STRESS_REGIMES))

    def test_lookup(self):
        assert get_regime("fresh").is_fresh
        assert not get_regime("burn-in").is_fresh
        with pytest.raises(ValueError, match="fresh"):
            get_regime("overclocked")

    def test_fresh_takes_no_branches(self):
        fresh = get_regime("fresh")
        assert fresh.burn_in_years == 0.0
        assert not fresh.pbti
        assert fresh.technology is None
        assert fresh.burn_in_shift(NBTIModel.calibrated()) == 0.0
        assert fresh.pbti_model(TECH_45NM) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            StressRegime(name="x", burn_in_years=-1.0)
        with pytest.raises(ValueError):
            StressRegime(name="x", burn_in_alpha=0.0)
        with pytest.raises(ValueError):
            StressRegime(name="x", burn_in_alpha=1.5)
        with pytest.raises(ValueError):
            StressRegime(name="x", pbti_anchor_delta_vth=0.0)
        with pytest.raises(KeyError):
            StressRegime(name="x", technology="1nm-unobtainium")

    def test_scenario_rejects_unknown_regime(self):
        with pytest.raises(ValueError, match="regime"):
            ScenarioConfig(regime="overclocked")

    def test_campaign_config_validates_regime(self):
        assert CampaignConfig(regime="burn-in").regime == "burn-in"
        with pytest.raises(ValueError, match="regime"):
            CampaignConfig(regime="overclocked")


# ----------------------------------------------------------------------
# Fresh regime: provably a no-op
# ----------------------------------------------------------------------
SMALL = dict(num_nodes=4, num_vcs=2, injection_rate=0.1, cycles=400, warmup=0)


def all_devices(network, scenario):
    total_vcs = scenario.num_vcs * scenario.num_vnets
    for router in network.routers:
        for port in router.input_ports:
            for vc in range(total_vcs):
                yield network.device(router.router_id, port, vc)


class TestFreshNoOp:
    def test_default_regime_is_fresh(self):
        assert ScenarioConfig().regime == "fresh"
        assert ScenarioConfig().stress_regime.is_fresh

    def test_fresh_network_has_no_pbti_models(self):
        scenario = ScenarioConfig(**SMALL)
        net = build_network(scenario)
        assert net.pbti_model is None
        assert all(d.pbti_model is None for d in all_devices(net, scenario))
        assert all(d.pbti_delta_vth(1.0) == 0.0 for d in all_devices(net, scenario))

    def test_fresh_technology_unchanged(self):
        scenario = ScenarioConfig(**SMALL)
        assert scenario.noc_config().technology is TECH_45NM


# ----------------------------------------------------------------------
# Burn-in pre-stress
# ----------------------------------------------------------------------
class TestBurnIn:
    def networks(self):
        fresh = build_network(ScenarioConfig(**SMALL))
        aged = build_network(ScenarioConfig(regime="burn-in", **SMALL))
        return fresh, aged

    def test_uniform_positive_vth_shift(self):
        fresh, aged = self.networks()
        scenario = ScenarioConfig(**SMALL)
        regime = get_regime("burn-in")
        tech = scenario.noc_config().technology
        expected = NBTIModel.calibrated(tech).delta_vth(
            regime.burn_in_alpha, regime.burn_in_years * SECONDS_PER_YEAR
        )
        assert expected > 0.0
        assert expected == regime.burn_in_shift(NBTIModel.calibrated(tech))
        for df, da in zip(
            all_devices(fresh, scenario), all_devices(aged, scenario)
        ):
            assert da.initial_vth == pytest.approx(df.initial_vth + expected)

    def test_md_ranking_preserved(self):
        """A constant offset can't change which VC is most degraded."""
        fresh, aged = self.networks()
        scenario = ScenarioConfig(**SMALL)

        def ranking(net):
            vths = [
                net.device(0, net.routers[0].input_ports[0], vc).initial_vth
                for vc in range(scenario.num_vcs)
            ]
            return max(range(len(vths)), key=lambda v: (vths[v], -v))

        assert ranking(fresh) == ranking(aged)


# ----------------------------------------------------------------------
# Joint NBTI+PBTI accounting
# ----------------------------------------------------------------------
class TestPbti:
    def test_device_sums_both_shifts(self):
        model = NBTIModel.calibrated()
        pbti = NBTIModel.calibrated_pbti()
        device = PMOSDevice(0.2, model, pbti_model=pbti)
        device.tick(stressed=True, cycles=600)
        device.tick(stressed=False, cycles=400)
        horizon = 3.0 * SECONDS_PER_YEAR
        nbti_part = device.nbti_delta_vth(horizon)
        pbti_part = device.pbti_delta_vth(horizon)
        assert nbti_part > 0.0 and pbti_part > 0.0
        assert device.delta_vth(horizon) == pytest.approx(nbti_part + pbti_part)
        # PBTI is calibrated to half the NBTI anchor shift; both models
        # share the alpha dependence so the ratio carries over exactly.
        assert pbti_part / nbti_part == pytest.approx(0.5, rel=1e-6)

    def test_pbti_network_ages_faster(self):
        scenario = ScenarioConfig(**SMALL)
        joint = build_network(ScenarioConfig(regime="nbti-pbti", **SMALL))
        assert joint.pbti_model is not None
        for device in all_devices(joint, scenario):
            assert device.pbti_model is joint.pbti_model
            assert device.pbti_delta_vth(SECONDS_PER_YEAR) >= 0.0

    def test_calibrated_pbti_anchor(self):
        pbti = NBTIModel.calibrated_pbti()
        three_years = 3.0 * SECONDS_PER_YEAR
        assert pbti.delta_vth(1.0, three_years) == pytest.approx(
            PBTI_ANCHOR_DELTA_VTH, rel=1e-6
        )

    def test_finfet_regime_swaps_technology(self):
        scenario = ScenarioConfig(regime="finfet-pbti", **SMALL)
        tech = scenario.noc_config().technology
        assert tech.name == "14nm-finfet"
        net = build_network(scenario)
        assert net.pbti_model is not None
        assert net.pbti_model.tech is tech


# ----------------------------------------------------------------------
# Delay and duty-cycle helpers
# ----------------------------------------------------------------------
class TestDelayHelpers:
    def test_joint_delay_factor_matches_summed_shift(self):
        assert joint_bti_delay_factor(0.03, 0.015) == pytest.approx(
            delay_factor(0.045)
        )
        assert joint_bti_delay_factor(0.03, 0.0) == pytest.approx(delay_factor(0.03))

    def test_negative_pbti_rejected(self):
        with pytest.raises(ValueError):
            joint_bti_delay_factor(0.03, -0.01)

    def test_recovery_fraction_complements_alpha(self):
        counter = DutyCycleCounter()
        counter.record(True, 300)
        counter.record(False, 700)
        assert counter.recovery_fraction == pytest.approx(1.0 - counter.alpha)
        assert counter.recovery_fraction == pytest.approx(0.7)


# ----------------------------------------------------------------------
# Rejuvenation policy family
# ----------------------------------------------------------------------
class TestRejuvenationPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RejuvenationPolicy(period=0)
        with pytest.raises(ValueError):
            RejuvenationPolicy(period=100, duration=0)
        with pytest.raises(ValueError):
            RejuvenationPolicy(period=100, duration=101)

    def test_epoch_contract(self):
        """epoch() is constant within every epoch_period bucket."""
        policy = RejuvenationPolicy(period=96, duration=36)
        assert policy.epoch_period == math.gcd(96, 36) == 12
        for cycle in range(3 * 96):
            bucket_start = (cycle // policy.epoch_period) * policy.epoch_period
            assert policy.epoch(cycle) == policy.epoch(bucket_start)
        # In-window and out-of-window buckets are distinct epochs.
        assert policy.epoch(0) != policy.epoch(36)
        assert policy.epoch(36) != policy.epoch(96)

    def test_window_schedule(self):
        policy = RejuvenationPolicy(period=100, duration=25)
        assert policy.in_window(0)
        assert policy.in_window(24)
        assert not policy.in_window(25)
        assert not policy.in_window(99)
        assert policy.in_window(100)

    def test_outside_window_never_gates(self):
        policy = RejuvenationPolicy(period=100, duration=25)
        decision = policy.decide(ctx(50, (IDLE, RECOVERY), new_traffic=False))
        assert decision.awake == frozenset({0, 1})
        assert not decision.enable

    def test_in_window_no_traffic_gates_everything(self):
        policy = RejuvenationPolicy(period=100, duration=25)
        decision = policy.decide(ctx(10, (IDLE, IDLE), new_traffic=False))
        assert decision.awake == frozenset()
        assert not decision.enable

    def test_in_window_traffic_keeps_one_survivor(self):
        policy = RejuvenationPolicy(period=100, duration=25)
        decision = policy.decide(ctx(10, (IDLE, IDLE), new_traffic=True))
        assert decision.awake == frozenset({0})
        assert decision.enable and decision.idle_vc == 0

    def test_survivor_rotates_with_window_index(self):
        policy = RejuvenationPolicy(period=100, duration=25)
        first = policy.decide(ctx(10, (IDLE, IDLE), new_traffic=True))
        second = policy.decide(ctx(110, (IDLE, IDLE), new_traffic=True))
        assert first.awake == frozenset({0})
        assert second.awake == frozenset({1})

    def test_survivor_scan_skips_active(self):
        policy = RejuvenationPolicy(period=100, duration=25)
        decision = policy.decide(ctx(10, (ACTIVE, RECOVERY), new_traffic=True))
        assert decision.awake == frozenset({1})

    def test_all_active_gates_nothing_extra(self):
        policy = RejuvenationPolicy(period=100, duration=25)
        decision = policy.decide(ctx(10, (ACTIVE, ACTIVE), new_traffic=True))
        assert decision.awake == frozenset()
        assert not decision.enable

    def test_sensor_variant_recovers_md_first(self):
        policy = RejuvenationSensorPolicy(period=100, duration=25)
        decision = policy.decide(ctx(10, (IDLE, IDLE), new_traffic=True, md=0))
        # VC 0 is the MD VC: it must be gated, VC 1 survives.
        assert decision.awake == frozenset({1})

    def test_sensor_variant_md_only_candidate_survives(self):
        policy = RejuvenationSensorPolicy(period=100, duration=25)
        decision = policy.decide(ctx(10, (IDLE, ACTIVE), new_traffic=True, md=0))
        assert decision.awake == frozenset({0})

    def test_sensor_variant_degrades_on_faulted_sensor(self):
        policy = RejuvenationSensorPolicy(period=100, duration=25)
        static = RejuvenationPolicy(period=100, duration=25)
        for cycle in (3, 17):
            faulted = policy.decide(
                ctx(cycle, (IDLE, IDLE), new_traffic=True, md=0, faulted=True)
            )
            assert faulted == static.decide(ctx(cycle, (IDLE, IDLE), new_traffic=True))

    def test_factory_defaults_derive_from_rotation_period(self):
        policy = make_policy_factory("rejuvenation", rotation_period=64)()
        assert (policy.period, policy.duration) == (1024, 256)
        custom = make_policy_factory(
            "rejuvenation-sensor",
            rejuvenation_period=200,
            rejuvenation_duration=40,
        )()
        assert isinstance(custom, RejuvenationSensorPolicy)
        assert (custom.period, custom.duration) == (200, 40)


# ----------------------------------------------------------------------
# Engine equivalence: stepped / fast-forward / SoA
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["rejuvenation", "rejuvenation-sensor"])
def test_three_engines_agree_on_rejuvenation(policy):
    from tests.test_soa_equivalence import assert_engines_agree

    assert_engines_agree(
        policy, 0.05, 2600, 3, engines=("stepped", "fast", "soa")
    )


@pytest.mark.parametrize("policy", ["rejuvenation", "rejuvenation-sensor"])
def test_engines_agree_on_idle_rejuvenation(policy):
    """Quiescent network: the fast-forward planner must pin jumps at the
    gcd(period, duration) epoch boundaries to replay window edges."""
    from tests.test_soa_equivalence import assert_engines_agree

    assert_engines_agree(
        policy, 0.0, 2400, 5, engines=("stepped", "fast", "soa")
    )


# ----------------------------------------------------------------------
# DSE integration
# ----------------------------------------------------------------------
class TestDseRegimeAxis:
    def test_default_space_has_regime_and_rejuvenation(self):
        space = default_space()
        by_name = {p.name: p for p in space.parameters}
        assert "fresh" in by_name["regime"].levels
        assert "rejuvenation" in by_name["policy"].levels

    def test_parse_regime_spec_is_categorical(self):
        p = parse_param_spec("regime=fresh,burn-in")
        assert p.levels == ("fresh", "burn-in")
        assert not p.numeric

    def test_unknown_regime_invalidates_genome(self):
        space = DesignSpace(
            [Parameter.categorical("regime", ("fresh", "overclocked"))]
        )
        genomes = list(space.enumerate_genomes())
        validity = {space.values(g)["regime"]: space.valid(g) for g in genomes}
        assert validity == {"fresh": True, "overclocked": False}

    def test_decode_threads_regime_into_scenario(self):
        space = DesignSpace([Parameter.categorical("regime", ("burn-in",))])
        genome = next(iter(space.enumerate_genomes()))
        assert space.decode(genome).regime == "burn-in"
