"""Tests for flits, packets and the packet factory."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.flit import Flit, FlitType, Packet, PacketFactory


class TestFlitType:
    def test_head_markers(self):
        assert FlitType.HEAD.is_head
        assert FlitType.HEAD_TAIL.is_head
        assert not FlitType.BODY.is_head
        assert not FlitType.TAIL.is_head

    def test_tail_markers(self):
        assert FlitType.TAIL.is_tail
        assert FlitType.HEAD_TAIL.is_tail
        assert not FlitType.HEAD.is_tail
        assert not FlitType.BODY.is_tail


class TestPacket:
    def test_single_flit_packet_is_head_tail(self):
        pkt = Packet(0, src=0, dst=1, length=1, injected_cycle=5)
        flits = pkt.flits()
        assert len(flits) == 1
        assert flits[0].ftype is FlitType.HEAD_TAIL

    def test_two_flit_packet(self):
        flits = Packet(0, 0, 1, 2, 0).flits()
        assert [f.ftype for f in flits] == [FlitType.HEAD, FlitType.TAIL]

    def test_long_packet_structure(self):
        flits = Packet(0, 0, 1, 5, 0).flits()
        assert flits[0].ftype is FlitType.HEAD
        assert flits[-1].ftype is FlitType.TAIL
        assert all(f.ftype is FlitType.BODY for f in flits[1:-1])

    def test_flits_carry_packet_metadata(self):
        flits = Packet(42, 1, 3, 3, 17, vnet=1).flits()
        for i, f in enumerate(flits):
            assert f.packet_id == 42
            assert f.seq == i
            assert (f.src, f.dst) == (1, 3)
            assert f.injected_cycle == 17
            assert f.vnet == 1

    def test_invalid_packets_rejected(self):
        with pytest.raises(ValueError):
            Packet(0, 0, 1, 0, 0)  # zero length
        with pytest.raises(ValueError):
            Packet(0, 2, 2, 1, 0)  # self-addressed

    @settings(max_examples=40, deadline=None)
    @given(length=st.integers(min_value=1, max_value=32))
    def test_exactly_one_head_and_one_tail(self, length):
        flits = Packet(0, 0, 1, length, 0).flits()
        assert len(flits) == length
        assert sum(1 for f in flits if f.is_head) == 1
        assert sum(1 for f in flits if f.is_tail) == 1
        assert [f.seq for f in flits] == list(range(length))


class TestPacketFactory:
    def test_unique_monotone_ids(self):
        factory = PacketFactory()
        ids = [factory.create(0, 1, 1, 0).packet_id for _ in range(10)]
        assert ids == sorted(set(ids))

    def test_start_id(self):
        factory = PacketFactory(start_id=100)
        assert factory.create(0, 1, 1, 0).packet_id == 100


class TestFlitState:
    def test_arrival_cycle_starts_unset(self):
        flit = Flit(0, 0, FlitType.HEAD, 0, 1, 0)
        assert flit.arrived_cycle == -1
        assert flit.hops == 0

    def test_repr_is_informative(self):
        flit = Flit(3, 1, FlitType.BODY, 0, 2, 9)
        text = repr(flit)
        assert "pkt=3" in text and "body" in text
