"""Tests for the downstream input unit (VC buffers + command sink)."""

from __future__ import annotations

import pytest

from repro.nbti.model import NBTIModel
from repro.nbti.sensor import SensorBank
from repro.nbti.transistor import PMOSDevice
from repro.noc.buffer import BufferError, PowerState, VCBuffer
from repro.noc.flit import Flit, FlitType
from repro.noc.input_unit import InputUnit
from repro.noc.link import Channel
from repro.noc.topology import EAST, LOCAL


def make_unit(num_vcs=2, depth=4, with_devices=False, wake_latency=1):
    model = NBTIModel.calibrated()
    devices = [PMOSDevice(0.18 + 0.001 * i, model) for i in range(num_vcs)]
    buffers = [
        VCBuffer(depth, device=devices[i] if with_devices else None)
        for i in range(num_vcs)
    ]
    credit = Channel("credit", 1)
    bank = SensorBank(devices) if with_devices else None
    unit = InputUnit(buffers, credit, route_fn=lambda dst: EAST,
                     sensor_bank=bank, wake_latency=wake_latency)
    return unit, credit


def flit(ftype, pkt=0, seq=0, dst=1):
    return Flit(pkt, seq, ftype, 0, dst, 0)


class TestDataPath:
    def test_head_arrival_computes_route_and_claims_vc(self):
        unit, _ = make_unit()
        unit.receive_flit(0, flit(FlitType.HEAD), cycle=3)
        ivc = unit.vcs[0]
        assert ivc.busy
        assert ivc.outport == EAST
        assert ivc.wants_va
        assert unit.busy_count == 1
        assert ivc.buffer.front().arrived_cycle == 3

    def test_body_without_head_rejected(self):
        unit, _ = make_unit()
        with pytest.raises(BufferError):
            unit.receive_flit(0, flit(FlitType.BODY), cycle=0)

    def test_packet_mixing_rejected(self):
        unit, _ = make_unit()
        unit.receive_flit(0, flit(FlitType.HEAD, pkt=1), 0)
        with pytest.raises(BufferError):
            unit.receive_flit(0, flit(FlitType.HEAD, pkt=2), 1)

    def test_foreign_body_flit_rejected(self):
        unit, _ = make_unit()
        unit.receive_flit(0, flit(FlitType.HEAD, pkt=1), 0)
        with pytest.raises(BufferError):
            unit.receive_flit(0, flit(FlitType.BODY, pkt=2, seq=1), 1)

    def test_pop_sends_credit(self):
        unit, credit = make_unit()
        unit.receive_flit(0, flit(FlitType.HEAD), 0)
        unit.pop_flit(0, cycle=5)
        assert credit.pop_ready(6) == [0]

    def test_tail_pop_releases_vc(self):
        unit, _ = make_unit()
        unit.receive_flit(0, flit(FlitType.HEAD, pkt=1), 0)
        unit.receive_flit(0, flit(FlitType.TAIL, pkt=1, seq=1), 1)
        unit.pop_flit(0, 2)
        assert unit.vcs[0].busy
        unit.pop_flit(0, 3)
        assert not unit.vcs[0].busy
        assert unit.busy_count == 0
        assert unit.vcs[0].outport is None

    def test_head_tail_single_flit_lifecycle(self):
        unit, _ = make_unit()
        unit.receive_flit(1, flit(FlitType.HEAD_TAIL), 0)
        assert unit.busy_count == 1
        unit.pop_flit(1, 1)
        assert unit.busy_count == 0

    def test_flits_received_counter(self):
        unit, _ = make_unit()
        unit.receive_flit(0, flit(FlitType.HEAD), 0)
        assert unit.flits_received == 1

    def test_occupancy(self):
        unit, _ = make_unit()
        unit.receive_flit(0, flit(FlitType.HEAD, pkt=1), 0)
        unit.receive_flit(1, flit(FlitType.HEAD, pkt=2), 0)
        assert unit.occupancy() == 2


class TestPowerCommands:
    def test_gate_command(self):
        unit, _ = make_unit()
        unit.apply_command("gate", 0)
        assert unit.vcs[0].buffer.state is PowerState.GATED

    def test_wake_command_uses_unit_latency(self):
        unit, _ = make_unit(wake_latency=2)
        unit.apply_command("gate", 0)
        unit.apply_command("wake", 0)
        assert unit.vcs[0].buffer.state is PowerState.WAKING
        unit.tick_power()
        unit.tick_power()
        assert unit.vcs[0].buffer.state is PowerState.ON

    def test_unknown_command_rejected(self):
        unit, _ = make_unit()
        with pytest.raises(ValueError):
            unit.apply_command("explode", 0)

    def test_tick_power_noop_when_nothing_waking(self):
        unit, _ = make_unit()
        unit.tick_power()  # must not raise, fast path

    def test_receive_into_gated_buffer_rejected(self):
        unit, _ = make_unit()
        unit.apply_command("gate", 0)
        with pytest.raises(BufferError):
            unit.receive_flit(0, flit(FlitType.HEAD), 0)


class TestNBTIAccounting:
    def test_nbti_tick_counts_stress_and_recovery(self):
        unit, _ = make_unit(with_devices=True)
        unit.apply_command("gate", 1)
        unit.nbti_tick()
        assert unit.vcs[0].buffer.device.counter.snapshot() == (1, 0)
        assert unit.vcs[1].buffer.device.counter.snapshot() == (0, 1)

    def test_duty_cycles_reported(self):
        unit, _ = make_unit(with_devices=True)
        unit.apply_command("gate", 1)
        for _ in range(4):
            unit.nbti_tick()
        duties = unit.duty_cycles()
        assert duties[0] == pytest.approx(100.0)
        assert duties[1] == pytest.approx(0.0)

    def test_duty_cycles_without_devices_default_100(self):
        unit, _ = make_unit(with_devices=False)
        assert unit.duty_cycles() == [100.0, 100.0]

    def test_waking_buffer_counts_as_stress(self):
        unit, _ = make_unit(with_devices=True, wake_latency=3)
        unit.apply_command("gate", 0)
        unit.apply_command("wake", 0)
        unit.nbti_tick()
        assert unit.vcs[0].buffer.device.counter.snapshot() == (1, 0)


def test_empty_unit_rejected():
    with pytest.raises(ValueError):
        InputUnit([], Channel("c", 1), route_fn=lambda dst: LOCAL)
