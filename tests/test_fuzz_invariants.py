"""Property-based end-to-end fuzzing: random configurations and traffic
must never violate the simulator's structural invariants.

Each example builds a random small network (topology, VC count, vnets,
buffer depth, packet length, wake latency, policy, load) and runs it for
a few hundred cycles while the model's internal guards (credit
overflow/underflow, buffer overflow, push-into-gated, packet mixing,
misrouting) stay armed — any violation raises.  Afterwards the run must
drain completely: every injected packet is delivered exactly once.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policies import ALL_POLICIES, make_policy_factory
from repro.nbti.process_variation import ProcessVariationModel
from repro.noc.buffer import PowerState
from repro.noc.config import NoCConfig
from repro.noc.network import Network
from repro.traffic.synthetic import SyntheticTraffic
from tests.conftest import drain

CONFIG_STRATEGY = st.fixed_dictionaries(
    {
        "num_nodes": st.sampled_from([2, 4, 6, 9]),
        "num_vcs": st.integers(min_value=1, max_value=4),
        "num_vnets": st.integers(min_value=1, max_value=2),
        "buffer_depth": st.integers(min_value=1, max_value=4),
        "packet_length": st.integers(min_value=1, max_value=6),
        "wake_latency": st.integers(min_value=0, max_value=3),
        "link_latency": st.integers(min_value=1, max_value=2),
    }
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    cfg_kwargs=CONFIG_STRATEGY,
    policy=st.sampled_from(sorted(ALL_POLICIES)),
    rate=st.floats(min_value=0.0, max_value=0.35),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_random_network_keeps_invariants(cfg_kwargs, policy, rate, seed):
    config = NoCConfig(seed=seed % 1000, **cfg_kwargs)
    traffic = SyntheticTraffic(
        "uniform",
        config.num_nodes,
        flit_rate=min(rate, 0.9),
        packet_length=config.packet_length,
        seed=seed,
    )
    network = Network(
        config,
        make_policy_factory(policy),
        traffic,
        pv_model=ProcessVariationModel(seed=seed // 7),
    )
    network.run(300)

    # Structural checks on the live network.
    for router in network.routers:
        for port in router.input_ports:
            for ivc in router.inputs[port].unit.vcs:
                if ivc.buffer.state is PowerState.GATED:
                    assert ivc.buffer.is_empty
                    assert not ivc.busy
                assert len(ivc.buffer) <= config.buffer_depth
        for port in router.output_ports:
            for entry in router.outputs[port].upstream.entries:
                assert 0 <= entry.credits <= config.buffer_depth

    # Duty cycles are well-formed everywhere.
    for device in network.devices.values():
        assert 0.0 <= device.duty_cycle <= 100.0
        assert device.counter.total_cycles == 300

    # Liveness + conservation: everything injected must drain.
    drain(network, max_cycles=6000)
    injected = sum(ni.packets_injected for ni in network.interfaces)
    ejected = sum(ni.packets_ejected for ni in network.interfaces)
    assert ejected == injected
    flits_in = sum(ni.flits_injected for ni in network.interfaces)
    flits_out = sum(ni.flits_ejected for ni in network.interfaces)
    assert flits_out == flits_in


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    policy=st.sampled_from(["sensor-wise", "rr-no-sensor"]),
)
def test_random_runs_are_replayable(seed, policy):
    """Determinism under fuzzing: same seed -> identical duty cycles."""

    def run_once():
        config = NoCConfig(num_nodes=4, num_vcs=2, seed=seed % 1000)
        traffic = SyntheticTraffic("uniform", 4, flit_rate=0.2,
                                   packet_length=4, seed=seed)
        net = Network(
            config, make_policy_factory(policy), traffic,
            pv_model=ProcessVariationModel(seed=seed // 3),
        )
        net.run(250)
        return [
            tuple(net.duty_cycles(r, p))
            for r in range(4)
            for p in net.routers[r].input_ports
        ]

    assert run_once() == run_once()
