"""Tests for the distributed campaign engine (coordinator/worker).

Layered like the implementation:

* ``LeaseTable`` unit tests with an injected fake clock — grant /
  heartbeat / complete / fail / expire transitions, dedup by key, late
  acceptance, poison quarantine, backoff windows;
* wire-protocol tests — CRC-guarded payloads, spec validation;
* HTTP-level tests against a live ``CoordinatorServer`` — the
  durability ordering on ``/complete`` (commit before ack, reopen on
  commit failure), corrupt-upload rejection, lease expiry and
  reassignment over the wire, late duplicates dropped idempotently;
* in-process integration — a real ``Executor`` with worker threads
  running the real ``run_worker`` loop, asserting distributed results
  are identical to serial and poison scenarios surface as
  ``ScenarioFailure`` records;
* chaos tests — subprocess coordinator + workers, one SIGKILL'd
  mid-campaign, requiring byte-identical campaign JSON vs an
  uninterrupted single-process run; coordinator SIGKILL + ``--resume``
  completing without re-running journaled scenarios.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.distributed import (
    CoordinatorServer,
    DistributedSpec,
    LeaseTable,
    ProtocolError,
    run_worker,
)
from repro.experiments.distributed.lease import (
    COMMITTED,
    DUPLICATE,
    QUARANTINED,
    REQUEUED,
    UNKNOWN,
)
from repro.experiments.distributed.protocol import (
    decode_payload,
    encode_payload,
    get_json,
    post_json,
)
from repro.experiments.parallel import (
    Executor,
    RetryBackoff,
    ScenarioFailure,
    _execute_unit,
    cache_key,
)
from repro.experiments.runner import run_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

FAST = dict(cycles=300, warmup=100)


def tiny_units(n=4):
    base = ScenarioConfig(num_nodes=4, num_vcs=2, injection_rate=0.1, **FAST)
    policies = ("baseline", "rr-no-sensor", "sensor-wise")
    return [(base.with_policy(policies[i % 3]), i // 3) for i in range(n)]


def fingerprint(result):
    return (result.duty_cycles, result.md_vc, result.net_stats, result.initial_vths)


# ----------------------------------------------------------------------
# LeaseTable state machine (fake clock: no sleeping)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make_table(clock, lease_timeout=10.0, poison_threshold=3, backoff_base=1.0):
    return LeaseTable(
        lease_timeout=lease_timeout,
        backoff=RetryBackoff(backoff_base, jitter=0.0),
        poison_threshold=poison_threshold,
        clock=clock,
    )


class TestLeaseTable:
    def test_grant_complete_lifecycle(self):
        clock = FakeClock()
        table = make_table(clock)
        table.load([("k1", "payload", 7)])
        grant, payload, crc = table.grant("w1")
        assert grant.key == "k1"
        assert grant.worker == "w1"
        assert grant.deadline == clock.now + 10.0
        assert (payload, crc) == ("payload", 7)
        assert table.active_leases() == 1

        assert table.complete(grant.lease_id, "k1", "w1") == COMMITTED
        assert table.remaining() == 0
        assert table.counters["committed"] == 1
        # Nothing left to grant.
        assert table.grant("w1") is None

    def test_duplicate_completion_dropped(self):
        clock = FakeClock()
        table = make_table(clock)
        table.load([("k1", "p", 0)])
        grant, _, _ = table.grant("w1")
        assert table.complete(grant.lease_id, "k1", "w1") == COMMITTED
        assert table.complete(grant.lease_id, "k1", "w2") == DUPLICATE
        assert table.counters["duplicates_dropped"] == 1
        assert table.counters["committed"] == 1

    def test_unknown_key_rejected(self):
        table = make_table(FakeClock())
        assert table.complete("lease", "nope", "w1") == UNKNOWN
        assert table.fail("lease", "nope", "w1") == UNKNOWN

    def test_load_is_idempotent(self):
        table = make_table(FakeClock())
        table.load([("k1", "p", 0)])
        table.load([("k1", "other", 1), ("k2", "p2", 2)])
        snap = table.snapshot()
        assert snap["total"] == 2
        grant, payload, _ = table.grant("w1")
        assert payload == "p"  # the first load wins

    def test_heartbeat_extends_deadline(self):
        clock = FakeClock()
        table = make_table(clock, lease_timeout=10.0)
        table.load([("k1", "p", 0)])
        grant, _, _ = table.grant("w1")
        clock.now += 8.0
        assert table.heartbeat(grant.lease_id)
        clock.now += 8.0  # 16s since grant, 8s since heartbeat: alive
        assert table.expire() == []
        assert table.active_leases() == 1
        assert not table.heartbeat("no-such-lease")

    def test_expiry_requeues_with_backoff_window(self):
        clock = FakeClock()
        table = make_table(clock, lease_timeout=10.0, backoff_base=2.0)
        table.load([("k1", "p", 0)])
        table.grant("w1")
        clock.now += 11.0
        (expired,) = table.expire()
        assert expired.key == "k1"
        assert expired.worker == "w1"
        assert not expired.poisoned
        assert expired.error["error_type"] == "LeaseExpired"
        assert table.counters["expiries"] == 1
        assert table.counters["requeued"] == 1
        # Inside the backoff window nothing is granted...
        assert table.grant("w2") is None
        # ...after it the scenario is reassigned.
        clock.now += 2.0
        grant, _, _ = table.grant("w2")
        assert grant.key == "k1"

    def test_late_completion_accepted_when_undone(self):
        clock = FakeClock()
        table = make_table(clock, lease_timeout=10.0, backoff_base=0.0)
        table.load([("k1", "p", 0)])
        stale, _, _ = table.grant("w1")
        clock.now += 11.0
        table.expire()
        live, _, _ = table.grant("w2")
        # The partitioned worker's upload lands first: kept.
        assert table.complete(stale.lease_id, "k1", "w1") == COMMITTED
        assert table.counters["late_accepted"] == 1
        # The live worker's upload is now a duplicate.
        assert table.complete(live.lease_id, "k1", "w2") == DUPLICATE

    def test_reopen_undoes_a_failed_commit(self):
        clock = FakeClock()
        table = make_table(clock)
        table.load([("k1", "p", 0)])
        grant, _, _ = table.grant("w1")
        assert table.complete(grant.lease_id, "k1", "w1") == COMMITTED
        table.reopen("k1")
        assert table.counters["committed"] == 0
        assert table.remaining() == 1
        regrant, _, _ = table.grant("w2")
        assert regrant.key == "k1"

    def test_poison_needs_distinct_workers(self):
        clock = FakeClock()
        table = make_table(clock, poison_threshold=2, backoff_base=0.0)
        table.load([("k1", "p", 0)])
        # The same worker failing twice is not poison evidence.
        for _ in range(2):
            grant, _, _ = table.grant("w1")
            assert table.fail(grant.lease_id, "k1", "w1", {"error_type": "E", "message": "m"}) == REQUEUED
        assert table.counters["poisoned"] == 0
        # A second distinct worker is.
        grant, _, _ = table.grant("w2")
        assert (
            table.fail(grant.lease_id, "k1", "w2", {"error_type": "E", "message": "m"})
            == QUARANTINED
        )
        assert table.counters["poisoned"] == 1
        assert table.remaining() == 0
        error = table.error_of("k1")
        assert error["workers"] == ["w1", "w2"]
        assert error["attempts"] == 3

    def test_grant_prefers_unfailed_scenarios(self):
        clock = FakeClock()
        table = make_table(clock, backoff_base=0.0)
        table.load([("kA", "a", 0), ("kB", "b", 0)])
        grant, _, _ = table.grant("w1")
        assert grant.key == "kA"
        table.fail(grant.lease_id, "kA", "w1", None)
        # w1 already failed kA, so it gets kB first; kA waits for w2.
        grant_b, _, _ = table.grant("w1")
        assert grant_b.key == "kB"
        grant_a, _, _ = table.grant("w2")
        assert grant_a.key == "kA"

    def test_grant_falls_back_to_failed_scenario_when_alone(self):
        clock = FakeClock()
        table = make_table(clock, backoff_base=0.0, poison_threshold=3)
        table.load([("kA", "a", 0)])
        grant, _, _ = table.grant("w1")
        table.fail(grant.lease_id, "kA", "w1", None)
        # Nothing else to hand out: w1 may retry its own failure.
        regrant, _, _ = table.grant("w1")
        assert regrant.key == "kA"

    def test_stale_failure_does_not_steal_live_lease(self):
        clock = FakeClock()
        table = make_table(clock, lease_timeout=10.0, backoff_base=0.0)
        table.load([("k1", "p", 0)])
        stale, _, _ = table.grant("w1")
        clock.now += 11.0
        table.expire()
        live, _, _ = table.grant("w2")
        assert table.fail(stale.lease_id, "k1", "w1", None) == DUPLICATE
        # The live lease still stands and can complete.
        assert table.complete(live.lease_id, "k1", "w2") == COMMITTED

    def test_pause_stops_grants(self):
        table = make_table(FakeClock())
        table.load([("k1", "p", 0)])
        table.pause()
        assert table.grant("w1") is None
        table.resume_granting()
        assert table.grant("w1") is not None


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_payload_roundtrip(self):
        obj = {"scenario": tiny_units(1)[0][0], "n": 3}
        payload, crc = encode_payload(obj)
        back = decode_payload(payload, crc)
        assert back["n"] == 3
        assert back["scenario"] == obj["scenario"]

    def test_crc_mismatch_rejected(self):
        payload, crc = encode_payload([1, 2, 3])
        with pytest.raises(ProtocolError, match="CRC"):
            decode_payload(payload, crc ^ 1)

    def test_bad_base64_rejected(self):
        with pytest.raises(ProtocolError, match="base64"):
            decode_payload("!!! not base64 !!!", 0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DistributedSpec(lease_timeout=0)
        with pytest.raises(ValueError):
            DistributedSpec(poll_interval=0)
        with pytest.raises(ValueError):
            DistributedSpec(poison_threshold=0)
        with pytest.raises(ValueError):
            DistributedSpec(local_workers=-1)

    def test_heartbeat_interval_defaults_to_quarter_lease(self):
        assert DistributedSpec(lease_timeout=60.0).heartbeat == 15.0
        assert DistributedSpec(lease_timeout=60.0, heartbeat_interval=2.0).heartbeat == 2.0


# ----------------------------------------------------------------------
# Coordinator over live HTTP
# ----------------------------------------------------------------------
def _spec(**overrides):
    base = dict(
        bind="127.0.0.1", port=0, lease_timeout=30.0, poll_interval=0.05,
        requeue_backoff=0.0, requeue_jitter=0.0, poison_threshold=2,
        shutdown_grace=0.0,  # HTTP tests drive fake workers by hand
    )
    base.update(overrides)
    return DistributedSpec(**base)


class _LiveCoordinator:
    """Context manager: a started CoordinatorServer + its base URL."""

    def __init__(self, spec, commit=None):
        self.server = CoordinatorServer(spec, commit=commit)

    def __enter__(self):
        self.server.start()
        host, port = self.server.address
        self.url = f"http://{host}:{port}"
        return self

    def __exit__(self, *exc):
        self.server.close()


class TestCoordinatorHTTP:
    def test_lease_complete_commit_ordering(self):
        committed = []
        with _LiveCoordinator(_spec(), commit=lambda k, r: committed.append((k, r))) as live:
            live.server.submit([("k1", ("unit", 0))])
            reply = post_json(live.url + "/lease", {"worker": "w1"})
            assert reply["status"] == "lease"
            assert reply["key"] == "k1"
            assert decode_payload(reply["unit"], reply["crc"]) == ("unit", 0)

            payload, crc = encode_payload({"outcome": 42})
            ack = post_json(
                live.url + "/complete",
                {"worker": "w1", "lease": reply["lease"], "key": "k1",
                 "result": payload, "crc": crc},
            )
            assert ack["status"] == "committed"
            # The durable commit ran before the ack was sent.
            assert committed == [("k1", {"outcome": 42})]
            kind, key, result = live.server.events.get_nowait()
            assert (kind, key, result) == ("result", "k1", {"outcome": 42})

    def test_late_duplicate_dropped_idempotently(self):
        committed = []
        spec = _spec(lease_timeout=0.15)
        with _LiveCoordinator(spec, commit=lambda k, r: committed.append(k)) as live:
            live.server.submit([("k1", ("unit", 0))])
            stale = post_json(live.url + "/lease", {"worker": "w1"})
            time.sleep(0.3)  # w1 partitioned: no heartbeats
            fresh = post_json(live.url + "/lease", {"worker": "w2"})
            assert fresh["status"] == "lease"
            assert fresh["key"] == "k1"

            payload, crc = encode_payload("result-from-w1")
            ack1 = post_json(
                live.url + "/complete",
                {"worker": "w1", "lease": stale["lease"], "key": "k1",
                 "result": payload, "crc": crc},
            )
            assert ack1["status"] == "committed"  # undone: work kept
            ack2 = post_json(
                live.url + "/complete",
                {"worker": "w2", "lease": fresh["lease"], "key": "k1",
                 "result": payload, "crc": crc},
            )
            assert ack2["status"] == "duplicate"
            assert committed == ["k1"]  # exactly one durable commit
            counters = live.server.table.snapshot()["counters"]
            assert counters["late_accepted"] == 1
            assert counters["duplicates_dropped"] == 1

    def test_corrupt_upload_rejected_and_requeued(self):
        committed = []
        with _LiveCoordinator(_spec(), commit=lambda k, r: committed.append(k)) as live:
            live.server.submit([("k1", ("unit", 0))])
            lease = post_json(live.url + "/lease", {"worker": "w1"})
            payload, crc = encode_payload("result")
            ack = post_json(
                live.url + "/complete",
                {"worker": "w1", "lease": lease["lease"], "key": "k1",
                 "result": payload, "crc": crc ^ 1},
            )
            assert ack["status"] == "rejected"
            assert committed == []
            # The scenario went back in the queue for a clean run.
            retry = post_json(live.url + "/lease", {"worker": "w2"})
            assert retry["status"] == "lease" and retry["key"] == "k1"
            ack = post_json(
                live.url + "/complete",
                {"worker": "w2", "lease": retry["lease"], "key": "k1",
                 "result": payload, "crc": crc},
            )
            assert ack["status"] == "committed"
            assert committed == ["k1"]

    def test_commit_failure_never_acked(self):
        calls = []

        def flaky_commit(key, result):
            calls.append(key)
            if len(calls) == 1:
                raise OSError("disk full")

        with _LiveCoordinator(_spec(), commit=flaky_commit) as live:
            live.server.submit([("k1", ("unit", 0))])
            lease = post_json(live.url + "/lease", {"worker": "w1"})
            payload, crc = encode_payload("result")
            body = {"worker": "w1", "lease": lease["lease"], "key": "k1",
                    "result": payload, "crc": crc}
            assert post_json(live.url + "/complete", body)["status"] == "rejected"
            # Reopened: a retry (same upload) commits durably this time.
            release = post_json(live.url + "/lease", {"worker": "w1"})
            body["lease"] = release["lease"]
            assert post_json(live.url + "/complete", body)["status"] == "committed"
            assert calls == ["k1", "k1"]

    def test_fail_reports_poison_after_distinct_workers(self):
        with _LiveCoordinator(_spec(poison_threshold=2)) as live:
            live.server.submit([("k1", ("unit", 0))])
            for worker, expected in (("w1", "requeued"), ("w2", "poisoned")):
                lease = post_json(live.url + "/lease", {"worker": worker})
                reply = post_json(
                    live.url + "/fail",
                    {"worker": worker, "lease": lease["lease"], "key": "k1",
                     "error_type": "ValueError", "message": "cursed",
                     "traceback": "tb"},
                )
                assert reply["status"] == expected
            kind, key, error = live.server.events.get_nowait()
            assert kind == "poisoned"
            assert key == "k1"
            assert error["error_type"] == "ValueError"
            assert "2 distinct worker(s)" in error["message"]

    def test_status_endpoint_and_unknown_routes(self):
        with _LiveCoordinator(_spec()) as live:
            post_json(live.url + "/lease", {"worker": "w1"})
            status = get_json(live.url + "/status")
            assert status["protocol"] == 1
            assert status["state"] == "serving"
            assert "w1" in status["workers"]
            assert status["table"]["total"] == 0
            assert post_json(live.url + "/nope", {})["status"] == "error"
            assert get_json(live.url + "/nope")["status"] == "error"

    def test_draining_and_shutdown_replies(self):
        with _LiveCoordinator(_spec()) as live:
            live.server.drain()
            assert post_json(live.url + "/lease", {"worker": "w"})["status"] == "draining"
            url = live.url
            live.server.state = "shutdown"
            assert post_json(url + "/lease", {"worker": "w"})["status"] == "shutdown"

    def test_port_file_written(self, tmp_path):
        port_file = tmp_path / "coordinator.addr"
        with _LiveCoordinator(_spec(port_file=str(port_file))) as live:
            host, port = live.server.address
            assert port_file.read_text() == f"{host}:{port}\n"


# ----------------------------------------------------------------------
# In-process integration: Executor + real run_worker loops in threads
# ----------------------------------------------------------------------
class _FakeResult:
    """Picklable stand-in for ScenarioResult (what _finish touches)."""

    def __init__(self, payload):
        self.payload = payload
        self.wall_seconds = 0.0
        self.sim_seconds = 0.0
        self.build_seconds = 0.0


def _echo_execute(unit):
    scenario, iteration = unit
    return _FakeResult(f"{scenario.policy}/{iteration}")


def _cursed_execute(unit):
    scenario, iteration = unit
    if scenario.policy == "rr-no-sensor":
        raise ValueError("cursed policy")
    return _FakeResult(f"{scenario.policy}/{iteration}")


def _worker_threads(executor, count, execute):
    host, port = executor.distributed_address()
    threads = []
    for index in range(count):
        thread = threading.Thread(
            target=run_worker,
            args=(f"{host}:{port}",),
            kwargs=dict(
                worker_id=f"test-worker-{index}", poll=0.05, execute=execute
            ),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    return threads


def _reap(executor, threads):
    executor.close()  # workers see "shutdown" and exit their loops
    for thread in threads:
        thread.join(timeout=10.0)
        assert not thread.is_alive()


class TestExecutorDistributed:
    def test_map_results_identical_to_serial(self):
        units = tiny_units(4)
        executor = Executor(
            max_workers=1,
            distributed=_spec(lease_timeout=30.0, shutdown_grace=2.0),
        )
        threads = _worker_threads(executor, 2, _execute_unit)
        try:
            results = executor.map(units)
        finally:
            _reap(executor, threads)
        assert [fingerprint(r) for r in results] == [
            fingerprint(run_scenario(s, i)) for s, i in units
        ]
        assert "distributed: 4 committed" in executor.summary()

    def test_poison_becomes_failure_record_in_map_robust(self):
        units = tiny_units(3)  # policies baseline, rr-no-sensor, sensor-wise
        executor = Executor(
            max_workers=1,
            distributed=_spec(
                poison_threshold=2, requeue_backoff=0.01, shutdown_grace=2.0
            ),
        )
        threads = _worker_threads(executor, 2, _cursed_execute)
        try:
            results = executor.map_robust(units)
        finally:
            _reap(executor, threads)
        assert results[0].payload == "baseline/0"
        assert results[2].payload == "sensor-wise/0"
        failure = results[1]
        assert isinstance(failure, ScenarioFailure)
        assert failure.error_type == "ValueError"
        assert "cursed policy" in failure.message
        # Quarantine needed two distinct workers; a worker with no other
        # work may retry its own failure first, so attempts can exceed 2.
        assert failure.attempts >= 2
        assert executor.failure_records == [failure]
        assert executor.stats.failures == 1

    def test_plain_map_raises_on_poison(self):
        units = tiny_units(2)[1:2]  # just the cursed rr-no-sensor unit
        executor = Executor(
            max_workers=1,
            distributed=_spec(
                poison_threshold=1, requeue_backoff=0.01, shutdown_grace=2.0
            ),
        )
        threads = _worker_threads(executor, 1, _cursed_execute)
        try:
            with pytest.raises(RuntimeError, match="quarantined"):
                executor.map(units)
        finally:
            _reap(executor, threads)

    def test_remote_commits_flow_through_journal(self, tmp_path):
        from repro.experiments.checkpoint import CheckpointManager

        units = tiny_units(3)
        checkpoint = CheckpointManager(tmp_path, meta={"m": 1})
        executor = Executor(
            max_workers=1, checkpoint=checkpoint,
            distributed=_spec(shutdown_grace=2.0),
        )
        threads = _worker_threads(executor, 2, _execute_unit)
        try:
            baseline = executor.map(units)
        finally:
            _reap(executor, threads)
        checkpoint.close()
        # Every remote completion was committed write-ahead: a serial
        # resume serves all units from the journal, byte-identically.
        resumed_exec = Executor(
            max_workers=1, checkpoint=CheckpointManager(tmp_path, meta={"m": 1})
        )
        resumed = resumed_exec.map(units)
        resumed_exec.checkpoint.close()
        assert resumed_exec.stats.journal_hits == 3
        assert [fingerprint(r) for r in resumed] == [
            fingerprint(r) for r in baseline
        ]

    def test_drain_interrupts_distributed_map(self):
        units = tiny_units(6)
        executor = Executor(
            max_workers=1, distributed=_spec(shutdown_grace=2.0)
        )
        from repro.experiments.checkpoint import CampaignInterrupted

        def drain_after_first_completion(line):
            if line.startswith("["):  # unit progress, not server banner
                executor.request_drain()

        executor.progress = drain_after_first_completion
        threads = _worker_threads(executor, 1, _execute_unit)
        try:
            with pytest.raises(CampaignInterrupted) as info:
                executor.map(units)
            assert 1 <= info.value.pending <= 5
        finally:
            _reap(executor, threads)


# ----------------------------------------------------------------------
# Chaos: subprocess coordinator + workers, SIGKILL mid-campaign
# ----------------------------------------------------------------------
FAULT_ARGS = [
    "fault-campaign",
    "--cycles", "1200", "--warmup", "200", "--sample-period", "32",
    "--kinds", "sensor-dropout,up-down-drop",
    "--fault-rates", "0.0,0.5,1.0",
]


def _spawn(args, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args, *extra],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def _run(args, extra=()):
    proc = _spawn(args, extra)
    _, stderr = proc.communicate(timeout=600)
    return proc.returncode, stderr.decode()


def _read_port_file(path, deadline=120.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        if path.exists() and path.read_text().strip():
            return path.read_text().strip()
        time.sleep(0.05)
    raise AssertionError("coordinator never wrote its port file")


def _wait_for_status(url, predicate, deadline=120.0):
    start = time.monotonic()
    status = None
    while time.monotonic() - start < deadline:
        try:
            status = get_json(url + "/status", timeout=5.0)
        except Exception:
            time.sleep(0.05)
            continue
        if predicate(status):
            return status
        time.sleep(0.05)
    raise AssertionError(f"coordinator status never satisfied predicate: {status}")


def _worker_pids(status):
    # Worker ids are "<hostname>-<pid>"; hostnames may contain dashes.
    return [int(worker.rsplit("-", 1)[1]) for worker in status["workers"]]


def _alive(pid):
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    return True


def _kill_quietly(pid):
    try:
        os.kill(pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass


class TestChaos:
    def test_worker_sigkill_byte_identical_json(self, tmp_path):
        golden = tmp_path / "golden.json"
        code, stderr = _run(FAULT_ARGS, ["--json", str(golden)])
        assert code == 0, stderr

        port_file = tmp_path / "coordinator.addr"
        dist_json = tmp_path / "distributed.json"
        proc = _spawn(
            FAULT_ARGS,
            ["--workers", "2", "--port-file", str(port_file),
             "--lease-timeout", "2", "--json", str(dist_json)],
        )
        victim = None
        try:
            url = "http://" + _read_port_file(port_file)
            status = _wait_for_status(
                url,
                lambda s: len(s["workers"]) >= 2
                and s["table"]["states"]["leased"] >= 1,
            )
            victim = _worker_pids(status)[0]
            os.kill(victim, signal.SIGKILL)
            _, stderr_bytes = proc.communicate(timeout=600)
        finally:
            if proc.poll() is None:
                proc.kill()
        stderr = stderr_bytes.decode()
        assert proc.returncode == 0, stderr
        assert not _alive(victim)
        assert dist_json.read_bytes() == golden.read_bytes()

    def test_coordinator_sigkill_then_resume_completes(self, tmp_path):
        golden = tmp_path / "golden.json"
        code, stderr = _run(FAULT_ARGS, ["--json", str(golden)])
        assert code == 0, stderr

        ckpt = tmp_path / "ckpt"
        port_file = tmp_path / "coordinator.addr"
        proc = _spawn(
            FAULT_ARGS,
            ["--workers", "2", "--port-file", str(port_file),
             "--checkpoint-dir", str(ckpt), "--json", str(tmp_path / "never.json")],
        )
        orphans = []
        try:
            url = "http://" + _read_port_file(port_file)
            status = _wait_for_status(
                url,
                lambda s: s["table"]["states"]["done"] >= 2,
            )
            orphans = _worker_pids(status)
            proc.kill()  # SIGKILL: no drain, no cleanup — journal only
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
            # The coordinator never got to reap its workers; the crash
            # takes the whole host with it in this scenario.
            for pid in orphans:
                _kill_quietly(pid)
        assert proc.returncode == -signal.SIGKILL
        journal = ckpt / "scenario.journal.jsonl"
        committed_lines = journal.read_bytes().count(b"\n") - 1  # - header
        assert committed_lines >= 2

        resumed_json = tmp_path / "resumed.json"
        code, stderr = _run(
            ["fault-campaign", "--resume", str(ckpt), "--json", str(resumed_json)]
        )
        assert code == 0, stderr
        # Remote workers' commits were durable: the serial resume served
        # them from the journal instead of re-running.
        assert "resumed from journal" in stderr
        assert resumed_json.read_bytes() == golden.read_bytes()


# ----------------------------------------------------------------------
# Overload protection: spec knobs, /healthz, backpressure, breaker
# ----------------------------------------------------------------------
class TestGovernanceSpecValidation:
    def test_heartbeat_interval_must_fit_inside_the_lease(self):
        with pytest.raises(ValueError):
            DistributedSpec(heartbeat_interval=0)
        with pytest.raises(ValueError):
            DistributedSpec(lease_timeout=10.0, heartbeat_interval=10.0)
        with pytest.raises(ValueError):
            DistributedSpec(lease_timeout=10.0, heartbeat_interval=15.0)
        # The widest still-valid interval is accepted.
        assert DistributedSpec(lease_timeout=10.0, heartbeat_interval=9.0)

    def test_requeue_backoff_and_jitter_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            DistributedSpec(requeue_backoff=-0.1)
        with pytest.raises(ValueError):
            DistributedSpec(requeue_jitter=-0.1)
        assert DistributedSpec(requeue_backoff=0.0, requeue_jitter=0.0)

    def test_overload_knobs_validated(self):
        with pytest.raises(ValueError):
            DistributedSpec(max_inflight=0)
        with pytest.raises(ValueError):
            DistributedSpec(queue_limit=0)
        with pytest.raises(ValueError):
            DistributedSpec(commit_breaker_threshold=0)


class TestLeaseFailureKinds:
    def test_worker_failure_kind_derived_from_error_type(self):
        clock = FakeClock()
        table = make_table(clock)
        table.load([("k1", "p", 0)])
        grant, _, _ = table.grant("w1")
        table.fail(
            grant.lease_id, "k1", "w1",
            {"error_type": "MemoryError", "message": "oom", "traceback": None},
        )
        assert table.error_of("k1")["kind"] == "oom"

    def test_expiry_is_typed_timeout(self):
        clock = FakeClock()
        table = make_table(clock, lease_timeout=10.0)
        table.load([("k1", "p", 0)])
        table.grant("w1")
        clock.now += 11.0
        (expired,) = table.expire()
        assert expired.error["kind"] == "timeout"
        assert expired.error["error_type"] == "LeaseExpired"


class TestOverloadProtection:
    def test_healthz_reports_ok_when_idle(self):
        with _LiveCoordinator(_spec()) as live:
            blob = get_json(live.url + "/healthz")
            assert blob["status"] == "ok"
            assert blob["verdict"] == "ok"
            assert blob["queue_depth"] == 0
            assert blob["queue_limit"] == 1024
            assert blob["max_inflight"] == 32
            assert blob["memory_rss_bytes"] > 0
            assert blob["commit_breaker"]["open"] is False
            assert set(blob["lease_churn"]) == {
                "leases_granted", "expiries", "requeued", "poisoned",
                "committed",
            }

    def test_saturated_lease_sheds_with_503_and_retry_after(self):
        import urllib.error
        import urllib.request

        with _LiveCoordinator(_spec(queue_limit=2)) as live:
            live.server.submit([("k1", ("unit", 0))])
            for _ in range(2):  # results nobody folded in yet: overload
                live.server.events.put(("noise", "", None))
            body = json.dumps({"worker": "w1"}).encode("utf-8")
            request = urllib.request.Request(
                live.url + "/lease", data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            error = excinfo.value
            assert error.code == 503
            assert int(error.headers["Retry-After"]) >= 1
            reply = json.loads(error.read().decode("utf-8"))
            assert reply["status"] == "busy"
            assert reply["retry_after"] > 0
            # Shed means *no lease granted*, and the health probe says
            # why — while still answering (degraded, never a hang).
            assert live.server.table.snapshot()["counters"]["leases_granted"] == 0
            health = get_json(live.url + "/healthz")
            assert health["status"] == "degraded"
            assert health["verdict"] == "shed"
            assert live.server.guard.counters["sheds"] == 1
            assert "1 lease(s) shed" in live.server.summary()

    def test_brownout_defers_new_grants(self):
        with _LiveCoordinator(_spec(queue_limit=4)) as live:
            live.server.submit([("k1", ("unit", 0))])
            for _ in range(3):  # 0.75 of the queue limit: brownout
                live.server.events.put(("noise", "", None))
            reply = post_json(live.url + "/lease", {"worker": "w1"})
            assert reply["status"] == "wait"
            assert reply["reason"] == "brownout"
            assert get_json(live.url + "/healthz")["verdict"] == "brownout"
            # Pressure released: the same worker gets its lease.
            for _ in range(3):
                live.server.events.get_nowait()
            assert post_json(live.url + "/lease", {"worker": "w1"})["status"] == "lease"

    def test_worker_rides_out_backpressure_and_completes(self):
        spec = _spec(queue_limit=1, poll_interval=0.05)
        with _LiveCoordinator(spec) as live:
            live.server.events.put(("noise", "", None))  # saturate
            live.server.submit([("k1", tiny_units(1)[0])])
            host, port = live.server.address
            thread = threading.Thread(
                target=run_worker,
                args=(f"{host}:{port}",),
                kwargs=dict(worker_id="bp-worker", poll=0.05,
                            execute=_echo_execute),
                daemon=True,
            )
            thread.start()
            time.sleep(0.5)
            # Saturated the whole time: busy replies, no grants, and
            # the worker treated them as backpressure, not errors.
            counters = live.server.table.snapshot()["counters"]
            assert counters["leases_granted"] == 0
            assert live.server.guard.counters["sheds"] > 0
            assert thread.is_alive()
            live.server.events.get_nowait()  # relieve the pressure
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if live.server.table.snapshot()["counters"]["committed"] == 1:
                    break
                time.sleep(0.05)
            assert live.server.table.snapshot()["counters"]["committed"] == 1
            live.server.state = "shutdown"
            thread.join(timeout=10.0)
            assert not thread.is_alive()

    def test_commit_breaker_opens_and_drains(self):
        def broken_commit(key, result):
            raise OSError("disk full")

        spec = _spec(commit_breaker_threshold=2)
        with _LiveCoordinator(spec, commit=broken_commit) as live:
            live.server.submit([("k1", ("unit", 0))])
            payload, crc = encode_payload("result")
            for attempt in range(2):
                lease = post_json(live.url + "/lease", {"worker": "w1"})
                assert lease["status"] == "lease"
                ack = post_json(
                    live.url + "/complete",
                    {"worker": "w1", "lease": lease["lease"], "key": "k1",
                     "result": payload, "crc": crc},
                )
                assert ack["status"] == "rejected"
                assert "commit failed" in ack["reason"]
            # Threshold hit: the breaker opened and the coordinator
            # drains instead of wedging in a grant/commit-fail loop.
            assert live.server.breaker.open
            assert live.server.state == "draining"
            ack = post_json(
                live.url + "/complete",
                {"worker": "w2", "lease": "stale", "key": "k1",
                 "result": payload, "crc": crc},
            )
            assert ack["status"] == "rejected"
            assert "commit circuit open" in ack["reason"]
            assert post_json(live.url + "/lease", {"worker": "w1"})["status"] == "draining"
            assert "commit breaker tripped 1x" in live.server.summary()
            health = get_json(live.url + "/healthz")
            assert health["status"] == "degraded"
            assert health["commit_breaker"]["open"] is True


def _oom_execute(unit):
    scenario, iteration = unit
    if scenario.policy == "rr-no-sensor":
        raise MemoryError("worker address-space budget")
    return _FakeResult(f"{scenario.policy}/{iteration}")


class TestDistributedFailureKinds:
    def test_poisoned_memory_failure_is_typed_oom_and_quarantined(self):
        units = tiny_units(3)  # policies baseline, rr-no-sensor, sensor-wise
        executor = Executor(
            max_workers=1,
            distributed=_spec(
                poison_threshold=2, requeue_backoff=0.01, shutdown_grace=2.0
            ),
        )
        threads = _worker_threads(executor, 2, _oom_execute)
        try:
            results = executor.map_robust(units)
        finally:
            _reap(executor, threads)
        assert results[0].payload == "baseline/0"
        assert results[2].payload == "sensor-wise/0"
        failure = results[1]
        assert isinstance(failure, ScenarioFailure)
        assert failure.error_type == "MemoryError"
        assert failure.kind == "oom"
        assert failure.quarantined
