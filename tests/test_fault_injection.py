"""Fault injection on the Up_Down control link.

The methodology adds two sideband links; the simulator (like the
hardware) assumes they are reliable.  These tests inject message loss
with :class:`LossyChannel` and verify the failure semantics:

* a lost **wake** command desynchronizes the upstream power view from
  the downstream buffer and must surface as a hard
  :class:`BufferError` (a flit is driven into a gated buffer) — never
  as silent flit loss;
* a lost **gate** command is benign for correctness: the downstream
  buffer merely keeps leaking/stressing, so traffic still flows and the
  NBTI duty cycle only gets *worse*, never inconsistent.
"""

from __future__ import annotations

import pytest

from repro.noc.buffer import BufferError
from repro.noc.link import Channel, LossyChannel
from repro.noc.topology import LOCAL
from tests.conftest import build_small_network


def inject_lossy_control(net, router_id, port, **lossy_kwargs):
    """Replace one input port's Up_Down channel with a lossy one."""
    router = net.routers[router_id]
    old = router.inputs[port].control_channel
    lossy = LossyChannel(old.name, latency=old.latency, **lossy_kwargs)
    router.inputs[port].control_channel = lossy
    if port == LOCAL:
        net.interfaces[router_id].injection_port.control_channel = lossy
    else:
        from repro.noc.network import neighbor_of_inverse

        up_node, up_port = neighbor_of_inverse(net.topology, router_id, port)
        net.routers[up_node].outputs[up_port].upstream.control_channel = lossy
    return lossy


def is_wake(item):
    return item[0] == "wake"


def is_gate(item):
    return item[0] == "gate"


class TestLossyChannelUnit:
    def test_zero_probability_is_lossless(self):
        channel = LossyChannel("c", latency=1, drop_probability=0.0)
        for i in range(20):
            channel.send(i, cycle=0)
        assert sorted(channel.pop_ready(1)) == list(range(20))
        assert channel.dropped == 0

    def test_full_probability_drops_everything(self):
        channel = LossyChannel("c", latency=1, drop_probability=1.0)
        for i in range(5):
            channel.send(i, cycle=0)
        assert channel.pop_ready(1) == []
        assert channel.dropped == 5

    def test_filter_limits_dropping(self):
        channel = LossyChannel(
            "c", latency=1, drop_probability=1.0, drop_filter=is_wake
        )
        channel.send(("wake", 0), cycle=0)
        channel.send(("gate", 1), cycle=0)
        assert channel.pop_ready(1) == [("gate", 1)]
        assert channel.dropped == 1

    def test_drops_are_reproducible(self):
        a = LossyChannel("c", drop_probability=0.5, seed=3)
        b = LossyChannel("c", drop_probability=0.5, seed=3)
        for i in range(50):
            a.send(i, cycle=0)
            b.send(i, cycle=0)
        assert a.pop_ready(1) == b.pop_ready(1)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            LossyChannel("c", drop_probability=1.5)


class TestLostWakeCommands:
    def test_lost_wake_is_a_hard_error_not_silent_loss(self):
        """Dropping every wake command on a gating policy's port drives
        a flit into a gated buffer — the model must scream."""
        net = build_small_network(policy="sensor-wise", flit_rate=0.3, seed=3)
        inject_lossy_control(
            net, router_id=0, port=LOCAL,
            drop_probability=1.0, drop_filter=is_wake,
        )
        with pytest.raises(BufferError):
            net.run(2000)


class TestLostGateCommands:
    def test_lost_gates_are_benign_but_costly(self):
        """Dropping gate commands keeps buffers powered: traffic is
        unaffected, the duty cycle only rises."""
        clean = build_small_network(policy="sensor-wise", flit_rate=0.2, seed=5)
        clean.run(2000)

        faulty = build_small_network(policy="sensor-wise", flit_rate=0.2, seed=5)
        lossy = inject_lossy_control(
            faulty, router_id=0, port=LOCAL,
            drop_probability=1.0, drop_filter=is_gate,
        )
        faulty.run(2000)

        assert lossy.dropped > 0
        # Same traffic still delivered.
        assert (
            faulty.stats().packets_ejected == clean.stats().packets_ejected
        )
        # The attacked port's buffers never power down: 100 % stress.
        assert faulty.duty_cycles(0, LOCAL) == [100.0] * faulty.config.num_vcs
        assert max(clean.duty_cycles(0, LOCAL)) < 100.0

    def test_baseline_is_immune_to_control_loss(self):
        """The baseline never issues commands, so a fully lossy control
        link changes nothing."""
        net = build_small_network(policy="baseline", flit_rate=0.2, seed=5)
        lossy = inject_lossy_control(
            net, router_id=0, port=LOCAL, drop_probability=1.0
        )
        net.run(1000)
        assert lossy.dropped == 0
        assert net.duty_cycles(0, LOCAL) == [100.0] * net.config.num_vcs
