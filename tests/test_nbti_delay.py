"""Tests for the alpha-power-law delay/frequency translation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nbti.constants import SECONDS_PER_YEAR, TECH_45NM
from repro.nbti.delay import (
    delay_factor,
    frequency_factor,
    frequency_trajectory,
    guardband_lifetime_years,
)
from repro.nbti.model import NBTIModel


@pytest.fixture(scope="module")
def model():
    return NBTIModel.calibrated()


class TestDelayFactor:
    def test_zero_shift_is_unity(self):
        assert delay_factor(0.0) == pytest.approx(1.0)

    def test_shift_slows_the_gate(self):
        assert delay_factor(0.050) > delay_factor(0.010) > 1.0

    def test_higher_initial_vth_amplifies_shift(self):
        weak = delay_factor(0.040, initial_vth=0.200)
        strong = delay_factor(0.040, initial_vth=0.160)
        assert weak > strong

    def test_paper_motivation_regime(self):
        """The paper cites up to ~20 % performance loss in 10 years; a
        50 mV shift at 1.2 V lands in the single-digit-to-tens regime."""
        loss = 1.0 - frequency_factor(0.050)
        assert 0.03 < loss < 0.20

    def test_no_overdrive_rejected(self):
        with pytest.raises(ValueError):
            delay_factor(TECH_45NM.vdd)  # shift eats the whole overdrive
        with pytest.raises(ValueError):
            delay_factor(0.01, initial_vth=TECH_45NM.vdd + 0.1)

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            delay_factor(-0.01)

    def test_frequency_is_inverse_delay(self):
        assert frequency_factor(0.030) == pytest.approx(1.0 / delay_factor(0.030))

    @settings(max_examples=50, deadline=None)
    @given(
        d1=st.floats(min_value=0.0, max_value=0.2),
        d2=st.floats(min_value=0.0, max_value=0.2),
    )
    def test_monotone_in_shift(self, d1, d2):
        lo, hi = sorted((d1, d2))
        assert delay_factor(lo) <= delay_factor(hi) + 1e-12


class TestFrequencyTrajectory:
    def test_monotone_degradation(self, model):
        traj = frequency_trajectory(model, duty_cycle_percent=80.0)
        assert traj.frequency_factors == sorted(traj.frequency_factors, reverse=True)
        assert traj.final_degradation > 0.0

    def test_lower_duty_degrades_less(self, model):
        busy = frequency_trajectory(model, 100.0)
        calm = frequency_trajectory(model, 5.0)
        assert calm.final_degradation < busy.final_degradation

    def test_zero_duty_never_degrades(self, model):
        idle = frequency_trajectory(model, 0.0)
        assert idle.frequency_factors == [1.0] * len(idle.years)

    def test_invalid_duty_rejected(self, model):
        with pytest.raises(ValueError):
            frequency_trajectory(model, 120.0)


class TestGuardbandLifetime:
    def test_baseline_dies_before_mitigated(self, model):
        full = guardband_lifetime_years(model, 100.0, max_degradation=0.03)
        mitigated = guardband_lifetime_years(model, 5.0, max_degradation=0.03)
        assert full < mitigated

    def test_infinite_when_never_crossed(self, model):
        assert guardband_lifetime_years(model, 0.0) == math.inf

    def test_lifetime_solution_is_consistent(self, model):
        years = guardband_lifetime_years(model, 100.0, max_degradation=0.05)
        assert 0.0 < years < 100.0
        shift = model.delta_vth(1.0, years * SECONDS_PER_YEAR)
        assert 1.0 - frequency_factor(shift) == pytest.approx(0.05, abs=2e-3)

    def test_invalid_guardband_rejected(self, model):
        with pytest.raises(ValueError):
            guardband_lifetime_years(model, 50.0, max_degradation=0.0)
        with pytest.raises(ValueError):
            guardband_lifetime_years(model, 50.0, max_degradation=1.0)
