"""Tests for the injection-sweep harness and the extended policy zoo."""

from __future__ import annotations

import pytest

from repro.core.policies import StaticReservePolicy, make_policy_factory
from repro.experiments.config import ScenarioConfig
from repro.experiments.sweeps import run_injection_sweep
from repro.noc.policy_api import states_of, PolicyContext
from tests.conftest import build_small_network

FAST = ScenarioConfig(num_nodes=4, num_vcs=2, cycles=1500, warmup=300)


class TestStaticReservePolicy:
    def ctx(self, states, reserved=0):
        return PolicyContext(
            cycle=0, vc_states=states_of(states), new_traffic=True,
            most_degraded_vc=None,
        )

    def test_reserved_vc_kept_awake(self):
        policy = StaticReservePolicy(reserved_vc=1)
        decision = policy.decide(self.ctx(["idle", "idle", "idle"]))
        assert decision.awake == frozenset((1,))
        assert decision.idle_vc == 1

    def test_active_reserved_vc_gates_everything_else(self):
        policy = StaticReservePolicy(reserved_vc=0)
        decision = policy.decide(self.ctx(["active", "idle"]))
        assert decision.awake == frozenset()

    def test_reserved_vc_wraps(self):
        policy = StaticReservePolicy(reserved_vc=5)
        decision = policy.decide(self.ctx(["idle", "idle"]))
        assert decision.idle_vc == 1  # 5 % 2

    def test_negative_reserved_rejected(self):
        with pytest.raises(ValueError):
            StaticReservePolicy(reserved_vc=-1)

    def test_factory_registration(self):
        policy = make_policy_factory("static-reserve", reserved_vc=1)()
        assert policy.name == "static-reserve"
        assert policy.reserved_vc == 1

    def test_reserved_vc_ages_like_no_traffic_variant(self):
        """End to end: the reserved VC pays ~100 % duty while the other
        recovers — the failure mode sensors fix."""
        net = build_small_network(policy="static-reserve", flit_rate=0.1)
        net.run(1500)
        duties = net.duty_cycles(0, "east")
        assert duties[0] > 90.0
        assert duties[1] < 30.0


class TestInjectionSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_injection_sweep(
            (0.1, 0.3), base=FAST, policies=("rr-no-sensor", "sensor-wise")
        )

    def test_points_in_rate_order(self, sweep):
        assert sweep.rates() == [0.1, 0.3]

    def test_series_shapes(self, sweep):
        for metric in ("md_duty", "latency", "throughput"):
            series = sweep.series("sensor-wise", metric)
            assert len(series) == 2
            assert all(v >= 0.0 for v in series)

    def test_duty_rises_with_load(self, sweep):
        duties = sweep.series("rr-no-sensor", "md_duty")
        assert duties[1] > duties[0]

    def test_gap_defined_and_positive(self, sweep):
        gaps = sweep.gaps()
        assert all(g is not None and g > 0 for g in gaps)

    def test_format_contains_rates(self, sweep):
        text = sweep.format()
        assert "0.10" in text and "0.30" in text

    def test_csv_roundtrip(self, sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        sweep.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 points
        header = lines[0].split(",")
        assert "rr-no-sensor.md_duty" in header
        assert "gap" in header
        first = dict(zip(header, lines[1].split(",")))
        assert float(first["injection_rate"]) == 0.1

    def test_gap_none_without_reference(self):
        sweep = run_injection_sweep((0.1,), base=FAST, policies=("baseline",))
        assert sweep.gaps() == [None]

    def test_empty_rates_rejected(self):
        with pytest.raises(ValueError):
            run_injection_sweep((), base=FAST)

    def test_kwargs_override_base(self):
        sweep = run_injection_sweep((0.1,), base=FAST, num_vcs=4)
        assert sweep.scenario.num_vcs == 4
        assert len(sweep.points[0].results["sensor-wise"].duty_cycles) == 4


class TestNewCLICommands:
    def test_sweep_command(self, capsys, tmp_path):
        from repro.cli import main

        csv = tmp_path / "out.csv"
        assert main([
            "sweep", "--cycles", "1200", "--warmup", "200",
            "--rates", "0.1", "--csv", str(csv),
        ]) == 0
        assert "Injection sweep" in capsys.readouterr().out
        assert csv.exists()

    def test_power_command(self, capsys):
        from repro.cli import main

        assert main(["power", "--cycles", "1200", "--warmup", "200"]) == 0
        out = capsys.readouterr().out
        assert "Power breakdown" in out
        assert "average power" in out
