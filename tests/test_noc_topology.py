"""Tests for mesh/torus/ring topologies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.topology import (
    EAST,
    LOCAL,
    NORTH,
    SOUTH,
    WEST,
    Mesh2D,
    Ring,
    Torus2D,
    build_topology,
    port_id,
    port_name,
)


class TestPortNames:
    def test_roundtrip(self):
        for pid in (LOCAL, NORTH, SOUTH, EAST, WEST):
            assert port_id(port_name(pid)) == pid

    def test_single_letter_aliases(self):
        assert port_id("E") == EAST
        assert port_id("w") == WEST

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            port_id("up")


class TestMesh2D:
    def test_2x2_geometry(self):
        mesh = Mesh2D(2, 2)
        assert mesh.num_nodes == 4
        assert mesh.coordinates(3) == (1, 1)
        assert mesh.node_at(1, 0) == 1

    def test_neighbors_of_top_left(self):
        mesh = Mesh2D(4, 4)
        assert mesh.neighbor(0, EAST) == 1
        assert mesh.neighbor(0, SOUTH) == 4
        with pytest.raises(ValueError):
            mesh.neighbor(0, WEST)  # edge router: no west link
        with pytest.raises(ValueError):
            mesh.neighbor(0, NORTH)

    def test_links_are_symmetric(self):
        mesh = Mesh2D(4, 4)
        links = {(l.src_router, l.src_port, l.dst_router, l.dst_port) for l in mesh.links()}
        reverse_port = {EAST: WEST, WEST: EAST, NORTH: SOUTH, SOUTH: NORTH}
        # Every link has its reverse.
        for src, sport, dst, dport in links:
            assert (dst, reverse_port[sport], src, reverse_port[dport]) in links

    def test_link_count(self):
        # 4x4 mesh: 2 * (3*4 + 4*3) = 48 directed links.
        assert len(Mesh2D(4, 4).links()) == 48

    def test_hop_distance_is_manhattan(self):
        mesh = Mesh2D(4, 4)
        assert mesh.hop_distance(0, 15) == 6
        assert mesh.hop_distance(5, 5) == 0
        assert mesh.hop_distance(0, 1) == 1

    def test_east_input_of_router0_fed_by_router1(self):
        """The paper measures router 0's east input port: it must be fed
        by router 1's west output."""
        mesh = Mesh2D(2, 2)
        feeders = [
            (l.src_router, l.src_port)
            for l in mesh.links()
            if l.dst_router == 0 and l.dst_port == EAST
        ]
        assert feeders == [(1, WEST)]

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 4)
        with pytest.raises(ValueError):
            Mesh2D(1, 1)

    def test_out_of_range_node_rejected(self):
        mesh = Mesh2D(2, 2)
        with pytest.raises(ValueError):
            mesh.coordinates(4)
        with pytest.raises(ValueError):
            mesh.node_at(2, 0)

    @settings(max_examples=30, deadline=None)
    @given(
        width=st.integers(min_value=2, max_value=5),
        height=st.integers(min_value=1, max_value=5),
    )
    def test_coordinates_roundtrip(self, width, height):
        mesh = Mesh2D(width, height)
        for node in range(mesh.num_nodes):
            x, y = mesh.coordinates(node)
            assert mesh.node_at(x, y) == node


class TestTorus2D:
    def test_wraparound_links_exist(self):
        torus = Torus2D(4, 4)
        assert torus.neighbor(3, EAST) == 0  # right edge wraps
        assert torus.neighbor(0, NORTH) == 12  # top edge wraps

    def test_narrow_dimensions_rejected(self):
        """A 1- or 2-wide dimension would duplicate the existing links,
        silently degenerating the torus into a mesh — rejected outright."""
        for width, height in ((2, 4), (4, 2), (2, 2), (1, 5)):
            with pytest.raises(ValueError, match="torus dimensions must be >= 3"):
                Torus2D(width, height)

    def test_every_router_has_all_four_wrap_ports(self):
        """On a legal torus every router drives every compass port."""
        torus = Torus2D(3, 3)
        for node in range(torus.num_nodes):
            for port in (NORTH, SOUTH, EAST, WEST):
                torus.neighbor(node, port)  # must not raise

    def test_hop_distance_uses_wraparound(self):
        torus = Torus2D(4, 4)
        assert torus.hop_distance(0, 3) == 1
        assert torus.hop_distance(0, 15) == 2


class TestRing:
    def test_links_bidirectional(self):
        ring = Ring(4)
        assert ring.neighbor(0, EAST) == 1
        assert ring.neighbor(0, WEST) == 3

    def test_hop_distance_shortest_way(self):
        ring = Ring(6)
        assert ring.hop_distance(0, 5) == 1
        assert ring.hop_distance(0, 3) == 3

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            Ring(1)


class TestBuildTopology:
    def test_mesh_squarest_shape(self):
        topo = build_topology("mesh", 16)
        assert isinstance(topo, Mesh2D)
        assert (topo.width, topo.height) == (4, 4)

    def test_mesh_rectangular(self):
        topo = build_topology("mesh", 8)
        assert {topo.width, topo.height} == {4, 2}

    def test_torus_and_ring(self):
        assert isinstance(build_topology("torus", 9), Torus2D)
        assert isinstance(build_topology("ring", 5), Ring)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_topology("hypercube", 8)

    def test_paper_architectures(self):
        for nodes, shape in ((4, (2, 2)), (16, (4, 4))):
            topo = build_topology("mesh", nodes)
            assert (topo.width, topo.height) == shape

    def test_two_node_mesh_stays_legal(self):
        """The paper's 2-node setup is the trivial 2x1 mesh."""
        topo = build_topology("mesh", 2)
        assert (topo.width, topo.height) == (2, 1)

    def test_prime_node_counts_rejected(self):
        """Prime counts only factorize into a degenerate Nx1 chain."""
        for nodes in (3, 5, 7, 13):
            with pytest.raises(ValueError, match="degenerate"):
                build_topology("mesh", nodes)
        # Rings remain the intended way to build a chain of that size.
        assert build_topology("ring", 7).num_nodes == 7

    def test_degenerate_torus_node_count_rejected(self):
        """4 torus nodes would silently build a wrapless 2x2 'torus'."""
        with pytest.raises(ValueError, match="torus dimensions must be >= 3"):
            build_topology("torus", 4)
        # 2x3 factorization: rejected by the >= 3 dimension rule too.
        with pytest.raises(ValueError, match="torus dimensions must be >= 3"):
            build_topology("torus", 6)

    def test_neighbor_map_matches_link_scan(self):
        """The precomputed (node, port) -> node map is exactly the scan."""
        topo = build_topology("mesh", 16)
        for link in topo.links():
            assert topo.neighbor(link.src_router, link.src_port) == link.dst_router
        with pytest.raises(ValueError, match="no neighbor"):
            topo.neighbor(0, NORTH)  # top-left corner has no north link
