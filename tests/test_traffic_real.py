"""Tests for benchmark profiles and the benchmark-mix traffic generator."""

from __future__ import annotations

import contextlib
import logging

import pytest

from repro.traffic.benchmarks import (
    ALL_PROFILES,
    SPLASH2_PROFILES,
    WCET_PROFILES,
    BenchmarkProfile,
    get_profile,
    random_mix,
)
from repro.traffic.real import BenchmarkTraffic


class TestProfiles:
    def test_suites_are_disjoint_and_union(self):
        assert not set(SPLASH2_PROFILES) & set(WCET_PROFILES)
        assert set(ALL_PROFILES) == set(SPLASH2_PROFILES) | set(WCET_PROFILES)

    def test_known_benchmarks_present(self):
        for name in ("ocean", "fft", "barnes", "crc", "matmult"):
            assert name in ALL_PROFILES

    def test_profile_lookup(self):
        assert get_profile("ocean").suite == "splash2"
        with pytest.raises(KeyError):
            get_profile("doom")

    def test_duty_and_average_rate(self):
        p = BenchmarkProfile("x", "t", on_rate=0.4, burst_mean=100, idle_mean=300)
        assert p.duty == pytest.approx(0.25)
        assert p.average_rate == pytest.approx(0.1)

    def test_memory_bound_vs_compute_bound_ordering(self):
        """The qualitative characterization: OCEAN/FFT/RADIX are hungrier
        than WATER and the WCET kernels."""
        for heavy in ("ocean", "fft", "radix"):
            for light in ("water-nsq", "crc", "fir"):
                assert get_profile(heavy).average_rate > get_profile(light).average_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("x", "t", on_rate=0.0, burst_mean=10, idle_mean=10)
        with pytest.raises(ValueError):
            BenchmarkProfile("x", "t", on_rate=0.1, burst_mean=0.5, idle_mean=10)
        with pytest.raises(ValueError):
            BenchmarkProfile(
                "x", "t", on_rate=0.1, burst_mean=10, idle_mean=10,
                locality_fraction=0.8, hotspot_fraction=0.5,
            )
        with pytest.raises(ValueError):
            BenchmarkProfile(
                "x", "t", on_rate=0.1, burst_mean=10, idle_mean=10,
                reply_probability=1.5,
            )
        with pytest.raises(ValueError):
            BenchmarkProfile(
                "x", "t", on_rate=0.1, burst_mean=10, idle_mean=10,
                request_length=0,
            )


class TestRandomMix:
    def test_one_profile_per_core(self):
        mix = random_mix(16, seed=3)
        assert len(mix) == 16

    def test_deterministic(self):
        a = [p.name for p in random_mix(8, seed=4)]
        b = [p.name for p in random_mix(8, seed=4)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [p.name for p in random_mix(8, seed=4)]
        b = [p.name for p in random_mix(8, seed=5)]
        assert a != b

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            random_mix(0, seed=1)


class TestBenchmarkTraffic:
    def make(self, **kwargs):
        return BenchmarkTraffic.random(4, mix_seed=7, **kwargs)

    def test_injections_valid(self):
        gen = self.make()
        for cycle in range(3000):
            for src, dst, length in gen.inject(cycle):
                assert 0 <= src < 4 and 0 <= dst < 4
                assert src != dst
                assert length >= 1

    def test_deterministic(self):
        a = self.make()
        b = self.make()
        for cycle in range(1000):
            assert a.inject(cycle) == b.inject(cycle)

    def test_responses_follow_requests(self):
        """With reply probability > 0, some packets flow back to sources
        after the service delay."""
        profiles = [get_profile("matmult")] * 4  # reply=0.9, hotspot-heavy
        gen = BenchmarkTraffic(profiles, seed=3, service_delay=10)
        requests = set()
        responses = 0
        for cycle in range(20000):
            for src, dst, length in gen.inject(cycle):
                if length == profiles[0].response_length and (dst, src) in requests:
                    responses += 1
                if length == profiles[0].request_length:
                    requests.add((src, dst))
        assert responses > 0

    def test_traffic_is_bursty(self):
        """ON/OFF modulation: per-window injection counts vary far more
        than a Poisson stream of the same mean."""
        profiles = [get_profile("ocean")] * 4
        gen = BenchmarkTraffic(profiles, seed=5)
        window = 200
        counts = []
        for w in range(100):
            counts.append(
                sum(len(gen.inject(c)) for c in range(w * window, (w + 1) * window))
            )
        mean = sum(counts) / len(counts)
        var = sum((c - mean) ** 2 for c in counts) / len(counts)
        assert mean > 0
        assert var > 2.0 * mean  # Poisson would have var ~= mean

    def test_average_rate_tracks_profile(self):
        """Long-run flit rate approaches the profile's average rate."""
        profile = get_profile("lu")
        gen = BenchmarkTraffic([profile] * 4, seed=9)
        flits = 0
        cycles = 60000
        for cycle in range(cycles):
            for _, _, length in gen.inject(cycle):
                flits += length
        measured = flits / (cycles * 4)
        assert measured == pytest.approx(profile.average_rate, rel=0.35)

    def test_hot_banks_default_to_corners(self):
        gen = BenchmarkTraffic.random(16, mix_seed=1)
        assert gen.hot_banks == [0, 3, 12, 15]

    def test_custom_hot_banks(self):
        gen = BenchmarkTraffic.random(4, mix_seed=1, hot_banks=[2])
        assert gen.hot_banks == [2]

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkTraffic.random(4, mix_seed=1, service_delay=0)
        with pytest.raises(ValueError):
            BenchmarkTraffic.random(4, mix_seed=1, hot_banks=[99])

    def test_describe_lists_benchmarks(self):
        gen = self.make()
        assert "benchmark-mix" in gen.describe()


class TestOfferedLoadClamp:
    """The injector issues at most one request per core per cycle; a
    profile hotter than that ceiling is clamped — audibly."""

    @staticmethod
    def overheated_profile() -> BenchmarkProfile:
        """A profile whose on_rate exceeds the 1-request/cycle ceiling.

        Validated profiles can't exceed it (``on_rate <= 1`` and a
        request carries >= 1 flit), so this forges the field past
        validation to exercise the defensive clamp path.
        """
        profile = BenchmarkProfile(
            "hotloop", "test", on_rate=1.0, burst_mean=50, idle_mean=50,
            reply_probability=0.0, request_length=1,
        )
        object.__setattr__(profile, "on_rate", 3.0)
        return profile

    @staticmethod
    @contextlib.contextmanager
    def captured_warnings():
        """Capture repro.traffic records on the logger itself.

        The CLI's logging setup flips the ``repro`` hierarchy to
        ``propagate=False`` (and other tests invoke it), so pytest's
        root-logger caplog can't be relied on here.
        """
        logger = logging.getLogger("repro.traffic")
        records: list = []

        class _Collector(logging.Handler):
            def emit(self, record):
                records.append(record)

        handler = _Collector(level=logging.WARNING)
        old_level = logger.level
        logger.addHandler(handler)
        logger.setLevel(logging.WARNING)
        try:
            yield records
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)

    def test_clamp_warns_once_per_core(self):
        profile = self.overheated_profile()
        with self.captured_warnings() as records:
            gen = BenchmarkTraffic([profile, profile], seed=3)
        clamp_warnings = [
            r for r in records if "injector ceiling" in r.getMessage()
        ]
        assert len(clamp_warnings) == 2
        assert "hotloop" in clamp_warnings[0].getMessage()
        assert all(core.clamped for core in gen._cores)
        assert all(core.request_rate == 1.0 for core in gen._cores)

    def test_normal_profiles_stay_silent(self):
        with self.captured_warnings() as records:
            gen = BenchmarkTraffic.random(4, mix_seed=1)
        assert not [r for r in records if "injector ceiling" in r.getMessage()]
        assert not any(core.clamped for core in gen._cores)
