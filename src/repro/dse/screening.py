"""Two-level fractional-factorial screening: kill dead axes cheaply.

Before the evolutionary phase spends thousands of simulator runs, a
2^(k-p) screening design (DAVOS's ``FactorialDesignBuilder`` stage)
estimates every parameter's main effect — and the two-factor
interactions the run count supports — from a handful of corner runs:
each parameter is pinned to its *low* (first) and *high* (last) level
and the design matrix picks a resolution-III-or-better fraction.

The output is a ranking, not a verdict: :meth:`ScreeningReport.prune`
returns the axes whose normalized effect stays under a threshold across
*every* objective, which the CLI then drops from the GA's space.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dse.objectives import Objective, evaluate_objectives
from repro.dse.space import DesignSpace, Genome
from repro.experiments.parallel import Executor, ScenarioFailure
from repro.experiments.runner import run_scenario
from repro.telemetry.log import get_logger

log = get_logger("dse")


def two_level_design(factors: int) -> np.ndarray:
    """A 2^(k-p) two-level design matrix of ±1, shape (runs, factors).

    The run count is the smallest power of two strictly greater than
    ``factors`` (so main effects stay estimable).  The first
    ``log2(runs)`` factors get the full-factorial *basic* columns; each
    remaining factor is aliased onto the product of a distinct basic-
    column subset of size >= 2, taken in deterministic lexicographic
    order — the textbook fractional-factorial generator construction.
    """
    if factors < 1:
        raise ValueError(f"factors must be >= 1, got {factors}")
    basic = 1
    while (1 << basic) <= factors:
        basic += 1
    runs = 1 << basic
    matrix = np.empty((runs, factors), dtype=np.int8)
    for column in range(min(basic, factors)):
        # Basic column b alternates sign in blocks of 2**b.
        pattern = ((np.arange(runs) >> column) & 1) * 2 - 1
        matrix[:, column] = pattern
    # Generators: subsets of basic columns, |subset| >= 2, lexicographic.
    subsets = [
        mask for mask in range(3, runs) if bin(mask).count("1") >= 2
    ]
    for extra in range(basic, factors):
        mask = subsets[extra - basic]
        product = np.ones(runs, dtype=np.int8)
        for bit in range(basic):
            if mask & (1 << bit):
                product *= matrix[:, bit]
        matrix[:, extra] = product
    return matrix


@dataclasses.dataclass
class ScreeningReport:
    """Effects estimated by one screening run.

    ``main_effects[objective][parameter]`` is the oriented high-vs-low
    mean difference; ``interactions[objective][(a, b)]`` the product-
    column contrast for the pairs the design could estimate.
    ``evaluations`` counts simulator invocations actually performed
    (invalid corners are skipped, failures dropped).
    """

    parameters: Tuple[str, ...]
    objectives: Tuple[str, ...]
    runs: int
    evaluations: int
    skipped_invalid: int
    failed: int
    main_effects: Dict[str, Dict[str, float]]
    interactions: Dict[str, Dict[Tuple[str, str], float]]

    def normalized_effects(self) -> Dict[str, Dict[str, float]]:
        """Main effects scaled to [0, 1] per objective (rank-comparable)."""
        scaled: Dict[str, Dict[str, float]] = {}
        for objective, effects in self.main_effects.items():
            peak = max((abs(v) for v in effects.values()), default=0.0)
            scaled[objective] = {
                name: (abs(value) / peak if peak > 0 else 0.0)
                for name, value in effects.items()
            }
        return scaled

    def ranking(self) -> List[Tuple[str, float]]:
        """Parameters by importance: max normalized |effect| across
        objectives, descending (ties break by name)."""
        scaled = self.normalized_effects()
        strength = {
            name: max(scaled[objective][name] for objective in self.objectives)
            for name in self.parameters
        }
        return sorted(strength.items(), key=lambda item: (-item[1], item[0]))

    def prune(self, threshold: float = 0.05) -> List[str]:
        """Names of *dead* axes: normalized effect < threshold on every
        objective.  These are safe to freeze at their base value before
        the expensive evolutionary phase."""
        return [
            name for name, strength in self.ranking() if strength < threshold
        ]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (deterministic key order)."""
        return {
            "parameters": list(self.parameters),
            "objectives": list(self.objectives),
            "runs": self.runs,
            "evaluations": self.evaluations,
            "skipped_invalid": self.skipped_invalid,
            "failed": self.failed,
            "main_effects": {
                objective: dict(sorted(effects.items()))
                for objective, effects in sorted(self.main_effects.items())
            },
            "interactions": {
                objective: {
                    f"{a}*{b}": value
                    for (a, b), value in sorted(pairs.items())
                }
                for objective, pairs in sorted(self.interactions.items())
            },
            "ranking": [list(item) for item in self.ranking()],
        }

    def format(self) -> str:
        """Human-readable effects table for the CLI."""
        from repro.experiments.report import render_table

        scaled = self.normalized_effects()
        headers = ["parameter"] + [f"{name}" for name in self.objectives] + ["max"]
        rows = []
        for name, strength in self.ranking():
            row = [name]
            row.extend(f"{scaled[obj][name]:.3f}" for obj in self.objectives)
            row.append(f"{strength:.3f}")
            rows.append(row)
        title = (
            f"Factorial screening: {self.evaluations} runs "
            f"({self.skipped_invalid} invalid corner(s) skipped, "
            f"{self.failed} failed) — normalized |main effect|"
        )
        return render_table(headers, rows, title=title)


def _design_genome(space: DesignSpace, signs: Sequence[int]) -> Genome:
    """Map one ±1 design row to a genome (low = level 0, high = last)."""
    return tuple(
        (len(parameter) - 1 if sign > 0 else 0)
        for parameter, sign in zip(space.parameters, signs)
    )


def run_screening(
    space: DesignSpace,
    objectives: Sequence[Objective],
    executor: Optional[Executor] = None,
    iteration: int = 0,
) -> ScreeningReport:
    """Run the screening design and estimate effects.

    Evaluations go through ``executor.map_robust`` when an executor is
    given (parallelism, cache/journal dedup, crash robustness for
    free); invalid design rows are excluded up front, failed rows are
    dropped from the contrasts.
    """
    names = tuple(p.name for p in space.parameters)
    design = two_level_design(len(names))
    rows: List[Tuple[np.ndarray, Genome]] = []
    skipped_invalid = 0
    for signs in design:
        genome = _design_genome(space, signs)
        if space.valid(genome):
            rows.append((signs, genome))
        else:
            skipped_invalid += 1
    if not rows:
        raise ValueError(
            "every screening corner violates the space constraints"
        )

    units = [(space.decode(genome), iteration) for _, genome in rows]
    if executor is not None:
        outcomes = executor.map_robust(units)
    else:
        outcomes = [run_scenario(scenario, it) for scenario, it in units]

    kept_signs: List[np.ndarray] = []
    vectors: List[Tuple[float, ...]] = []
    failed = 0
    for (signs, genome), (scenario, _), outcome in zip(rows, units, outcomes):
        if isinstance(outcome, ScenarioFailure):
            failed += 1
            log.warning("screening corner failed: %s", outcome)
            continue
        kept_signs.append(signs)
        vectors.append(evaluate_objectives(objectives, scenario, outcome))

    if not vectors:
        raise ValueError("every screening corner failed; nothing to estimate")

    sign_matrix = np.stack(kept_signs).astype(np.float64)
    value_matrix = np.asarray(vectors, dtype=np.float64)

    main_effects: Dict[str, Dict[str, float]] = {}
    interactions: Dict[str, Dict[Tuple[str, str], float]] = {}
    for column, objective in enumerate(objectives):
        y = value_matrix[:, column]
        main_effects[objective.name] = {
            name: _contrast(sign_matrix[:, f], y)
            for f, name in enumerate(names)
        }
        pairs: Dict[Tuple[str, str], float] = {}
        for a in range(len(names)):
            for b in range(a + 1, len(names)):
                product = sign_matrix[:, a] * sign_matrix[:, b]
                if _aliased_with_main(product, sign_matrix):
                    continue  # confounded with a main effect; not estimable
                pairs[(names[a], names[b])] = _contrast(product, y)
        interactions[objective.name] = pairs

    return ScreeningReport(
        parameters=names,
        objectives=tuple(obj.name for obj in objectives),
        runs=len(design),
        evaluations=len(vectors),
        skipped_invalid=skipped_invalid,
        failed=failed,
        main_effects=main_effects,
        interactions=interactions,
    )


def _contrast(signs: np.ndarray, values: np.ndarray) -> float:
    """High-minus-low mean difference along one ±1 column."""
    high = signs > 0
    low = ~high
    if not high.any() or not low.any():
        return 0.0
    return float(values[high].mean() - values[low].mean())


def _aliased_with_main(product: np.ndarray, sign_matrix: np.ndarray) -> bool:
    """Whether a product column coincides (±) with any main-effect column."""
    for f in range(sign_matrix.shape[1]):
        column = sign_matrix[:, f]
        if np.array_equal(product, column) or np.array_equal(product, -column):
            return True
    return False
