"""Objective definitions: what the search optimizes, and in which direction.

Each :class:`Objective` turns one ``(ScenarioConfig, ScenarioResult)``
pair into a scalar.  Internally every algorithm in ``repro.dse`` works
on *oriented* values — smaller is always better — so maximization
objectives are negated once, here, instead of sprinkling sign logic
through the Pareto machinery.  Reports show the raw (un-negated) value.

The stock objectives cover the axes the ROADMAP names:

``md_duty``
    NBTI duty cycle (%) of the most-degraded VC at the measured port —
    the paper's reliability headline; minimize.
``p95_latency`` / ``avg_latency``
    Tail / mean packet latency over the measured window; minimize.
``throughput``
    Delivered flits per node per cycle; maximize.
``area_overhead``
    Sensor-wise area overhead of the decoded router geometry as a
    fraction of the baseline NoC (:func:`repro.area.compute_overhead_report`
    — pure function of the configuration, no simulation); minimize.
``vth_shift_3y``
    NBTI lifetime proxy: the calibrated model's |ΔVth| (mV) after three
    years at the most-degraded duty cycle; minimize.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Sequence, Tuple

from repro.area import RouterGeometry, compute_overhead_report
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import ScenarioResult
from repro.nbti.constants import SECONDS_PER_YEAR
from repro.nbti.model import NBTIModel


@dataclasses.dataclass(frozen=True)
class Objective:
    """One optimization criterion.

    ``evaluate`` maps a completed scenario to the raw metric;
    ``maximize`` flips the orientation (internally everything is
    minimized).
    """

    name: str
    evaluate: Callable[[ScenarioConfig, ScenarioResult], float]
    maximize: bool = False

    def oriented(self, scenario: ScenarioConfig, result: ScenarioResult) -> float:
        """The minimize-convention value the search algorithms consume."""
        value = float(self.evaluate(scenario, result))
        return -value if self.maximize else value

    def raw(self, oriented_value: float) -> float:
        """Invert the orientation for human-facing reports."""
        return -oriented_value if self.maximize else oriented_value


def _md_duty(scenario: ScenarioConfig, result: ScenarioResult) -> float:
    return result.md_duty


def _p95_latency(scenario: ScenarioConfig, result: ScenarioResult) -> float:
    return result.net_stats.p95_packet_latency


def _avg_latency(scenario: ScenarioConfig, result: ScenarioResult) -> float:
    return result.net_stats.avg_packet_latency


def _throughput(scenario: ScenarioConfig, result: ScenarioResult) -> float:
    return result.net_stats.throughput_flits_per_node_cycle


def _area_overhead(scenario: ScenarioConfig, result: ScenarioResult) -> float:
    geometry = RouterGeometry(
        num_ports=4,
        num_vcs=scenario.num_vcs * scenario.num_vnets,
        buffer_depth=scenario.buffer_depth,
        flit_width_bits=scenario.flit_width_bits,
    )
    return compute_overhead_report(geometry).total_fraction_of_noc


#: One shared calibrated aging model (stateless; safe across scenarios).
_NBTI_MODEL = NBTIModel.calibrated()


def _vth_shift_3y(scenario: ScenarioConfig, result: ScenarioResult) -> float:
    alpha = min(max(result.md_duty / 100.0, 0.0), 1.0)
    return 1e3 * _NBTI_MODEL.delta_vth(alpha, 3.0 * SECONDS_PER_YEAR)


#: Registry of the stock objectives, keyed by CLI name.
OBJECTIVES: Dict[str, Objective] = {
    objective.name: objective
    for objective in (
        Objective("md_duty", _md_duty),
        Objective("p95_latency", _p95_latency),
        Objective("avg_latency", _avg_latency),
        Objective("throughput", _throughput, maximize=True),
        Objective("area_overhead", _area_overhead),
        Objective("vth_shift_3y", _vth_shift_3y),
    )
}


def resolve_objectives(names: Sequence[str]) -> Tuple[Objective, ...]:
    """Look up objectives by name, preserving order (CLI entry point)."""
    if not names:
        raise ValueError("at least one objective is required")
    missing = [name for name in names if name not in OBJECTIVES]
    if missing:
        known = ", ".join(sorted(OBJECTIVES))
        raise ValueError(f"unknown objective(s) {missing}; known: {known}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate objectives in {list(names)}")
    return tuple(OBJECTIVES[name] for name in names)


def evaluate_objectives(
    objectives: Sequence[Objective],
    scenario: ScenarioConfig,
    result: ScenarioResult,
) -> Tuple[float, ...]:
    """Oriented objective vector for one completed scenario."""
    return tuple(obj.oriented(scenario, result) for obj in objectives)
