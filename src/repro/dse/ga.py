"""Seeded NSGA-II loop: the evolutionary heart of ``repro-noc dse``.

The engine composes three existing pieces of machinery instead of
re-inventing them:

* **Evaluation** goes through
  :meth:`repro.experiments.parallel.Executor.map_robust` — so ``--jobs``
  parallelism, the on-disk result cache, the write-ahead scenario
  journal, crash retries and the distributed backend all apply to DSE
  evaluations exactly as they do to sweep campaigns.
* **Dedup** is the archive plus content-hash identity: a genome decodes
  to the same :class:`~repro.experiments.config.ScenarioConfig` every
  time, so the cache/journal key (:func:`~repro.dse.space.DesignSpace.
  scenario_hash`) of a re-proposed genome matches its first evaluation
  across generations, restarts and hosts.
* **Durability** is ``ga.state.json`` — written atomically after every
  generation with the same digest gating the campaign journals use.  A
  SIGTERM mid-generation leaves the partially evaluated generation in
  the WAL; on ``--resume`` the same generation is re-entered and every
  journaled unit is served without re-simulation.

Determinism: all randomness flows from
:func:`repro.nbti.process_variation.scenario_seed` with labeled streams
``("dse", seed, generation, purpose)``.  Nothing depends on wall-clock,
dict iteration order, or worker completion order, which is what makes
"same seed, byte-identical Pareto JSON" an invariant rather than a hope.
"""

from __future__ import annotations

import dataclasses
import random
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.objectives import Objective, evaluate_objectives
from repro.dse.pareto import (
    crowding_distance,
    non_dominated_front,
    non_dominated_sort,
)
from repro.dse.space import DesignSpace, DesignSpaceError, Genome
from repro.dse.surrogate import SurrogateBank
from repro.experiments.checkpoint import (
    CheckpointError,
    CheckpointManager,
    atomic_write_json,
    config_digest,
)
from repro.experiments.parallel import (
    CACHE_SCHEMA_VERSION,
    Executor,
    ScenarioFailure,
)
from repro.experiments.runner import run_scenario
from repro.nbti.process_variation import scenario_seed
from repro.telemetry.log import get_logger
from repro.telemetry.metrics import MetricsRegistry

log = get_logger("dse")

#: ``ga.state.json`` layout version (bump on incompatible change).
GA_STATE_SCHEMA = 1

GA_STATE_FILENAME = "ga.state.json"


@dataclasses.dataclass(frozen=True)
class GAConfig:
    """Knobs of the evolutionary search (all deterministic given ``seed``).

    ``mutation_rate`` of ``None`` selects the NSGA-II default of
    ``1/num_parameters``.  ``offspring_multiplier`` is how many
    candidates the GA *proposes* per population slot; the surrogate
    pre-screen sends only the predicted-best ``population`` of them to
    the simulator once its cross-validated R² clears
    ``surrogate_min_r2`` on every objective (before that, exactly
    ``population`` offspring are proposed — the model never gates blind).
    """

    population: int = 12
    generations: int = 8
    seed: int = 7
    crossover_rate: float = 0.9
    mutation_rate: Optional[float] = None
    tournament_size: int = 2
    offspring_multiplier: int = 3
    use_surrogate: bool = True
    surrogate_min_samples: int = 12
    surrogate_min_r2: float = 0.5

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError(f"population must be >= 2, got {self.population}")
        if self.generations < 1:
            raise ValueError(f"generations must be >= 1, got {self.generations}")
        if self.offspring_multiplier < 1:
            raise ValueError(
                f"offspring_multiplier must be >= 1, got {self.offspring_multiplier}"
            )
        if self.tournament_size < 1:
            raise ValueError(
                f"tournament_size must be >= 1, got {self.tournament_size}"
            )


class DSEEngine:
    """One design-space exploration campaign.

    Parameters
    ----------
    space, objectives:
        What is searched and what is optimized (oriented internally).
    config:
        The :class:`GAConfig`; its seed roots every RNG stream.
    executor:
        Optional :class:`~repro.experiments.parallel.Executor`.  When
        absent, evaluations run serially in-process (unit tests).
    checkpoint:
        Optional :class:`~repro.experiments.checkpoint.CheckpointManager`.
        Enables the WAL resume path and hosts ``ga.state.json`` in the
        same directory as the scenario journal.
    metrics:
        Optional registry receiving per-generation counters/gauges.
    """

    def __init__(
        self,
        space: DesignSpace,
        objectives: Sequence[Objective],
        config: GAConfig,
        executor: Optional[Executor] = None,
        checkpoint: Optional[CheckpointManager] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not objectives:
            raise ValueError("DSE needs at least one objective")
        self.space = space
        self.objectives = tuple(objectives)
        self.config = config
        self.executor = executor
        self.checkpoint = checkpoint
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: genome -> oriented objective vector, for every evaluated point.
        self.archive: Dict[Genome, Tuple[float, ...]] = {}
        #: Proposal/evaluation accounting (feeds BENCH_dse.json).
        self.counters: Dict[str, int] = {
            "proposed": 0,          # candidate genomes the GA generated
            "archive_hits": 0,      # proposals already evaluated (dedup)
            "surrogate_skipped": 0,  # proposals pruned by the pre-screen
            "simulated": 0,         # units actually sent to the harness
            "failed": 0,            # evaluations lost to ScenarioFailure
            "invalid": 0,           # offspring rejected before evaluation
            "generations_done": 0,
        }
        self.surrogate_scores: Dict[str, float] = {}
        self.surrogate_active = False
        self._population: List[Genome] = []
        self._next_generation = 0
        self._rate = (
            config.mutation_rate
            if config.mutation_rate is not None
            else 1.0 / len(space.parameters)
        )

    # -- identity -------------------------------------------------------
    def digest(self) -> str:
        """Content digest gating state-file compatibility on resume."""
        return config_digest(
            {
                "space": self.space.describe(),
                "objectives": [
                    {"name": o.name, "maximize": o.maximize} for o in self.objectives
                ],
                "ga": dataclasses.asdict(self.config),
                "cache_schema": CACHE_SCHEMA_VERSION,
            }
        )

    @property
    def state_path(self) -> Optional[Path]:
        if self.checkpoint is None:
            return None
        return self.checkpoint.directory / GA_STATE_FILENAME

    # -- RNG streams ----------------------------------------------------
    def _rng(self, generation: int, purpose: str) -> random.Random:
        """A labeled, re-derivable RNG stream (resume-stable)."""
        return random.Random(
            scenario_seed("dse", self.config.seed, generation, purpose)
        )

    # -- durable state --------------------------------------------------
    def _write_state(self, status: str) -> None:
        path = self.state_path
        if path is None:
            return
        blob = {
            "schema": GA_STATE_SCHEMA,
            "digest": self.digest(),
            "status": status,
            "next_generation": self._next_generation,
            "population": [list(g) for g in self._population],
            "archive": [
                {"genome": list(genome), "objectives": list(values)}
                for genome, values in sorted(self.archive.items())
            ],
            "counters": dict(sorted(self.counters.items())),
            "surrogate": {
                "active": self.surrogate_active,
                "scores": dict(sorted(self.surrogate_scores.items())),
            },
        }
        atomic_write_json(path, blob)

    def _load_state(self) -> bool:
        """Adopt a prior run's state; False when none exists."""
        path = self.state_path
        if path is None or not path.exists():
            return False
        import json

        try:
            blob = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable GA state {path}: {exc}") from exc
        if blob.get("schema") != GA_STATE_SCHEMA:
            raise CheckpointError(
                f"GA state schema {blob.get('schema')!r} != {GA_STATE_SCHEMA} in {path}"
            )
        if blob.get("digest") != self.digest():
            raise CheckpointError(
                f"GA state in {path} was written for a different space/"
                "config (digest mismatch); use a fresh --checkpoint-dir"
            )
        self._next_generation = int(blob["next_generation"])
        self._population = [tuple(g) for g in blob["population"]]
        self.archive = {
            tuple(entry["genome"]): tuple(entry["objectives"])
            for entry in blob["archive"]
        }
        for key, value in blob.get("counters", {}).items():
            self.counters[key] = int(value)
        surrogate = blob.get("surrogate", {})
        self.surrogate_active = bool(surrogate.get("active", False))
        self.surrogate_scores = {
            k: float(v) for k, v in surrogate.get("scores", {}).items()
        }
        return True

    # -- evaluation -----------------------------------------------------
    def _evaluate(self, genomes: Sequence[Genome]) -> None:
        """Fill the archive for every genome not already in it.

        Runs through the executor when one is attached (cache, journal,
        pool, retries); failures are logged, counted, and leave the
        genome unevaluated (it simply never enters the archive).
        """
        fresh: List[Genome] = []
        seen = set()
        for genome in genomes:
            if genome in self.archive:
                self.counters["archive_hits"] += 1
            elif genome in seen:
                self.counters["archive_hits"] += 1
            else:
                seen.add(genome)
                fresh.append(genome)
        if not fresh:
            return
        units = [(self.space.decode(genome), 0) for genome in fresh]
        self.counters["simulated"] += len(units)
        if self.executor is not None:
            outcomes = self.executor.map_robust(units)
        else:
            outcomes = [run_scenario(scenario, it) for scenario, it in units]
        for genome, (scenario, _), outcome in zip(fresh, units, outcomes):
            if isinstance(outcome, ScenarioFailure):
                self.counters["failed"] += 1
                log.warning("evaluation failed for %s: %s",
                            self.space.values(genome), outcome)
                continue
            self.archive[genome] = evaluate_objectives(
                self.objectives, scenario, outcome
            )

    # -- GA operators ---------------------------------------------------
    def _initial_population(self) -> List[Genome]:
        """Seeded start: both screening corners (when valid) + uniform
        random valid genomes, distinct while the space allows it."""
        rng = self._rng(0, "init")
        population: List[Genome] = []
        for corner in (self.space.corner_genome(False), self.space.corner_genome(True)):
            if self.space.valid(corner) and corner not in population:
                population.append(corner)
        attempts = 0
        while len(population) < self.config.population:
            genome = self.space.random_genome(rng)
            attempts += 1
            if genome not in population or attempts > 64:
                population.append(genome)
        return population[: self.config.population]

    def _ranked_pool(
        self, genomes: Sequence[Genome]
    ) -> List[Tuple[Genome, int, float]]:
        """(genome, front rank, crowding distance) for evaluated genomes."""
        evaluated = [g for g in genomes if g in self.archive]
        points = [self.archive[g] for g in evaluated]
        ranked: List[Tuple[Genome, int, float]] = []
        for rank, front in enumerate(non_dominated_sort(points)):
            crowd = crowding_distance([points[i] for i in front])
            for position, index in enumerate(front):
                ranked.append((evaluated[index], rank, crowd[position]))
        return ranked

    def _tournament(
        self, rng: random.Random, pool: Sequence[Tuple[Genome, int, float]]
    ) -> Genome:
        """Binary (k-ary) tournament on (rank, crowding)."""
        best = None
        for _ in range(self.config.tournament_size):
            index = rng.randrange(len(pool))
            candidate = pool[index]
            if best is None or _fitter(candidate, best):
                best = candidate
        return best[0]

    def _crossover(self, rng: random.Random, a: Genome, b: Genome) -> Genome:
        if rng.random() >= self.config.crossover_rate:
            return a
        return tuple(
            (x if rng.random() < 0.5 else y) for x, y in zip(a, b)
        )

    def _mutate(self, rng: random.Random, genome: Genome) -> Genome:
        genes = list(genome)
        for position, parameter in enumerate(self.space.parameters):
            if len(parameter) > 1 and rng.random() < self._rate:
                alternatives = [
                    i for i in range(len(parameter)) if i != genes[position]
                ]
                genes[position] = alternatives[rng.randrange(len(alternatives))]
        return tuple(genes)

    def _offspring(
        self,
        generation: int,
        pool: Sequence[Tuple[Genome, int, float]],
        count: int,
    ) -> List[Genome]:
        """``count`` valid offspring via tournament + crossover + mutation."""
        rng = self._rng(generation, "vary")
        offspring: List[Genome] = []
        attempts = 0
        limit = max(64, count * 32)
        while len(offspring) < count and attempts < limit:
            attempts += 1
            mother = self._tournament(rng, pool)
            father = self._tournament(rng, pool)
            child = self._mutate(rng, self._crossover(rng, mother, father))
            if self.space.valid(child):
                offspring.append(child)
            else:
                self.counters["invalid"] += 1
        while len(offspring) < count:
            # Constraint-heavy spaces: fall back to rejection sampling.
            offspring.append(self.space.random_genome(rng))
        return offspring

    def _surrogate_prescreen(
        self, generation: int, candidates: List[Genome]
    ) -> Tuple[List[Genome], bool]:
        """Keep the predicted-best ``population`` candidates.

        Returns ``(chosen, screened)``.  ``screened`` is False when the
        model bank was not consulted (disabled, too few samples, or
        unreliable) — the caller then counts only the evaluated prefix
        as proposed, so the savings metric never credits candidates that
        were merely truncated rather than actually model-pruned.
        """
        keep = self.config.population
        if len(candidates) <= keep:
            return candidates, False
        # Sorted, not insertion, order: a resumed run restores the
        # archive from ga.state.json in sorted order, and both the CV
        # fold assignment and float summation are order-sensitive —
        # canonicalizing keeps live and resumed fits bit-identical.
        archive_genomes = sorted(self.archive)
        if (
            not self.config.use_surrogate
            or len(archive_genomes) < self.config.surrogate_min_samples
        ):
            self.surrogate_active = False
            return candidates[:keep], False
        bank = SurrogateBank(
            self.space,
            [o.name for o in self.objectives],
            min_r2=self.config.surrogate_min_r2,
        )
        bank.fit(archive_genomes, [self.archive[g] for g in archive_genomes])
        self.surrogate_scores = bank.scores()
        self.surrogate_active = bank.reliable
        if not bank.reliable:
            log.info(
                "generation %d: surrogate unreliable (%s); evaluating the "
                "leading %d candidates unscreened",
                generation,
                ", ".join(
                    f"{n}={v:.2f}" for n, v in sorted(self.surrogate_scores.items())
                ),
                keep,
            )
            return candidates[:keep], False
        predicted = bank.predict(candidates)
        order: List[int] = []
        for front in non_dominated_sort(predicted):
            crowd = crowding_distance([predicted[i] for i in front])
            order.extend(
                index
                for index, _ in sorted(
                    zip(front, crowd), key=lambda item: (-item[1], item[0])
                )
            )
        chosen = sorted(order[:keep])
        self.counters["surrogate_skipped"] += len(candidates) - keep
        return [candidates[i] for i in chosen], True

    def _select_next(self, parents: Sequence[Genome], offspring: Sequence[Genome]) -> List[Genome]:
        """NSGA-II environmental selection over parents + offspring."""
        combined: List[Genome] = []
        for genome in list(parents) + list(offspring):
            if genome in self.archive and genome not in combined:
                combined.append(genome)
        points = [self.archive[g] for g in combined]
        survivors: List[Genome] = []
        for front in non_dominated_sort(points):
            if len(survivors) + len(front) <= self.config.population:
                survivors.extend(combined[i] for i in front)
            else:
                crowd = crowding_distance([points[i] for i in front])
                by_crowding = sorted(
                    zip(front, crowd), key=lambda item: (-item[1], item[0])
                )
                room = self.config.population - len(survivors)
                survivors.extend(
                    combined[i] for i, _ in by_crowding[:room]
                )
            if len(survivors) >= self.config.population:
                break
        return survivors

    # -- the loop -------------------------------------------------------
    def run(self, resume: bool = False) -> "DSEEngine":
        """Execute (or continue) the campaign.

        With ``resume`` and an existing compatible ``ga.state.json``,
        the loop restarts at the first unfinished generation; evaluation
        of that generation replays journaled units for free.  Raises
        :class:`~repro.experiments.checkpoint.CampaignInterrupted` when
        a drain request (SIGINT/SIGTERM) stops the campaign early —
        after durably writing the interrupted state.
        """
        from repro.experiments.checkpoint import CampaignInterrupted

        resumed = resume and self._load_state()
        if resumed:
            log.info(
                "resuming DSE at generation %d (%d archived evaluations)",
                self._next_generation, len(self.archive),
            )
        else:
            self._population = self._initial_population()
            self._next_generation = 0

        snapshot = None
        try:
            while self._next_generation < self.config.generations:
                generation = self._next_generation
                # Generation-boundary snapshot: an interrupt rolls the
                # accounting back to the last completed generation, so a
                # resumed run replays the identical counter sequence and
                # the final report stays byte-identical.
                snapshot = (
                    dict(self.counters),
                    dict(self.surrogate_scores),
                    self.surrogate_active,
                )
                self._run_generation(generation)
                self.counters["generations_done"] = generation + 1
                self._next_generation = generation + 1
                self._write_state("running")
        except CampaignInterrupted:
            if snapshot is not None:
                self.counters, self.surrogate_scores, self.surrogate_active = snapshot
            self._write_state("interrupted")
            raise
        self._write_state("complete")
        return self

    def _run_generation(self, generation: int) -> None:
        if generation == 0:
            self.counters["proposed"] += len(self._population)
            self._evaluate(self._population)
            survivors = [g for g in self._population if g in self.archive]
        else:
            pool = self._ranked_pool(self._population)
            if not pool:
                raise DesignSpaceError(
                    "no evaluated genomes survive generation "
                    f"{generation - 1}; cannot select parents"
                )
            want = self.config.population * (
                self.config.offspring_multiplier
                if self.config.use_surrogate
                else 1
            )
            candidates = self._offspring(generation, pool, want)
            chosen, screened = self._surrogate_prescreen(generation, candidates)
            self.counters["proposed"] += (
                len(candidates) if screened else len(chosen)
            )
            self._evaluate(chosen)
            survivors = self._select_next(self._population, chosen)
        if not survivors:
            raise DesignSpaceError(
                f"generation {generation}: every evaluation failed"
            )
        self._population = survivors
        self._emit_generation(generation)

    def _emit_generation(self, generation: int) -> None:
        """Per-generation telemetry: one log line + registry instruments."""
        points = [self.archive[g] for g in self._population if g in self.archive]
        front_size = len(non_dominated_front(points)) if points else 0
        self.metrics.inc("dse.generations")
        self.metrics.set("dse.archive_size", float(len(self.archive)))
        self.metrics.set("dse.front_size", float(front_size))
        self.metrics.set(
            "dse.simulated_total", float(self.counters["simulated"])
        )
        self.metrics.set(
            "dse.surrogate_skipped_total",
            float(self.counters["surrogate_skipped"]),
        )
        log.info(
            "generation %d: %d in population, front=%d, archive=%d, "
            "simulated=%d, dedup=%d, surrogate_skipped=%d%s",
            generation,
            len(self._population),
            front_size,
            len(self.archive),
            self.counters["simulated"],
            self.counters["archive_hits"],
            self.counters["surrogate_skipped"],
            (
                " (model R²: "
                + ", ".join(
                    f"{n}={v:.2f}" for n, v in sorted(self.surrogate_scores.items())
                )
                + ")"
                if self.surrogate_scores
                else ""
            ),
        )

    # -- results --------------------------------------------------------
    @property
    def population(self) -> List[Genome]:
        return list(self._population)

    def evaluations_saved(self) -> Dict[str, float]:
        """The BENCH_dse accounting: how much simulator time the archive
        dedup + surrogate pre-screen avoided, vs evaluating every
        proposed genome."""
        proposed = self.counters["proposed"]
        simulated = self.counters["simulated"]
        saved = max(proposed - simulated, 0)
        return {
            "proposed": float(proposed),
            "simulated": float(simulated),
            "saved": float(saved),
            "saved_fraction": (saved / proposed) if proposed else 0.0,
        }


def _fitter(a: Tuple[Genome, int, float], b: Tuple[Genome, int, float]) -> bool:
    """NSGA-II crowded-comparison: lower rank, then larger crowding."""
    if a[1] != b[1]:
        return a[1] < b[1]
    return a[2] > b[2]


def verify_ga_state(path) -> Tuple[bool, str]:
    """Structural health check of a ``ga.state.json`` file.

    Used by ``repro-noc cache verify --checkpoint-dir`` so a DSE
    checkpoint directory gets the same rot-scanning story as the
    scenario journal it sits next to.  Returns ``(ok, summary line)``.
    """
    import json

    path = Path(path)
    try:
        blob = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return False, f"{path.name} unreadable: {exc}"
    if not isinstance(blob, dict) or blob.get("schema") != GA_STATE_SCHEMA:
        return False, (
            f"{path.name} schema {blob.get('schema')!r} "
            f"(expected {GA_STATE_SCHEMA})"
        )
    missing = [
        key
        for key in ("digest", "status", "next_generation", "population", "archive")
        if key not in blob
    ]
    if missing:
        return False, f"{path.name} missing key(s): {', '.join(missing)}"
    return True, (
        f"{path.name} OK: status={blob['status']}, "
        f"next_generation={blob['next_generation']}, "
        f"archive={len(blob['archive'])} evaluation(s)"
    )
