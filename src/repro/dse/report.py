"""Pareto reports: the durable, human- and machine-readable DSE output.

:class:`DSEResult` snapshots a finished (or interrupted) campaign —
archive, exact non-dominated front, hypervolume, knee pick, savings
accounting — and serializes it three ways:

* ``to_json()`` — canonical JSON (sorted keys, fixed separators, LF
  newline).  Byte-identical across runs with the same seed; this string
  is what the determinism regression test compares.
* ``write_csv()`` — one row per front member for spreadsheet users.
* ``format()`` — the fixed-width table ``repro-noc dse report`` prints.

Raw (un-negated) objective values appear in every output; orientation
is an internal convention that must not leak into reports.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.objectives import Objective
from repro.dse.pareto import (
    hypervolume,
    knee_point,
    non_dominated_front,
    reference_point,
)
from repro.dse.space import DesignSpace, Genome
from repro.experiments.checkpoint import atomic_write_text

#: Report layout version (bump on incompatible change).
DSE_REPORT_SCHEMA = 1


@dataclasses.dataclass
class FrontMember:
    """One Pareto-optimal design point, fully described."""

    genome: Tuple[int, ...]
    values: Dict[str, object]          # parameter name -> level value
    objectives: Dict[str, float]       # objective name -> raw value
    knee: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "genome": list(self.genome),
            "values": {k: self.values[k] for k in sorted(self.values)},
            "objectives": {
                k: self.objectives[k] for k in sorted(self.objectives)
            },
            "knee": self.knee,
        }


@dataclasses.dataclass
class DSEResult:
    """Everything a consumer needs from one exploration campaign."""

    objective_names: Tuple[str, ...]
    front: List[FrontMember]
    hypervolume: float
    evaluated: int
    space_size: int
    counters: Dict[str, int]
    savings: Dict[str, float]
    surrogate_scores: Dict[str, float]
    status: str = "complete"

    @classmethod
    def from_archive(
        cls,
        space: DesignSpace,
        objectives: Sequence[Objective],
        archive: Dict[Genome, Tuple[float, ...]],
        counters: Optional[Dict[str, int]] = None,
        savings: Optional[Dict[str, float]] = None,
        surrogate_scores: Optional[Dict[str, float]] = None,
        status: str = "complete",
    ) -> "DSEResult":
        """Distill an engine archive into the report.

        The front is computed over *every* evaluated genome (not just
        the final population) in sorted-genome order, so the report is a
        pure function of the archive contents.
        """
        if not archive:
            raise ValueError("cannot report on an empty archive")
        genomes = sorted(archive)
        points = [archive[g] for g in genomes]
        front_indices = non_dominated_front(points)
        front_points = [points[i] for i in front_indices]
        knee = knee_point(front_points)
        members: List[FrontMember] = []
        for position, index in enumerate(front_indices):
            genome = genomes[index]
            oriented = points[index]
            members.append(
                FrontMember(
                    genome=genome,
                    values=space.values(genome),
                    objectives={
                        objective.name: objective.raw(value)
                        for objective, value in zip(objectives, oriented)
                    },
                    knee=(position == knee),
                )
            )
        volume = hypervolume(front_points, reference_point(points))
        return cls(
            objective_names=tuple(o.name for o in objectives),
            front=members,
            hypervolume=volume,
            evaluated=len(archive),
            space_size=space.size,
            counters=dict(counters or {}),
            savings=dict(savings or {}),
            surrogate_scores=dict(surrogate_scores or {}),
            status=status,
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": DSE_REPORT_SCHEMA,
            "status": self.status,
            "objectives": list(self.objective_names),
            "front": [member.to_dict() for member in self.front],
            "hypervolume": self.hypervolume,
            "evaluated": self.evaluated,
            "space_size": self.space_size,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "savings": {k: self.savings[k] for k in sorted(self.savings)},
            "surrogate_scores": {
                k: self.surrogate_scores[k]
                for k in sorted(self.surrogate_scores)
            },
        }

    def to_json(self) -> str:
        """Canonical JSON — the byte-identity surface for determinism."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ) + "\n"

    def write_json(self, path) -> None:
        atomic_write_text(Path(path), self.to_json())

    def write_csv(self, path) -> None:
        """One CSV row per front member (parameters, then objectives)."""
        parameter_names = sorted(
            {name for member in self.front for name in member.values}
        )
        header = parameter_names + list(self.objective_names) + ["knee"]
        lines = [",".join(header)]
        for member in self.front:
            row = [str(member.values.get(name, "")) for name in parameter_names]
            row.extend(
                f"{member.objectives[name]:.6g}" for name in self.objective_names
            )
            row.append("1" if member.knee else "0")
            lines.append(",".join(row))
        atomic_write_text(Path(path), "\n".join(lines) + "\n")

    @classmethod
    def from_dict(cls, blob: Dict[str, object]) -> "DSEResult":
        """Rehydrate a report written by :meth:`write_json`."""
        if blob.get("schema") != DSE_REPORT_SCHEMA:
            raise ValueError(
                f"unsupported DSE report schema {blob.get('schema')!r} "
                f"(expected {DSE_REPORT_SCHEMA})"
            )
        members = [
            FrontMember(
                genome=tuple(entry["genome"]),
                values=dict(entry["values"]),
                objectives={
                    k: float(v) for k, v in entry["objectives"].items()
                },
                knee=bool(entry.get("knee", False)),
            )
            for entry in blob["front"]
        ]
        return cls(
            objective_names=tuple(blob["objectives"]),
            front=members,
            hypervolume=float(blob["hypervolume"]),
            evaluated=int(blob["evaluated"]),
            space_size=int(blob["space_size"]),
            counters={k: int(v) for k, v in blob.get("counters", {}).items()},
            savings={k: float(v) for k, v in blob.get("savings", {}).items()},
            surrogate_scores={
                k: float(v)
                for k, v in blob.get("surrogate_scores", {}).items()
            },
            status=str(blob.get("status", "complete")),
        )

    @classmethod
    def load(cls, path) -> "DSEResult":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # -- presentation ---------------------------------------------------
    def format(self) -> str:
        """The fixed-width table ``repro-noc dse report`` prints."""
        from repro.experiments.report import render_table

        parameter_names = sorted(
            {name for member in self.front for name in member.values}
        )
        headers = parameter_names + list(self.objective_names) + ["pick"]
        rows = []
        for member in self.front:
            row = [str(member.values.get(name, "")) for name in parameter_names]
            row.extend(
                f"{member.objectives[name]:.4g}" for name in self.objective_names
            )
            row.append("knee" if member.knee else "")
            rows.append(row)
        coverage = (
            f"{self.evaluated}/{self.space_size} design points evaluated"
            if self.space_size
            else f"{self.evaluated} design points evaluated"
        )
        title = (
            f"Pareto front ({len(self.front)} point(s), "
            f"hypervolume {self.hypervolume:.4g}) — {coverage}"
        )
        table = render_table(headers, rows, title=title)
        extras: List[str] = []
        if self.savings.get("proposed"):
            extras.append(
                f"evaluations saved: {self.savings['saved']:.0f}"
                f"/{self.savings['proposed']:.0f} "
                f"({100.0 * self.savings['saved_fraction']:.0f}%)"
            )
        if self.surrogate_scores:
            scores = ", ".join(
                f"{name}={value:.2f}"
                for name, value in sorted(self.surrogate_scores.items())
            )
            extras.append(f"surrogate CV R²: {scores}")
        if self.status != "complete":
            extras.append(f"status: {self.status}")
        if extras:
            table += "\n" + "\n".join(extras)
        return table
