"""Declarative design spaces: parameters, genomes and scenario decoding.

A :class:`DesignSpace` is the contract between the search algorithms
(factorial screening, the NSGA-II loop) and the simulation harness: it
maps *genomes* — tuples of per-parameter level indices — to fully
validated :class:`~repro.experiments.config.ScenarioConfig` objects.

Design decisions that the rest of ``repro.dse`` leans on:

* **Every parameter is a finite, ordered tuple of levels.**  Integer
  ranges (optionally log-spaced) are discretized at construction, so a
  genome is always a small tuple of indices: trivially hashable,
  JSON-serializable (checkpointable), and directly usable by two-level
  factorial designs (low = first level, high = last level).
* **Genome identity == scenario identity.**  ``decode`` goes through
  :meth:`ScenarioConfig.replace`, and :meth:`scenario_hash` is the same
  content hash (:func:`repro.experiments.parallel.cache_key`) the
  result cache and the write-ahead journal key on — so a genome
  re-proposed in a later generation (or a resumed run) dedups against
  every previously computed evaluation for free.
* **Validity is checked before simulation.**  ``valid`` rejects genomes
  whose decoded scenario fails dataclass validation (e.g. a zero-flit
  buffer depth), whose topology cannot be built for the node count, or
  that violate a user constraint (e.g. vnet/VC compatibility) — the GA
  never wastes a simulator slot on a broken design point.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.experiments.config import ScenarioConfig
from repro.noc.topology import build_topology

#: One design point: a per-parameter level-index tuple.
Genome = Tuple[int, ...]

#: A validity constraint on the decoded scenario.
Constraint = Callable[[ScenarioConfig], bool]


class DesignSpaceError(ValueError):
    """A malformed parameter, genome or design-space description."""


@dataclasses.dataclass(frozen=True)
class Parameter:
    """One axis of the design space: a named, ordered set of levels.

    ``name`` must be a :class:`ScenarioConfig` field; ``levels`` holds
    the admissible values in search order.  ``numeric`` marks axes whose
    levels carry magnitude (int ranges, rates) — surrogate models encode
    those as scaled scalars and everything else one-hot.
    """

    name: str
    levels: Tuple[object, ...]
    numeric: bool = True

    def __post_init__(self) -> None:
        if not self.levels:
            raise DesignSpaceError(f"parameter {self.name!r} has no levels")
        if len(set(map(repr, self.levels))) != len(self.levels):
            raise DesignSpaceError(f"parameter {self.name!r} has duplicate levels")
        if self.name not in _SCENARIO_FIELDS:
            known = ", ".join(sorted(_SCENARIO_FIELDS))
            raise DesignSpaceError(
                f"parameter {self.name!r} is not a ScenarioConfig field "
                f"(known: {known})"
            )

    # -- constructors ---------------------------------------------------
    @classmethod
    def int_range(
        cls, name: str, low: int, high: int,
        count: Optional[int] = None, log: bool = False,
    ) -> "Parameter":
        """Discretized integer range ``[low, high]``.

        ``count`` bounds the number of levels (default: every integer up
        to 16 levels, else 16 evenly spaced); ``log`` spaces the levels
        geometrically — the right scale for periods spanning decades
        (rotation period 16..4096).
        """
        if low > high:
            raise DesignSpaceError(f"{name}: empty range [{low}, {high}]")
        if count is None:
            count = min(high - low + 1, 16)
        if count < 1:
            raise DesignSpaceError(f"{name}: count must be >= 1, got {count}")
        if count == 1 or low == high:
            return cls(name, (low,))
        if log:
            if low <= 0:
                raise DesignSpaceError(f"{name}: log scale needs low > 0, got {low}")
            ratio = (high / low) ** (1.0 / (count - 1))
            raw = [low * ratio ** i for i in range(count)]
        else:
            step = (high - low) / (count - 1)
            raw = [low + step * i for i in range(count)]
        levels: List[int] = []
        for value in raw:
            level = min(max(int(round(value)), low), high)
            if not levels or level != levels[-1]:
                levels.append(level)
        return cls(name, tuple(levels))

    @classmethod
    def categorical(cls, name: str, choices: Sequence[object]) -> "Parameter":
        """Unordered choice axis (policies, topologies, traffic names)."""
        return cls(name, tuple(choices), numeric=False)

    # -- genome helpers -------------------------------------------------
    def __len__(self) -> int:
        return len(self.levels)

    def value(self, index: int) -> object:
        if not 0 <= index < len(self.levels):
            raise DesignSpaceError(
                f"{self.name}: level index {index} out of range "
                f"(have {len(self.levels)} levels)"
            )
        return self.levels[index]

    def describe(self) -> Dict[str, object]:
        """JSON-ready description (digests, checkpoints, reports)."""
        return {
            "name": self.name,
            "levels": [repr(level) for level in self.levels],
            "numeric": self.numeric,
        }


_SCENARIO_FIELDS = {field.name for field in dataclasses.fields(ScenarioConfig)}


class DesignSpace:
    """The searchable configuration space around a base scenario.

    Parameters
    ----------
    parameters:
        The axes being searched; every other :class:`ScenarioConfig`
        field is frozen at its ``base`` value.
    base:
        Scenario providing the frozen fields (cycles, warmup, traffic,
        measurement point, seed...).
    constraints:
        Extra validity predicates on the decoded scenario.  Each is a
        callable ``ScenarioConfig -> bool``; built-in structural checks
        (dataclass validation, topology buildability) always apply.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        base: Optional[ScenarioConfig] = None,
        constraints: Sequence[Constraint] = (),
    ) -> None:
        if not parameters:
            raise DesignSpaceError("a design space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise DesignSpaceError(f"duplicate parameter names: {names}")
        self.parameters: Tuple[Parameter, ...] = tuple(parameters)
        self.base = base if base is not None else ScenarioConfig()
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)

    # -- size / enumeration --------------------------------------------
    @property
    def size(self) -> int:
        """Total design points (valid or not)."""
        return math.prod(len(p) for p in self.parameters)

    def enumerate_genomes(self) -> Iterator[Genome]:
        """Every genome in deterministic lexicographic order."""
        def recurse(prefix: Tuple[int, ...], rest: Tuple[Parameter, ...]):
            if not rest:
                yield prefix
                return
            for index in range(len(rest[0])):
                yield from recurse(prefix + (index,), rest[1:])

        yield from recurse((), self.parameters)

    # -- decoding -------------------------------------------------------
    def decode(self, genome: Genome) -> ScenarioConfig:
        """The scenario a genome denotes (validated copy of ``base``)."""
        if len(genome) != len(self.parameters):
            raise DesignSpaceError(
                f"genome has {len(genome)} genes, space has "
                f"{len(self.parameters)} parameters"
            )
        overrides = {
            parameter.name: parameter.value(index)
            for parameter, index in zip(self.parameters, genome)
        }
        return self.base.replace(**overrides)

    def values(self, genome: Genome) -> Dict[str, object]:
        """``{parameter name: level value}`` for reports and logs."""
        return {
            parameter.name: parameter.value(index)
            for parameter, index in zip(self.parameters, genome)
        }

    def valid(self, genome: Genome) -> bool:
        """Whether a genome decodes to a buildable, constraint-passing
        scenario (checked *before* any simulator time is spent)."""
        try:
            scenario = self.decode(genome)
            scenario.noc_config()  # NoCConfig-level validation
            build_topology(scenario.topology, scenario.num_nodes)
        except (ValueError, TypeError):
            return False
        return all(constraint(scenario) for constraint in self.constraints)

    def scenario_hash(self, genome: Genome, iteration: int = 0) -> str:
        """The content hash the cache/journal key evaluations by.

        Identical genomes — across generations, restarts and hosts —
        produce identical hashes, which is what makes cross-generation
        and cross-``--resume`` dedup exact rather than heuristic.
        """
        from repro.experiments.parallel import cache_key

        return cache_key(self.decode(genome), iteration)

    # -- sampling -------------------------------------------------------
    def random_genome(self, rng, max_attempts: int = 256) -> Genome:
        """One valid genome drawn uniformly (rejection-sampled)."""
        for _ in range(max_attempts):
            genome = tuple(rng.randrange(len(p)) for p in self.parameters)
            if self.valid(genome):
                return genome
        raise DesignSpaceError(
            f"no valid genome found in {max_attempts} draws; the "
            "constraints may exclude the whole space"
        )

    def corner_genome(self, high: bool) -> Genome:
        """The all-low / all-high corner (two-level screening anchors)."""
        return tuple((len(p) - 1 if high else 0) for p in self.parameters)

    # -- descriptions ---------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """JSON-ready structural description.

        Feeds the GA checkpoint digest and the journal meta, so a
        checkpoint directory can never silently serve a *different*
        space (same gating the campaign journals already enforce).
        """
        return {
            "parameters": [p.describe() for p in self.parameters],
            "base": _jsonable(dataclasses.asdict(self.base)),
            "constraints": len(self.constraints),
        }


def _jsonable(value):
    """Recursively coerce a scenario dict into JSON-stable primitives."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def default_space(base: Optional[ScenarioConfig] = None) -> DesignSpace:
    """The stock search space: every knob the paper fixes by hand.

    {policy, rotation period, sensor sample period, wake latency,
    buffer depth, VC count, stress regime} around the paper's Table I
    design point — the question the ROADMAP's north star asks ("which
    configuration should I build?") rather than the one the paper
    answers ("how good is this one?").  The regime axis explores how
    robust a design point is to pre-aged parts and joint NBTI+PBTI
    stress; the rejuvenation policy trades throughput inside scheduled
    deep-recovery windows for extra recovery time.
    """
    return DesignSpace(
        parameters=(
            Parameter.categorical(
                "policy", ("rr-no-sensor", "sensor-wise", "rejuvenation")
            ),
            Parameter("rotation_period", (16, 64, 256)),
            Parameter("sensor_sample_period", (256, 1024)),
            Parameter("wake_latency", (1, 2, 4)),
            Parameter("buffer_depth", (2, 4, 8)),
            Parameter("num_vcs", (2, 4)),
            Parameter.categorical("regime", ("fresh", "burn-in", "nbti-pbti")),
        ),
        base=base,
    )


def parse_param_spec(spec: str) -> Parameter:
    """Build a parameter from a CLI ``NAME=V1,V2,...`` specification.

    Values are coerced with the :class:`ScenarioConfig` field type
    (int fields get ints, floats floats, everything else strings);
    string-typed axes are categorical.
    """
    name, _, tail = spec.partition("=")
    name = name.strip()
    if not tail:
        raise DesignSpaceError(
            f"bad --param {spec!r}: expected NAME=V1,V2,..."
        )
    field_types = {
        field.name: field.type for field in dataclasses.fields(ScenarioConfig)
    }
    if name not in field_types:
        known = ", ".join(sorted(field_types))
        raise DesignSpaceError(
            f"--param {name!r} is not a ScenarioConfig field (known: {known})"
        )
    raw_values = [v.strip() for v in tail.split(",") if v.strip()]
    if not raw_values:
        raise DesignSpaceError(f"bad --param {spec!r}: no values")
    kind = str(field_types[name])
    if "int" in kind:
        return Parameter(name, tuple(int(v) for v in raw_values))
    if "float" in kind:
        return Parameter(name, tuple(float(v) for v in raw_values))
    return Parameter.categorical(name, tuple(raw_values))
