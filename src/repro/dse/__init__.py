"""Design-space exploration: screening → surrogates → seeded GA → Pareto.

The ``repro-noc dse`` pipeline answers the question the paper leaves
open — *which* sensor-wise configuration to build — by searching the
configuration space around the paper's design point:

1. :mod:`repro.dse.space` — declarative parameter spaces whose genomes
   decode to validated scenarios with cache-stable identity;
2. :mod:`repro.dse.screening` — two-level fractional-factorial designs
   that rank parameter effects from a handful of corner runs;
3. :mod:`repro.dse.surrogate` — NumPy-only ridge-regression models that
   pre-screen GA offspring once cross-validation trusts them;
4. :mod:`repro.dse.ga` — the seeded NSGA-II loop, checkpointed per
   generation and evaluated through the campaign executor;
5. :mod:`repro.dse.pareto` / :mod:`repro.dse.report` — exact fronts,
   hypervolume, knee-point pick, canonical JSON/CSV reports.
"""

from repro.dse.ga import GA_STATE_FILENAME, DSEEngine, GAConfig
from repro.dse.objectives import (
    OBJECTIVES,
    Objective,
    evaluate_objectives,
    resolve_objectives,
)
from repro.dse.pareto import (
    crowding_distance,
    dominates,
    hypervolume,
    knee_point,
    non_dominated_front,
    non_dominated_sort,
    reference_point,
)
from repro.dse.report import DSEResult, FrontMember
from repro.dse.screening import ScreeningReport, run_screening, two_level_design
from repro.dse.space import (
    DesignSpace,
    DesignSpaceError,
    Genome,
    Parameter,
    default_space,
    parse_param_spec,
)
from repro.dse.surrogate import RidgeSurrogate, SurrogateBank

__all__ = [
    "DSEEngine",
    "DSEResult",
    "DesignSpace",
    "DesignSpaceError",
    "FrontMember",
    "GAConfig",
    "GA_STATE_FILENAME",
    "Genome",
    "OBJECTIVES",
    "Objective",
    "Parameter",
    "RidgeSurrogate",
    "ScreeningReport",
    "SurrogateBank",
    "crowding_distance",
    "default_space",
    "dominates",
    "evaluate_objectives",
    "hypervolume",
    "knee_point",
    "non_dominated_front",
    "non_dominated_sort",
    "parse_param_spec",
    "reference_point",
    "resolve_objectives",
    "run_screening",
    "two_level_design",
]
