"""Multi-objective machinery: dominance, fronts, hypervolume, knee point.

Everything operates on *oriented* objective vectors (smaller is better;
see :mod:`repro.dse.objectives`).  All algorithms are exact and
deterministic — ties are broken by index order, never by dict/set
iteration — because the acceptance bar for the whole DSE engine is
byte-identical reports under a fixed seed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Vector = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Pareto dominance (minimize): ``a`` is nowhere worse, somewhere better."""
    if len(a) != len(b):
        raise ValueError(f"objective vectors differ in length: {len(a)} vs {len(b)}")
    better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            better = True
    return better


def non_dominated_front(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the exact non-dominated subset, in input order.

    Duplicate vectors are all kept (they dominate nothing, and dropping
    one would make the front depend on input order).
    """
    front: List[int] = []
    for i, candidate in enumerate(points):
        dominated = False
        for j, other in enumerate(points):
            if i != j and dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front


def non_dominated_sort(points: Sequence[Sequence[float]]) -> List[List[int]]:
    """NSGA-II fast non-dominated sort: successive fronts of indices."""
    n = len(points)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(points[i], points[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(points[j], points[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(n) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        upcoming: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    upcoming.append(j)
        current = sorted(upcoming)
    return fronts


def crowding_distance(points: Sequence[Sequence[float]]) -> List[float]:
    """NSGA-II crowding distance of each point within one front.

    Boundary points get ``inf`` so they always survive truncation;
    interior distances are normalized per objective by the front's
    extent (degenerate extents contribute zero).
    """
    n = len(points)
    if n == 0:
        return []
    distance = [0.0] * n
    dims = len(points[0])
    for d in range(dims):
        order = sorted(range(n), key=lambda i: (points[i][d], i))
        low, high = points[order[0]][d], points[order[-1]][d]
        distance[order[0]] = distance[order[-1]] = float("inf")
        extent = high - low
        if extent <= 0:
            continue
        for rank in range(1, n - 1):
            gap = points[order[rank + 1]][d] - points[order[rank - 1]][d]
            distance[order[rank]] += gap / extent
    return distance


def hypervolume(points: Sequence[Sequence[float]], reference: Sequence[float]) -> float:
    """Exact hypervolume dominated by ``points`` w.r.t. ``reference``.

    Minimize convention: the volume of the region between the front and
    the (worse-everywhere) reference point.  Points at or beyond the
    reference in any dimension contribute nothing.  Implemented by
    recursive slicing on the first objective (HSO) — exponential in the
    worst case, but Pareto fronts here are tens of points in 2-4
    dimensions, where it is exact and fast.
    """
    reference = tuple(float(r) for r in reference)
    filtered = [
        tuple(float(x) for x in p)
        for p in points
        if all(x < r for x, r in zip(p, reference))
    ]
    if not filtered:
        return 0.0
    front = [filtered[i] for i in non_dominated_front(filtered)]
    return _hv(sorted(set(front)), reference)


def _hv(front: List[Vector], reference: Vector) -> float:
    """Hypervolume of a sorted, deduplicated non-dominated front."""
    if not front:
        return 0.0
    if len(reference) == 1:
        return reference[0] - min(p[0] for p in front)
    volume = 0.0
    # Slice along the first objective: between consecutive coordinates,
    # the dominated cross-section is fixed and recurses one dimension
    # lower over the points already passed.
    for index, point in enumerate(front):
        width = (
            front[index + 1][0] if index + 1 < len(front) else reference[0]
        ) - point[0]
        if width <= 0:
            continue
        slab = [q[1:] for q in front[: index + 1]]
        slab = [slab[i] for i in non_dominated_front(slab)]
        volume += width * _hv(sorted(set(slab)), reference[1:])
    return volume


def normalized(points: Sequence[Sequence[float]]) -> List[Vector]:
    """Per-objective min-max normalization onto ``[0, 1]``.

    Degenerate objectives (constant across the front) normalize to 0.
    """
    if not points:
        return []
    dims = len(points[0])
    lows = [min(p[d] for p in points) for d in range(dims)]
    highs = [max(p[d] for p in points) for d in range(dims)]
    scaled: List[Vector] = []
    for p in points:
        row = []
        for d in range(dims):
            extent = highs[d] - lows[d]
            row.append((p[d] - lows[d]) / extent if extent > 0 else 0.0)
        scaled.append(tuple(row))
    return scaled


def knee_point(points: Sequence[Sequence[float]]) -> int:
    """Index of the knee — the MCDM "build this one" pick.

    Compromise-programming knee: normalize the front per objective and
    take the point closest (L2) to the ideal corner (all objectives at
    their best).  On a convex 2-D front this is the classic maximum-
    curvature knee; in higher dimensions it remains well-defined and
    scale-free.  Ties break toward the lowest index (determinism).
    """
    if not points:
        raise ValueError("knee_point needs at least one point")
    best_index, best_distance = 0, float("inf")
    for index, row in enumerate(normalized(points)):
        distance = sum(x * x for x in row) ** 0.5
        if distance < best_distance - 1e-12:
            best_index, best_distance = index, distance
    return best_index


def reference_point(
    points: Sequence[Sequence[float]], margin: float = 0.1
) -> Vector:
    """A deterministic hypervolume reference: worst-per-objective + margin.

    The margin keeps boundary points contributing (a point *at* the
    reference has zero volume), scaled by each objective's extent.
    """
    if not points:
        raise ValueError("reference_point needs at least one point")
    dims = len(points[0])
    worst = [max(p[d] for p in points) for d in range(dims)]
    best = [min(p[d] for p in points) for d in range(dims)]
    return tuple(
        worst[d] + margin * max(worst[d] - best[d], 1e-9) for d in range(dims)
    )
