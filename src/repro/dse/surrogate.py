"""NumPy-only regression surrogates that pre-screen GA offspring.

The expensive step of design-space exploration is the simulator.  After
the archive holds a few dozen evaluated genomes, a cheap polynomial
ridge-regression model per objective predicts the outcome of a proposed
genome well enough to *rank* candidates — so the GA can generate a large
offspring pool and send only the predicted-promising fraction to the
simulator (DAVOS's "regression model manager" stage, stdlib+NumPy only).

Guard rails:

* Every model reports a k-fold cross-validated R²; the bank refuses to
  pre-screen (``reliable`` is False) until every objective clears a
  threshold, so a bad fit degrades to "evaluate everything" rather than
  to silently mis-steering the search.
* Feature encoding is derived from the :class:`~repro.dse.space.Parameter`
  declarations: numeric axes enter as a min-max-scaled scalar,
  categorical axes as one-hot groups, then a full degree-2 polynomial
  expansion (bias + linear + pairwise products) feeds the ridge solve.
* Everything is deterministic: fold assignment is round-robin by index,
  the solve is a fixed ``numpy.linalg`` call, no RNG anywhere.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.dse.space import DesignSpace, Genome


def encode_genome(space: DesignSpace, genome: Genome) -> np.ndarray:
    """Raw feature vector of one genome (before polynomial expansion)."""
    features: List[float] = []
    for parameter, index in zip(space.parameters, genome):
        count = len(parameter)
        if parameter.numeric:
            features.append(index / (count - 1) if count > 1 else 0.0)
        else:
            one_hot = [0.0] * count
            one_hot[index] = 1.0
            features.extend(one_hot)
    return np.asarray(features, dtype=np.float64)


def _expand(raw: np.ndarray, degree: int) -> np.ndarray:
    """Polynomial design row: [1, x_i, x_i * x_j (i <= j)] for degree 2."""
    columns = [np.float64(1.0)]
    columns.extend(raw)
    if degree >= 2:
        n = raw.shape[0]
        for i in range(n):
            for j in range(i, n):
                columns.append(raw[i] * raw[j])
    return np.asarray(columns, dtype=np.float64)


@dataclasses.dataclass
class RidgeSurrogate:
    """One objective's polynomial ridge regression model.

    ``alpha`` is the L2 penalty (the intercept column is not
    penalized); ``degree`` selects linear (1) or quadratic (2) features.
    """

    space: DesignSpace
    alpha: float = 1e-3
    degree: int = 2
    coefficients: np.ndarray = dataclasses.field(
        default_factory=lambda: np.zeros(0)
    )
    cv_r2: float = float("-inf")

    def _design_matrix(self, genomes: Sequence[Genome]) -> np.ndarray:
        return np.stack(
            [_expand(encode_genome(self.space, g), self.degree) for g in genomes]
        )

    def _solve(self, matrix: np.ndarray, targets: np.ndarray) -> np.ndarray:
        columns = matrix.shape[1]
        penalty = self.alpha * np.eye(columns)
        penalty[0, 0] = 0.0  # free intercept
        gram = matrix.T @ matrix + penalty
        return np.linalg.solve(gram, matrix.T @ targets)

    def fit(self, genomes: Sequence[Genome], targets: Sequence[float], folds: int = 5) -> "RidgeSurrogate":
        """Fit on the archive and measure k-fold cross-validated R².

        Folds are assigned round-robin by sample index (deterministic);
        with fewer samples than folds the fold count shrinks to leave at
        least one training sample per fold.  A constant target scores
        R² = 0 (no variance to explain — never "reliable").
        """
        if len(genomes) != len(targets):
            raise ValueError(
                f"{len(genomes)} genomes vs {len(targets)} targets"
            )
        if not genomes:
            raise ValueError("cannot fit a surrogate on zero samples")
        matrix = self._design_matrix(genomes)
        y = np.asarray(targets, dtype=np.float64)
        self.coefficients = self._solve(matrix, y)
        self.cv_r2 = self._cross_validate(matrix, y, folds)
        return self

    def _cross_validate(self, matrix: np.ndarray, y: np.ndarray, folds: int) -> float:
        n = y.shape[0]
        folds = max(2, min(folds, n))
        if n < 3:
            return float("-inf")  # nothing meaningful to validate
        assignment = np.arange(n) % folds
        errors = np.zeros(n)
        for fold in range(folds):
            hold = assignment == fold
            if hold.all() or not hold.any():
                continue
            beta = self._solve(matrix[~hold], y[~hold])
            errors[hold] = y[hold] - matrix[hold] @ beta
        total = float(np.sum((y - y.mean()) ** 2))
        if total <= 0.0:
            return 0.0
        return 1.0 - float(np.sum(errors**2)) / total

    def predict(self, genomes: Sequence[Genome]) -> np.ndarray:
        """Predicted oriented objective values for a batch of genomes."""
        if self.coefficients.size == 0:
            raise RuntimeError("surrogate predict() before fit()")
        return self._design_matrix(genomes) @ self.coefficients


class SurrogateBank:
    """One :class:`RidgeSurrogate` per objective + the reliability gate."""

    def __init__(
        self,
        space: DesignSpace,
        objective_names: Sequence[str],
        alpha: float = 1e-3,
        degree: int = 2,
        min_r2: float = 0.5,
    ) -> None:
        self.space = space
        self.objective_names = tuple(objective_names)
        self.min_r2 = min_r2
        self.models: Dict[str, RidgeSurrogate] = {
            name: RidgeSurrogate(space, alpha=alpha, degree=degree)
            for name in self.objective_names
        }

    def fit(
        self, genomes: Sequence[Genome], objective_rows: Sequence[Sequence[float]]
    ) -> "SurrogateBank":
        """Fit every per-objective model on the evaluated archive."""
        for column, name in enumerate(self.objective_names):
            targets = [row[column] for row in objective_rows]
            self.models[name].fit(genomes, targets)
        return self

    @property
    def reliable(self) -> bool:
        """True when every objective's CV R² clears the gate."""
        return all(
            model.cv_r2 >= self.min_r2 for model in self.models.values()
        )

    def scores(self) -> Dict[str, float]:
        """Per-objective cross-validated R² (telemetry + reports)."""
        return {
            name: self.models[name].cv_r2 for name in self.objective_names
        }

    def predict(self, genomes: Sequence[Genome]) -> List[Tuple[float, ...]]:
        """Predicted oriented objective vectors, genome-order preserved."""
        columns = [
            self.models[name].predict(genomes) for name in self.objective_names
        ]
        return [
            tuple(float(column[i]) for column in columns)
            for i in range(len(genomes))
        ]
