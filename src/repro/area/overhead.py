"""Sensor-wise area-overhead report (reproduces paper Sec. III-D).

The methodology adds, per router:

* one NBTI **sensor per VC buffer** (16 for the 4-port x 4-VC reference),
* two control sidebands per link — ``Up_Down`` (``ceil(log2 num_vc)``
  VC-id wires + 1 enable) and ``Down_Up`` (``ceil(log2 num_vc)`` wires),
* the pre-VA **policy logic** in the upstream router and the
  most-degraded **comparator** in the downstream one.

The paper reports: sensors ~= 3.25 % of the reference router, sidebands
~= 3.8 % of one 64-bit data link, policy logic "negligible" after
synthesis, total **below 4 %** of the baseline NoC.
:func:`compute_overhead_report` regenerates all four numbers.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.area.orion import (
    GATE_AREA_UM2_45,
    RouterGeometry,
    link_area_um2,
    router_area_um2,
    tech_scale,
)

#: Silicon area of one NBTI sensor instance, um^2.  The paper cites the
#: 45 nm multi-degradation sensor of Singh et al. [20] without giving its
#: area; this value is calibrated so the 16-sensor reference router
#: reproduces the paper's 3.25 % figure and scales with technology.
SENSOR_AREA_UM2 = 72.0

#: Estimated NAND2-equivalent gates of the pre-VA policy logic per VC
#: (priority selection + idle counting) and fixed per-port overhead.
POLICY_GATES_PER_VC = 10
POLICY_GATES_FIXED = 20


def up_down_wires(num_vcs: int, num_vnets: int = 1) -> int:
    """Wires of the Up_Down sideband: VC-id lines + 1 enable.

    On multi-vnet ports each vnet carries its own id/enable set (the
    policy reserves one idle VC per message class).
    """
    if num_vcs < 1:
        raise ValueError(f"num_vcs must be >= 1, got {num_vcs}")
    if num_vnets < 1:
        raise ValueError(f"num_vnets must be >= 1, got {num_vnets}")
    per_vnet = max(1, math.ceil(math.log2(num_vcs))) + 1 if num_vcs > 1 else 1
    return per_vnet * num_vnets


def down_up_wires(num_vcs: int, num_vnets: int = 1) -> int:
    """Wires of the Down_Up sideband: most-degraded VC-id lines
    (one id set per vnet)."""
    if num_vcs < 1:
        raise ValueError(f"num_vcs must be >= 1, got {num_vcs}")
    if num_vnets < 1:
        raise ValueError(f"num_vnets must be >= 1, got {num_vnets}")
    per_vnet = max(1, math.ceil(math.log2(num_vcs))) if num_vcs > 1 else 1
    return per_vnet * num_vnets


@dataclasses.dataclass(frozen=True)
class OverheadReport:
    """All Sec. III-D numbers for one router geometry.

    Areas in um^2; fractions as ratios in [0, 1] (multiply by 100 for
    the paper's percentages).
    """

    geometry: RouterGeometry
    router_area: float
    sensor_count: int
    sensor_area_total: float
    sensor_fraction_of_router: float
    data_link_area: float
    control_link_area: float
    control_fraction_of_link: float
    policy_logic_area: float
    policy_fraction_of_router: float
    links_per_router: int
    total_fraction_of_noc: float

    def as_text(self) -> str:
        """Human-readable report mirroring the paper's Sec. III-D."""
        lines = [
            "Sensor-wise area overhead (ORION-class model, "
            f"{self.geometry.tech.name})",
            f"  router area                 : {self.router_area:10.1f} um^2",
            f"  sensors ({self.sensor_count:2d} x "
            f"{SENSOR_AREA_UM2 * tech_scale(self.geometry.tech):6.1f} um^2) "
            f"   : {self.sensor_area_total:10.1f} um^2 "
            f"= {100 * self.sensor_fraction_of_router:.2f}% of router "
            "(paper: 3.25%)",
            f"  data link ({self.geometry.flit_width_bits} wires)       : "
            f"{self.data_link_area:10.1f} um^2",
            f"  Up_Down+Down_Up sidebands   : {self.control_link_area:10.1f} um^2 "
            f"= {100 * self.control_fraction_of_link:.2f}% of one data link "
            "(paper: 3.8%)",
            f"  policy/comparator logic     : {self.policy_logic_area:10.1f} um^2 "
            f"= {100 * self.policy_fraction_of_router:.2f}% of router "
            "(paper: negligible)",
            f"  TOTAL (router + {self.links_per_router} links)    : "
            f"{100 * self.total_fraction_of_noc:.2f}% of the baseline NoC "
            "(paper: < 4%)",
        ]
        return "\n".join(lines)


def compute_overhead_report(
    geometry: Optional[RouterGeometry] = None,
    links_per_router: int = 4,
    link_length_mm: float = 1.0,
) -> OverheadReport:
    """Compute every overhead figure of the paper's Sec. III-D.

    Parameters
    ----------
    geometry:
        Router geometry; the default is the paper's reference (4 ports,
        4 VCs, 4-flit buffers, 64-bit flits, 45 nm).
    links_per_router:
        Inter-router links attributed to one router when computing the
        total NoC overhead (4 in an interior mesh tile).
    link_length_mm:
        Physical link length (cancels out of all ratios).
    """
    if links_per_router < 1:
        raise ValueError(f"links_per_router must be >= 1, got {links_per_router}")
    geometry = geometry if geometry is not None else RouterGeometry()
    scale = tech_scale(geometry.tech)
    router = router_area_um2(geometry)
    sensors = geometry.sensor_count * SENSOR_AREA_UM2 * scale
    data_link = link_area_um2(
        geometry.flit_width_bits, link_length_mm, geometry.tech, global_wires=True
    )
    sideband_wires = up_down_wires(geometry.num_vcs) + down_up_wires(geometry.num_vcs)
    control_link = link_area_um2(
        sideband_wires, link_length_mm, geometry.tech, global_wires=False
    )
    policy_gates = (
        POLICY_GATES_PER_VC * geometry.num_vcs + POLICY_GATES_FIXED
    ) * geometry.num_ports
    policy_logic = policy_gates * GATE_AREA_UM2_45 * scale
    baseline_noc = router + links_per_router * data_link
    added = sensors + policy_logic + links_per_router * control_link
    return OverheadReport(
        geometry=geometry,
        router_area=router,
        sensor_count=geometry.sensor_count,
        sensor_area_total=sensors,
        sensor_fraction_of_router=sensors / router,
        data_link_area=data_link,
        control_link_area=control_link,
        control_fraction_of_link=control_link / data_link,
        policy_logic_area=policy_logic,
        policy_fraction_of_router=policy_logic / router,
        links_per_router=links_per_router,
        total_fraction_of_noc=added / baseline_noc,
    )
