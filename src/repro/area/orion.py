"""ORION-2.0-class analytic area model for routers and links.

The paper uses ORION 2.0 to size the baseline router and its links at
45 nm and then reports the *relative* overhead of the sensor-wise
additions (Sec. III-D).  This module provides an analytic model with the
same structure — buffers, crossbar, allocators, link wiring — built from
per-technology unit areas.  Absolute values are first-order (as are
ORION's); all reproduction claims are about the *ratios* computed in
:mod:`repro.area.overhead`.

Model structure
---------------
* **Buffers**: register-file cells; area = bits x cell area, plus a
  peripheral factor for decoders/precharge.
* **Crossbar**: matrix crossbar; area grows with (ports x width)^2 x
  wire pitch^2.
* **Allocators**: VA/SA arbiters; gate-count estimate for round-robin
  arbiters of the configured radix.
* **Links**: wire-dominated; area = wires x pitch x length, with data
  wires routed at *global* pitch (2x minimum) and slow control
  sideband wires at *semi-global* (minimum) pitch — which is exactly why
  the paper's 5 control wires cost only ~3.8 % of a 64-bit data link
  rather than 5/64 = 7.8 %.

All areas in um^2; lengths in mm; technology scaling is quadratic in the
feature size relative to the 45 nm reference.
"""

from __future__ import annotations

import dataclasses
import math

from repro.nbti.constants import TECH_45NM, TechnologyNode

# ----------------------------------------------------------------------
# 45 nm reference unit areas (first-order, ORION-2.0-class).
# ----------------------------------------------------------------------
#: Area of one register/SRAM buffer cell at 45 nm, um^2 (including its
#: share of word/bit lines).
BUFFER_CELL_UM2_45 = 1.2

#: Peripheral overhead factor of a buffer bank (decoders, precharge...).
BUFFER_PERIPHERY_FACTOR = 1.25

#: Minimum (semi-global) wire pitch at 45 nm, um.
WIRE_PITCH_UM_45 = 0.28

#: Global wires (links, crossbar tracks) are routed at twice the minimum
#: pitch for delay/noise, per ORION's wire classes.
GLOBAL_PITCH_FACTOR = 2.0

#: Area of a NAND2-equivalent gate at 45 nm, um^2.
GATE_AREA_UM2_45 = 0.8

#: Gates per round-robin arbiter request line (priority logic + grant).
ARBITER_GATES_PER_REQ = 6

#: Control/clock overhead factor applied to the summed router blocks.
ROUTER_OVERHEAD_FACTOR = 1.3


@dataclasses.dataclass(frozen=True)
class RouterGeometry:
    """Geometry of the router whose area is being estimated.

    The paper's Sec. III-D reference: 4 input/output ports, 4 VCs per
    input port, 4 flits per buffer, 64-bit flits, 45 nm.
    """

    num_ports: int = 4
    num_vcs: int = 4
    buffer_depth: int = 4
    flit_width_bits: int = 64
    tech: TechnologyNode = TECH_45NM

    def __post_init__(self) -> None:
        if self.num_ports < 2:
            raise ValueError(f"num_ports must be >= 2, got {self.num_ports}")
        if self.num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {self.num_vcs}")
        if self.buffer_depth < 1:
            raise ValueError(f"buffer_depth must be >= 1, got {self.buffer_depth}")
        if self.flit_width_bits < 1:
            raise ValueError(f"flit_width_bits must be >= 1, got {self.flit_width_bits}")

    @property
    def buffer_bits(self) -> int:
        """Total storage bits across all input ports."""
        return self.num_ports * self.num_vcs * self.buffer_depth * self.flit_width_bits

    @property
    def sensor_count(self) -> int:
        """One NBTI sensor per VC buffer (paper: 16 for the reference)."""
        return self.num_ports * self.num_vcs


def tech_scale(tech: TechnologyNode) -> float:
    """Quadratic area scaling factor relative to the 45 nm reference."""
    return (tech.feature_nm / 45.0) ** 2


def buffer_area_um2(geom: RouterGeometry) -> float:
    """Total input-buffer area of the router."""
    cell = BUFFER_CELL_UM2_45 * tech_scale(geom.tech)
    return geom.buffer_bits * cell * BUFFER_PERIPHERY_FACTOR


def crossbar_area_um2(geom: RouterGeometry) -> float:
    """Matrix-crossbar area: (ports x width x global pitch)^2."""
    pitch = WIRE_PITCH_UM_45 * GLOBAL_PITCH_FACTOR * math.sqrt(tech_scale(geom.tech))
    side = geom.num_ports * geom.flit_width_bits * pitch
    return side * side


def allocator_area_um2(geom: RouterGeometry) -> float:
    """VA + SA arbiter area from gate counts.

    VA: one ``ports x vcs``-input arbiter per output port.
    SA: one ``vcs``-input arbiter per input port plus one
    ``ports``-input arbiter per output port.
    """
    gate = GATE_AREA_UM2_45 * tech_scale(geom.tech)
    va_requests = geom.num_ports * (geom.num_ports * geom.num_vcs)
    sa_requests = geom.num_ports * geom.num_vcs + geom.num_ports * geom.num_ports
    return (va_requests + sa_requests) * ARBITER_GATES_PER_REQ * gate


def router_area_um2(geom: RouterGeometry) -> float:
    """Total router area including control/clock overhead."""
    blocks = buffer_area_um2(geom) + crossbar_area_um2(geom) + allocator_area_um2(geom)
    return blocks * ROUTER_OVERHEAD_FACTOR


def link_area_um2(
    wires: int,
    length_mm: float = 1.0,
    tech: TechnologyNode = TECH_45NM,
    global_wires: bool = True,
) -> float:
    """Wiring area of a link.

    Parameters
    ----------
    wires:
        Number of parallel wires (e.g. 64 for the paper's data link).
    length_mm:
        Link length; Sec. III-D compares same-length links so the ratio
        is length-independent.
    global_wires:
        Data links use the global wire class (2x pitch); slow control
        sidebands (Up_Down / Down_Up) use the minimum pitch.
    """
    if wires < 1:
        raise ValueError(f"wires must be >= 1, got {wires}")
    if length_mm <= 0:
        raise ValueError(f"length_mm must be positive, got {length_mm}")
    pitch = WIRE_PITCH_UM_45 * math.sqrt(tech_scale(tech))
    if global_wires:
        pitch *= GLOBAL_PITCH_FACTOR
    return wires * pitch * (length_mm * 1000.0)
