"""ORION-2.0-class power model: dynamic energy + leakage, with the
leakage knobs the methodology actually moves.

The paper sizes its hardware with ORION 2.0 (area) and motivates the
process-variation model with ORION-scale observations ("leakage power
variation on buffers of about 90 % due to PV", Sec. I).  Power gating a
VC buffer does not only recover NBTI — it also cuts the buffer's leakage
while gated, so the methodology's duty-cycle statistics translate
directly into a leakage saving.  This module provides:

* per-component **dynamic energy** constants (buffer write/read,
  crossbar traversal, arbitration, link traversal) at 45 nm,
* per-bit **leakage power** with the exponential sub-threshold
  dependence on |Vth| (which also makes leakage *rise* as NBTI ages the
  device — a second-order effect the report includes), and
* :func:`compute_power_report`, which turns a simulated
  :class:`~repro.noc.network.Network`'s activity and duty-cycle counters
  into a router-level power breakdown.

Absolute numbers are first-order (like ORION's); the reproduction's
claims are about ratios (policy-to-policy savings).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from repro.area.orion import RouterGeometry, tech_scale
from repro.nbti.constants import BOLTZMANN_EV, TECH_45NM, TechnologyNode

# ----------------------------------------------------------------------
# 45 nm reference energy/power constants (first-order).
# ----------------------------------------------------------------------
#: Energy to write one bit into a buffer cell, picojoules (a 64-bit
#: flit write costs ~6 pJ — ORION-2.0 scale at 45 nm).
BUFFER_WRITE_PJ_PER_BIT_45 = 0.10

#: Energy to read one bit from a buffer cell, picojoules.
BUFFER_READ_PJ_PER_BIT_45 = 0.075

#: Energy for one flit-bit to traverse the crossbar, picojoules.
CROSSBAR_PJ_PER_BIT_45 = 0.06

#: Energy per arbitration decision (VA or SA grant), picojoules.
ARBITRATION_PJ_45 = 1.0

#: Energy for one bit to traverse 1 mm of link, picojoules.
LINK_PJ_PER_BIT_MM_45 = 0.15

#: Leakage power of one buffer cell at nominal |Vth|, nanowatts
#: (a 4-flit x 64-bit buffer leaks ~5 uW; 16 buffers ~80 uW per router).
BUFFER_LEAK_NW_PER_BIT_45 = 20.0

#: Sub-threshold swing parameter ``n`` (leakage ~ exp(-Vth / (n kT/q))).
SUBTHRESHOLD_N = 1.5


def thermal_voltage(temperature_k: float) -> float:
    """kT/q in volts at the given temperature."""
    return BOLTZMANN_EV * temperature_k


def leakage_scale(
    vth: float,
    tech: TechnologyNode = TECH_45NM,
    temperature_k: Optional[float] = None,
) -> float:
    """Leakage multiplier of a device at |Vth| vs the nominal device.

    Sub-threshold conduction: ``I_leak ~ exp(-Vth / (n kT/q))``, so a
    lower-than-nominal threshold leaks exponentially more.  With the
    paper's PV sigma (5 mV) the +/-4-sigma spread yields roughly a 2x
    max/min leakage ratio on a single buffer — the "about 90 %
    variation" regime the paper cites for buffer populations.

    >>> leakage_scale(0.180) == 1.0
    True
    >>> leakage_scale(0.160) > leakage_scale(0.200)
    True
    """
    if vth <= 0.0:
        raise ValueError(f"vth must be positive, got {vth}")
    temp = temperature_k if temperature_k is not None else tech.temperature_k
    n_vt = SUBTHRESHOLD_N * thermal_voltage(temp)
    return math.exp((tech.vth_nominal - vth) / n_vt)


@dataclasses.dataclass(frozen=True)
class PowerBreakdown:
    """Power totals of one simulated network over its measured window.

    All energies in picojoules, powers in milliwatts (assuming the
    technology clock frequency).
    """

    cycles: int
    dynamic_buffer_pj: float
    dynamic_crossbar_pj: float
    dynamic_arbitration_pj: float
    dynamic_link_pj: float
    leakage_ungated_pj: float
    leakage_actual_pj: float

    @property
    def dynamic_pj(self) -> float:
        """Total dynamic energy over the window."""
        return (
            self.dynamic_buffer_pj
            + self.dynamic_crossbar_pj
            + self.dynamic_arbitration_pj
            + self.dynamic_link_pj
        )

    @property
    def total_pj(self) -> float:
        """Dynamic + actual leakage energy over the window."""
        return self.dynamic_pj + self.leakage_actual_pj

    @property
    def leakage_saving(self) -> float:
        """Fraction of buffer leakage removed by power gating, in [0, 1].

        ``1 - actual / ungated`` — exactly the recovery-time fraction,
        weighted by each buffer's PV- and aging-dependent leakage.
        """
        if self.leakage_ungated_pj == 0.0:
            return 0.0
        return 1.0 - self.leakage_actual_pj / self.leakage_ungated_pj

    def power_mw(self, clock_period_s: float) -> float:
        """Average total power over the window in milliwatts."""
        if self.cycles == 0:
            return 0.0
        window_s = self.cycles * clock_period_s
        return self.total_pj * 1e-12 / window_s * 1e3

    def as_text(self) -> str:
        lines = [
            f"Power breakdown over {self.cycles} cycles",
            f"  dynamic buffers     : {self.dynamic_buffer_pj:12.1f} pJ",
            f"  dynamic crossbars   : {self.dynamic_crossbar_pj:12.1f} pJ",
            f"  dynamic arbitration : {self.dynamic_arbitration_pj:12.1f} pJ",
            f"  dynamic links       : {self.dynamic_link_pj:12.1f} pJ",
            f"  buffer leakage      : {self.leakage_actual_pj:12.1f} pJ "
            f"(ungated would be {self.leakage_ungated_pj:.1f} pJ; "
            f"gating saved {100 * self.leakage_saving:.1f}%)",
        ]
        return "\n".join(lines)


def compute_power_report(
    network,
    link_length_mm: float = 1.0,
    include_aging_leakage: bool = True,
) -> PowerBreakdown:
    """Estimate the network's energy over its NBTI measurement window.

    Uses the simulator's activity counters (flits received per input
    port, flits routed per router, flits sent per NI) and the per-VC
    duty-cycle counters (stress = powered = leaking; recovery = gated =
    not leaking).  Leakage is weighted per device by its PV-sampled
    |Vth| — and, when ``include_aging_leakage``, by its *current* aged
    |Vth|, so NBTI degradation feeds back as a (small) leakage reduction.

    Parameters
    ----------
    network:
        A :class:`repro.noc.network.Network` that has been run.
    link_length_mm:
        Physical inter-router link length for link energy.
    """
    cfg = network.config
    tech = cfg.technology
    scale = tech_scale(tech)
    flit_bits = cfg.flit_width_bits

    write_pj = BUFFER_WRITE_PJ_PER_BIT_45 * scale * flit_bits
    read_pj = BUFFER_READ_PJ_PER_BIT_45 * scale * flit_bits
    xbar_pj = CROSSBAR_PJ_PER_BIT_45 * scale * flit_bits
    link_pj = LINK_PJ_PER_BIT_MM_45 * scale * flit_bits * link_length_mm
    arb_pj = ARBITRATION_PJ_45 * scale
    leak_nw_bit = BUFFER_LEAK_NW_PER_BIT_45 * scale
    bits_per_buffer = cfg.buffer_depth * flit_bits
    period_s = tech.clock_period_s

    buffer_writes = 0
    router_traversals = 0
    for router in network.routers:
        router_traversals += router.flits_routed
        for port in router.input_ports:
            buffer_writes += router.inputs[port].unit.flits_received
    ni_sends = sum(ni.flits_injected for ni in network.interfaces)
    ni_receives = sum(ni.ejection_unit.flits_received for ni in network.interfaces)

    dynamic_buffer = (buffer_writes + ni_receives) * write_pj
    dynamic_buffer += (router_traversals + ni_receives) * read_pj
    dynamic_xbar = router_traversals * xbar_pj
    dynamic_arb = (router_traversals + ni_sends) * 2 * arb_pj  # VA + SA class
    dynamic_link = (router_traversals + ni_sends) * link_pj

    # Leakage: per tracked device, weighted by Vth (PV + optional aging).
    leak_ungated_pj = 0.0
    leak_actual_pj = 0.0
    max_cycles = 0
    for device in network.devices.values():
        stress = device.counter.stress_cycles
        total = device.counter.total_cycles
        max_cycles = max(max_cycles, total)
        vth = device.vth() if include_aging_leakage else device.initial_vth
        per_cycle_pj = (
            leak_nw_bit * bits_per_buffer * leakage_scale(vth, tech) * 1e-9
        ) * period_s * 1e12
        leak_ungated_pj += per_cycle_pj * total
        leak_actual_pj += per_cycle_pj * stress

    return PowerBreakdown(
        cycles=max_cycles,
        dynamic_buffer_pj=dynamic_buffer,
        dynamic_crossbar_pj=dynamic_xbar,
        dynamic_arbitration_pj=dynamic_arb,
        dynamic_link_pj=dynamic_link,
        leakage_ungated_pj=leak_ungated_pj,
        leakage_actual_pj=leak_actual_pj,
    )


def per_router_power_pj(
    network,
    link_length_mm: float = 1.0,
) -> Dict[int, float]:
    """Per-router total energy (pJ) over the measurement window.

    A coarser split of :func:`compute_power_report` used by the thermal
    model: each router is charged for its input-buffer writes, its
    crossbar/arbiter traversals, its outgoing link energy and its
    buffers' (gating-aware) leakage.
    """
    cfg = network.config
    tech = cfg.technology
    scale = tech_scale(tech)
    flit_bits = cfg.flit_width_bits
    write_pj = BUFFER_WRITE_PJ_PER_BIT_45 * scale * flit_bits
    read_pj = BUFFER_READ_PJ_PER_BIT_45 * scale * flit_bits
    xbar_pj = CROSSBAR_PJ_PER_BIT_45 * scale * flit_bits
    link_pj = LINK_PJ_PER_BIT_MM_45 * scale * flit_bits * link_length_mm
    arb_pj = ARBITRATION_PJ_45 * scale
    leak_nw_bit = BUFFER_LEAK_NW_PER_BIT_45 * scale
    bits_per_buffer = cfg.buffer_depth * flit_bits
    period_s = tech.clock_period_s

    totals: Dict[int, float] = {}
    for router in network.routers:
        writes = sum(
            router.inputs[p].unit.flits_received for p in router.input_ports
        )
        traversals = router.flits_routed
        energy = writes * write_pj
        energy += traversals * (read_pj + xbar_pj + link_pj + 2 * arb_pj)
        for port in router.input_ports:
            for ivc in router.inputs[port].unit.vcs:
                device = ivc.buffer.device
                if device is None:
                    continue
                per_cycle_pj = (
                    leak_nw_bit * bits_per_buffer
                    * leakage_scale(device.initial_vth, tech) * 1e-9
                ) * period_s * 1e12
                energy += per_cycle_pj * device.counter.stress_cycles
        totals[router.router_id] = energy
    return totals


def buffer_leakage_spread(vths: List[float], tech: TechnologyNode = TECH_45NM) -> float:
    """Max/min leakage ratio across a buffer population (PV study).

    The paper's Sec. I cites ~90 % buffer leakage variation from PV;
    with the Table I sigma this ratio lands near 1.9 (i.e. +90 %).
    """
    if not vths:
        raise ValueError("need at least one Vth sample")
    scales = [leakage_scale(v, tech) for v in vths]
    return max(scales) / min(scales)
