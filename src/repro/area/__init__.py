"""ORION-class area model and the Sec. III-D overhead report."""

from repro.area.orion import (
    RouterGeometry,
    allocator_area_um2,
    buffer_area_um2,
    crossbar_area_um2,
    link_area_um2,
    router_area_um2,
    tech_scale,
)
from repro.area.overhead import (
    SENSOR_AREA_UM2,
    OverheadReport,
    compute_overhead_report,
    down_up_wires,
    up_down_wires,
)
from repro.area.power import (
    PowerBreakdown,
    buffer_leakage_spread,
    compute_power_report,
    leakage_scale,
)

__all__ = [
    "RouterGeometry",
    "allocator_area_um2",
    "buffer_area_um2",
    "crossbar_area_um2",
    "link_area_um2",
    "router_area_um2",
    "tech_scale",
    "SENSOR_AREA_UM2",
    "OverheadReport",
    "compute_overhead_report",
    "down_up_wires",
    "up_down_wires",
    "PowerBreakdown",
    "buffer_leakage_spread",
    "compute_power_report",
    "leakage_scale",
]
