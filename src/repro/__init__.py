"""repro — reproduction of *"Sensor-wise methodology to face NBTI stress
of NoC buffers"* (Zoni & Fornaciari, DATE 2013).

The package is layered bottom-up:

* :mod:`repro.nbti` — aging model, duty cycles, process variation, sensors.
* :mod:`repro.noc` — cycle-accurate VC-router NoC simulator.
* :mod:`repro.core` — the recovery policies (the paper's contribution).
* :mod:`repro.traffic` — synthetic and benchmark-profile traffic.
* :mod:`repro.area` — ORION-class area model and overhead report.
* :mod:`repro.stats` — collectors and multi-run aggregation.
* :mod:`repro.experiments` — scenario runners and table builders for
  every table and figure of the paper.

Quickstart
----------
>>> from repro import quick_simulation
>>> result = quick_simulation(policy="sensor-wise", cycles=2000)
>>> 0.0 <= min(result.duty_cycles) <= max(result.duty_cycles) <= 100.0
True
"""

from repro.version import __version__

__all__ = ["__version__", "quick_simulation"]


def quick_simulation(
    policy: str = "sensor-wise",
    num_nodes: int = 4,
    num_vcs: int = 2,
    injection_rate: float = 0.1,
    cycles: int = 5000,
    seed: int = 1,
):
    """Run a small uniform-traffic simulation and return a summary.

    A convenience entry point for the README quickstart; the real
    experiment API lives in :mod:`repro.experiments`.

    Returns
    -------
    repro.experiments.runner.ScenarioResult
        Duty cycles at the measured port plus network statistics.
    """
    from repro.experiments.config import ScenarioConfig
    from repro.experiments.runner import run_scenario

    scenario = ScenarioConfig(
        num_nodes=num_nodes,
        num_vcs=num_vcs,
        injection_rate=injection_rate,
        policy=policy,
        cycles=cycles,
        seed=seed,
    )
    return run_scenario(scenario)
