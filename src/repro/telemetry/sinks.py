"""Trace sinks: where :class:`~repro.telemetry.trace.Tracer` events go.

Three on-disk formats plus an in-memory one:

* :class:`JsonlSink` — one JSON object per line; trivially streamable
  and the format the reconciliation tests replay.
* :class:`ChromeTraceSink` — the Chrome trace-event JSON array format;
  open the file in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Every event carries the required
  ``ph``/``ts``/``pid``/``tid`` keys.
* :class:`CsvRollupSink` — per-probe aggregate rows (category, name,
  event count, first/last timestamp); a cheap overview for spreadsheets.
* :class:`ListSink` — accumulates event dicts in memory (tests).

Sinks receive *event tuples* (see :data:`EVENT_FIELDS`) in timestamp
order per flush and own their file handles; ``close`` finalizes the
file (the Chrome array needs a closing bracket to be valid JSON).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

#: Positional layout of one event tuple.
EVENT_FIELDS = ("ph", "name", "cat", "ts", "dur", "pid", "tid", "args")

#: One trace event: (ph, name, cat, ts, dur, pid, tid, args).
Event = Tuple[str, str, str, int, Optional[int], int, int, Optional[dict]]


def event_to_dict(event: Event) -> Dict[str, object]:
    """Chrome-trace JSON object for one event tuple."""
    ph, name, cat, ts, dur, pid, tid, args = event
    record: Dict[str, object] = {
        "ph": ph,
        "name": name,
        "cat": cat,
        "ts": ts,
        "pid": pid,
        "tid": tid,
    }
    if ph == "X":
        record["dur"] = 0 if dur is None else dur
    if ph == "i":
        record["s"] = "t"  # thread-scoped instant marker
    if args is not None:
        record["args"] = args
    return record


class TraceSink:
    """Interface: accepts event batches, then finalizes on close."""

    def write_events(self, events: Sequence[Event]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Finalize the sink (default: nothing to do)."""


class ListSink(TraceSink):
    """In-memory sink collecting event dicts (test helper)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self.closed = False

    def write_events(self, events: Sequence[Event]) -> None:
        self.events.extend(event_to_dict(e) for e in events)

    def close(self) -> None:
        self.closed = True


class JsonlSink(TraceSink):
    """One JSON object per line (stable key order)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = open(self.path, "w", encoding="utf-8")

    def write_events(self, events: Sequence[Event]) -> None:
        fh = self._fh
        for event in events:
            fh.write(json.dumps(event_to_dict(event), sort_keys=True))
            fh.write("\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class ChromeTraceSink(TraceSink):
    """Chrome trace-event format: a JSON array of event objects."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._fh.write("[")
        self._first = True

    def write_events(self, events: Sequence[Event]) -> None:
        fh = self._fh
        for event in events:
            if self._first:
                self._first = False
                fh.write("\n")
            else:
                fh.write(",\n")
            fh.write(json.dumps(event_to_dict(event), sort_keys=True))

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.write("\n]\n")
            self._fh.close()


class CsvRollupSink(TraceSink):
    """Aggregates events into per-probe rows, written on close."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        # (cat, name) -> [count, first_ts, last_ts]
        self._rows: Dict[Tuple[str, str], List[int]] = {}
        self._closed = False

    def write_events(self, events: Sequence[Event]) -> None:
        rows = self._rows
        for ph, name, cat, ts, _dur, _pid, _tid, _args in events:
            if ph == "M":
                continue  # metadata events are not probe activity
            row = rows.get((cat, name))
            if row is None:
                rows[(cat, name)] = [1, ts, ts]
            else:
                row[0] += 1
                if ts < row[1]:
                    row[1] = ts
                if ts > row[2]:
                    row[2] = ts

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write("category,name,events,first_ts,last_ts\n")
            for (cat, name) in sorted(self._rows):
                count, first, last = self._rows[(cat, name)]
                fh.write(f"{cat},{name},{count},{first},{last}\n")
