"""Logging for the ``repro`` package: one hierarchy, two channels.

* **Diagnostics** (progress lines, warnings, debug chatter) go through
  the ``repro`` logger hierarchy to *stderr* — ``get_logger("cli")``
  etc., gated by the CLI's ``-v``/``-q`` verbosity.
* **Artifacts** (tables, reports — the program's actual output) go
  through :func:`emit` to *stdout*, always, regardless of verbosity.
  ``repro-noc table3 > table.txt`` keeps working, and diagnostics never
  contaminate machine-readable output.

Handlers resolve ``sys.stdout``/``sys.stderr`` **at emit time** (not at
install time) so stream replacement — pytest's ``capsys``, ``2>``
redirection set up after import — is honoured.

Worker processes spawned by :mod:`repro.experiments.parallel` call
:func:`setup_worker_logging` with the parent's effective level, so
``-v`` verbosity propagates across the process pool.
"""

from __future__ import annotations

import logging
import sys
from typing import Callable, Optional

#: Root of the package's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

#: Private logger carrying artifact output to stdout (never propagates).
_OUTPUT_LOGGER_NAME = "repro.output"


class _DynamicStreamHandler(logging.StreamHandler):
    """StreamHandler bound to a stream *getter*, not a stream object."""

    def __init__(self, stream_getter: Callable[[], object]) -> None:
        logging.Handler.__init__(self)
        self._stream_getter = stream_getter

    @property
    def stream(self):  # type: ignore[override]
        return self._stream_getter()

    @stream.setter
    def stream(self, value) -> None:
        # StreamHandler.setStream / __init__ assign here; the stream is
        # resolved dynamically, so assignments are deliberately ignored.
        pass


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def verbosity_to_level(verbosity: int) -> int:
    """Map a ``-v``/``-q`` count to a logging level.

    0 is the CLI default (INFO: progress lines show), positive counts
    add debug detail, negative counts quiet progressively.
    """
    if verbosity >= 1:
        return logging.DEBUG
    if verbosity == 0:
        return logging.INFO
    if verbosity == -1:
        return logging.WARNING
    return logging.ERROR


def _install_handler(logger: logging.Logger, stream_getter: Callable[[], object]) -> None:
    """Idempotently attach one dynamic-stream handler to ``logger``."""
    for handler in logger.handlers:
        if isinstance(handler, _DynamicStreamHandler):
            return
    handler = _DynamicStreamHandler(stream_getter)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)


def setup_cli_logging(verbosity: int = 0) -> int:
    """Configure diagnostics for a CLI invocation; returns the level.

    Safe to call repeatedly (tests invoke ``main`` many times in one
    process): the handler is installed once, the level just updates.
    """
    level = verbosity_to_level(verbosity)
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)
    root.propagate = False
    _install_handler(root, lambda: sys.stderr)
    return level


def setup_worker_logging(level: Optional[int]) -> None:
    """Adopt the parent process's log level inside a pool worker."""
    if level is None:
        return
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)
    root.propagate = False
    _install_handler(root, lambda: sys.stderr)


def current_log_level() -> int:
    """Effective level of the ``repro`` hierarchy (for propagation)."""
    return logging.getLogger(ROOT_LOGGER_NAME).getEffectiveLevel()


def _output_logger() -> logging.Logger:
    logger = logging.getLogger(_OUTPUT_LOGGER_NAME)
    if not logger.handlers:
        logger.setLevel(logging.INFO)
        logger.propagate = False
        _install_handler(logger, lambda: sys.stdout)
    return logger


def emit(text: object = "") -> None:
    """Write one artifact line (table, report...) to stdout.

    Equivalent to a bare ``print`` — same bytes, same trailing newline —
    but routed through logging so every user-visible write shares one
    code path (the ``src/`` tree bans bare ``print`` calls in CI).
    """
    _output_logger().info("%s", text)
