"""Probe-point catalogue: the named events the simulator can emit.

Every instrumented component refers to these constants (never ad-hoc
strings), so the full observable surface of the simulator is enumerable
in one place — ``docs/OBSERVABILITY.md`` renders this catalogue, and the
trace tests validate emitted events against it.

Probe names are hierarchical (``<component>.<event>``); the component
prefix doubles as the Chrome-trace category (``cat`` field), which lets
Perfetto filter whole subsystems at once.
"""

from __future__ import annotations

from typing import Dict, Tuple

# -- VC buffers (repro.noc.buffer.VCBuffer) ---------------------------------
#: Sleep transistor cut the supply: the VC enters NBTI **recovery** this
#: cycle (commands apply in phase 1, aging counts in phase 7 of the same
#: cycle, so a gate at ts=c means cycle c is already a recovery cycle).
BUFFER_GATE = "buffer.gate"
#: Wake command accepted: the rail re-energizes (GATED -> WAKING/ON), so
#: NBTI **stress** resumes at ts=c.  ``args.latency`` is the ramp time.
BUFFER_WAKE = "buffer.wake"
#: Wake ramp finished (WAKING -> ON); the buffer can accept flits again.
BUFFER_WAKE_COMPLETE = "buffer.wake_complete"
#: Emergency wake-on-arrival (faulted runs only): a flit reached a
#: non-ON buffer and energized the rail itself.
BUFFER_EMERGENCY_WAKE = "buffer.emergency_wake"

# -- NBTI sensor banks (repro.nbti.sensor.SensorBank) -----------------------
#: The bank actually measured (once per sample period).  ``args.md`` is
#: the new most-degraded VC verdict.
SENSOR_SAMPLE = "sensor.sample"
#: The most-degraded verdict changed; ``args`` carries ``from``/``to``.
SENSOR_MD_CHANGE = "sensor.md_change"

# -- Recovery policies (repro.core.policies) --------------------------------
#: A policy re-decided and elected a keep-awake survivor.  Memoized
#: policies only emit on true re-evaluations, not every cycle.
POLICY_KEEP_AWAKE = "policy.keep_awake"
#: A sensor-wise policy decided via its embedded sensor-less fallback
#: (the port's Down_Up watchdog currently reports the sensor faulted).
POLICY_FALLBACK = "policy.fallback_decide"

# -- Upstream ports (repro.noc.output_unit.UpstreamPort) --------------------
#: A gate command was put on the Up_Down link; ``args.vc`` is global.
PORT_GATE_CMD = "port.gate_cmd"
#: A wake command was put on the Up_Down link; ``args.vc`` is global.
PORT_WAKE_CMD = "port.wake_cmd"

# -- Down_Up health watchdog (VnetEngine degrade/heal) ----------------------
#: A vnet's sensor feed was flagged stale/implausible: graceful
#: degradation engages (sensor-wise falls back to Algorithm 1).
WATCHDOG_DEGRADE = "watchdog.degrade"
#: The sensor feed healed: the full sensor-wise policy re-engages.
WATCHDOG_HEAL = "watchdog.heal"

# -- Fault-injection hooks (repro.faults.injector) --------------------------
#: ``sensor-dropout`` suppressed a due measurement.
FAULT_SAMPLE_DROPPED = "fault.sample_dropped"
#: ``stuck-sensor`` pinned a Down_Up report to a fixed VC.
FAULT_STUCK_REPORT = "fault.stuck_report"
#: ``stuck-gated`` swallowed a wake command (sleep-transistor driver).
FAULT_WAKE_BLOCKED = "fault.wake_blocked"
#: ``stuck-gated`` slowed a wake command by ``extra_wake_cycles``.
FAULT_WAKE_DELAYED = "fault.wake_delayed"
#: The wake-on-arrival relaxation fired (see EmergencyWake).
FAULT_EMERGENCY_WAKE = "fault.emergency_wake"

# -- Run phases (repro.experiments.runner, host-time spans) -----------------
#: Span event covering one runner phase (build / warmup / measure /
#: harvest); emitted on the host-time track (pid 1), duration in µs.
RUN_PHASE = "run.phase"

#: Every probe name -> (category, one-line description).  The category
#: is the Chrome-trace ``cat`` field.
CATALOG: Dict[str, Tuple[str, str]] = {
    BUFFER_GATE: ("buffer", "VC buffer gated: NBTI recovery starts this cycle"),
    BUFFER_WAKE: ("buffer", "VC buffer wake accepted: NBTI stress resumes this cycle"),
    BUFFER_WAKE_COMPLETE: ("buffer", "wake ramp finished; buffer accepts flits again"),
    BUFFER_EMERGENCY_WAKE: ("buffer", "flit arrival energized a non-ON buffer (faults only)"),
    SENSOR_SAMPLE: ("sensor", "sensor bank measured; args.md is the new verdict"),
    SENSOR_MD_CHANGE: ("sensor", "most-degraded verdict changed (args.from/args.to)"),
    POLICY_KEEP_AWAKE: ("policy", "policy re-decided and chose a keep-awake survivor"),
    POLICY_FALLBACK: ("policy", "sensor-wise decided via its sensor-less fallback"),
    PORT_GATE_CMD: ("port", "gate command issued on the Up_Down link"),
    PORT_WAKE_CMD: ("port", "wake command issued on the Up_Down link"),
    WATCHDOG_DEGRADE: ("watchdog", "Down_Up feed flagged stale/implausible; degraded mode on"),
    WATCHDOG_HEAL: ("watchdog", "Down_Up feed healed; full policy re-engaged"),
    FAULT_SAMPLE_DROPPED: ("fault", "sensor-dropout suppressed a due measurement"),
    FAULT_STUCK_REPORT: ("fault", "stuck-sensor pinned the Down_Up report"),
    FAULT_WAKE_BLOCKED: ("fault", "stuck-gated swallowed a wake command"),
    FAULT_WAKE_DELAYED: ("fault", "stuck-gated delayed a wake command"),
    FAULT_EMERGENCY_WAKE: ("fault", "wake-on-arrival relaxation fired"),
    RUN_PHASE: ("run", "host-time span covering one runner phase"),
}


def category_of(name: str) -> str:
    """Category for a probe name (prefix up to the first dot)."""
    entry = CATALOG.get(name)
    if entry is not None:
        return entry[0]
    return name.split(".", 1)[0]
