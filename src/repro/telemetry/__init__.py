"""Telemetry subsystem: metrics, cycle-level tracing and profiling.

Layered so that the simulator core never pays for what a run did not
ask for:

* :mod:`repro.telemetry.probes` — the probe-point catalogue (names,
  categories, descriptions) shared by emitters, docs and tests.
* :mod:`repro.telemetry.metrics` — counters / gauges / streaming
  histograms in a :class:`MetricsRegistry`.
* :mod:`repro.telemetry.trace` — the :class:`Tracer` event recorder
  (simulated-cycle and host-time domains).
* :mod:`repro.telemetry.sinks` — JSONL, Chrome trace-event and CSV
  rollup writers.
* :mod:`repro.telemetry.config` — the :class:`TelemetryConfig` opt-in
  flag carried by :class:`~repro.experiments.config.ScenarioConfig`.
* :mod:`repro.telemetry.runtime` — :class:`Telemetry`, the per-run
  umbrella that instruments a network and distills a
  :class:`TelemetrySummary`.
* :mod:`repro.telemetry.log` — the ``repro`` logger hierarchy backing
  CLI verbosity (``-v``/``-q``) and the :func:`emit` artifact stream.
"""

from repro.telemetry import probes
from repro.telemetry.config import VALID_FORMATS, TelemetryConfig
from repro.telemetry.log import (
    emit,
    get_logger,
    setup_cli_logging,
    setup_worker_logging,
    verbosity_to_level,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metrics_dict,
)
from repro.telemetry.runtime import Telemetry, TelemetrySummary, instrument_network
from repro.telemetry.sinks import (
    EVENT_FIELDS,
    ChromeTraceSink,
    CsvRollupSink,
    JsonlSink,
    ListSink,
    TraceSink,
    event_to_dict,
)
from repro.telemetry.trace import PID_HOST, PID_SIM, NullTracer, Tracer

__all__ = [
    "probes",
    "VALID_FORMATS",
    "TelemetryConfig",
    "emit",
    "get_logger",
    "setup_cli_logging",
    "setup_worker_logging",
    "verbosity_to_level",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_metrics_dict",
    "Telemetry",
    "TelemetrySummary",
    "instrument_network",
    "EVENT_FIELDS",
    "ChromeTraceSink",
    "CsvRollupSink",
    "JsonlSink",
    "ListSink",
    "TraceSink",
    "event_to_dict",
    "PID_HOST",
    "PID_SIM",
    "NullTracer",
    "Tracer",
]
