"""Cycle-level event tracer with Chrome-trace semantics.

The :class:`Tracer` is the single object instrumented components talk
to.  Design constraints, in order:

1. **Null-object-cheap when off** — components hold ``trace = None``
   and guard with one ``is not None`` check; the tracer itself is only
   constructed for opted-in runs.
2. **Cheap when on** — an event append is one tuple + one dict bump;
   serialization happens at flush time in the sinks.
3. **Two time domains** — simulated cycles (``pid`` :data:`PID_SIM`,
   1 cycle = 1 µs in the trace timebase) and host wall-clock profiling
   spans (``pid`` :data:`PID_HOST`).  Perfetto renders them as two
   separate processes so cycle tracks never interleave with host time.

Timestamps come from a *clock callable* (``lambda: network.cycle``)
installed at instrumentation time — component methods like
``VCBuffer.gate()`` take no cycle argument, and threading one through
every signature would tax the telemetry-off path.  Components that do
know the cycle pass ``ts=`` explicitly, skipping the indirection.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.sinks import Event, TraceSink

#: Trace process id of the simulated-time domain (ts = cycle number).
PID_SIM = 0
#: Trace process id of the host-time domain (ts = µs since tracer start).
PID_HOST = 1


class Tracer:
    """Buffers probe events and fans them out to sinks.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated cycle;
        used when an event is recorded without an explicit ``ts``.
    sinks:
        :class:`~repro.telemetry.sinks.TraceSink` instances receiving
        every event (possibly none: the tracer still counts per-probe
        activity for the run summary).
    max_buffered_events:
        Auto-flush threshold bounding memory for long traced runs.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], int]] = None,
        sinks: Sequence[TraceSink] = (),
        max_buffered_events: int = 65536,
    ) -> None:
        if max_buffered_events < 1:
            raise ValueError(
                f"max_buffered_events must be >= 1, got {max_buffered_events}"
            )
        self.clock: Callable[[], int] = clock if clock is not None else (lambda: 0)
        self.sinks: List[TraceSink] = list(sinks)
        self.max_buffered_events = max_buffered_events
        #: Events emitted per probe name (metadata excluded) — survives
        #: flushes, feeds the run summary.
        self.counts: Dict[str, int] = {}
        self._events: List[Event] = []
        self._tracks: Dict[Tuple[int, str], int] = {}
        self._next_tid = 1
        self._host_epoch = time.perf_counter()
        self._closed = False
        self._meta("process_name", PID_SIM, 0, {"name": "simulation (1 cycle = 1us)"})
        self._meta("process_name", PID_HOST, 0, {"name": "host profiling"})

    # -- track / metadata management -----------------------------------
    def _meta(self, name: str, pid: int, tid: int, args: dict) -> None:
        self._events.append(("M", name, "__metadata", 0, None, pid, tid, args))

    def register_track(self, label: str, pid: int = PID_SIM) -> int:
        """Get-or-create the thread id for a named track.

        Emits the Chrome ``thread_name`` metadata event on first use, so
        Perfetto shows e.g. ``r0.east.vc1`` instead of a bare number.
        """
        key = (pid, label)
        tid = self._tracks.get(key)
        if tid is None:
            tid = self._next_tid
            self._next_tid += 1
            self._tracks[key] = tid
            self._meta("thread_name", pid, tid, {"name": label})
        return tid

    @property
    def tracks(self) -> Dict[Tuple[int, str], int]:
        """(pid, label) -> tid for every registered track."""
        return dict(self._tracks)

    # -- event recording -----------------------------------------------
    def instant(
        self,
        name: str,
        cat: str,
        tid: int = 0,
        args: Optional[dict] = None,
        ts: Optional[int] = None,
    ) -> None:
        """Record an instant event in the simulated-cycle domain."""
        if ts is None:
            ts = self.clock()
        self.counts[name] = self.counts.get(name, 0) + 1
        self._events.append(("i", name, cat, ts, None, PID_SIM, tid, args))
        if len(self._events) >= self.max_buffered_events:
            self.flush()

    def complete(
        self,
        name: str,
        cat: str,
        ts: int,
        dur: int,
        tid: int = 0,
        args: Optional[dict] = None,
        pid: int = PID_HOST,
    ) -> None:
        """Record a complete (``X``) span with explicit start/duration."""
        self.counts[name] = self.counts.get(name, 0) + 1
        self._events.append(("X", name, cat, ts, dur, pid, tid, args))
        if len(self._events) >= self.max_buffered_events:
            self.flush()

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "run",
        tid: int = 0,
        args: Optional[dict] = None,
    ):
        """Host-time profiling span (µs since tracer construction)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            ended = time.perf_counter()
            self.complete(
                name,
                cat,
                ts=int((started - self._host_epoch) * 1e6),
                dur=int((ended - started) * 1e6),
                tid=tid,
                args=args,
                pid=PID_HOST,
            )

    # -- lifecycle -----------------------------------------------------
    @property
    def total_events(self) -> int:
        """Events recorded so far (metadata excluded)."""
        return sum(self.counts.values())

    def flush(self) -> None:
        """Hand buffered events to every sink and clear the buffer."""
        if not self._events:
            return
        events = self._events
        self._events = []
        for sink in self.sinks:
            sink.write_events(events)

    def close(self) -> None:
        """Flush and finalize every sink; idempotent."""
        if self._closed:
            return
        self._closed = True
        self.flush()
        for sink in self.sinks:
            sink.close()


class NullTracer:
    """API-compatible no-op tracer.

    Components use ``trace is not None`` guards rather than a null
    object (one pointer test beats a no-op method call in the per-event
    paths), but external integrations that want an unconditional tracer
    handle can use this.
    """

    counts: Dict[str, int] = {}
    total_events = 0

    def register_track(self, label: str, pid: int = PID_SIM) -> int:
        return 0

    def instant(self, name, cat, tid=0, args=None, ts=None) -> None:
        pass

    def complete(self, name, cat, ts, dur, tid=0, args=None, pid=PID_HOST) -> None:
        pass

    @contextmanager
    def span(self, name, cat="run", tid=0, args=None):
        yield

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass
