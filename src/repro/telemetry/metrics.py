"""Metrics primitives: counters, gauges and streaming histograms.

A :class:`MetricsRegistry` is a deterministic bag of named instruments:

* :class:`Counter` — monotonically increasing integer,
* :class:`Gauge` — last-write-wins scalar,
* :class:`Histogram` — streaming moments (:class:`RunningStats`) plus a
  :class:`QuantileSketch` for p50/p95/p99.

Instruments are created on first use, snapshots (:meth:`~MetricsRegistry.as_dict`)
are sorted by name, and every operation is a pure function of the
observation sequence — so a registry filled by a worker process equals
the registry a serial run would have produced, which is what lets
per-scenario metrics aggregate into campaign reports regardless of
``--jobs``.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.stats.summary import QuantileSketch, RunningStats


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-write-wins scalar measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming distribution: Welford moments + quantile sketch."""

    __slots__ = ("name", "stats", "sketch")

    def __init__(self, name: str, max_samples: int = 2048) -> None:
        self.name = name
        self.stats = RunningStats()
        self.sketch = QuantileSketch(max_samples=max_samples)

    def observe(self, value: float) -> None:
        self.stats.add(value)
        self.sketch.add(value)

    @property
    def count(self) -> int:
        return self.stats.count

    @property
    def mean(self) -> float:
        return self.stats.mean

    @property
    def std(self) -> float:
        return self.stats.std

    @property
    def min(self) -> float:
        return self.stats.min if self.count else 0.0

    @property
    def max(self) -> float:
        return self.stats.max if self.count else 0.0

    @property
    def p50(self) -> float:
        return self.sketch.p50

    @property
    def p95(self) -> float:
        return self.sketch.p95

    @property
    def p99(self) -> float:
        return self.sketch.p99

    def merge(self, other: "Histogram") -> None:
        self.stats.merge(other.stats)
        self.sketch.merge(other.sketch)

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, p50={self.p50:.3f})"


class MetricsRegistry:
    """Named instruments with get-or-create access and deterministic dumps."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, max_samples: int = 2048) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, max_samples=max_samples)
        return instrument

    # -- convenience ---------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- aggregation / export ------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (campaign-level aggregation)."""
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other.histograms.items():
            self.histogram(name).merge(histogram)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready snapshot, keys sorted for deterministic dumps."""
        return {
            "counters": {n: self.counters[n].value for n in sorted(self.counters)},
            "gauges": {n: self.gauges[n].value for n in sorted(self.gauges)},
            "histograms": {n: self.histograms[n].as_dict() for n in sorted(self.histograms)},
        }

    def format(self) -> str:
        """Human-readable rendering of the registry."""
        return format_metrics_dict(self.as_dict())

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )


def format_metrics_dict(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Render an :meth:`MetricsRegistry.as_dict` snapshot as text."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    if gauges:
        lines.append("gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            value = gauges[name]
            rendered = f"{value:.6g}" if isinstance(value, float) and math.isfinite(value) else str(value)
            lines.append(f"  {name:<{width}}  {rendered}")
    if histograms:
        lines.append("histograms:")
        width = max(len(n) for n in histograms)
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name:<{width}}  n={h['count']} mean={h['mean']:.4g} "
                f"p50/p95/p99={h['p50']:.4g}/{h['p95']:.4g}/{h['p99']:.4g} "
                f"min/max={h['min']:.4g}/{h['max']:.4g}"
            )
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)
