"""Telemetry opt-in configuration.

A :class:`TelemetryConfig` rides on
:class:`~repro.experiments.config.ScenarioConfig` (its ``telemetry``
field, ``None`` = off): one flag turns any existing run into a traced
run.  It is a frozen, hashable, ``dataclasses.asdict``-friendly value
object so scenario cache keys and process-pool pickling keep working
unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

#: Trace file formats the runner can emit (see repro.telemetry.sinks).
VALID_FORMATS: Tuple[str, ...] = ("chrome", "jsonl", "csv")


@dataclasses.dataclass(frozen=True)
class TelemetryConfig:
    """What to observe and where to write it.

    Attributes
    ----------
    trace_dir:
        Directory receiving per-run trace files (created on demand).
        ``None`` keeps the trace in-process only: probes still count
        events and metrics still accumulate, but nothing hits disk.
    formats:
        Subset of :data:`VALID_FORMATS`; ignored when ``trace_dir`` is
        ``None``.  ``chrome`` files open in Perfetto / chrome://tracing.
    metrics:
        Collect a :class:`~repro.telemetry.metrics.MetricsRegistry`
        (simulation counters, latency histogram, phase timings).
    buffers, sensors, policies, ports, faults:
        Per-subsystem probe toggles (all on by default); disabling a
        subsystem skips its instrumentation entirely.
    max_buffered_events:
        Tracer auto-flush threshold (memory bound for long runs).
    """

    trace_dir: Optional[str] = None
    formats: Tuple[str, ...] = ("chrome", "jsonl")
    metrics: bool = True
    buffers: bool = True
    sensors: bool = True
    policies: bool = True
    ports: bool = True
    faults: bool = True
    max_buffered_events: int = 65536

    def __post_init__(self) -> None:
        if not isinstance(self.formats, tuple):
            object.__setattr__(self, "formats", tuple(self.formats))
        unknown = set(self.formats) - set(VALID_FORMATS)
        if unknown:
            raise ValueError(
                f"unknown trace formats {sorted(unknown)}; valid: {VALID_FORMATS}"
            )
        if self.max_buffered_events < 1:
            raise ValueError(
                f"max_buffered_events must be >= 1, got {self.max_buffered_events}"
            )
