"""Telemetry runtime: wires a tracer + metrics registry into a network.

:class:`Telemetry` is the per-run umbrella object the scenario runner
creates when ``ScenarioConfig.telemetry`` is set:

* it builds the configured sinks and the :class:`Tracer`,
* :meth:`attach` installs per-component probe handles into a built
  :class:`~repro.noc.network.Network` (deterministic track naming:
  ``r0.east.vc1``, ``r2.out.north``, ``ni3.inj`` ...),
* :meth:`attach_faults` does the same for a
  :class:`~repro.faults.injector.FaultInjector`'s hooks,
* :meth:`span` times runner phases into the host-profiling track, and
* :meth:`finalize` closes the sinks and distills a picklable
  :class:`TelemetrySummary` that travels back through process pools.

Instrumentation is handle-based: each component gets ``trace`` (the
tracer) and ``trace_id`` (its track) attributes that default to
``None``/0, so the telemetry-off cost is one attribute test on the few
event-driven paths — per-cycle hot loops are never touched.
"""

from __future__ import annotations

import dataclasses
import os
import re
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import ChromeTraceSink, CsvRollupSink, JsonlSink, TraceSink
from repro.telemetry.trace import Tracer

#: trace_dir file suffix per format name.
_FORMAT_SUFFIX = {
    "chrome": ".trace.json",
    "jsonl": ".events.jsonl",
    "csv": ".rollup.csv",
}


def _slug(name: str) -> str:
    """Filesystem-safe run name (trace files are named from labels)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_") or "run"


@dataclasses.dataclass
class TelemetrySummary:
    """Picklable digest of one traced/metered run.

    Attributes
    ----------
    run_name:
        Sanitized name the trace files were derived from.
    event_counts:
        Events emitted per probe name (see repro.telemetry.probes).
    metrics:
        :meth:`MetricsRegistry.as_dict` snapshot (empty when metrics
        collection was off).  Keys starting with ``phase.`` carry host
        wall-clock timings and are the only nondeterministic entries.
    trace_files:
        Paths of every trace artifact written for this run.
    window_start, end_cycle:
        Measurement window: ``reset_stats`` cycle and final cycle.
    measured_stress_cycles, measured_recovery_cycles:
        Per-VC NBTI counter values at the scenario's measured port over
        the window — the ground truth the trace's gate/wake events must
        reconcile with exactly.
    """

    run_name: str
    event_counts: Dict[str, int] = dataclasses.field(default_factory=dict)
    metrics: Dict[str, Dict[str, object]] = dataclasses.field(default_factory=dict)
    trace_files: Tuple[str, ...] = ()
    window_start: int = 0
    end_cycle: int = 0
    measured_stress_cycles: Tuple[int, ...] = ()
    measured_recovery_cycles: Tuple[int, ...] = ()

    @property
    def total_events(self) -> int:
        return sum(self.event_counts.values())


class Telemetry:
    """Per-run telemetry umbrella: tracer + metrics + sink lifecycle."""

    def __init__(self, config: TelemetryConfig, run_name: str = "run") -> None:
        self.config = config
        self.run_name = _slug(run_name)
        sinks: List[TraceSink] = []
        files: List[str] = []
        if config.trace_dir is not None:
            os.makedirs(config.trace_dir, exist_ok=True)
            for fmt in config.formats:
                path = os.path.join(
                    config.trace_dir, self.run_name + _FORMAT_SUFFIX[fmt]
                )
                if fmt == "chrome":
                    sinks.append(ChromeTraceSink(path))
                elif fmt == "jsonl":
                    sinks.append(JsonlSink(path))
                else:
                    sinks.append(CsvRollupSink(path))
                files.append(path)
        self.trace_files: Tuple[str, ...] = tuple(files)
        self.tracer = Tracer(
            sinks=sinks, max_buffered_events=config.max_buffered_events
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if config.metrics else None
        )
        self._finalized: Optional[TelemetrySummary] = None

    # -- wiring --------------------------------------------------------
    def attach(self, network) -> None:
        """Instrument a built network (idempotence not needed: the
        runner attaches exactly once, right after construction)."""
        instrument_network(network, self.tracer, self.config)

    def attach_faults(self, injector) -> None:
        """Instrument a fault injector's hooks (after ``apply``)."""
        if self.config.faults:
            injector.attach_telemetry(self.tracer)

    @contextmanager
    def span(self, name: str):
        """Host-time phase span; also feeds the ``phase.*`` metrics."""
        import time

        started = time.perf_counter()
        with self.tracer.span("run.phase", cat="run", args={"phase": name}):
            yield
        if self.metrics is not None:
            self.metrics.set(f"phase.{name}.seconds", time.perf_counter() - started)

    # -- teardown ------------------------------------------------------
    def finalize(self, network=None, scenario=None) -> TelemetrySummary:
        """Close the sinks and summarize the run; idempotent.

        With ``network``/``scenario`` given, the summary also captures
        the deterministic simulation metrics and the measured port's
        per-VC stress/recovery counters (reconciliation ground truth).
        """
        if self._finalized is not None:
            return self._finalized
        window_start = 0
        end_cycle = 0
        stress: Tuple[int, ...] = ()
        recovery: Tuple[int, ...] = ()
        if network is not None:
            window_start = network.stats_window_start
            end_cycle = network.cycle
            if self.metrics is not None:
                self._harvest_sim_metrics(network)
            if scenario is not None:
                from repro.noc.topology import port_id

                pid = port_id(scenario.measure_port)
                total_vcs = scenario.num_vcs * scenario.num_vnets
                counters = [
                    network.device(scenario.measure_router, pid, vc).counter
                    for vc in range(total_vcs)
                ]
                stress = tuple(c.stress_cycles for c in counters)
                recovery = tuple(c.recovery_cycles for c in counters)
        if self.metrics is not None:
            for name in sorted(self.tracer.counts):
                self.metrics.counter(f"events.{name}").inc(self.tracer.counts[name])
        self.tracer.close()
        self._finalized = TelemetrySummary(
            run_name=self.run_name,
            event_counts=dict(self.tracer.counts),
            metrics=self.metrics.as_dict() if self.metrics is not None else {},
            trace_files=self.trace_files,
            window_start=window_start,
            end_cycle=end_cycle,
            measured_stress_cycles=stress,
            measured_recovery_cycles=recovery,
        )
        return self._finalized

    def _harvest_sim_metrics(self, network) -> None:
        stats = network.stats()
        m = self.metrics
        m.counter("sim.packets_injected").inc(stats.packets_injected)
        m.counter("sim.packets_ejected").inc(stats.packets_ejected)
        m.counter("sim.flits_injected").inc(stats.flits_injected)
        m.counter("sim.flits_ejected").inc(stats.flits_ejected)
        m.counter("sim.sensor_degrade_events").inc(stats.sensor_degrade_events)
        m.counter("sim.sensor_degraded_cycles").inc(stats.sensor_degraded_cycles)
        m.set("sim.cycles", stats.cycles)
        m.set("sim.throughput_flits_per_node_cycle", stats.throughput_flits_per_node_cycle)
        latency = m.histogram("sim.packet_latency")
        for ni in network.interfaces:
            for record in ni.ejection_records:
                latency.observe(record.latency)
        for port in network.upstream_ports():
            m.counter("sim.gate_commands").inc(port.gate_commands)
            m.counter("sim.wake_commands").inc(port.wake_commands)


def instrument_network(network, tracer: Tracer, config: TelemetryConfig) -> None:
    """Install probe handles into every opted-in subsystem of a network.

    Track registration order is deterministic (routers by id, ports in
    sorted id order, VCs ascending), so two runs of the same scenario
    produce identical tid assignments and identical traces.
    """
    from repro.noc.topology import port_name

    tracer.clock = lambda: network.cycle
    # Traced runs must observe every cycle (per-cycle spans, replayable
    # event ordering), so the quiescence fast-forward is disabled.
    network.allow_fast_forward = False

    for router in network.routers:
        rid = router.router_id
        for port in router.input_ports:
            label = f"r{rid}.{port_name(port)}"
            unit = router.inputs[port].unit
            if config.buffers:
                for vc, ivc in enumerate(unit.vcs):
                    tid = tracer.register_track(f"{label}.vc{vc}")
                    ivc.buffer.trace = tracer
                    ivc.buffer.trace_id = tid
            if config.sensors and unit.sensor_bank is not None:
                tid = tracer.register_track(f"{label}.sensors")
                unit.sensor_bank.trace = tracer
                unit.sensor_bank.trace_id = tid

    upstreams = []
    for router in network.routers:
        for port in router.output_ports:
            upstreams.append(
                (f"r{router.router_id}.out.{port_name(port)}",
                 router.outputs[port].upstream)
            )
    for ni in network.interfaces:
        upstreams.append((f"ni{ni.node_id}.inj", ni.injection_port))

    for label, upstream in upstreams:
        tid = tracer.register_track(label)
        if config.ports:
            upstream.trace = tracer
            upstream.trace_id = tid
        if config.policies:
            for engine in upstream.engines:
                policy = engine.policy
                policy.trace = tracer
                policy.trace_tid = tid
                fallback = getattr(policy, "fallback", None)
                if fallback is not None:
                    fallback.trace = tracer
                    fallback.trace_tid = tid
