"""Physical and technology constants for the NBTI reaction-diffusion model.

The long-term NBTI model used by the paper (its Eq. 1, taken from
Bhardwaj et al., CICC'06, and Wang et al.) needs a handful of physical
constants plus per-technology-node parameters.  The values collected here
follow the predictive NBTI modelling literature; where the literature
disagrees, the value is documented and the model exposes a calibration
helper (:func:`repro.nbti.model.NBTIModel.calibrated`) that anchors the
absolute magnitude to a published data point, so that downstream results
depend on ratios rather than on any single constant.

Units
-----
Unless stated otherwise, lengths are in nanometres, times in seconds,
voltages in volts, temperatures in kelvin and energies in electron-volts.
The diffusion constant ``C`` therefore carries nm^2/s.
"""

from __future__ import annotations

import dataclasses

#: Boltzmann constant in eV/K.
BOLTZMANN_EV: float = 8.617333262e-5

#: Activation energy of hydrogen diffusion in the oxide, eV.  Krishnan et
#: al. (IEDM'05) report values around 0.49 eV for H2 diffusion, which is
#: the generally adopted number for the long-term RD model.
ACTIVATION_ENERGY_EV: float = 0.49

#: Pre-exponential constant of the diffusion term ``C = exp(-Ea/kT)/T0``.
#: ``T0`` carries s/nm^2 so that ``C`` has nm^2/s.
DIFFUSION_T0_S_PER_NM2: float = 1.0e-8

#: Field acceleration constant E0 in V/nm (Wang et al. predictive model).
FIELD_ACCELERATION_E0_V_PER_NM: float = 0.335

#: Recovery front factor xi1 (dimensionless) of the long-term model.
XI1: float = 0.9

#: Recovery diffusion factor xi2 (dimensionless) of the long-term model.
XI2: float = 0.5

#: Time exponent ``n`` of the RD model; the paper (and Krishnan et al.)
#: use n = 1/6, i.e. H2-based diffusion.
TIME_EXPONENT_N: float = 1.0 / 6.0

#: Seconds in a Julian year; used for lifetime projections.
SECONDS_PER_YEAR: float = 365.25 * 24.0 * 3600.0

#: Calibration anchor for the PBTI (NMOS, electron-trapping) companion
#: model: |dVth| after three years at 100 % stress.  PBTI is a second-
#: order effect on SiO2/poly nodes but reaches roughly half the NBTI
#: magnitude on high-k metal-gate and FinFET processes (Khalid et al.,
#: and the HKMG reliability literature), which is what the default
#: anchor encodes.  Regimes may override it per scenario.
PBTI_ANCHOR_DELTA_VTH: float = 0.025

#: Horizon of the PBTI calibration anchor, in years.
PBTI_ANCHOR_YEARS: float = 3.0


@dataclasses.dataclass(frozen=True)
class TechnologyNode:
    """Per-technology parameters used by the NBTI model and by area models.

    Attributes
    ----------
    name:
        Human-readable node name, e.g. ``"45nm"``.
    feature_nm:
        Drawn feature size in nanometres.
    vdd:
        Nominal supply voltage in volts.
    vth_nominal:
        Nominal PMOS threshold-voltage magnitude in volts.  The paper's
        Table I gives |Vth| = 0.180 V at 45 nm and 0.160 V at 32 nm.
    vth_sigma:
        Standard deviation of the within-die initial-Vth distribution in
        volts (paper Sec. IV-A: 0.005 V).
    tox_nm:
        Effective oxide thickness in nanometres.
    temperature_k:
        Default operating temperature in kelvin.
    clock_period_s:
        Default clock period in seconds (1 GHz in the paper's Table I).
    """

    name: str
    feature_nm: float
    vdd: float
    vth_nominal: float
    vth_sigma: float
    tox_nm: float
    temperature_k: float
    clock_period_s: float

    @property
    def frequency_hz(self) -> float:
        """Clock frequency implied by :attr:`clock_period_s`."""
        return 1.0 / self.clock_period_s

    def with_temperature(self, temperature_k: float) -> "TechnologyNode":
        """Return a copy of this node at a different operating temperature."""
        return dataclasses.replace(self, temperature_k=temperature_k)


#: 45 nm node used throughout the paper's evaluation (Table I).
TECH_45NM = TechnologyNode(
    name="45nm",
    feature_nm=45.0,
    vdd=1.2,
    vth_nominal=0.180,
    vth_sigma=0.005,
    tox_nm=1.1,
    temperature_k=350.0,
    clock_period_s=1.0e-9,
)

#: 32 nm node also listed in the paper's Table I.
TECH_32NM = TechnologyNode(
    name="32nm",
    feature_nm=32.0,
    vdd=1.2,
    vth_nominal=0.160,
    vth_sigma=0.005,
    tox_nm=1.0,
    temperature_k=350.0,
    clock_period_s=1.0e-9,
)

#: FinFET-flavored node for the joint NBTI+PBTI regimes.  The tri-gate
#: geometry brings a lower supply, a higher |Vth| and a markedly tighter
#: within-die spread (no random-dopant channel), while the high-k metal
#: gate makes PBTI on the NMOS side a first-class aging contributor —
#: which is why the NBTI+PBTI regimes default to this node.
TECH_14NM_FINFET = TechnologyNode(
    name="14nm-finfet",
    feature_nm=14.0,
    vdd=0.80,
    vth_nominal=0.250,
    vth_sigma=0.003,
    tox_nm=0.9,
    temperature_k=350.0,
    clock_period_s=1.0e-9,
)

#: Registry of known nodes keyed by name.
TECHNOLOGY_NODES = {
    TECH_45NM.name: TECH_45NM,
    TECH_32NM.name: TECH_32NM,
    TECH_14NM_FINFET.name: TECH_14NM_FINFET,
}


def get_technology(name: str) -> TechnologyNode:
    """Look up a :class:`TechnologyNode` by name.

    Raises
    ------
    KeyError
        If ``name`` is not a known node (``"45nm"``, ``"32nm"`` or
        ``"14nm-finfet"``).
    """
    try:
        return TECHNOLOGY_NODES[name]
    except KeyError:
        known = ", ".join(sorted(TECHNOLOGY_NODES))
        raise KeyError(f"unknown technology node {name!r}; known nodes: {known}") from None
