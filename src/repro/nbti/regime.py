"""Stress regimes: *how* a scenario ages, beyond the fresh NBTI default.

Every campaign up to now aged factory-fresh devices under NBTI only.  A
:class:`StressRegime` widens that axis in three orthogonal directions:

* **Burn-in pre-stress** — an initial-Vth-shift phase applied *before*
  cycle 0.  The shift is computed from the scenario's own calibrated
  NBTI model (``delta_vth(burn_in_alpha, burn_in_years)``) and threaded
  through the process-variation sampler as a constant offset, so the
  sensors, the most-degraded ranking and the delay projections all see
  pre-aged devices.  The additive treatment is a first-order model: a
  pre-stressed device in reality accumulates slightly *less* further
  shift (sqrt-of-time saturation); see docs/AGING.md.
* **Joint NBTI+PBTI accounting** — a second calibrated
  :class:`~repro.nbti.model.NBTIModel` instance for the NMOS
  (electron-trapping) orientation, summed into the effective |Vth| by
  :class:`~repro.nbti.transistor.PMOSDevice`.  The stress probability is
  the same powered fraction the NBTI duty-cycle counter tracks — a
  rail-gated buffer removes bias from both device flavours — so no hot
  path changes and every engine (stepped, fast-forward, SoA) stays
  bit-identical.
* **A technology override** — e.g. the FinFET-flavored
  :data:`~repro.nbti.constants.TECH_14NM_FINFET` node for the PBTI
  regimes, where the high-k gate stack makes PBTI first-class.

The **rejuvenation policy family** (scheduled deep-recovery windows)
lives in :mod:`repro.core.policies`; regimes and policies compose freely
because they touch disjoint mechanisms (device physics vs. gating
schedule).

The default regime, ``"fresh"``, is a provable no-op: no Vth offset, no
PBTI model, no technology override — byte-identical outputs, enforced by
``tests/test_regime.py``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.nbti.constants import (
    PBTI_ANCHOR_DELTA_VTH,
    SECONDS_PER_YEAR,
    TechnologyNode,
    get_technology,
)
from repro.nbti.model import NBTIModel


@dataclasses.dataclass(frozen=True)
class StressRegime:
    """One named aging regime: burn-in, PBTI and technology knobs.

    Attributes
    ----------
    name:
        Machine name used by :class:`ScenarioConfig.regime`, the CLI
        ``--regime`` flag and the DSE ``regime`` axis.
    burn_in_years, burn_in_alpha:
        Duration and stress probability of the pre-cycle-0 burn-in
        phase.  ``burn_in_years == 0`` disables burn-in entirely.
    pbti:
        Whether to attach the PBTI companion model to every device.
    pbti_anchor_delta_vth:
        Calibration anchor of the PBTI model (|dVth| after three years
        at 100 % stress).
    technology:
        Optional :class:`TechnologyNode` *name* overriding the
        scenario's default node (``None`` keeps the 45 nm default).
    """

    name: str = "fresh"
    burn_in_years: float = 0.0
    burn_in_alpha: float = 1.0
    pbti: bool = False
    pbti_anchor_delta_vth: float = PBTI_ANCHOR_DELTA_VTH
    technology: Optional[str] = None

    def __post_init__(self) -> None:
        if self.burn_in_years < 0.0:
            raise ValueError(f"burn_in_years must be >= 0, got {self.burn_in_years}")
        if not 0.0 < self.burn_in_alpha <= 1.0:
            raise ValueError(f"burn_in_alpha must be in (0, 1], got {self.burn_in_alpha}")
        if self.pbti_anchor_delta_vth <= 0.0:
            raise ValueError(
                f"pbti_anchor_delta_vth must be positive, got {self.pbti_anchor_delta_vth}"
            )
        if self.technology is not None:
            get_technology(self.technology)  # fail fast on unknown nodes

    @property
    def is_fresh(self) -> bool:
        """True when the regime changes nothing about the simulation."""
        return (
            self.burn_in_years == 0.0
            and not self.pbti
            and self.technology is None
        )

    def resolve_technology(self, default: TechnologyNode) -> TechnologyNode:
        """The technology node this regime simulates on."""
        if self.technology is None:
            return default
        return get_technology(self.technology)

    def burn_in_shift(self, model: NBTIModel) -> float:
        """Initial-Vth offset (volts) of the burn-in phase, or 0.0.

        Computed from the scenario's own calibrated model so the offset
        scales consistently with the technology node and any anchor
        overrides.
        """
        if self.burn_in_years == 0.0:
            return 0.0
        return model.delta_vth(
            self.burn_in_alpha, self.burn_in_years * SECONDS_PER_YEAR
        )

    def pbti_model(self, tech: TechnologyNode) -> Optional[NBTIModel]:
        """The calibrated PBTI companion model, or ``None`` when off."""
        if not self.pbti:
            return None
        return NBTIModel.calibrated_pbti(
            tech=tech, anchor_delta_vth=self.pbti_anchor_delta_vth
        )


#: The built-in regimes, keyed by name.
#:
#: * ``fresh`` — factory-fresh devices, NBTI only (the historical
#:   default; provably a no-op).
#: * ``burn-in`` — six months of full-stress burn-in applied before
#:   cycle 0 (a stress screen / early-life field deployment).
#: * ``nbti-pbti`` — joint NBTI+PBTI accounting on the default node.
#: * ``finfet-pbti`` — joint accounting on the 14 nm FinFET node, where
#:   PBTI genuinely reaches NBTI-class magnitudes.
STRESS_REGIMES = {
    regime.name: regime
    for regime in (
        StressRegime(name="fresh"),
        StressRegime(name="burn-in", burn_in_years=0.5, burn_in_alpha=1.0),
        StressRegime(name="nbti-pbti", pbti=True),
        StressRegime(name="finfet-pbti", pbti=True, technology="14nm-finfet"),
    )
}

#: All regime names, sorted (CLI choices, DSE axis levels).
ALL_REGIMES: Tuple[str, ...] = tuple(sorted(STRESS_REGIMES))


def get_regime(name: str) -> StressRegime:
    """Look up a :class:`StressRegime` by name.

    Raises
    ------
    ValueError
        For unknown regime names (so :meth:`ScenarioConfig.__post_init__`
        and the DSE genome validator reject bad axes before any
        simulator time is spent).
    """
    try:
        return STRESS_REGIMES[name]
    except KeyError:
        known = ", ".join(ALL_REGIMES)
        raise ValueError(f"unknown stress regime {name!r}; known regimes: {known}") from None
