"""Per-buffer PMOS device state: initial Vth plus accumulated NBTI shift.

Each VC buffer is guarded by a header PMOS sleep transistor (paper
Sec. III-A); the buffer's SRAM PMOS population is represented, as in the
paper, by its single most-degraded transistor.  :class:`PMOSDevice` ties
together the process-variation initial threshold, the running
:class:`~repro.nbti.duty_cycle.DutyCycleCounter` and the long-term
:class:`~repro.nbti.model.NBTIModel` so that the *current* |Vth| can be
queried at any simulated instant — which is exactly what an on-die NBTI
sensor observes.
"""

from __future__ import annotations

from typing import Optional

from repro.nbti.duty_cycle import DutyCycleCounter
from repro.nbti.model import NBTIModel


class PMOSDevice:
    """A PMOS transistor aging under the long-term RD model.

    Parameters
    ----------
    initial_vth:
        Process-variation-sampled initial |Vth| in volts.
    model:
        Shared :class:`NBTIModel` instance (one per simulation).
    cycle_time_s:
        Wall-clock seconds that one *simulated* cycle represents for aging
        purposes.  With the default (the technology clock period) a 60k
        cycle simulation ages the device by only 60 microseconds, so the
        most-degraded ranking is dominated by process variation — matching
        the paper, where the MD VC is fixed per scenario by the Vth
        sampling.  Lifetime studies pass an *acceleration factor* so that
        simulated duty cycles can be projected over years.
    pbti_model:
        Optional PBTI companion model for the buffer's NMOS side (joint
        NBTI+PBTI regimes).  The buffer is rail-gated, so power-gating
        removes bias from both device flavours and the NBTI duty-cycle
        counter doubles as the PBTI stress probability; the two shifts
        are summed into the effective |Vth|.  ``None`` (the default)
        keeps the historical NBTI-only accounting bit-identical.
    """

    __slots__ = ("initial_vth", "model", "cycle_time_s", "counter", "pbti_model")

    def __init__(
        self,
        initial_vth: float,
        model: NBTIModel,
        cycle_time_s: Optional[float] = None,
        counter: Optional[DutyCycleCounter] = None,
        pbti_model: Optional[NBTIModel] = None,
    ) -> None:
        if initial_vth <= 0.0:
            raise ValueError(f"initial_vth must be positive, got {initial_vth}")
        self.initial_vth = initial_vth
        self.model = model
        self.cycle_time_s = (
            model.tech.clock_period_s if cycle_time_s is None else cycle_time_s
        )
        if self.cycle_time_s <= 0.0:
            raise ValueError(f"cycle_time_s must be positive, got {self.cycle_time_s}")
        self.counter = counter if counter is not None else DutyCycleCounter()
        self.pbti_model = pbti_model

    # ------------------------------------------------------------------
    # Aging bookkeeping
    # ------------------------------------------------------------------
    def tick(self, stressed: bool, cycles: int = 1) -> None:
        """Record ``cycles`` simulated cycles of stress or recovery."""
        self.counter.record(stressed, cycles)

    @property
    def alpha(self) -> float:
        """Cumulative NBTI stress probability in ``[0, 1]``."""
        return self.counter.alpha

    @property
    def duty_cycle(self) -> float:
        """Cumulative NBTI-duty-cycle in percent."""
        return self.counter.duty_cycle

    @property
    def elapsed_seconds(self) -> float:
        """Aging time represented by the observed cycles."""
        return self.counter.total_cycles * self.cycle_time_s

    # ------------------------------------------------------------------
    # Threshold voltage
    # ------------------------------------------------------------------
    def delta_vth(self, at_seconds: Optional[float] = None) -> float:
        """Effective BTI shift for the device's duty cycle after ``at_seconds``.

        With no argument, uses the elapsed simulated time; passing a
        horizon (e.g. 3 years) projects the *measured* duty cycle over a
        lifetime, which is how the paper extracts absolute Vth numbers
        from duty-cycle statistics.  Under a joint NBTI+PBTI regime the
        NMOS companion shift is summed in (same stress probability, its
        own calibrated pre-factor).
        """
        t = self.elapsed_seconds if at_seconds is None else at_seconds
        shift = self.model.delta_vth(self.alpha, t)
        if self.pbti_model is not None:
            shift += self.pbti_model.delta_vth(self.alpha, t)
        return shift

    def nbti_delta_vth(self, at_seconds: Optional[float] = None) -> float:
        """The NBTI-only component of :meth:`delta_vth`."""
        t = self.elapsed_seconds if at_seconds is None else at_seconds
        return self.model.delta_vth(self.alpha, t)

    def pbti_delta_vth(self, at_seconds: Optional[float] = None) -> float:
        """The PBTI component of :meth:`delta_vth` (0.0 when NBTI-only)."""
        if self.pbti_model is None:
            return 0.0
        t = self.elapsed_seconds if at_seconds is None else at_seconds
        return self.pbti_model.delta_vth(self.alpha, t)

    def vth(self, at_seconds: Optional[float] = None) -> float:
        """Current total |Vth| = initial + accumulated shift, in volts."""
        return self.initial_vth + self.delta_vth(at_seconds)

    def projected_vth(self, years: float) -> float:
        """|Vth| projected ``years`` ahead at the current duty cycle."""
        from repro.nbti.constants import SECONDS_PER_YEAR

        return self.vth(at_seconds=years * SECONDS_PER_YEAR)

    def __repr__(self) -> str:
        return (
            f"PMOSDevice(initial_vth={self.initial_vth:.4f}, "
            f"duty={self.duty_cycle:.2f}%, vth={self.vth():.4f})"
        )
