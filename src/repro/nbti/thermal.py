"""Steady-state thermal model: activity -> temperature -> aging feedback.

NBTI is exponentially temperature-dependent (the diffusion Arrhenius
term in the paper's Eq. 1), and a router's temperature follows its power
density.  This module closes that loop at first order:

* :func:`router_temperatures` — per-router steady-state temperature
  ``T = T_ambient + R_th * P_router`` from the simulated activity (a
  lumped thermal-resistance model; HotSpot-class RC networks reduce to
  this in steady state).
* :func:`thermal_aware_projection` — per-device Vth projection where
  each device ages at *its router's* temperature instead of a global
  one, exposing the thermal spread of a chip's aging profile.

The loop is evaluated once (power -> temperature -> aging), which is
the standard quasi-static treatment: NBTI feedback on power over a
simulation window is negligible.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.nbti.constants import SECONDS_PER_YEAR
from repro.nbti.model import NBTIModel

#: Default ambient (package) temperature in kelvin.
DEFAULT_AMBIENT_K = 318.0  # 45 C

#: Default lumped junction-to-ambient thermal resistance per tile, K/mW.
#: Chosen so that a busy router (tens of mW at 1 GHz in this model's
#: ORION-scale energy constants) sits a few tens of kelvin above
#: ambient — the regime NBTI studies assume (the 45 nm node default of
#: 350 K).
DEFAULT_RTH_K_PER_MW = 1.5


@dataclasses.dataclass(frozen=True)
class ThermalProfile:
    """Per-router steady-state temperatures of one simulated chip."""

    ambient_k: float
    rth_k_per_mw: float
    temperatures_k: Dict[int, float]

    @property
    def hottest_router(self) -> int:
        return max(self.temperatures_k, key=lambda r: (self.temperatures_k[r], -r))

    @property
    def spread_k(self) -> float:
        """Hottest-to-coolest spread in kelvin."""
        values = list(self.temperatures_k.values())
        return max(values) - min(values)

    def as_text(self) -> str:
        lines = [
            f"Steady-state router temperatures "
            f"(ambient {self.ambient_k - 273.15:.0f} C, "
            f"Rth {self.rth_k_per_mw} K/mW)"
        ]
        for router, temp in sorted(self.temperatures_k.items()):
            lines.append(f"  router {router:2d}: {temp - 273.15:6.1f} C")
        lines.append(f"  spread: {self.spread_k:.1f} K")
        return "\n".join(lines)


def router_temperatures(
    network,
    ambient_k: float = DEFAULT_AMBIENT_K,
    rth_k_per_mw: float = DEFAULT_RTH_K_PER_MW,
    link_length_mm: float = 1.0,
) -> ThermalProfile:
    """Per-router steady-state temperature from the simulated window.

    ``T_r = ambient + R_th * P_r`` with ``P_r`` the router's average
    power over the measurement window (see
    :func:`repro.area.power.per_router_power_pj`).
    """
    from repro.area.power import per_router_power_pj

    if ambient_k <= 0.0:
        raise ValueError(f"ambient_k must be positive, got {ambient_k}")
    if rth_k_per_mw < 0.0:
        raise ValueError(f"rth_k_per_mw must be >= 0, got {rth_k_per_mw}")
    energies = per_router_power_pj(network, link_length_mm)
    window_cycles = max(
        (d.counter.total_cycles for d in network.devices.values()), default=0
    )
    period_s = network.config.technology.clock_period_s
    temperatures: Dict[int, float] = {}
    for router_id, energy_pj in energies.items():
        if window_cycles == 0:
            power_mw = 0.0
        else:
            power_mw = energy_pj * 1e-12 / (window_cycles * period_s) * 1e3
        temperatures[router_id] = ambient_k + rth_k_per_mw * power_mw
    return ThermalProfile(
        ambient_k=ambient_k,
        rth_k_per_mw=rth_k_per_mw,
        temperatures_k=temperatures,
    )


def thermal_aware_projection(
    network,
    years: float = 3.0,
    profile: Optional[ThermalProfile] = None,
    model: Optional[NBTIModel] = None,
) -> Dict[tuple, float]:
    """Project every device's |Vth| at its router's own temperature.

    Returns ``{(router, port, vc): projected |Vth| in volts}``.  Devices
    on hotter routers age faster (the Arrhenius diffusion term), so two
    buffers with identical duty cycles can diverge — a second
    within-die variability source on top of the PV sample.
    """
    if years <= 0.0:
        raise ValueError(f"years must be positive, got {years}")
    if profile is None:
        profile = router_temperatures(network)
    if model is None:
        model = network.nbti_model
    horizon = years * SECONDS_PER_YEAR
    out: Dict[tuple, float] = {}
    for (router, port, vc), device in network.devices.items():
        temp = profile.temperatures_k[router]
        shift = model.delta_vth(device.alpha, horizon, temperature_k=temp)
        out[(router, port, vc)] = device.initial_vth + shift
    return out
