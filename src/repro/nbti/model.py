"""Long-term reaction-diffusion NBTI model (Eq. 1 of the paper).

The paper adopts the closed-form *long-term* threshold-voltage-shift model
of Bhardwaj et al. (CICC'06) / Wang et al.:

.. math::

    |\\Delta V_{th}| \\approx
        \\left( \\frac{\\sqrt{K_v^2 \\; T_{clk} \\; \\alpha}}
                     {1 - \\beta_t^{1/2n}} \\right)^{2n}

where ``alpha`` is the **NBTI-duty-cycle** (stress probability of the PMOS
device), ``T_clk`` the clock period, ``n = 1/6`` the diffusion time
exponent and

.. math::

    \\beta_t = 1 - \\frac{2 \\xi_1 t_e +
                         \\sqrt{\\xi_2 \\; C \\; (1-\\alpha) \\; T_{clk}}}
                        {2 t_{ox} + \\sqrt{C \\; t}}

captures the fraction of damage that does *not* recover, with the
diffusion term ``C = exp(-Ea / kT) / T0``.

Because the absolute magnitude of the shift depends on a pre-factor
(``K_v``) whose published values vary by device flavour, the model is
**calibrated** by default against the anchor stated in the paper's
introduction: NBTI can raise ``|Vth|`` by *about 50 mV* for devices
operating at 1.2 V (we anchor at 3 years of 100 % stress).  Voltage and
temperature scaling around the anchor follow the physical ``K_v``
dependence (field-acceleration exponential and diffusion Arrhenius term),
so relative comparisons — which are what the paper reports — are
insensitive to the anchor choice.

Example
-------
>>> from repro.nbti.model import NBTIModel
>>> model = NBTIModel.calibrated()
>>> shift_full = model.delta_vth(alpha=1.0, t_seconds=3 * 365.25 * 86400)
>>> round(shift_full, 3)
0.05
>>> model.delta_vth(alpha=0.1, t_seconds=3 * 365.25 * 86400) < shift_full
True
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Optional, Sequence

from repro.nbti.constants import (
    ACTIVATION_ENERGY_EV,
    BOLTZMANN_EV,
    DIFFUSION_T0_S_PER_NM2,
    FIELD_ACCELERATION_E0_V_PER_NM,
    PBTI_ANCHOR_DELTA_VTH,
    PBTI_ANCHOR_YEARS,
    SECONDS_PER_YEAR,
    TECH_45NM,
    TIME_EXPONENT_N,
    XI1,
    XI2,
    TechnologyNode,
)

#: Default calibration anchor: ~50 mV shift (paper Sec. I, citing [2]).
DEFAULT_ANCHOR_DELTA_VTH: float = 0.050

#: Default calibration anchor time: 3 years of continuous stress.
DEFAULT_ANCHOR_YEARS: float = 3.0

_BETA_EPS = 1.0e-12


class NBTIModelError(ValueError):
    """Raised for invalid NBTI-model parameters or inputs."""


@dataclasses.dataclass(frozen=True)
class NBTIModel:
    """Closed-form long-term NBTI threshold-shift model.

    Parameters
    ----------
    kv:
        Pre-factor of the stress term.  Usually obtained through
        :meth:`calibrated` rather than given directly.
    tech:
        Technology node providing ``tox``, ``Vdd``, nominal ``Vth``,
        temperature and clock period defaults.
    temperature_k:
        Operating temperature; defaults to the node's temperature.
    """

    kv: float
    tech: TechnologyNode = TECH_45NM
    temperature_k: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kv <= 0.0:
            raise NBTIModelError(f"kv must be positive, got {self.kv}")
        if self.temperature_k is not None and self.temperature_k <= 0.0:
            raise NBTIModelError(f"temperature must be positive, got {self.temperature_k}")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def calibrated(
        cls,
        tech: TechnologyNode = TECH_45NM,
        anchor_delta_vth: float = DEFAULT_ANCHOR_DELTA_VTH,
        anchor_years: float = DEFAULT_ANCHOR_YEARS,
        anchor_alpha: float = 1.0,
        temperature_k: Optional[float] = None,
    ) -> "NBTIModel":
        """Build a model whose ``kv`` reproduces a known shift.

        Solves ``delta_vth(anchor_alpha, anchor_years) == anchor_delta_vth``
        for ``kv`` in closed form (the model is monotone in ``kv``).
        """
        if anchor_delta_vth <= 0.0:
            raise NBTIModelError("anchor_delta_vth must be positive")
        if anchor_years <= 0.0:
            raise NBTIModelError("anchor_years must be positive")
        if not 0.0 < anchor_alpha <= 1.0:
            raise NBTIModelError("anchor_alpha must be in (0, 1]")
        probe = cls(kv=1.0, tech=tech, temperature_k=temperature_k)
        t_seconds = anchor_years * SECONDS_PER_YEAR
        denom = probe._denominator(anchor_alpha, t_seconds)
        # delta = (kv * sqrt(Tclk * alpha) / denom) ** (2n)
        #   =>  kv = denom * delta**(1/(2n)) / sqrt(Tclk * alpha)
        two_n = 2.0 * TIME_EXPONENT_N
        kv = (
            denom
            * anchor_delta_vth ** (1.0 / two_n)
            / math.sqrt(tech.clock_period_s * anchor_alpha)
        )
        return cls(kv=kv, tech=tech, temperature_k=temperature_k)

    @classmethod
    def calibrated_pbti(
        cls,
        tech: TechnologyNode = TECH_45NM,
        anchor_delta_vth: float = PBTI_ANCHOR_DELTA_VTH,
        anchor_years: float = PBTI_ANCHOR_YEARS,
        anchor_alpha: float = 1.0,
        temperature_k: Optional[float] = None,
    ) -> "NBTIModel":
        """Build the PBTI (NMOS, electron-trapping) companion model.

        PBTI shares the reaction-diffusion time dependence with NBTI —
        the same Eq. 1 closed form applies — but with its own, smaller
        pre-factor: electron trapping in the high-k dielectric rather
        than interface-trap generation under the PMOS gate.  The default
        anchor is half the NBTI magnitude (see
        :data:`repro.nbti.constants.PBTI_ANCHOR_DELTA_VTH`), the
        accepted first-order ratio for HKMG/FinFET nodes.

        The stress orientation is the *powered fraction* as well: a
        rail-gated buffer removes bias from both device flavours, so the
        NBTI duty-cycle counter doubles as the PBTI stress probability
        and the two shifts are summed into the effective |Vth|
        (:meth:`repro.nbti.transistor.PMOSDevice.delta_vth`).
        """
        return cls.calibrated(
            tech=tech,
            anchor_delta_vth=anchor_delta_vth,
            anchor_years=anchor_years,
            anchor_alpha=anchor_alpha,
            temperature_k=temperature_k,
        )

    # ------------------------------------------------------------------
    # Physics pieces
    # ------------------------------------------------------------------
    @property
    def operating_temperature_k(self) -> float:
        """Effective operating temperature used by the diffusion term."""
        if self.temperature_k is not None:
            return self.temperature_k
        return self.tech.temperature_k

    def diffusion_constant(self) -> float:
        """Arrhenius diffusion constant ``C`` in nm^2/s."""
        kt = BOLTZMANN_EV * self.operating_temperature_k
        return math.exp(-ACTIVATION_ENERGY_EV / kt) / DIFFUSION_T0_S_PER_NM2

    def oxide_field(self, vgs: Optional[float] = None) -> float:
        """Oxide electric field ``E_ox = (|Vgs| - |Vth|) / tox`` in V/nm."""
        if vgs is None:
            vgs = self.tech.vdd
        return max(0.0, (abs(vgs) - self.tech.vth_nominal)) / self.tech.tox_nm

    def kv_scaled(self, vdd: Optional[float] = None, temperature_k: Optional[float] = None) -> float:
        """``kv`` rescaled to a different supply voltage / temperature.

        Follows the physical dependence of the ``K_v`` pre-factor:
        linear in the gate overdrive, exponential in the oxide field
        (``exp(2 E_ox / E0)``) and proportional to ``sqrt(C(T))``.
        """
        if vdd is None and temperature_k is None:
            return self.kv
        ref_od = max(1e-9, self.tech.vdd - self.tech.vth_nominal)
        new_vdd = self.tech.vdd if vdd is None else vdd
        new_od = max(0.0, new_vdd - self.tech.vth_nominal)
        e0 = FIELD_ACCELERATION_E0_V_PER_NM
        field_scale = math.exp(
            2.0 * (self.oxide_field(new_vdd) - self.oxide_field(self.tech.vdd)) / e0
        )
        if temperature_k is None:
            temp_scale = 1.0
        else:
            ref_c = self.diffusion_constant()
            new_c = dataclasses.replace(self, temperature_k=temperature_k).diffusion_constant()
            temp_scale = math.sqrt(new_c / ref_c)
        return self.kv * (new_od / ref_od) * field_scale * temp_scale

    def beta_t(self, alpha: float, t_seconds: float) -> float:
        """Recovery fraction ``beta_t`` of the long-term model.

        Clamped to ``(0, 1)`` so that the closed form stays defined for
        extreme inputs (very short total times, alpha -> 1).
        """
        alpha = _validate_alpha(alpha)
        if t_seconds < 0.0:
            raise NBTIModelError(f"t_seconds must be non-negative, got {t_seconds}")
        c = self.diffusion_constant()
        tox = self.tech.tox_nm
        te = tox  # effective oxide thickness of the recovery front
        tclk = self.tech.clock_period_s
        numerator = 2.0 * XI1 * te + math.sqrt(XI2 * c * (1.0 - alpha) * tclk)
        denominator = 2.0 * tox + math.sqrt(c * t_seconds)
        beta = 1.0 - numerator / denominator
        return min(max(beta, _BETA_EPS), 1.0 - _BETA_EPS)

    def _denominator(self, alpha: float, t_seconds: float) -> float:
        beta = self.beta_t(alpha, t_seconds)
        return 1.0 - beta ** (1.0 / (2.0 * TIME_EXPONENT_N))

    # ------------------------------------------------------------------
    # Main API
    # ------------------------------------------------------------------
    def delta_vth(
        self,
        alpha: float,
        t_seconds: float,
        vdd: Optional[float] = None,
        temperature_k: Optional[float] = None,
    ) -> float:
        """Threshold-voltage shift magnitude after ``t_seconds``.

        Parameters
        ----------
        alpha:
            NBTI-duty-cycle (stress probability) in ``[0, 1]``.
        t_seconds:
            Total elapsed operating time (stress + recovery) in seconds.
        vdd, temperature_k:
            Optional overrides; scale ``kv`` physically around the
            calibration point.

        Returns
        -------
        float
            ``|delta Vth|`` in volts.  Zero when ``alpha`` or ``t`` is 0.
        """
        alpha = _validate_alpha(alpha)
        if t_seconds < 0.0:
            raise NBTIModelError(f"t_seconds must be non-negative, got {t_seconds}")
        if alpha == 0.0 or t_seconds == 0.0:
            return 0.0
        kv = self.kv_scaled(vdd=vdd, temperature_k=temperature_k)
        if temperature_k is not None and temperature_k != self.operating_temperature_k:
            # The diffusion term of beta_t is Arrhenius too.
            denom = dataclasses.replace(self, temperature_k=temperature_k)._denominator(
                alpha, t_seconds
            )
        else:
            denom = self._denominator(alpha, t_seconds)
        inner = kv * math.sqrt(self.tech.clock_period_s * alpha) / denom
        return inner ** (2.0 * TIME_EXPONENT_N)

    def delta_vth_after_years(self, alpha: float, years: float, **kwargs: float) -> float:
        """Convenience wrapper of :meth:`delta_vth` with time in years."""
        return self.delta_vth(alpha, years * SECONDS_PER_YEAR, **kwargs)

    def trajectory(self, alpha: float, times_s: Sequence[float]) -> List[float]:
        """Shift magnitudes at each time in ``times_s`` (monotone in time)."""
        return [self.delta_vth(alpha, t) for t in times_s]

    def saving(self, alpha_mitigated: float, alpha_baseline: float, t_seconds: float) -> float:
        """Relative Vth-shift saving of a mitigated duty cycle vs a baseline.

        This is the metric behind the paper's headline *"net NBTI Vth
        saving up to 54.2 % against the baseline NoC"*:

        ``saving = 1 - delta_vth(alpha_mitigated) / delta_vth(alpha_baseline)``

        Returns 0 when the baseline shift is zero.
        """
        base = self.delta_vth(alpha_baseline, t_seconds)
        if base == 0.0:
            return 0.0
        return 1.0 - self.delta_vth(alpha_mitigated, t_seconds) / base

    def alpha_for_saving(self, saving: float, alpha_baseline: float, t_seconds: float) -> float:
        """Invert :meth:`saving`: duty cycle that achieves a target saving.

        Solved numerically by bisection on ``alpha`` in ``(0, alpha_baseline]``.
        """
        if not 0.0 <= saving < 1.0:
            raise NBTIModelError(f"saving must be in [0, 1), got {saving}")
        target = (1.0 - saving) * self.delta_vth(alpha_baseline, t_seconds)
        lo, hi = 0.0, _validate_alpha(alpha_baseline)
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.delta_vth(mid, t_seconds) < target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


def _validate_alpha(alpha: float) -> float:
    """Validate a duty cycle, accepting tiny numerical overshoot."""
    if not -1e-12 <= alpha <= 1.0 + 1e-12:
        raise NBTIModelError(f"alpha (NBTI-duty-cycle) must be in [0, 1], got {alpha}")
    return min(max(alpha, 0.0), 1.0)


def combined_vth(initial_vth: float, model: NBTIModel, alpha: float, t_seconds: float) -> float:
    """Total |Vth| = process-variation initial value + NBTI shift."""
    return initial_vth + model.delta_vth(alpha, t_seconds)


def fleet_delta_vth(model: NBTIModel, alphas: Iterable[float], t_seconds: float) -> List[float]:
    """Shift for each duty cycle in ``alphas`` (helper for table building)."""
    return [model.delta_vth(a, t_seconds) for a in alphas]
