"""Within-die process-variation model for initial PMOS threshold voltages.

The paper (Sec. IV-A) models process variation by giving the header PMOS
of every VC buffer its own initial ``|Vth|`` drawn from a Gaussian with
mean 0.180 V (45 nm) and standard deviation 0.005 V, while die-to-die
variation is assumed constant within a chip.  Crucially, the *same* sample
set is reused across policies for a given {architecture, injection-rate}
pair so the most-degraded VC is consistent between compared policies; the
:class:`ProcessVariationModel` seeds therefore derive deterministically
from a scenario key.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Tuple

import numpy as np

from repro.nbti.constants import TECH_45NM, TechnologyNode

#: Identifies one VC buffer on the chip: (router_id, input_port, vc).
VCKey = Tuple[int, int, int]


def scenario_seed(*parts: object) -> int:
    """Derive a stable 63-bit seed from arbitrary scenario components.

    The paper freezes one Vth sample set per {architecture, traffic
    injection} pair; hashing the scenario description gives every such
    pair a reproducible, order-sensitive seed without manual bookkeeping.

    >>> scenario_seed("4core", 0.1) == scenario_seed("4core", 0.1)
    True
    >>> scenario_seed("4core", 0.1) != scenario_seed("16core", 0.1)
    True
    """
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


@dataclasses.dataclass(frozen=True)
class ProcessVariationModel:
    """Gaussian within-die initial-Vth sampler.

    Parameters
    ----------
    mean_vth:
        Mean |Vth| in volts (0.180 V at 45 nm per the paper's Table I).
    sigma_vth:
        Standard deviation in volts (0.005 V per the paper, citing [25]).
    seed:
        RNG seed; freeze it per scenario via :func:`scenario_seed`.
    die_to_die_offset:
        Constant offset applied to every device on the chip, modelling
        die-to-die variation (paper assumes it constant; default 0).
    vth_offset:
        Constant pre-aging shift added *after* sampling (and after the
        1 mV floor), modelling a burn-in pre-stress phase applied before
        cycle 0: sensors, the most-degraded ranking and delay
        projections all see the pre-aged thresholds.  Applied outside
        the RNG path, so a zero offset leaves the sampled stream — and
        every downstream golden — bit-identical.
    """

    mean_vth: float = TECH_45NM.vth_nominal
    sigma_vth: float = TECH_45NM.vth_sigma
    seed: int = 0
    die_to_die_offset: float = 0.0
    vth_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_vth <= 0.0:
            raise ValueError(f"mean_vth must be positive, got {self.mean_vth}")
        if self.sigma_vth < 0.0:
            raise ValueError(f"sigma_vth must be non-negative, got {self.sigma_vth}")
        if self.vth_offset < 0.0:
            raise ValueError(f"vth_offset must be >= 0, got {self.vth_offset}")

    @classmethod
    def for_technology(cls, tech: TechnologyNode, seed: int = 0) -> "ProcessVariationModel":
        """Build a model from a :class:`TechnologyNode`'s Vth parameters."""
        return cls(mean_vth=tech.vth_nominal, sigma_vth=tech.vth_sigma, seed=seed)

    def with_burn_in(self, vth_offset: float) -> "ProcessVariationModel":
        """Copy of this model with a burn-in pre-stress offset applied."""
        return dataclasses.replace(self, vth_offset=vth_offset)

    def sample(self, count: int) -> List[float]:
        """Draw ``count`` initial |Vth| values (volts), deterministically.

        Values are clipped at 4 sigma from the mean and floored at 1 mV so
        that an extreme draw can never produce a non-physical threshold.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = np.random.default_rng(self.seed)
        draws = rng.normal(self.mean_vth, self.sigma_vth, size=count)
        lo = self.mean_vth - 4.0 * self.sigma_vth
        hi = self.mean_vth + 4.0 * self.sigma_vth
        draws = np.clip(draws, lo, hi) + self.die_to_die_offset
        if self.vth_offset:
            return [max(1e-3, float(v)) + self.vth_offset for v in draws]
        return [max(1e-3, float(v)) for v in draws]

    def sample_chip(self, vc_keys: List[VCKey]) -> Dict[VCKey, float]:
        """Sample an initial |Vth| for every VC buffer key, reproducibly.

        The mapping is stable for a fixed key list and seed, and — because
        draws are positional — inserting a router changes downstream
        assignments; callers should enumerate keys in a canonical order
        (the :class:`~repro.noc.network.Network` does).
        """
        values = self.sample(len(vc_keys))
        return dict(zip(vc_keys, values))

    def most_degraded(self, vths: Dict[VCKey, float]) -> VCKey:
        """Key of the device with the highest initial |Vth| (worst PMOS).

        Ties break toward the lowest key — the same rule as the sensor
        banks' priority encoder and the runner harvest.
        """
        if not vths:
            raise ValueError("cannot select the most degraded device of an empty chip")
        return min(vths.items(), key=lambda kv: (-kv[1], kv[0]))[0]
