"""Cycle-alternating (short-term) NBTI model: explicit stress/recovery.

The paper's Eq. 1 is the *long-term closed form* of the
reaction-diffusion model — valid once millions of stress/recovery
alternations have averaged out.  This module provides an explicit
phase-by-phase integrator for studies the closed form cannot express
(consolidated vs. finely chopped recovery windows, irregular duty
patterns, what-if schedules):

* **Stress** follows the RD fractional power law
  ``dVth(t) = Ks * t^n`` composed through *equivalent stress time*
  (``t_eq = (dVth / Ks)^(1/n)``), which makes chunked integration exact
  for pure stress.  The prefactor ``Ks`` is tied to the calibrated
  long-term model at full duty, so both models agree by construction at
  ``alpha = 1``.
* **Recovery** anneals a fraction of the accumulated shift following
  the RD recovery front (Bhardwaj et al., CICC'06):

  .. math:: \\Delta V \\leftarrow \\Delta V \\left( 1 -
            \\frac{2\\xi_1 t_e + \\sqrt{\\xi_2 C t_r}}
                 {2 t_{ox} + \\sqrt{C t}} \\right)

For intermediate duty cycles the integrator and the closed form agree
qualitatively (same orderings, same order of magnitude) but not
numerically — the closed form encodes the *per-clock-cycle* alternation
limit, while the integrator is exact for the explicit schedule it is
given.  The tests pin down both facts.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

from repro.nbti.constants import SECONDS_PER_YEAR, TIME_EXPONENT_N, XI1, XI2
from repro.nbti.model import NBTIModel

#: Reference horizon used to tie the stress prefactor to the long-term
#: model (the default calibration anchor).
_REFERENCE_T_S = 3.0 * SECONDS_PER_YEAR


@dataclasses.dataclass
class ShortTermNBTI:
    """Explicit stress/recovery phase integrator.

    Parameters
    ----------
    model:
        Calibrated :class:`NBTIModel` providing the physics constants
        and the full-duty anchor the stress prefactor is tied to.
    """

    model: NBTIModel

    def __post_init__(self) -> None:
        # Ks such that pure stress matches the long-term model at the
        # reference horizon: dVth = Ks * t^n.
        anchor = self.model.delta_vth(1.0, _REFERENCE_T_S)
        self._ks = anchor / _REFERENCE_T_S ** TIME_EXPONENT_N

    @property
    def stress_prefactor(self) -> float:
        """``Ks`` of the pure-stress law ``dVth = Ks * t^n``."""
        return self._ks

    def equivalent_stress_time(self, delta_vth: float) -> float:
        """Stress seconds that would produce ``delta_vth`` from scratch."""
        if delta_vth < 0.0:
            raise ValueError(f"delta_vth must be >= 0, got {delta_vth}")
        if delta_vth == 0.0:
            return 0.0
        return (delta_vth / self._ks) ** (1.0 / TIME_EXPONENT_N)

    def stress(self, delta_vth: float, duration_s: float) -> float:
        """Shift after an additional stress phase of ``duration_s``."""
        if duration_s < 0.0:
            raise ValueError(f"duration must be >= 0, got {duration_s}")
        if duration_s == 0.0:
            return delta_vth
        t_eq = self.equivalent_stress_time(delta_vth)
        return self._ks * (t_eq + duration_s) ** TIME_EXPONENT_N

    def recover(self, delta_vth: float, duration_s: float, total_time_s: float) -> float:
        """Shift after a recovery phase of ``duration_s``.

        ``total_time_s`` is the device's age (the diffusion front depth
        grows with it, making old damage ever harder to anneal).
        """
        if delta_vth < 0.0:
            raise ValueError(f"delta_vth must be >= 0, got {delta_vth}")
        if duration_s < 0.0:
            raise ValueError(f"duration must be >= 0, got {duration_s}")
        if total_time_s <= 0.0:
            raise ValueError(f"total_time must be > 0, got {total_time_s}")
        if duration_s == 0.0 or delta_vth == 0.0:
            return delta_vth
        c = self.model.diffusion_constant()
        tox = self.model.tech.tox_nm
        te = tox
        fraction = (2.0 * XI1 * te + math.sqrt(XI2 * c * duration_s)) / (
            2.0 * tox + math.sqrt(c * total_time_s)
        )
        return delta_vth * max(0.0, 1.0 - fraction)

    # ------------------------------------------------------------------
    def simulate_duty(
        self,
        alpha: float,
        period_s: float,
        total_time_s: float,
        initial_delta: float = 0.0,
    ) -> float:
        """Alternate stress/recovery at duty ``alpha`` for ``total_time_s``.

        Each period of ``period_s`` seconds spends ``alpha * period_s``
        in stress followed by the rest in recovery.
        """
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if period_s <= 0.0 or total_time_s <= 0.0:
            raise ValueError("period and total time must be positive")
        steps = max(1, int(round(total_time_s / period_s)))
        delta = initial_delta
        elapsed = 0.0
        for _ in range(steps):
            if alpha > 0.0:
                delta = self.stress(delta, alpha * period_s)
            elapsed += alpha * period_s
            rest = (1.0 - alpha) * period_s
            if rest > 0.0:
                elapsed += rest
                delta = self.recover(delta, rest, elapsed)
        return delta

    def trajectory(
        self,
        alpha: float,
        period_s: float,
        checkpoints_s: List[float],
    ) -> List[Tuple[float, float]]:
        """(time, shift) samples along a duty-cycled aging run."""
        out: List[Tuple[float, float]] = []
        delta = 0.0
        previous = 0.0
        for checkpoint in sorted(checkpoints_s):
            span = checkpoint - previous
            if span > 0.0:
                delta = self.simulate_duty(
                    alpha, period_s, span, initial_delta=delta
                )
            out.append((checkpoint, delta))
            previous = checkpoint
        return out


def compare_with_long_term(
    model: NBTIModel,
    alpha: float,
    total_time_s: float,
    period_s: Optional[float] = None,
) -> Tuple[float, float]:
    """(short-term shift, long-term shift) for the same duty cycle.

    A validation helper: at ``alpha = 1`` the two match by construction
    at the reference horizon; at intermediate duty cycles they agree to
    within a small factor (see the tests).
    """
    short = ShortTermNBTI(model)
    if period_s is None:
        period_s = total_time_s / 1000.0
    return (
        short.simulate_duty(alpha, period_s, total_time_s),
        model.delta_vth(alpha, total_time_s),
    )
