"""NBTI stress/recovery accounting (the *NBTI-duty-cycle* of the paper).

The paper defines::

    NBTI-duty-cycle = stress_cycles / (stress_cycles + recovery_cycles) * 100

where a VC buffer is in *stress* whenever it is powered (storing flits or
merely idle with a meaningless input vector) and in *recovery* only when it
is power-gated.  :class:`DutyCycleCounter` implements exactly that
bookkeeping; :class:`WindowedDutyCycle` adds a sliding-window view used by
adaptive extensions and by diagnostics.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Tuple


class DutyCycleCounter:
    """Accumulates stress and recovery cycles for one device.

    The counter is deliberately tiny — one is instantiated per VC buffer
    per router port, and it is bumped every simulated cycle.

    Example
    -------
    >>> c = DutyCycleCounter()
    >>> c.record(stressed=True, cycles=3)
    >>> c.record(stressed=False, cycles=1)
    >>> c.duty_cycle
    75.0
    """

    __slots__ = ("stress_cycles", "recovery_cycles")

    def __init__(self, stress_cycles: int = 0, recovery_cycles: int = 0) -> None:
        if stress_cycles < 0 or recovery_cycles < 0:
            raise ValueError("cycle counts must be non-negative")
        self.stress_cycles = stress_cycles
        self.recovery_cycles = recovery_cycles

    def record(self, stressed: bool, cycles: int = 1) -> None:
        """Add ``cycles`` to the stress or recovery tally."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        if stressed:
            self.stress_cycles += cycles
        else:
            self.recovery_cycles += cycles

    @property
    def total_cycles(self) -> int:
        """Observed cycles so far (stress + recovery)."""
        return self.stress_cycles + self.recovery_cycles

    @property
    def duty_cycle(self) -> float:
        """NBTI-duty-cycle in percent; 100.0 when nothing was observed.

        An unobserved device is reported fully stressed because a powered
        buffer with no recorded recovery is, from the NBTI standpoint,
        always under stress (paper Sec. III-A).
        """
        total = self.total_cycles
        if total == 0:
            return 100.0
        return 100.0 * self.stress_cycles / total

    @property
    def alpha(self) -> float:
        """Duty cycle as a stress probability in ``[0, 1]`` (model input)."""
        return self.duty_cycle / 100.0

    @property
    def recovery_fraction(self) -> float:
        """Fraction of observed cycles spent power-gated, in ``[0, 1]``.

        The complement of :attr:`alpha` (0.0 when nothing was observed);
        the quantity the rejuvenation policies maximize during their
        deep-recovery windows.
        """
        return 1.0 - self.alpha

    def reset(self) -> None:
        """Zero both tallies (used when discarding warm-up cycles)."""
        self.stress_cycles = 0
        self.recovery_cycles = 0

    def snapshot(self) -> Tuple[int, int]:
        """Return ``(stress_cycles, recovery_cycles)``."""
        return (self.stress_cycles, self.recovery_cycles)

    def merge(self, other: "DutyCycleCounter") -> "DutyCycleCounter":
        """Return a new counter with the sums of both tallies."""
        return DutyCycleCounter(
            self.stress_cycles + other.stress_cycles,
            self.recovery_cycles + other.recovery_cycles,
        )

    def __repr__(self) -> str:
        return (
            f"DutyCycleCounter(stress={self.stress_cycles}, "
            f"recovery={self.recovery_cycles}, duty={self.duty_cycle:.2f}%)"
        )


class WindowedDutyCycle:
    """Sliding-window duty cycle over the last ``window`` cycles.

    Useful for adaptive policies and for plotting duty-cycle transients;
    the paper's tables use end-of-simulation cumulative values, which the
    plain :class:`DutyCycleCounter` provides.
    """

    __slots__ = ("window", "_bits", "_stress_in_window")

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._bits: Deque[bool] = deque(maxlen=window)
        self._stress_in_window = 0

    def record(self, stressed: bool) -> None:
        """Push one cycle's stress bit into the window."""
        if len(self._bits) == self.window:
            oldest = self._bits[0]
            if oldest:
                self._stress_in_window -= 1
        self._bits.append(stressed)
        if stressed:
            self._stress_in_window += 1

    @property
    def samples(self) -> int:
        """Number of cycles currently inside the window."""
        return len(self._bits)

    @property
    def duty_cycle(self) -> float:
        """Windowed NBTI-duty-cycle in percent (100.0 when empty)."""
        if not self._bits:
            return 100.0
        return 100.0 * self._stress_in_window / len(self._bits)


def duty_cycles_percent(counters: Iterable[DutyCycleCounter]) -> List[float]:
    """Duty cycles (percent) for an iterable of counters, in order."""
    return [c.duty_cycle for c in counters]


def duty_cycles_percent_arrays(stress, recovery) -> List[float]:
    """Vectorized :func:`duty_cycles_percent` over struct-of-arrays tallies.

    ``stress`` and ``recovery`` are equal-length integer NumPy arrays
    (the SoA engine's accounting store).  The result matches
    :attr:`DutyCycleCounter.duty_cycle` element-wise — including the
    100.0 convention for unobserved devices — and, because each percent
    is computed as ``100.0 * stress / total`` in double precision just
    like the scalar property, the floats are bit-identical.
    """
    import numpy as np

    total = stress + recovery
    out = np.full(len(total), 100.0)
    observed = total > 0
    out[observed] = 100.0 * stress[observed] / total[observed]
    return [float(v) for v in out]
