"""NBTI aging substrate: RD model, duty cycles, process variation, sensors.

This package provides everything the paper's estimation framework needs on
the reliability side:

* :mod:`repro.nbti.constants` — physical constants and technology nodes.
* :mod:`repro.nbti.model` — the closed-form long-term reaction-diffusion
  NBTI model (the paper's Eq. 1) with calibration helpers.
* :mod:`repro.nbti.duty_cycle` — NBTI-duty-cycle accounting.
* :mod:`repro.nbti.process_variation` — within-die Gaussian initial-Vth
  sampling frozen per scenario.
* :mod:`repro.nbti.transistor` — per-buffer PMOS state (initial Vth +
  accumulated shift).
* :mod:`repro.nbti.sensor` — the NBTI sensor library and per-port banks.
"""

from repro.nbti.constants import (
    PBTI_ANCHOR_DELTA_VTH,
    PBTI_ANCHOR_YEARS,
    SECONDS_PER_YEAR,
    TECH_14NM_FINFET,
    TECH_32NM,
    TECH_45NM,
    TECHNOLOGY_NODES,
    TechnologyNode,
    get_technology,
)
from repro.nbti.delay import (
    ALPHA_POWER_EXPONENT,
    FrequencyTrajectory,
    delay_factor,
    frequency_factor,
    frequency_trajectory,
    guardband_lifetime_years,
    joint_bti_delay_factor,
)
from repro.nbti.regime import (
    ALL_REGIMES,
    STRESS_REGIMES,
    StressRegime,
    get_regime,
)
from repro.nbti.duty_cycle import DutyCycleCounter, WindowedDutyCycle
from repro.nbti.model import NBTIModel, NBTIModelError
from repro.nbti.shortterm import ShortTermNBTI, compare_with_long_term
from repro.nbti.thermal import (
    ThermalProfile,
    router_temperatures,
    thermal_aware_projection,
)
from repro.nbti.process_variation import ProcessVariationModel, scenario_seed
from repro.nbti.sensor import (
    IdealSensor,
    NBTISensor,
    NoisySensor,
    QuantizedSensor,
    SensorBank,
)
from repro.nbti.transistor import PMOSDevice

__all__ = [
    "PBTI_ANCHOR_DELTA_VTH",
    "PBTI_ANCHOR_YEARS",
    "SECONDS_PER_YEAR",
    "TECH_14NM_FINFET",
    "TECH_32NM",
    "TECH_45NM",
    "TECHNOLOGY_NODES",
    "TechnologyNode",
    "get_technology",
    "ALPHA_POWER_EXPONENT",
    "FrequencyTrajectory",
    "delay_factor",
    "frequency_factor",
    "frequency_trajectory",
    "guardband_lifetime_years",
    "joint_bti_delay_factor",
    "ALL_REGIMES",
    "STRESS_REGIMES",
    "StressRegime",
    "get_regime",
    "DutyCycleCounter",
    "WindowedDutyCycle",
    "NBTIModel",
    "NBTIModelError",
    "ShortTermNBTI",
    "compare_with_long_term",
    "ThermalProfile",
    "router_temperatures",
    "thermal_aware_projection",
    "ProcessVariationModel",
    "scenario_seed",
    "IdealSensor",
    "NBTISensor",
    "NoisySensor",
    "QuantizedSensor",
    "SensorBank",
    "PMOSDevice",
]
