"""NBTI sensor library: models of the 45 nm multi-degradation sensor.

The paper instruments every VC buffer of a downstream router with an NBTI
sensor (one per buffer, 16 per 4x4-VC router) modelled after the 45 nm
synthesizable multi-degradation sensor of Singh et al. [20].  The policy
consumes a single piece of information from the sensor bank: *which VC is
currently the most degraded*.  This module provides:

* :class:`IdealSensor` — reads the true |Vth|.
* :class:`NoisySensor` — adds zero-mean Gaussian measurement noise.
* :class:`QuantizedSensor` — quantizes to an ADC step (optionally on top
  of noise), matching the digital-output nature of [20].
* :class:`SensorBank` — one sensor per VC of an input port, sampled every
  ``sample_period`` cycles; reduces the readings to the most-degraded VC
  id that travels over the ``Down_Up`` link.

Sensor error knobs exist so the robustness of the most-degraded argmax can
be studied (an extension beyond the paper's tables; see
``benchmarks/bench_sensor_error.py``).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.nbti.transistor import PMOSDevice
from repro.telemetry import probes


class NBTISensor:
    """Base sensor: measures a device's |Vth| (volts)."""

    #: Silicon area of one sensor instance in um^2, used by the area
    #: model.  Calibrated so that 16 sensors cost ~3.25 % of the paper's
    #: reference router (Sec. III-D); kept in sync with
    #: ``repro.area.overhead.SENSOR_AREA_UM2`` (the canonical constant).
    AREA_UM2: float = 72.0

    def measure(self, device: PMOSDevice) -> float:
        """Return the sensed |Vth| of ``device``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return type(self).__name__


class IdealSensor(NBTISensor):
    """Noise-free sensor: returns the exact device threshold."""

    def measure(self, device: PMOSDevice) -> float:
        return device.vth()


class NoisySensor(NBTISensor):
    """Sensor with zero-mean Gaussian measurement noise.

    Parameters
    ----------
    sigma_v:
        Noise standard deviation in volts.  Singh et al. report sub-mV
        effective resolution; 0.5 mV is the default.
    seed:
        Seed for the sensor's private RNG (measurements are reproducible).
    """

    def __init__(self, sigma_v: float = 0.0005, seed: int = 0) -> None:
        if sigma_v < 0.0:
            raise ValueError(f"sigma_v must be non-negative, got {sigma_v}")
        self.sigma_v = sigma_v
        self._rng = np.random.default_rng(seed)

    def measure(self, device: PMOSDevice) -> float:
        return device.vth() + float(self._rng.normal(0.0, self.sigma_v))

    def describe(self) -> str:
        return f"NoisySensor(sigma={self.sigma_v * 1e3:.2f}mV)"


class QuantizedSensor(NBTISensor):
    """Sensor with an ADC-style quantization step, optionally noisy.

    Parameters
    ----------
    lsb_v:
        Quantization step (least-significant bit) in volts.
    inner:
        Optional underlying sensor whose reading is quantized; defaults
        to an :class:`IdealSensor`.
    """

    def __init__(self, lsb_v: float = 0.001, inner: Optional[NBTISensor] = None) -> None:
        if lsb_v <= 0.0:
            raise ValueError(f"lsb_v must be positive, got {lsb_v}")
        self.lsb_v = lsb_v
        self.inner = inner if inner is not None else IdealSensor()

    def measure(self, device: PMOSDevice) -> float:
        raw = self.inner.measure(device)
        return math.floor(raw / self.lsb_v) * self.lsb_v

    def describe(self) -> str:
        return f"QuantizedSensor(lsb={self.lsb_v * 1e3:.2f}mV, inner={self.inner.describe()})"


class SensorBank:
    """One NBTI sensor per VC buffer of a router input port.

    The bank is sampled every ``sample_period`` cycles; in between, the
    last most-degraded verdict is held (the real sensor integrates over
    long windows, so per-cycle resampling would be unphysical anyway).
    Ties break toward the lowest VC id, which models a fixed priority
    encoder in the comparator logic.

    Parameters
    ----------
    devices:
        The PMOS devices guarding each VC buffer, indexed by VC id.
    sensor:
        Measurement model shared by all sensors in the bank.
    sample_period:
        Cycles between measurements (default 1024).
    """

    __slots__ = (
        "devices", "sensor", "sample_period", "fault", "trace", "trace_id",
        "_last_md", "_last_readings", "_last_sample_cycle",
    )

    def __init__(
        self,
        devices: Sequence[PMOSDevice],
        sensor: Optional[NBTISensor] = None,
        sample_period: int = 1024,
    ) -> None:
        if not devices:
            raise ValueError("a sensor bank needs at least one device")
        if sample_period <= 0:
            raise ValueError(f"sample_period must be positive, got {sample_period}")
        self.devices = list(devices)
        self.sensor = sensor if sensor is not None else IdealSensor()
        self.sample_period = sample_period
        #: Optional fault-injection hook (see :mod:`repro.faults`).  When
        #: set, it intercepts :meth:`sample` and :meth:`most_degraded_in`;
        #: the bank itself stays fault-free by default.
        self.fault = None
        #: Telemetry handle + track id (see repro.telemetry.runtime);
        #: ``None``/0 outside traced runs.
        self.trace = None
        self.trace_id = 0
        self._last_readings: List[float] = [d.initial_vth for d in self.devices]
        self._last_md = self._argmax(self._last_readings)
        self._last_sample_cycle = -1

    @staticmethod
    def _argmax(readings: Sequence[float]) -> int:
        best, best_v = 0, readings[0]
        for i, v in enumerate(readings):
            if v > best_v:
                best, best_v = i, v
        return best

    def sample(self, cycle: int) -> int:
        """Measure (if the period elapsed) and return the most-degraded VC.

        Safe to call every cycle; actual measurements happen on cycle 0
        and then once per ``sample_period``.  A fault hook, when
        installed, intercepts the measurement (stuck/dropped sensors).
        """
        if self.fault is not None:
            return self.fault.sample(self, cycle)
        return self._sample(cycle)

    def _sample(self, cycle: int) -> int:
        """The fault-free measurement path (hooks delegate back here)."""
        if self._last_sample_cycle < 0 or cycle - self._last_sample_cycle >= self.sample_period:
            self._last_readings = [self.sensor.measure(d) for d in self.devices]
            md = self._argmax(self._last_readings)
            if self.trace is not None:
                self.trace.instant(
                    probes.SENSOR_SAMPLE, "sensor", tid=self.trace_id,
                    args={"md": md}, ts=cycle,
                )
                if md != self._last_md:
                    self.trace.instant(
                        probes.SENSOR_MD_CHANGE, "sensor", tid=self.trace_id,
                        args={"from": self._last_md, "to": md}, ts=cycle,
                    )
            self._last_md = md
            self._last_sample_cycle = cycle
        return self._last_md

    def sample_age(self, cycle: int) -> int:
        """Cycles elapsed since the bank last actually measured.

        0 means the bank sampled this very cycle; before any sample has
        happened the age counts from the build-time latch at cycle -1
        (i.e. ``cycle + 1``).  Diagnostics and the staleness watchdog
        both key off this.
        """
        return cycle - self._last_sample_cycle

    @property
    def last_sample_cycle(self) -> int:
        """Cycle of the most recent actual measurement (-1 = never)."""
        return self._last_sample_cycle

    def most_degraded_in(self, start: int, count: int) -> int:
        """Most-degraded VC within ``[start, start+count)`` (global id).

        This is the comparator reduction that feeds one vnet's
        ``Down_Up`` lines; a fault hook may pin or distort it.
        """
        if self.fault is not None:
            return self.fault.most_degraded_in(self, start, count)
        return self._most_degraded_in(start, count)

    def _most_degraded_in(self, start: int, count: int) -> int:
        readings = self._last_readings
        local = max(range(count), key=lambda i: (readings[start + i], -i))
        return start + local

    @property
    def most_degraded(self) -> int:
        """Most recent most-degraded VC id (without triggering a sample)."""
        return self._last_md

    @property
    def readings(self) -> List[float]:
        """Most recent per-VC |Vth| readings in volts."""
        return list(self._last_readings)

    def true_most_degraded(self) -> int:
        """Ground-truth argmax over the devices' true |Vth| (diagnostics)."""
        return self._argmax([d.vth() for d in self.devices])

    def misidentification(self) -> bool:
        """Whether the sensed MD VC currently disagrees with ground truth."""
        return self._last_md != self.true_most_degraded()
