"""Threshold-shift to circuit-performance translation (alpha-power law).

The paper motivates NBTI mitigation with its performance consequence:
*"circuit performance degradation may reach 20 % in 10 years"* (Sec. I,
citing Nassif et al.).  The standard translation is the alpha-power-law
MOSFET delay model:

.. math::

    t_d \\;\\propto\\; \\frac{V_{dd}}{(V_{dd} - V_{th})^{\\alpha}}

with the velocity-saturation exponent ``alpha ~ 1.3`` for deep-submicron
CMOS.  A threshold shift ``dVth`` therefore slows a gate by
``((Vdd - Vth0) / (Vdd - Vth0 - dVth))^alpha``; a pipeline's maximum
frequency degrades by the inverse factor.

This module converts the duty cycles the policies achieve into lifetime
frequency trajectories and guardband lifetimes — the system-level
argument for the sensor-wise methodology.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

from repro.nbti.constants import SECONDS_PER_YEAR, TECH_45NM, TechnologyNode
from repro.nbti.model import NBTIModel

#: Velocity-saturation exponent of the alpha-power-law delay model.
ALPHA_POWER_EXPONENT = 1.3


def delay_factor(
    delta_vth: float,
    initial_vth: Optional[float] = None,
    tech: TechnologyNode = TECH_45NM,
    alpha: float = ALPHA_POWER_EXPONENT,
) -> float:
    """Gate-delay multiplier caused by a threshold shift.

    Parameters
    ----------
    delta_vth:
        NBTI shift magnitude in volts (>= 0).
    initial_vth:
        Pre-aging |Vth|; defaults to the technology nominal.
    tech, alpha:
        Technology node (supplies Vdd) and the power-law exponent.

    Returns
    -------
    float
        ``>= 1.0``; 1.0 when the shift is zero.

    Raises
    ------
    ValueError
        If the aged device no longer has positive overdrive (the
        transistor effectively stops switching — the paper's "stuck"
        worst case).
    """
    if delta_vth < 0.0:
        raise ValueError(f"delta_vth must be >= 0, got {delta_vth}")
    vth0 = tech.vth_nominal if initial_vth is None else initial_vth
    overdrive0 = tech.vdd - vth0
    overdrive = overdrive0 - delta_vth
    if overdrive0 <= 0.0:
        raise ValueError(f"no overdrive at initial vth {vth0} (vdd={tech.vdd})")
    if overdrive <= 0.0:
        raise ValueError(
            f"aged device has no overdrive left (dVth={delta_vth * 1e3:.1f} mV)"
        )
    return (overdrive0 / overdrive) ** alpha


def frequency_factor(
    delta_vth: float,
    initial_vth: Optional[float] = None,
    tech: TechnologyNode = TECH_45NM,
    alpha: float = ALPHA_POWER_EXPONENT,
) -> float:
    """Maximum-frequency multiplier (``<= 1.0``) after a shift."""
    return 1.0 / delay_factor(delta_vth, initial_vth, tech, alpha)


def joint_bti_delay_factor(
    nbti_delta_vth: float,
    pbti_delta_vth: float,
    initial_vth: Optional[float] = None,
    tech: TechnologyNode = TECH_45NM,
    alpha: float = ALPHA_POWER_EXPONENT,
) -> float:
    """Gate-delay multiplier under joint NBTI+PBTI aging.

    First-order treatment matching
    :meth:`repro.nbti.transistor.PMOSDevice.delta_vth`: the PMOS (NBTI)
    and NMOS (PBTI) shifts are summed into one effective threshold shift
    before the alpha-power translation.  Both shifts must be >= 0; the
    NBTI-only case (``pbti_delta_vth == 0``) reduces exactly to
    :func:`delay_factor`.
    """
    if pbti_delta_vth < 0.0:
        raise ValueError(f"pbti_delta_vth must be >= 0, got {pbti_delta_vth}")
    return delay_factor(nbti_delta_vth + pbti_delta_vth, initial_vth, tech, alpha)


@dataclasses.dataclass(frozen=True)
class FrequencyTrajectory:
    """Max-frequency evolution of a device at a fixed duty cycle."""

    duty_cycle_percent: float
    years: List[float]
    frequency_factors: List[float]

    @property
    def final_degradation(self) -> float:
        """Fractional frequency loss at the last horizon (0.05 = 5 %)."""
        return 1.0 - self.frequency_factors[-1]


def frequency_trajectory(
    model: NBTIModel,
    duty_cycle_percent: float,
    years: Sequence[float] = (1, 2, 3, 5, 7, 10),
    initial_vth: Optional[float] = None,
) -> FrequencyTrajectory:
    """Project max frequency over ``years`` for a measured duty cycle."""
    if not 0.0 <= duty_cycle_percent <= 100.0:
        raise ValueError(f"duty cycle must be in [0, 100], got {duty_cycle_percent}")
    alpha = duty_cycle_percent / 100.0
    factors = []
    for y in years:
        shift = model.delta_vth(alpha, y * SECONDS_PER_YEAR)
        factors.append(frequency_factor(shift, initial_vth, model.tech))
    return FrequencyTrajectory(
        duty_cycle_percent=duty_cycle_percent,
        years=list(years),
        frequency_factors=factors,
    )


def guardband_lifetime_years(
    model: NBTIModel,
    duty_cycle_percent: float,
    max_degradation: float = 0.05,
    initial_vth: Optional[float] = None,
    horizon_years: float = 100.0,
) -> float:
    """Years until frequency degradation exceeds a guardband.

    Returns ``inf`` when the guardband is never crossed within the
    search horizon.  Solved by bisection (degradation is monotone in
    time).
    """
    if not 0.0 < max_degradation < 1.0:
        raise ValueError(f"max_degradation must be in (0, 1), got {max_degradation}")
    alpha = duty_cycle_percent / 100.0

    def degradation(years: float) -> float:
        shift = model.delta_vth(alpha, years * SECONDS_PER_YEAR)
        try:
            return 1.0 - frequency_factor(shift, initial_vth, model.tech)
        except ValueError:
            return 1.0  # no overdrive left: fully degraded

    if degradation(horizon_years) < max_degradation:
        return math.inf
    lo, hi = 0.0, horizon_years
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if degradation(mid) < max_degradation:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
