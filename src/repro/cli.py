"""Command-line interface: regenerate any of the paper's artifacts.

Examples
--------
::

    repro-noc setup                      # Table I (experimental setup)
    repro-noc table2 --cycles 20000      # Table II (synthetic, 4 VCs)
    repro-noc table3                     # Table III (synthetic, 2 VCs)
    repro-noc table4 --iterations 10     # Table IV (benchmark mixes)
    repro-noc area                       # Sec. III-D overhead report
    repro-noc vth --rate 0.1             # Sec. V Vth-saving projection
    repro-noc cooperation --rate 0.1     # Sec. V cooperation gain
    repro-noc simulate --policy sensor-wise --nodes 16 --vcs 4
    repro-noc campaign --jobs 4 --cache-dir .repro-cache
    repro-noc fault-campaign --jobs 4 --timeout 300 --retries 1
    repro-noc trace --cycles 2000 --out-dir traces   # Chrome/Perfetto trace
    repro-noc metrics --cycles 2000 --json m.json    # metrics-only telemetry
    repro-noc campaign --checkpoint-dir out/         # crash-safe campaign
    repro-noc campaign --resume out/                 # pick up where it died
    repro-noc campaign --workers 4                   # 4 loopback lease workers
    repro-noc serve --checkpoint-dir out/            # coordinator on :8765
    repro-noc worker --connect HOST:8765             # join from another host
    repro-noc health --connect HOST:8765             # probe /healthz (overload)
    repro-noc fault-campaign --budget --retries 1    # adaptive resource budgets
    repro-noc campaign --budget-cpu 120 --budget-rss 8192  # explicit caps
    repro-noc cache verify --cache-dir .repro-cache  # scan cache for rot
    repro-noc cache verify --checkpoint-dir out/     # scan journal for rot
    repro-noc dse screen --jobs 4                    # factorial effect ranking
    repro-noc dse search --generations 8 --jobs 4    # NSGA-II Pareto search
    repro-noc dse search --checkpoint-dir dse/ --resume dse/
    repro-noc dse report dse_report.json             # re-render a saved front

Pass ``-v``/``-q`` (before the subcommand, repeatable) to raise or
lower stderr diagnostic verbosity; artifact output on stdout is
unaffected.

The defaults use scaled-down cycle counts (see DESIGN.md §3); pass
``--cycles``/``--warmup`` for longer runs.  Table/campaign/sweep
commands accept ``--jobs N`` (process-parallel scenarios, identical
results), ``--cache-dir`` (skip already-computed scenarios) and
``--checkpoint-dir`` (write-ahead scenario journal: an interrupted or
killed run resumes from where it stopped, with byte-identical output).

Exit codes: 0 success, 75 (``EX_TEMPFAIL``) campaign drained after
SIGINT/SIGTERM with the journal flushed (resumable), 130 hard cancel
on a second signal, 2 unusable checkpoint directory, 3 resource budget
exceeded (every other scenario completed and was journaled; re-run
with a larger ``--budget-*`` to retry the offenders).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.telemetry.log import emit, get_logger, setup_cli_logging

log = get_logger("cli")


def _add_sim_args(parser: argparse.ArgumentParser, cycles: int = 20_000) -> None:
    from repro.nbti.regime import ALL_REGIMES

    parser.add_argument("--cycles", type=int, default=cycles, help="measured cycles")
    parser.add_argument("--warmup", type=int, default=2_000, help="warm-up cycles to discard")
    parser.add_argument("--seed", type=int, default=1, help="master seed")
    parser.add_argument(
        "--regime", choices=ALL_REGIMES, default="fresh",
        help="stress regime the devices age under (burn-in pre-stress, "
        "joint NBTI+PBTI, technology override); 'fresh' reproduces the "
        "paper's NBTI-only behaviour",
    )


def _jobs_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0 (0 = auto-detect), got {value}"
        )
    return value


def _add_exec_args(
    parser: argparse.ArgumentParser, serve_port: Optional[int] = None
) -> None:
    parser.add_argument(
        "--jobs", type=_jobs_count, default=1, metavar="N",
        help="parallel worker processes (0 = auto-detect, 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk scenario result cache (reruns skip computed scenarios)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write-ahead scenario journal + campaign.state.json: a killed "
        "run re-pointed at the same directory resumes from the journal",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="collect per-scenario timing distributions into the summary",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="distributed execution: spawn N loopback 'repro-noc worker' "
        "processes and shard scenarios to them over lease-based HTTP "
        "(survives worker crashes; results byte-identical to serial)",
    )
    parser.add_argument(
        "--port", type=int, default=serve_port, metavar="PORT",
        help="listen for external 'repro-noc worker --connect' processes "
        "on this port (0 = ephemeral; implies distributed execution)"
        + (" [default: %(default)s]" if serve_port is not None else ""),
    )
    parser.add_argument(
        "--bind", default="127.0.0.1", metavar="HOST",
        help="coordinator bind address (default loopback; bind 0.0.0.0 "
        "to accept workers from other hosts)",
    )
    parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the coordinator's bound host:port here (for scripts "
        "using --port 0)",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=60.0, metavar="SECONDS",
        help="seconds without a heartbeat before a worker's scenario "
        "lease expires and is reassigned",
    )
    parser.add_argument(
        "--poison-threshold", type=int, default=3, metavar="N",
        help="distinct workers that must fail a scenario before it is "
        "quarantined as poisoned instead of requeued",
    )
    parser.add_argument(
        "--budget", action="store_true",
        help="govern every scenario with adaptive resource budgets "
        "derived from its predicted cost (cycles x routers x VCs); "
        "budget breaches become typed failures and repeat offenders "
        "are quarantined",
    )
    parser.add_argument(
        "--budget-wall", type=float, default=None, metavar="SECONDS",
        help="explicit per-scenario wall-clock budget (implies --budget)",
    )
    parser.add_argument(
        "--budget-cpu", type=float, default=None, metavar="SECONDS",
        help="explicit per-scenario CPU budget, enforced in the worker "
        "via RLIMIT_CPU (implies --budget)",
    )
    parser.add_argument(
        "--budget-rss", type=float, default=None, metavar="MB",
        help="explicit per-scenario memory budget in MB, enforced via "
        "RLIMIT_AS/RLIMIT_DATA (implies --budget)",
    )
    parser.add_argument(
        "--budget-scale", type=float, default=None, metavar="FACTOR",
        help="stretch (or tighten) the adaptive budget defaults by this "
        "factor (implies --budget)",
    )


def _make_distributed(args: argparse.Namespace):
    """DistributedSpec from --workers/--port (None = run locally)."""
    workers = getattr(args, "workers", 0)
    port = getattr(args, "port", None)
    if workers == 0 and port is None:
        return None
    from repro.experiments.distributed import DistributedSpec

    return DistributedSpec(
        bind=args.bind,
        port=port if port is not None else 0,
        local_workers=workers,
        lease_timeout=args.lease_timeout,
        poison_threshold=getattr(args, "poison_threshold", 3),
        port_file=args.port_file,
    )


def _make_governor(args: argparse.Namespace):
    """GovernorSpec from --budget/--budget-* (None = ungoverned)."""
    wall = getattr(args, "budget_wall", None)
    cpu = getattr(args, "budget_cpu", None)
    rss_mb = getattr(args, "budget_rss", None)
    scale = getattr(args, "budget_scale", None)
    if not getattr(args, "budget", False) and all(
        value is None for value in (wall, cpu, rss_mb, scale)
    ):
        return None
    from repro.experiments.governor import GovernorSpec

    return GovernorSpec(
        wall_seconds=wall,
        cpu_seconds=cpu,
        rss_bytes=int(rss_mb * 1024 * 1024) if rss_mb is not None else None,
        scale=scale if scale is not None else 1.0,
    )


def _close_executor(executor) -> None:
    """Stop an executor's embedded coordinator/workers (idempotent)."""
    if executor is not None:
        executor.close()


def _add_resume_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume from this checkpoint directory; the original campaign "
        "configuration is restored from the journal header (other "
        "configuration flags are ignored)",
    )


# ``serve`` is ``campaign`` with a coordinator port: their checkpoints
# are interchangeable, so journals record the canonical command name.
_META_COMMAND = {"serve": "campaign"}


def _meta_command(args: argparse.Namespace) -> str:
    return _META_COMMAND.get(args.command, args.command)


def _make_checkpoint(args: argparse.Namespace, config_blob):
    """CheckpointManager from --resume/--checkpoint-dir (or ``None``).

    ``--resume`` restores the campaign description stored in the journal
    header; ``--checkpoint-dir`` starts (or implicitly resumes) a journal
    described by ``config_blob``.
    """
    from repro.experiments.checkpoint import CheckpointError, CheckpointManager

    command = _meta_command(args)
    resume = getattr(args, "resume", None)
    if resume is not None:
        meta = CheckpointManager.load_meta(resume)
        if _META_COMMAND.get(meta.get("command"), meta.get("command")) != command:
            raise CheckpointError(
                f"{resume} holds a {meta.get('command')!r} checkpoint, "
                f"not {command!r}"
            )
        return CheckpointManager(resume, meta=meta)
    if getattr(args, "checkpoint_dir", None) is not None:
        meta = {"command": command, "config": config_blob}
        return CheckpointManager(args.checkpoint_dir, meta=meta)
    return None


def _make_executor(args: argparse.Namespace, checkpoint=None):
    """Executor from --jobs/--cache-dir (None keeps the serial path)."""
    from repro.experiments.parallel import make_executor

    executor = make_executor(
        args.jobs,
        cache_dir=args.cache_dir,
        progress=log.info,
        profile=getattr(args, "profile", False),
        checkpoint=checkpoint,
        distributed=_make_distributed(args),
        governor=_make_governor(args),
    )
    return executor


def _print_exec_summary(executor) -> None:
    if executor is not None:
        log.info(executor.summary())


def _dse_blob(args: argparse.Namespace) -> dict:
    """The resume-able description of a DSE run (journal meta payload)."""
    return {
        "nodes": args.nodes,
        "vcs": args.vcs,
        "rate": args.rate,
        "traffic": args.traffic,
        "cycles": args.cycles,
        "warmup": args.warmup,
        "seed": args.seed,
        "regime": args.regime,
        "params": list(args.param or ()),
        "objectives": [
            name.strip() for name in args.objectives.split(",") if name.strip()
        ],
    }


def _dse_setup(blob: dict):
    """(space, objectives) from a DSE description blob.

    Rebuilding from the blob — not from live argparse values — is what
    makes ``--resume`` restore the original space even when the retyped
    flags disagree.
    """
    from repro.dse import default_space, parse_param_spec, resolve_objectives
    from repro.dse.space import DesignSpace
    from repro.experiments.config import ScenarioConfig

    base = ScenarioConfig(
        num_nodes=blob["nodes"], num_vcs=blob["vcs"],
        injection_rate=blob["rate"], traffic=blob["traffic"],
        cycles=blob["cycles"], warmup=blob["warmup"], seed=blob["seed"],
        regime=blob.get("regime", "fresh"),  # pre-regime journals resume
    )
    if blob["params"]:
        space = DesignSpace(
            [parse_param_spec(spec) for spec in blob["params"]], base=base
        )
    else:
        space = default_space(base)
    return space, resolve_objectives(blob["objectives"])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-noc",
        description=(
            "Reproduction of 'Sensor-wise methodology to face NBTI stress "
            "of NoC buffers' (DATE 2013)"
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more diagnostics on stderr (repeatable)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="less diagnostics on stderr (repeatable)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("setup", help="print the Table I experimental setup")

    p2 = sub.add_parser("table2", help="Table II: synthetic traffic, 4 VCs")
    _add_sim_args(p2)
    _add_exec_args(p2)

    p3 = sub.add_parser("table3", help="Table III: synthetic traffic, 2 VCs")
    _add_sim_args(p3)
    _add_exec_args(p3)

    p4 = sub.add_parser("table4", help="Table IV: benchmark-mix traffic, 2 VCs")
    _add_sim_args(p4, cycles=15_000)
    _add_exec_args(p4)
    p4.add_argument("--iterations", type=int, default=10, help="benchmark mixes per scenario")

    parea = sub.add_parser("area", help="Sec. III-D area-overhead report")
    parea.add_argument("--vcs", type=int, default=4, help="VCs per input port")
    parea.add_argument("--ports", type=int, default=4, help="router ports")
    parea.add_argument("--flit-bits", type=int, default=64, help="flit width in bits")

    pvth = sub.add_parser("vth", help="Sec. V net Vth-saving projection")
    _add_sim_args(pvth)
    pvth.add_argument("--nodes", type=int, default=4)
    pvth.add_argument("--vcs", type=int, default=4)
    pvth.add_argument("--rate", type=float, default=0.1, help="flits/cycle/node")
    pvth.add_argument("--years", type=float, default=3.0, help="projection horizon")

    pcoop = sub.add_parser("cooperation", help="Sec. V cooperation gain")
    _add_sim_args(pcoop)
    pcoop.add_argument("--nodes", type=int, default=4)
    pcoop.add_argument("--vcs", type=int, default=2)
    pcoop.add_argument("--rate", type=float, default=0.1)

    pcamp = sub.add_parser(
        "campaign", help="regenerate every paper artifact into one report"
    )
    _add_sim_args(pcamp, cycles=12_000)
    _add_exec_args(pcamp)
    pcamp.add_argument("--iterations", type=int, default=10)
    pcamp.add_argument("--out", default="campaign_report.md", help="markdown report path")
    pcamp.add_argument("--json-dir", default=None, help="also persist tables as JSON here")
    pcamp.add_argument(
        "--skip-real", action="store_true",
        help="skip the Table IV benchmark-mix runs (the slowest part)",
    )
    _add_resume_arg(pcamp)

    pserve = sub.add_parser(
        "serve",
        help="distributed campaign coordinator: 'campaign' that listens "
        "for repro-noc worker processes (port default 8765)",
    )
    _add_sim_args(pserve, cycles=12_000)
    _add_exec_args(pserve, serve_port=8765)  # DEFAULT_PORT
    pserve.add_argument("--iterations", type=int, default=10)
    pserve.add_argument("--out", default="campaign_report.md", help="markdown report path")
    pserve.add_argument("--json-dir", default=None, help="also persist tables as JSON here")
    pserve.add_argument(
        "--skip-real", action="store_true",
        help="skip the Table IV benchmark-mix runs (the slowest part)",
    )
    _add_resume_arg(pserve)

    pworker = sub.add_parser(
        "worker",
        help="lease scenarios from a coordinator ('serve' or --port/--workers "
        "run) until it shuts down",
    )
    pworker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address, e.g. 127.0.0.1:8765",
    )
    pworker.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="stable identity for lease accounting (default: hostname-pid)",
    )
    pworker.add_argument(
        "--poll", type=float, default=1.0, metavar="SECONDS",
        help="idle poll interval while the coordinator has no work",
    )
    pworker.add_argument(
        "--max-errors", type=int, default=30, metavar="N",
        help="exit 1 after this many consecutive connection failures",
    )

    phealth = sub.add_parser(
        "health",
        help="probe a coordinator's /healthz endpoint (overload verdict, "
        "queue depth, lease churn, memory pressure, commit breaker)",
    )
    phealth.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address, e.g. 127.0.0.1:8765",
    )
    phealth.add_argument(
        "--timeout", type=float, default=10.0, metavar="SECONDS",
        help="probe timeout",
    )

    psweep = sub.add_parser("sweep", help="injection-rate sweep with CSV export")
    _add_sim_args(psweep, cycles=10_000)
    _add_exec_args(psweep)
    psweep.add_argument("--nodes", type=int, default=4)
    psweep.add_argument("--vcs", type=int, default=2)
    psweep.add_argument(
        "--rates", default="0.1,0.2,0.3,0.4,0.5",
        help="comma-separated flits/cycle/node values",
    )
    psweep.add_argument(
        "--policies", default="rr-no-sensor,sensor-wise",
        help="comma-separated policy names",
    )
    psweep.add_argument("--csv", default=None, help="also write the sweep to this CSV")

    ppow = sub.add_parser("power", help="router power/leakage report for one scenario")
    _add_sim_args(ppow, cycles=10_000)
    ppow.add_argument("--nodes", type=int, default=4)
    ppow.add_argument("--vcs", type=int, default=2)
    ppow.add_argument("--rate", type=float, default=0.2)
    ppow.add_argument("--policy", default="sensor-wise")

    pfault = sub.add_parser(
        "fault-campaign",
        help="fault-injection resilience sweep (kinds x rates x policies)",
    )
    _add_sim_args(pfault, cycles=2_000)
    _add_exec_args(pfault)
    pfault.add_argument("--nodes", type=int, default=4)
    pfault.add_argument("--vcs", type=int, default=2)
    pfault.add_argument("--rate", type=float, default=0.1, help="flits/cycle/node")
    pfault.add_argument(
        "--sample-period", type=int, default=128,
        help="sensor sample period (campaign default is short so the "
        "staleness watchdog can trip within the run)",
    )
    pfault.add_argument(
        "--kinds", default=None,
        help="comma-separated fault kinds (default: campaign standard set)",
    )
    pfault.add_argument(
        "--fault-rates", default="0.0,0.5,1.0",
        help="comma-separated fault rates in [0,1]; 0.0 is the baseline row",
    )
    pfault.add_argument(
        "--policies", default="rr-no-sensor,sensor-wise",
        help="comma-separated policy names",
    )
    pfault.add_argument(
        "--validate-every", type=int, default=16,
        help="validate_network sweep period in cycles (0 disables)",
    )
    pfault.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-scenario wall-clock timeout (hung cells become FAILED rows)",
    )
    pfault.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry crashed/hung cells up to N times with backoff",
    )
    pfault.add_argument("--out", default=None, help="write the markdown report here")
    pfault.add_argument("--json", default=None, help="write the deterministic JSON report here")
    _add_resume_arg(pfault)

    pcache = sub.add_parser(
        "cache", help="inspect the on-disk scenario result cache"
    )
    cache_sub = pcache.add_subparsers(dest="cache_command", required=True)
    pverify = cache_sub.add_parser(
        "verify",
        help="scan every cache entry (and orphaned temp files) and report rot",
    )
    pverify.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory to scan",
    )
    pverify.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="also verify this checkpoint directory's scenario journal "
        "(header digest, per-record CRC, torn tail)",
    )

    pdse = sub.add_parser(
        "dse",
        help="design-space exploration: factorial screening, surrogate-"
        "assisted NSGA-II search, Pareto reports",
    )
    dse_sub = pdse.add_subparsers(dest="dse_command", required=True)

    def _add_dse_base_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--nodes", type=int, default=4)
        p.add_argument("--vcs", type=int, default=2)
        p.add_argument("--rate", type=float, default=0.1, help="flits/cycle/node")
        p.add_argument(
            "--traffic", default="uniform",
            help="synthetic pattern name or 'benchmark-mix'",
        )
        p.add_argument(
            "--objectives", default="md_duty,p95_latency",
            help="comma-separated objective names (see docs/DSE.md)",
        )
        p.add_argument(
            "--param", action="append", default=None, metavar="NAME=V1,V2,...",
            help="search this ScenarioConfig field over the listed levels "
            "(repeatable; default: the stock sensor-wise space)",
        )

    pscreen = dse_sub.add_parser(
        "screen",
        help="two-level fractional-factorial screening: rank parameter "
        "effects from a handful of corner runs",
    )
    _add_sim_args(pscreen, cycles=4_000)
    _add_exec_args(pscreen)
    _add_dse_base_args(pscreen)
    pscreen.add_argument(
        "--threshold", type=float, default=0.05,
        help="normalized-effect floor below which an axis is reported prunable",
    )
    pscreen.add_argument("--json", default=None, help="write the effects report here")

    psearch = dse_sub.add_parser(
        "search",
        help="seeded NSGA-II search with surrogate pre-screening and "
        "per-generation checkpoints",
    )
    _add_sim_args(psearch, cycles=4_000)
    _add_exec_args(psearch)
    _add_dse_base_args(psearch)
    psearch.add_argument("--population", type=int, default=12)
    psearch.add_argument("--generations", type=int, default=8)
    psearch.add_argument(
        "--offspring-multiplier", type=int, default=3,
        help="candidates proposed per population slot; the surrogate "
        "pre-screen keeps the predicted-best population-sized subset",
    )
    psearch.add_argument("--crossover-rate", type=float, default=0.9)
    psearch.add_argument(
        "--mutation-rate", type=float, default=None,
        help="per-gene mutation probability (default 1/num_parameters)",
    )
    psearch.add_argument(
        "--no-surrogate", action="store_true",
        help="disable the surrogate pre-screen (every offspring is simulated)",
    )
    psearch.add_argument(
        "--surrogate-min-samples", type=int, default=12,
        help="archived evaluations required before the surrogate may gate",
    )
    psearch.add_argument(
        "--surrogate-min-r2", type=float, default=0.5,
        help="cross-validated R² every objective model must clear",
    )
    psearch.add_argument(
        "--out", default="dse_report.json",
        help="canonical Pareto-front JSON (byte-identical per seed)",
    )
    psearch.add_argument("--csv", default=None, help="also export the front as CSV")
    _add_resume_arg(psearch)

    preport = dse_sub.add_parser(
        "report", help="re-render a saved dse search report"
    )
    preport.add_argument("json", help="report written by 'dse search --out'")
    preport.add_argument("--csv", default=None, help="also export the front as CSV")

    psim = sub.add_parser("simulate", help="run one scenario and print a summary")
    _add_sim_args(psim)
    psim.add_argument("--nodes", type=int, default=4)
    psim.add_argument("--vcs", type=int, default=2)
    psim.add_argument("--rate", type=float, default=0.1)
    psim.add_argument("--policy", default="sensor-wise")
    psim.add_argument(
        "--traffic", default="uniform",
        help="synthetic pattern name or 'benchmark-mix'",
    )

    ptrace = sub.add_parser(
        "trace", help="run one scenario with cycle-level tracing enabled"
    )
    _add_sim_args(ptrace, cycles=2_000)
    ptrace.add_argument("--nodes", type=int, default=4)
    ptrace.add_argument("--vcs", type=int, default=2)
    ptrace.add_argument("--rate", type=float, default=0.1)
    ptrace.add_argument("--policy", default="sensor-wise")
    ptrace.add_argument(
        "--traffic", default="uniform",
        help="synthetic pattern name or 'benchmark-mix'",
    )
    ptrace.add_argument(
        "--out-dir", default="traces", metavar="DIR",
        help="directory the trace files are written into",
    )
    ptrace.add_argument(
        "--formats", default="chrome,jsonl",
        help="comma-separated trace sinks: chrome, jsonl, csv",
    )

    pmet = sub.add_parser(
        "metrics", help="run one scenario collecting metrics only (no trace files)"
    )
    _add_sim_args(pmet, cycles=2_000)
    pmet.add_argument("--nodes", type=int, default=4)
    pmet.add_argument("--vcs", type=int, default=2)
    pmet.add_argument("--rate", type=float, default=0.1)
    pmet.add_argument("--policy", default="sensor-wise")
    pmet.add_argument(
        "--traffic", default="uniform",
        help="synthetic pattern name or 'benchmark-mix'",
    )
    pmet.add_argument("--json", default=None, help="also write the metrics as JSON here")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.experiments.checkpoint import (
        EXIT_HARD_CANCEL,
        EXIT_INTERRUPTED,
        CampaignInterrupted,
        CheckpointError,
    )
    from repro.experiments.governor import BudgetExceeded

    args = build_parser().parse_args(argv)
    setup_cli_logging(args.verbose - args.quiet)
    try:
        return _dispatch(args)
    except CheckpointError as exc:
        log.error("%s", exc)
        return 2
    except BudgetExceeded as exc:
        log.error("%s", exc)
        return 3
    except CampaignInterrupted as exc:
        directory = getattr(args, "resume", None) or getattr(
            args, "checkpoint_dir", None
        )
        if hasattr(args, "resume"):
            hint = f"repro-noc {args.command} --resume {directory}"
        else:
            hint = f"rerun with --checkpoint-dir {directory}"
        log.warning(
            "interrupted: %d scenario(s) not run; journal flushed — "
            "resume with '%s'", exc.pending, hint,
        )
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        log.error("hard cancel: partial state kept, journal still resumable")
        return EXIT_HARD_CANCEL


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "worker":
        from repro.experiments.distributed import run_worker

        return run_worker(
            args.connect,
            worker_id=args.worker_id,
            poll=args.poll,
            max_errors=args.max_errors,
        )

    if args.command == "health":
        import json as json_module

        from repro.experiments.distributed.protocol import (
            ProtocolError,
            URLError,
            get_json,
        )

        base = (
            args.connect if "://" in args.connect else f"http://{args.connect}"
        )
        url = base.rstrip("/") + "/healthz"
        try:
            blob = get_json(url, timeout=args.timeout)
        except (URLError, OSError, ProtocolError) as exc:
            log.error("coordinator unreachable at %s: %s", url, exc)
            return 2
        emit(json_module.dumps(blob, indent=2, sort_keys=True))
        return 0 if blob.get("status") == "ok" else 1

    if args.command == "setup":
        from repro.experiments.config import format_experimental_setup

        emit(format_experimental_setup())
        return 0

    if args.command in ("table2", "table3"):
        from repro.experiments.checkpoint import graceful_shutdown
        from repro.experiments.tables import run_synthetic_table

        num_vcs = 4 if args.command == "table2" else 2
        checkpoint = _make_checkpoint(
            args,
            {"num_vcs": num_vcs, "cycles": args.cycles,
             "warmup": args.warmup, "seed": args.seed,
             "regime": args.regime},
        )
        executor = _make_executor(args, checkpoint=checkpoint)
        try:
            with graceful_shutdown(executor, notify=log.warning):
                table = run_synthetic_table(
                    num_vcs=num_vcs, cycles=args.cycles, warmup=args.warmup,
                    seed=args.seed, executor=executor,
                    scenario_kwargs={"regime": args.regime},
                )
        finally:
            _close_executor(executor)
            if checkpoint is not None:
                checkpoint.close()
        emit(table.format())
        _print_exec_summary(executor)
        return 0

    if args.command == "table4":
        from repro.experiments.checkpoint import graceful_shutdown
        from repro.experiments.tables import run_real_table

        checkpoint = _make_checkpoint(
            args,
            {"iterations": args.iterations, "cycles": args.cycles,
             "warmup": args.warmup, "seed": args.seed,
             "regime": args.regime},
        )
        executor = _make_executor(args, checkpoint=checkpoint)
        try:
            with graceful_shutdown(executor, notify=log.warning):
                table = run_real_table(
                    iterations=args.iterations,
                    cycles=args.cycles,
                    warmup=args.warmup,
                    seed=args.seed,
                    executor=executor,
                    scenario_kwargs={"regime": args.regime},
                )
        finally:
            _close_executor(executor)
            if checkpoint is not None:
                checkpoint.close()
        emit(table.format())
        _print_exec_summary(executor)
        return 0

    if args.command == "area":
        from repro.area import RouterGeometry, compute_overhead_report

        geometry = RouterGeometry(
            num_ports=args.ports, num_vcs=args.vcs, flit_width_bits=args.flit_bits
        )
        emit(compute_overhead_report(geometry).as_text())
        return 0

    if args.command == "vth":
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.tables import run_vth_saving

        scenario = ScenarioConfig(
            num_nodes=args.nodes, num_vcs=args.vcs, injection_rate=args.rate,
            cycles=args.cycles, warmup=args.warmup, seed=args.seed,
            regime=args.regime,
        )
        emit(run_vth_saving(scenario, years=args.years).format())
        return 0

    if args.command == "cooperation":
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.tables import run_cooperation_gain

        scenario = ScenarioConfig(
            num_nodes=args.nodes, num_vcs=args.vcs, injection_rate=args.rate,
            cycles=args.cycles, warmup=args.warmup, seed=args.seed,
            regime=args.regime,
        )
        emit(run_cooperation_gain(scenario).format())
        return 0

    if args.command in ("campaign", "serve"):
        import dataclasses

        from repro.experiments.campaign import CampaignConfig, run_campaign
        from repro.experiments.checkpoint import graceful_shutdown

        config = CampaignConfig(
            cycles=args.cycles,
            warmup=args.warmup,
            iterations=args.iterations,
            seed=args.seed,
            include_real_traffic=not args.skip_real,
            regime=args.regime,
        )
        checkpoint = _make_checkpoint(args, dataclasses.asdict(config))
        if args.resume is not None:
            # The journal header is the source of truth on resume.
            config = CampaignConfig(**checkpoint.meta["config"])
        executor = _make_executor(args, checkpoint=checkpoint)
        try:
            with graceful_shutdown(executor, notify=log.warning):
                result = run_campaign(
                    config, report_path=args.out, json_dir=args.json_dir,
                    executor=executor, checkpoint=checkpoint,
                )
        finally:
            _close_executor(executor)
            if checkpoint is not None:
                checkpoint.close()
        emit(result.to_markdown())
        emit(f"report written to {args.out} ({result.wall_seconds:.0f}s)")
        _print_exec_summary(executor)
        return 0

    if args.command == "sweep":
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.sweeps import run_injection_sweep

        from repro.experiments.checkpoint import graceful_shutdown

        rates = [float(r) for r in args.rates.split(",") if r]
        policies = [p for p in args.policies.split(",") if p]
        base = ScenarioConfig(
            num_nodes=args.nodes, num_vcs=args.vcs,
            cycles=args.cycles, warmup=args.warmup, seed=args.seed,
            regime=args.regime,
        )
        checkpoint = _make_checkpoint(
            args,
            {"nodes": args.nodes, "vcs": args.vcs, "rates": rates,
             "policies": policies, "cycles": args.cycles,
             "warmup": args.warmup, "seed": args.seed,
             "regime": args.regime},
        )
        executor = _make_executor(args, checkpoint=checkpoint)
        try:
            with graceful_shutdown(executor, notify=log.warning):
                sweep = run_injection_sweep(
                    rates, policies=policies, base=base, executor=executor
                )
        finally:
            _close_executor(executor)
            if checkpoint is not None:
                checkpoint.close()
        emit(sweep.format())
        if args.csv:
            sweep.to_csv(args.csv)
            emit(f"\nwrote {args.csv}")
        _print_exec_summary(executor)
        return 0

    if args.command == "power":
        from repro.area.power import compute_power_report
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import build_network

        scenario = ScenarioConfig(
            num_nodes=args.nodes, num_vcs=args.vcs, injection_rate=args.rate,
            policy=args.policy, cycles=args.cycles, warmup=args.warmup,
            seed=args.seed, regime=args.regime,
        )
        network = build_network(scenario)
        network.run(scenario.warmup)
        network.reset_nbti()
        network.reset_stats()
        network.run(scenario.cycles)
        report = compute_power_report(network)
        emit(f"scenario: {scenario.label} policy={scenario.policy}")
        emit(report.as_text())
        emit(f"average power: {report.power_mw(scenario.noc_config().technology.clock_period_s):.3f} mW")
        return 0

    if args.command == "fault-campaign":
        import dataclasses

        from repro.experiments.checkpoint import atomic_write_text, graceful_shutdown
        from repro.experiments.parallel import make_executor
        from repro.faults.campaign import FaultCampaignConfig, run_fault_campaign

        if args.regime != "fresh":
            # FaultCampaignConfig is pinned by the fault-campaign golden
            # (its asdict is embedded verbatim), so it cannot grow a
            # regime field; fault campaigns always run fresh devices.
            log.warning(
                "fault-campaign ignores --regime %s: fault campaigns "
                "always run the fresh (NBTI-only) regime", args.regime,
            )
        kwargs = {}
        if args.kinds:
            kwargs["kinds"] = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
        config = FaultCampaignConfig(
            num_nodes=args.nodes,
            num_vcs=args.vcs,
            injection_rate=args.rate,
            cycles=args.cycles,
            warmup=args.warmup,
            seed=args.seed,
            sensor_sample_period=args.sample_period,
            fault_rates=tuple(float(r) for r in args.fault_rates.split(",") if r),
            policies=tuple(p.strip() for p in args.policies.split(",") if p.strip()),
            validate_every=args.validate_every,
            **kwargs,
        )
        checkpoint = _make_checkpoint(args, dataclasses.asdict(config))
        if args.resume is not None:
            config = FaultCampaignConfig(**checkpoint.meta["config"])
        executor = make_executor(
            args.jobs,
            cache_dir=args.cache_dir,
            timeout=args.timeout,
            retries=args.retries,
            progress=log.info,
            profile=args.profile,
            checkpoint=checkpoint,
            distributed=_make_distributed(args),
            governor=_make_governor(args),
        )
        try:
            with graceful_shutdown(executor, notify=log.warning):
                report = run_fault_campaign(
                    config, executor=executor, checkpoint=checkpoint
                )
        finally:
            _close_executor(executor)
            if checkpoint is not None:
                checkpoint.close()
        emit(report.to_markdown())
        if args.out:
            atomic_write_text(args.out, report.to_markdown())
            log.info("report written to %s", args.out)
        if args.json:
            atomic_write_text(args.json, report.to_json())
            log.info("JSON written to %s", args.json)
        _print_exec_summary(executor)
        failed = sum(1 for row in report.rows if row.failure is not None)
        return 1 if failed == len(report.rows) else 0

    if args.command == "cache":
        if args.cache_command == "verify":
            if args.cache_dir is None and args.checkpoint_dir is None:
                log.error("cache verify needs --cache-dir and/or --checkpoint-dir")
                return 2
            clean = True
            if args.cache_dir is not None:
                from repro.experiments.parallel import ResultCache

                verdict = ResultCache(args.cache_dir).verify()
                emit(verdict.summary())
                for name in verdict.corrupt:
                    log.warning("corrupt entry: %s", name)
                for name in verdict.orphan_tmp:
                    log.warning("orphaned temp file: %s", name)
                clean = clean and verdict.clean
            if args.checkpoint_dir is not None:
                from pathlib import Path

                from repro.experiments.checkpoint import verify_journal

                report = verify_journal(args.checkpoint_dir)
                emit(report.summary())
                for line in report.torn:
                    log.warning("journal damage: %s", line)
                clean = clean and report.clean
                ga_state = Path(args.checkpoint_dir) / "ga.state.json"
                if ga_state.exists():
                    from repro.dse.ga import verify_ga_state

                    ok, summary = verify_ga_state(ga_state)
                    emit(summary)
                    if not ok:
                        log.warning("GA state damage: %s", summary)
                    clean = clean and ok
            return 0 if clean else 1
        raise AssertionError(f"unhandled cache command {args.cache_command!r}")

    if args.command == "dse":
        return _dispatch_dse(args)

    if args.command == "simulate":
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import run_scenario

        scenario = ScenarioConfig(
            num_nodes=args.nodes, num_vcs=args.vcs, injection_rate=args.rate,
            policy=args.policy, traffic=args.traffic,
            cycles=args.cycles, warmup=args.warmup, seed=args.seed,
            regime=args.regime,
        )
        result = run_scenario(scenario)
        emit(f"scenario      : {scenario.label} policy={scenario.policy}")
        emit(f"measured port : router {scenario.measure_router} {scenario.measure_port}")
        emit(f"duty cycles   : {[round(d, 2) for d in result.duty_cycles]}")
        emit(f"MD VC         : {result.md_vc} ({result.md_duty:.2f}%)")
        emit(f"network       : {result.net_stats}")
        emit(
            f"wall time     : {result.wall_seconds:.2f}s "
            f"(build {result.build_seconds:.2f}s + sim {result.sim_seconds:.2f}s)"
        )
        return 0

    if args.command == "trace":
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import run_scenario

        formats = tuple(f.strip() for f in args.formats.split(",") if f.strip())
        scenario = ScenarioConfig(
            num_nodes=args.nodes, num_vcs=args.vcs, injection_rate=args.rate,
            policy=args.policy, traffic=args.traffic,
            cycles=args.cycles, warmup=args.warmup, seed=args.seed,
            regime=args.regime,
        ).traced(trace_dir=args.out_dir, formats=formats)
        result = run_scenario(scenario)
        summary = result.telemetry
        emit(f"scenario      : {scenario.label} policy={scenario.policy}")
        emit(f"traced window : cycles {summary.window_start}..{summary.end_cycle}")
        emit(f"events        : {summary.total_events}")
        for name in sorted(summary.event_counts):
            emit(f"  {name:<24s} {summary.event_counts[name]}")
        emit("trace files   :")
        for path in summary.trace_files:
            emit(f"  {path}")
        emit(
            "open the .trace.json file at https://ui.perfetto.dev or "
            "chrome://tracing to inspect it"
        )
        return 0

    if args.command == "metrics":
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import run_scenario
        from repro.telemetry.metrics import format_metrics_dict

        scenario = ScenarioConfig(
            num_nodes=args.nodes, num_vcs=args.vcs, injection_rate=args.rate,
            policy=args.policy, traffic=args.traffic,
            cycles=args.cycles, warmup=args.warmup, seed=args.seed,
            regime=args.regime,
        ).traced(trace_dir=None, formats=())
        result = run_scenario(scenario)
        metrics = result.telemetry.metrics
        emit(f"scenario      : {scenario.label} policy={scenario.policy}")
        emit(format_metrics_dict(metrics))
        if args.json:
            from repro.experiments.checkpoint import atomic_write_json

            atomic_write_json(args.json, metrics)
            log.info("metrics JSON written to %s", args.json)
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


def _dispatch_dse(args: argparse.Namespace) -> int:
    """The ``repro-noc dse`` command group (screen / search / report)."""
    from repro.dse import DesignSpaceError

    # Distinct meta commands keep a screening journal from being resumed
    # as a search (and make the resume hint print the real invocation).
    args.command = f"dse {args.dse_command}"

    if args.dse_command == "report":
        from repro.dse import DSEResult

        try:
            result = DSEResult.load(args.json)
        except (OSError, ValueError) as exc:
            log.error("cannot load %s: %s", args.json, exc)
            return 2
        emit(result.format())
        if args.csv:
            result.write_csv(args.csv)
            emit(f"wrote {args.csv}")
        return 0

    try:
        space, objectives = _dse_setup(_dse_blob(args))
    except (DesignSpaceError, ValueError) as exc:
        log.error("%s", exc)
        return 2

    if args.dse_command == "screen":
        from repro.dse import run_screening
        from repro.experiments.checkpoint import graceful_shutdown

        checkpoint = _make_checkpoint(args, _dse_blob(args))
        executor = _make_executor(args, checkpoint=checkpoint)
        try:
            with graceful_shutdown(executor, notify=log.warning):
                report = run_screening(space, objectives, executor=executor)
        finally:
            _close_executor(executor)
            if checkpoint is not None:
                checkpoint.close()
        emit(report.format())
        prunable = report.prune(args.threshold)
        if prunable:
            emit(
                f"prunable below {args.threshold:.2f}: {', '.join(prunable)}"
            )
        if args.json:
            from repro.experiments.checkpoint import atomic_write_json

            atomic_write_json(args.json, report.to_dict())
            log.info("effects JSON written to %s", args.json)
        _print_exec_summary(executor)
        return 0

    if args.dse_command == "search":
        from repro.dse import DSEEngine, DSEResult, GAConfig
        from repro.experiments.checkpoint import (
            CampaignInterrupted,
            graceful_shutdown,
        )

        blob = _dse_blob(args)
        blob["ga"] = {
            "population": args.population,
            "generations": args.generations,
            "seed": args.seed,
            "crossover_rate": args.crossover_rate,
            "mutation_rate": args.mutation_rate,
            "offspring_multiplier": args.offspring_multiplier,
            "use_surrogate": not args.no_surrogate,
            "surrogate_min_samples": args.surrogate_min_samples,
            "surrogate_min_r2": args.surrogate_min_r2,
        }
        checkpoint = _make_checkpoint(args, blob)
        if args.resume is not None:
            blob = checkpoint.meta["config"]
            space, objectives = _dse_setup(blob)
        try:
            config = GAConfig(**blob["ga"])
        except ValueError as exc:
            log.error("%s", exc)
            return 2
        executor = _make_executor(args, checkpoint=checkpoint)
        engine = DSEEngine(
            space, objectives, config,
            executor=executor, checkpoint=checkpoint,
        )
        failures = executor.failure_records if executor is not None else ()
        try:
            with graceful_shutdown(executor, notify=log.warning):
                engine.run(resume=checkpoint is not None)
            if checkpoint is not None:
                checkpoint.write_state("complete", failures=failures)
        except CampaignInterrupted as exc:
            if checkpoint is not None:
                checkpoint.write_state(
                    "interrupted", pending=exc.pending, failures=failures
                )
            raise
        finally:
            _close_executor(executor)
            if checkpoint is not None:
                checkpoint.close()
        result = DSEResult.from_archive(
            space, objectives, engine.archive,
            counters=engine.counters,
            savings=engine.evaluations_saved(),
            surrogate_scores=engine.surrogate_scores,
        )
        emit(result.format())
        result.write_json(args.out)
        emit(f"report written to {args.out}")
        if args.csv:
            result.write_csv(args.csv)
            emit(f"wrote {args.csv}")
        _print_exec_summary(executor)
        return 0

    raise AssertionError(f"unhandled dse command {args.dse_command!r}")


if __name__ == "__main__":
    sys.exit(main())
