"""The paper's contribution: cooperative NBTI recovery policies for VC
buffers, plus the factory used by configs and experiment runners."""

from repro.core.policies import (
    ALL_POLICIES,
    PAPER_POLICIES,
    BaselinePolicy,
    RejuvenationPolicy,
    RejuvenationSensorPolicy,
    RoundRobinNoTrafficPolicy,
    RoundRobinSensorlessPolicy,
    SensorWisePolicy,
    StaticReservePolicy,
    make_policy_factory,
)

__all__ = [
    "ALL_POLICIES",
    "PAPER_POLICIES",
    "BaselinePolicy",
    "RejuvenationPolicy",
    "RejuvenationSensorPolicy",
    "RoundRobinNoTrafficPolicy",
    "RoundRobinSensorlessPolicy",
    "SensorWisePolicy",
    "StaticReservePolicy",
    "make_policy_factory",
]
