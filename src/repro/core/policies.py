"""The paper's NBTI recovery policies (pre-VA stage of each upstream port).

Four policies are provided:

* :class:`BaselinePolicy` — the non-NBTI-aware NoC: buffers are never
  gated, so every VC sits at a 100 % NBTI-duty-cycle.
* :class:`RoundRobinSensorlessPolicy` — the paper's Algorithm 1
  (*rr-no-sensor*): the best policy possible without sensors.  A
  rotating *active candidate* picks which single VC is kept awake when
  new traffic is waiting; with no new traffic every idle VC recovers.
* :class:`SensorWisePolicy` — the paper's Algorithm 2 (*sensor-wise*):
  the downstream sensors' most-degraded VC is gated first, one idle VC
  is kept awake only when new traffic is waiting.
* ``SensorWisePolicy(use_traffic=False)`` — the *sensor-wise-no-traffic*
  ablation: identical, but it always assumes traffic, so one idle VC is
  kept awake unconditionally (this is also the **non-cooperative**
  variant: it needs no upstream traffic information, hence no
  cooperation between the router pair).
* :class:`RoundRobinNoTrafficPolicy` — an extra ablation completing the
  2x2 {sensor, traffic} matrix (not in the paper's tables): round-robin
  candidate, no traffic information.
* :class:`RejuvenationPolicy` / :class:`RejuvenationSensorPolicy`
  (*rejuvenation*, *rejuvenation-sensor*) — scheduled deep-recovery
  windows instead of per-cycle gating: buffers run ungated most of the
  time and periodically enter a long recovery window (BTI rejuvenation,
  after Gürsoy et al.).  The sensor variant gates the most-degraded VC
  first inside each window.

All policies are deterministic and stateless across cycles (the
round-robin candidate derives from the cycle counter, mimicking the
paper's "changed cyclically on a time basis").
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, Optional

from repro.noc.policy_api import (
    PolicyContext,
    PolicyDecision,
    RecoveryPolicy,
)
from repro.telemetry import probes


class BaselinePolicy(RecoveryPolicy):
    """Non-NBTI-aware baseline: never gate anything."""

    name = "baseline"
    uses_sensor = False
    uses_traffic = False
    stable = True
    cycle_free_decide = True

    def decide(self, ctx: PolicyContext) -> PolicyDecision:
        return PolicyDecision.all_awake(ctx.num_vcs)


class RoundRobinSensorlessPolicy(RecoveryPolicy):
    """Algorithm 1: the *rr-no-sensor* reference policy.

    Every ``rotation_period`` cycles the *active candidate* advances, so
    the kept-awake duty is spread evenly over the VCs — the best one can
    do without knowing which VC is actually the most degraded.

    Parameters
    ----------
    rotation_period:
        Cycles between candidate advances.  The paper only states the
        candidate changes "cyclically on a time basis"; 64 cycles keeps
        sleep-transistor toggling physically reasonable while mixing the
        VCs well below the sensor sampling period.

        The period must exceed the control-link latency plus the buffer
        wake-up latency (2 cycles with the defaults): a faster rotation
        re-gates the freshly woken candidate before it ever becomes
        allocatable, so VC allocation starves and traffic through the
        port live-locks (see
        ``tests/test_paper_claims.py`` /
        ``benchmarks/bench_ablation_rotation_period.py``).
    """

    name = "rr-no-sensor"
    uses_sensor = False
    uses_traffic = True
    stable = True

    def __init__(self, rotation_period: int = 64) -> None:
        if rotation_period < 1:
            raise ValueError(f"rotation_period must be >= 1, got {rotation_period}")
        self.rotation_period = rotation_period
        self.epoch_period = rotation_period

    def epoch(self, cycle: int) -> int:
        """Memoization epoch: re-evaluate whenever the candidate rotates."""
        return cycle // self.rotation_period

    def candidate(self, ctx: PolicyContext) -> int:
        """The ``active_candidate`` VC for this cycle (line 2 of Alg. 1)."""
        return (ctx.cycle // self.rotation_period) % ctx.num_vcs

    def decide(self, ctx: PolicyContext) -> PolicyDecision:
        candidate = self.candidate(ctx)
        if not ctx.new_traffic:
            # Lines 4-7: no new packets -> every idle VC may recover.
            return PolicyDecision.gate_all(idle_vc=candidate)
        # Lines 8-17: keep awake the first idle-or-recovering VC at or
        # after the candidate; all other idle VCs recover.
        offset = candidate
        for _ in range(ctx.num_vcs):
            if ctx.is_idle(offset) or ctx.is_recovery(offset):
                if self.trace is not None:
                    self.trace.instant(
                        probes.POLICY_KEEP_AWAKE, "policy", tid=self.trace_tid,
                        args={"candidate": candidate, "kept": offset},
                        ts=ctx.cycle,
                    )
                return PolicyDecision.keep_one(offset)
            offset = (offset + 1) % ctx.num_vcs
        # Every VC is ACTIVE: nothing to keep idle, nothing to gate.
        return PolicyDecision.gate_all(idle_vc=candidate)


class RoundRobinNoTrafficPolicy(RoundRobinSensorlessPolicy):
    """Ablation: round-robin candidate, but no traffic information.

    One idle VC (the rotating candidate) is kept awake unconditionally.
    Completes the {sensor} x {traffic} ablation matrix together with
    *sensor-wise-no-traffic*.
    """

    name = "rr-no-sensor-no-traffic"
    uses_sensor = False
    uses_traffic = False

    def decide(self, ctx: PolicyContext) -> PolicyDecision:
        forced = PolicyContext(
            cycle=ctx.cycle,
            vc_states=ctx.vc_states,
            new_traffic=True,
            most_degraded_vc=ctx.most_degraded_vc,
        )
        return super().decide(forced)


class StaticReservePolicy(RecoveryPolicy):
    """Naive comparison point: permanently reserve one fixed VC.

    The designated VC (default VC 0) is always kept awake; every other
    idle VC recovers.  No sensors, no traffic information, no rotation —
    the cheapest conceivable gating controller, and the worst of the
    zoo: the reserved VC ages at ~100 % duty and, without process
    variation luck, it may well *be* the most degraded one.
    """

    name = "static-reserve"
    uses_sensor = False
    uses_traffic = False
    stable = True
    cycle_free_decide = True

    def __init__(self, reserved_vc: int = 0) -> None:
        if reserved_vc < 0:
            raise ValueError(f"reserved_vc must be >= 0, got {reserved_vc}")
        self.reserved_vc = reserved_vc

    def decide(self, ctx: PolicyContext) -> PolicyDecision:
        vc = self.reserved_vc % ctx.num_vcs
        if ctx.is_active(vc):
            return PolicyDecision.gate_all(idle_vc=vc)
        return PolicyDecision.keep_one(vc)


class SensorWisePolicy(RecoveryPolicy):
    """Algorithm 2: the *sensor-wise* policy (the paper's contribution).

    Each cycle, for one upstream output port:

    1. Conceptually restore every recovering VC to idle (lines 5-8) so
       the most-degraded VC is re-evaluated from a clean slate.
    2. Gate the most-degraded VC first, provided at least ``boolTraffic``
       other idle VCs remain for incoming packets (lines 9-11).
    3. Gate the remaining idle VCs in ascending order while more than
       ``boolTraffic`` idle VCs remain (lines 12-16); the survivor is the
       ``idle_vc`` driven on the Up_Down link.
    4. Assert ``enable`` iff new traffic is waiting (lines 17-18).

    The engine applies only the *diffs* of the resulting awake set, so
    step 1 never physically toggles a sleep transistor.

    Parameters
    ----------
    use_traffic:
        ``True`` gives the full cooperative *sensor-wise* policy;
        ``False`` gives the *sensor-wise-no-traffic* ablation, which
        always keeps one idle VC awake (``boolTraffic`` forced to 1).
    fallback_rotation_period:
        Rotation period of the embedded :class:`RoundRobinSensorlessPolicy`
        that takes over while the port's Down_Up watchdog reports the
        sensor information stale or implausible (``ctx.sensor_faulted``).

    Graceful degradation
    --------------------
    When the upstream port's watchdog flags the Down_Up report as
    untrustworthy, :meth:`decide` delegates to an embedded Algorithm 1
    instance — the best policy possible without sensors — and re-engages
    Algorithm 2 as soon as the report heals.  The policy epoch tracks
    the fallback's rotation so the candidate keeps advancing while
    degraded (re-evaluating Algorithm 2 on an unchanged context is a
    fixed point, so healthy-run results are unaffected).
    """

    name = "sensor-wise"
    uses_sensor = True
    uses_traffic = True
    stable = True
    # Algorithm 2 is a pure function of the VC states, the traffic bit
    # and the Down_Up value; only the *degraded* fallback rotates, and
    # fast-forward eligibility rules degradation out (healthy banks
    # heartbeat well inside the watchdog thresholds).
    cycle_free_decide = True

    def __init__(self, use_traffic: bool = True, fallback_rotation_period: int = 64) -> None:
        self.use_traffic = use_traffic
        if not use_traffic:
            self.name = "sensor-wise-no-traffic"
            self.uses_traffic = False
        self.fallback = RoundRobinSensorlessPolicy(
            rotation_period=fallback_rotation_period
        )
        self.epoch_period = fallback_rotation_period

    def epoch(self, cycle: int) -> int:
        """Re-evaluate whenever the fallback's candidate rotates."""
        return cycle // self.fallback.rotation_period

    def decide(self, ctx: PolicyContext) -> PolicyDecision:
        if ctx.sensor_faulted:
            return self._decide_fallback(ctx)
        bool_traffic = ctx.new_traffic if self.use_traffic else True
        threshold = 1 if bool_traffic else 0
        # A sensor-wise port always has a Down_Up value; ports without
        # sensors (e.g. driving untracked ejection buffers) fall back to
        # VC 0, which only affects gating order, not correctness.
        md = ctx.most_degraded_vc if ctx.most_degraded_vc is not None else 0

        # Lines 5-8: every non-ACTIVE VC is (conceptually) idle again.
        idle = set(ctx.gateable_vcs())
        count_idle = len(idle)
        gated = set()

        # Lines 9-11: recover the most-degraded VC first.
        if md in idle and count_idle > threshold:
            gated.add(md)
            count_idle -= 1

        # Lines 12-16: recover the remaining idle VCs in scan order.
        survivor: Optional[int] = None
        for vc in sorted(idle):
            if vc in gated:
                continue
            if count_idle > threshold:
                gated.add(vc)
                count_idle -= 1
            else:
                survivor = vc

        awake = idle - gated
        if survivor is None:
            survivor = md
        if self.trace is not None:
            self.trace.instant(
                probes.POLICY_KEEP_AWAKE, "policy", tid=self.trace_tid,
                args={"survivor": survivor, "md": md, "enable": bool_traffic and bool(awake)},
                ts=ctx.cycle,
            )
        # Lines 17-18: enable qualifies the idle_vc lines.
        return PolicyDecision(
            awake=frozenset(awake),
            enable=bool_traffic and bool(awake),
            idle_vc=survivor,
        )

    def _decide_fallback(self, ctx: PolicyContext) -> PolicyDecision:
        """Degraded mode: run Algorithm 1 on the same context.

        The no-traffic ablation has no upstream traffic bit either, so
        its degraded mode mirrors that by assuming traffic is always
        waiting (one idle VC stays awake unconditionally).
        """
        if not self.use_traffic:
            ctx = dataclasses.replace(ctx, new_traffic=True)
        if self.trace is not None:
            self.trace.instant(
                probes.POLICY_FALLBACK, "policy", tid=self.trace_tid,
                ts=ctx.cycle,
            )
        return self.fallback.decide(ctx)


class RejuvenationPolicy(RecoveryPolicy):
    """Scheduled deep-recovery windows (BTI *rejuvenation*).

    Instead of gating idle VCs every cycle, the port runs fully awake
    for most of each ``period`` and enters one long recovery window of
    ``duration`` cycles at the start of it: within the window the
    round-robin-style survivor scan keeps exactly one non-ACTIVE VC
    awake for new traffic (or gates everything when no traffic waits),
    outside the window nothing is ever gated.  Long uninterrupted
    recovery windows let the reaction-diffusion recovery front run much
    deeper than per-cycle toggling (Gürsoy et al., *On BTI Aging
    Rejuvenation in Memory Address Decoders*), at the cost of a higher
    average duty cycle.

    The surviving VC rotates with the window index, spreading the
    kept-awake stress across the VCs over successive windows.

    Engine eligibility
    ------------------
    The decision reads ``ctx.cycle`` only through the window index and
    the in-window bit, both constant between multiples of
    ``gcd(period, duration)`` — so the policy declares
    ``epoch_period = gcd(period, duration)`` and an :meth:`epoch` that
    distinguishes in-window from out-of-window buckets.  That keeps both
    the quiescence fast-forward and the SoA engine eligible (their
    planners pin jumps at declared epoch boundaries), verified by the
    three-way equivalence tests in ``tests/test_regime.py``.
    """

    name = "rejuvenation"
    uses_sensor = False
    uses_traffic = True
    stable = True

    def __init__(self, period: int = 1024, duration: int = 256) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if not 1 <= duration <= period:
            raise ValueError(
                f"duration must be in [1, period={period}], got {duration}"
            )
        self.period = period
        self.duration = duration
        self.epoch_period = math.gcd(period, duration)

    def epoch(self, cycle: int) -> int:
        """Two buckets per period: in-window (even), out-of-window (odd).

        Window boundaries (``k*period`` and ``k*period + duration``) are
        multiples of ``gcd(period, duration)``, so the epoch is constant
        within every ``epoch_period`` bucket — the declared-period
        contract the fast-forward and SoA planners rely on.
        """
        k, offset = divmod(cycle, self.period)
        return 2 * k + (0 if offset < self.duration else 1)

    def in_window(self, cycle: int) -> bool:
        """Whether ``cycle`` falls inside a deep-recovery window."""
        return cycle % self.period < self.duration

    def decide(self, ctx: PolicyContext) -> PolicyDecision:
        if not self.in_window(ctx.cycle):
            return PolicyDecision.all_awake(ctx.num_vcs)
        candidate = (ctx.cycle // self.period) % ctx.num_vcs
        if not ctx.new_traffic:
            # Deep recovery: every idle VC may recover for the whole window.
            return PolicyDecision.gate_all(idle_vc=candidate)
        # Keep awake the first non-ACTIVE VC at or after the rotating
        # survivor candidate (same scan as Algorithm 1).
        offset = self._survivor(ctx, candidate)
        if offset is None:
            # Every VC is ACTIVE: nothing to keep idle, nothing to gate.
            return PolicyDecision.gate_all(idle_vc=candidate)
        if self.trace is not None:
            self.trace.instant(
                probes.POLICY_KEEP_AWAKE, "policy", tid=self.trace_tid,
                args={"candidate": candidate, "kept": offset},
                ts=ctx.cycle,
            )
        return PolicyDecision.keep_one(offset)

    def _survivor(self, ctx: PolicyContext, candidate: int) -> Optional[int]:
        """First idle-or-recovering VC at/after ``candidate``, else None."""
        offset = candidate
        for _ in range(ctx.num_vcs):
            if not ctx.is_active(offset):
                return offset
            offset = (offset + 1) % ctx.num_vcs
        return None


class RejuvenationSensorPolicy(RejuvenationPolicy):
    """Sensor-triggered rejuvenation: recover the most-degraded VC first.

    Identical window schedule, but inside each window the survivor scan
    *skips* the Down_Up most-degraded VC so it is always among the gated
    (deep-recovering) VCs — the window's recovery budget is spent where
    the sensors say it matters.  When the port's watchdog flags the
    sensor information untrustworthy (``ctx.sensor_faulted``), or the
    port has no sensors, the scan degrades to the static variant.
    """

    name = "rejuvenation-sensor"
    uses_sensor = True

    def _survivor(self, ctx: PolicyContext, candidate: int) -> Optional[int]:
        md = ctx.most_degraded_vc
        if ctx.sensor_faulted or md is None:
            return super()._survivor(ctx, candidate)
        offset = candidate
        fallback: Optional[int] = None
        for _ in range(ctx.num_vcs):
            if not ctx.is_active(offset):
                if offset != md:
                    return offset
                fallback = offset
            offset = (offset + 1) % ctx.num_vcs
        # The MD VC is the only non-ACTIVE one (or none is): keeping it
        # awake beats blocking new traffic on a fully gated port.
        return fallback


#: Registry of policy names to zero-argument factories-of-factories: the
#: outer call fixes parameters, the inner callable builds one instance
#: per upstream port.
_POLICY_BUILDERS: Dict[str, Callable[..., Callable[[], RecoveryPolicy]]] = {}


def _register(name: str, builder: Callable[..., Callable[[], RecoveryPolicy]]) -> None:
    _POLICY_BUILDERS[name] = builder


_register("baseline", lambda **kw: BaselinePolicy)
_register(
    "rr-no-sensor",
    lambda rotation_period=64, **kw: (
        lambda: RoundRobinSensorlessPolicy(rotation_period=rotation_period)
    ),
)
_register(
    "rr-no-sensor-no-traffic",
    lambda rotation_period=64, **kw: (
        lambda: RoundRobinNoTrafficPolicy(rotation_period=rotation_period)
    ),
)
_register("sensor-wise", lambda **kw: (lambda: SensorWisePolicy(use_traffic=True)))
_register(
    "sensor-wise-no-traffic",
    lambda **kw: (lambda: SensorWisePolicy(use_traffic=False)),
)
_register(
    "static-reserve",
    lambda reserved_vc=0, **kw: (lambda: StaticReservePolicy(reserved_vc=reserved_vc)),
)


def _rejuvenation_schedule(
    rotation_period: int,
    rejuvenation_period: Optional[int],
    rejuvenation_duration: Optional[int],
) -> tuple:
    """Window schedule from policy knobs.

    Explicit ``rejuvenation_period``/``rejuvenation_duration`` win; the
    defaults derive from the scenario's ``rotation_period`` (16x period,
    4x duration — a 25 % recovery window at a much coarser grain than
    per-cycle rotation), so every existing config knob keeps working.
    """
    period = (
        rejuvenation_period if rejuvenation_period is not None else 16 * rotation_period
    )
    duration = (
        rejuvenation_duration if rejuvenation_duration is not None else 4 * rotation_period
    )
    return period, duration


_register(
    "rejuvenation",
    lambda rotation_period=64, rejuvenation_period=None, rejuvenation_duration=None, **kw: (
        lambda: RejuvenationPolicy(
            *_rejuvenation_schedule(
                rotation_period, rejuvenation_period, rejuvenation_duration
            )
        )
    ),
)
_register(
    "rejuvenation-sensor",
    lambda rotation_period=64, rejuvenation_period=None, rejuvenation_duration=None, **kw: (
        lambda: RejuvenationSensorPolicy(
            *_rejuvenation_schedule(
                rotation_period, rejuvenation_period, rejuvenation_duration
            )
        )
    ),
)

#: The three policies evaluated by the paper's tables, in table order.
PAPER_POLICIES = ("rr-no-sensor", "sensor-wise-no-traffic", "sensor-wise")

#: All registered policy names.
ALL_POLICIES = tuple(sorted(_POLICY_BUILDERS))


def make_policy_factory(name: str, **params) -> Callable[[], RecoveryPolicy]:
    """Build a per-port policy factory by policy name.

    Parameters
    ----------
    name:
        One of :data:`ALL_POLICIES`.
    params:
        Policy-specific knobs (currently ``rotation_period`` for the
        round-robin policies; unknown knobs are ignored by the others).

    Example
    -------
    >>> factory = make_policy_factory("sensor-wise")
    >>> factory().name
    'sensor-wise'
    """
    try:
        builder = _POLICY_BUILDERS[name]
    except KeyError:
        known = ", ".join(ALL_POLICIES)
        raise ValueError(f"unknown policy {name!r}; known policies: {known}") from None
    return builder(**params)
