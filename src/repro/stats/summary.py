"""Streaming statistics helpers for multi-iteration experiments.

Table IV of the paper reports the average and standard deviation of each
VC's NBTI-duty-cycle over 10 benchmark-mix iterations;
:class:`RunningStats` implements numerically stable (Welford) streaming
moments, and :class:`VectorStats` aggregates a fixed-length vector of
them (one per VC).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


class RunningStats:
    """Welford's online mean/variance accumulator.

    >>> rs = RunningStats()
    >>> for x in (2.0, 4.0, 6.0):
    ...     rs.add(x)
    >>> rs.mean
    4.0
    >>> round(rs.std, 6)
    1.632993
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the moments."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations."""
        for v in values:
            self.add(v)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (the paper's std is over the full set of
        iterations, not an unbiased estimate)."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return f"RunningStats(n={self.count}, mean={self.mean:.3f}, std={self.std:.3f})"


class VectorStats:
    """Per-component :class:`RunningStats` for fixed-length vectors."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size
        self.components: List[RunningStats] = [RunningStats() for _ in range(size)]

    def add(self, vector: Sequence[float]) -> None:
        """Fold one vector observation (length must match)."""
        if len(vector) != self.size:
            raise ValueError(f"expected vector of length {self.size}, got {len(vector)}")
        for stats, value in zip(self.components, vector):
            stats.add(value)

    @property
    def count(self) -> int:
        """Number of vectors folded so far."""
        return self.components[0].count

    def means(self) -> List[float]:
        """Per-component means."""
        return [c.mean for c in self.components]

    def stds(self) -> List[float]:
        """Per-component population standard deviations."""
        return [c.std for c in self.components]

    def __repr__(self) -> str:
        return f"VectorStats(size={self.size}, n={self.count})"


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    return sum(values) / len(values) if values else 0.0


def std(values: Sequence[float]) -> float:
    """Population standard deviation over n >= 1 values (0.0 when empty).

    Matches :attr:`RunningStats.std` on the same data: a single value is
    a valid population of one (std 0.0 by the formula, not by special
    case), and the divisor is ``n``, not ``n - 1``.
    """
    if not values:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))
