"""Streaming statistics helpers for multi-iteration experiments.

Table IV of the paper reports the average and standard deviation of each
VC's NBTI-duty-cycle over 10 benchmark-mix iterations;
:class:`RunningStats` implements numerically stable (Welford) streaming
moments, and :class:`VectorStats` aggregates a fixed-length vector of
them (one per VC).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


class RunningStats:
    """Welford's online mean/variance accumulator.

    >>> rs = RunningStats()
    >>> for x in (2.0, 4.0, 6.0):
    ...     rs.add(x)
    >>> rs.mean
    4.0
    >>> round(rs.std, 6)
    1.632993
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the moments."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations."""
        for v in values:
            self.add(v)

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator in (Chan's parallel combination).

        After the merge this accumulator describes the union of both
        observation sets exactly (same mean/variance as a single-stream
        fold, up to floating-point association).
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        if self._m2 < 0.0:
            # Catastrophic cancellation on near-identical means can push
            # the combined sum-of-squares a few ulp below zero, which
            # would make ``variance`` negative and ``std`` raise on
            # math.sqrt.  The exact value is non-negative by definition.
            self._m2 = 0.0
        self._mean += delta * other.count / total
        self.count = total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (the paper's std is over the full set of
        iterations, not an unbiased estimate)."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return f"RunningStats(n={self.count}, mean={self.mean:.3f}, std={self.std:.3f})"


class VectorStats:
    """Per-component :class:`RunningStats` for fixed-length vectors."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size
        self.components: List[RunningStats] = [RunningStats() for _ in range(size)]

    def add(self, vector: Sequence[float]) -> None:
        """Fold one vector observation (length must match)."""
        if len(vector) != self.size:
            raise ValueError(f"expected vector of length {self.size}, got {len(vector)}")
        for stats, value in zip(self.components, vector):
            stats.add(value)

    @property
    def count(self) -> int:
        """Number of vectors folded so far."""
        return self.components[0].count

    def means(self) -> List[float]:
        """Per-component means."""
        return [c.mean for c in self.components]

    def stds(self) -> List[float]:
        """Per-component population standard deviations."""
        return [c.std for c in self.components]

    def __repr__(self) -> str:
        return f"VectorStats(size={self.size}, n={self.count})"


class QuantileSketch:
    """Deterministic streaming quantile estimator (p50/p95/p99...).

    A small KLL-style compactor ladder: level ``L`` holds samples of
    weight ``2**L``.  New values land in level 0; when a level outgrows
    ``max_samples`` it is sorted and every second order-statistic is
    promoted to the next level (weight doubles).  The whole structure is
    a pure function of the insertion sequence — no randomness — so
    serial and parallel runs agree bit-for-bit.

    **Exactness guarantee**: until ``count`` exceeds ``max_samples`` no
    compaction has happened, and :meth:`quantile` reproduces the exact
    order-statistic ``sorted(values)[int(q * (n - 1))]`` — the formula
    :class:`repro.noc.network.SimStats` has always used — so replacing
    an exact percentile with a sketch leaves small-run outputs
    byte-identical.  Beyond that the error is bounded by the compaction
    resolution (~1/max_samples of the weight range per level).

    >>> qs = QuantileSketch()
    >>> qs.extend([5.0, 1.0, 3.0, 2.0, 4.0])
    >>> qs.quantile(0.5)
    3.0
    >>> qs.p99
    5.0
    """

    __slots__ = ("max_samples", "count", "_levels")

    def __init__(self, max_samples: int = 8192) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.max_samples = max_samples
        self.count = 0
        self._levels: List[List[float]] = [[]]

    def add(self, value: float) -> None:
        """Fold one observation."""
        self.count += 1
        self._levels[0].append(value)
        if len(self._levels[0]) > self.max_samples:
            self._compact(0)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations."""
        for v in values:
            self.add(v)

    def _compact(self, level: int) -> None:
        buf = self._levels[level]
        buf.sort()
        promoted = buf[1::2]
        del buf[:]
        if level + 1 == len(self._levels):
            self._levels.append([])
        self._levels[level + 1].extend(promoted)
        if len(self._levels[level + 1]) > self.max_samples:
            self._compact(level + 1)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (level-wise concatenation + compaction)."""
        self.count += other.count
        for level, buf in enumerate(other._levels):
            while level >= len(self._levels):
                self._levels.append([])
            self._levels[level].extend(buf)
        for level in range(len(self._levels)):
            if len(self._levels[level]) > self.max_samples:
                self._compact(level)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0.0 for an empty sketch).

        Walks the weighted order statistics to the rank
        ``int(q * (W - 1))`` where ``W`` is the retained weight — with
        only weight-1 samples this is exactly the legacy index formula.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        weighted = [
            (value, 1 << level)
            for level, buf in enumerate(self._levels)
            for value in buf
        ]
        if not weighted:
            return 0.0
        weighted.sort(key=lambda pair: pair[0])
        total = sum(w for _, w in weighted)
        target = int(q * (total - 1))
        cumulative = 0
        for value, weight in weighted:
            cumulative += weight
            if cumulative > target:
                return float(value)
        return float(weighted[-1][0])

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(n={self.count}, "
            f"p50={self.p50:.3f}, p95={self.p95:.3f}, p99={self.p99:.3f})"
        )


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    return sum(values) / len(values) if values else 0.0


def std(values: Sequence[float]) -> float:
    """Population standard deviation over n >= 1 values (0.0 when empty).

    Matches :attr:`RunningStats.std` on the same data: a single value is
    a valid population of one (std 0.0 by the formula, not by special
    case), and the divisor is ``n``, not ``n - 1``.
    """
    if not values:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))
