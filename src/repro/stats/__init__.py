"""Statistics helpers: streaming moments for multi-iteration tables."""

from repro.stats.summary import QuantileSketch, RunningStats, VectorStats, mean, std

__all__ = ["QuantileSketch", "RunningStats", "VectorStats", "mean", "std"]
