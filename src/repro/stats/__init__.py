"""Statistics helpers: streaming moments for multi-iteration tables."""

from repro.stats.summary import RunningStats, VectorStats, mean, std

__all__ = ["RunningStats", "VectorStats", "mean", "std"]
