"""Struct-of-arrays, event-directed cycle engine (the dense-stepping core).

The default :meth:`Network.step` loop touches every router, port, unit
and delay line every cycle, which costs O(network) even when nothing is
happening — and "nothing is happening" describes the overwhelming
majority of cycle x component pairs at the paper's injection rates.
This module replaces that loop for eligible runs with an engine built
around two ideas:

**Struct-of-arrays accounting.**  The NBTI stress/recovery tallies of
every tracked VC buffer are hoisted out of the per-object
:class:`~repro.nbti.duty_cycle.DutyCycleCounter` instances into NumPy
``int64`` arrays batched across all routers/ports/VCs
(:class:`NbtiArrays`).  Power-transition writes go through thin index
views (:class:`ArrayDutyCycleCounter`), and the bulk operations — the
interval flush at every sensor sample boundary and the duty-cycle
harvest — become single vectorized kernels instead of per-buffer loops.
The views return plain Python ints, so every float derived from the
tallies (duty cycles, Vth readings) is bit-identical to the per-object
engine's.

**Event-directed stepping.**  Instead of asking every component whether
it has work, components tell the engine when they will:

* every delay line notifies the engine of its next delivery cycle
  (:attr:`DelayLine.on_send`), so the delivery phase visits only
  channels that actually hold due items, in exactly the order-
  insensitive groups the dense phases process them in;
* every policy engine notifies on memo busts
  (:attr:`VnetEngine.on_invalidate`), so ``run_policy`` runs exactly
  when the dense engine's memoization would miss — plus at declared
  epoch boundaries, the same pinned events quiescence fast-forward
  uses;
* VA / SA / NI phases run only for routers and interfaces whose
  occupancy counters show resident work, which is precisely the
  condition under which the dense phases do anything but iterate;
* sensor sampling runs only at the banks' synchronized sample cycles
  (in between, the dense ``phase_nbti`` provably early-continues), and
  the traffic generator is consulted only at scouted injection cycles,
  with its RNG bulk-advanced over the gaps so the stream position stays
  byte-identical to per-cycle ``inject()`` calls.

Whenever every activity structure is empty the engine jumps the clock
to the next pinned event exactly like
:meth:`Network._run_fast` — the SoA engine strictly generalizes
quiescence fast-forward to per-component quiescence.

Correctness contract
--------------------
Eligibility is checked by :meth:`Network._soa_eligible` under the same
rules fast-forward uses (no telemetry, no faults, stable policies with
declared or constant epochs, healthy watchdogs); ineligible runs fall
back to the dense loop.  For eligible runs every skipped component is a
proven no-op of the corresponding dense phase, so results — duty
cycles, statistics, arbiter states, RNG position — are byte-identical
to stepping.  The per-object engines remain intact
(:meth:`Network.use_per_cycle_nbti` for the per-cycle oracle, dense
stepping via ``force_engine="stepped"``) and the differential fuzz
harness in ``tests/test_soa_equivalence.py`` enforces the equivalence
across randomized scenarios, policies and traffic patterns.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nbti.duty_cycle import duty_cycles_percent_arrays
from repro.noc.buffer import PowerState, VCBuffer

# Channel-record kinds (index 0 of each record tuple).
_CTRL = 0   # Up_Down gate/wake commands into an input unit
_DATA_R = 1  # flits into a router input unit
_DATA_E = 2  # flits into an NI ejection unit
_CRED = 3   # credits back to an upstream port
_DUP = 4    # Down_Up most-degraded reports to an upstream port


class ArrayDutyCycleCounter:
    """A :class:`DutyCycleCounter`-compatible view into :class:`NbtiArrays`.

    Installed as ``device.counter`` while the SoA engine drives a run:
    scalar reads/writes (power-transition flushes, sensor reads) hit the
    backing arrays, and bulk flush/harvest become vectorized kernels.
    All reads return plain Python ints so derived float math is
    bit-identical to the per-object counters.
    """

    __slots__ = ("_store", "_i")

    def __init__(self, store: "NbtiArrays", index: int) -> None:
        self._store = store
        self._i = index

    @property
    def stress_cycles(self) -> int:
        return int(self._store.stress[self._i])

    @stress_cycles.setter
    def stress_cycles(self, value: int) -> None:
        self._store.stress[self._i] = value

    @property
    def recovery_cycles(self) -> int:
        return int(self._store.recovery[self._i])

    @recovery_cycles.setter
    def recovery_cycles(self, value: int) -> None:
        self._store.recovery[self._i] = value

    def record(self, stressed: bool, cycles: int = 1) -> None:
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        if stressed:
            self._store.stress[self._i] += cycles
        else:
            self._store.recovery[self._i] += cycles

    @property
    def total_cycles(self) -> int:
        return int(self._store.stress[self._i] + self._store.recovery[self._i])

    @property
    def duty_cycle(self) -> float:
        total = self.total_cycles
        if total == 0:
            return 100.0
        return 100.0 * self.stress_cycles / total

    @property
    def alpha(self) -> float:
        return self.duty_cycle / 100.0

    def reset(self) -> None:
        self._store.stress[self._i] = 0
        self._store.recovery[self._i] = 0

    def snapshot(self) -> Tuple[int, int]:
        return (self.stress_cycles, self.recovery_cycles)

    def __repr__(self) -> str:
        return (
            f"ArrayDutyCycleCounter(stress={self.stress_cycles}, "
            f"recovery={self.recovery_cycles})"
        )


class NbtiArrays:
    """Struct-of-arrays store for NBTI interval accounting.

    One slot per *tracked* VC buffer (router input buffers; ejection
    buffers are excluded exactly as in the per-object engine), in the
    network's canonical build order.
    """

    def __init__(self, buffers: List[VCBuffer]) -> None:
        self.buffers = [
            b for b in buffers if b.device is not None and b.track_nbti
        ]
        n = len(self.buffers)
        self.stress = np.zeros(n, dtype=np.int64)
        self.recovery = np.zeros(n, dtype=np.int64)
        self._saved = []

    def attach(self) -> None:
        """Copy counter state into the arrays and install the views."""
        self._saved = []
        for i, buf in enumerate(self.buffers):
            counter = buf.device.counter
            self._saved.append(counter)
            self.stress[i] = counter.stress_cycles
            self.recovery[i] = counter.recovery_cycles
            buf.device.counter = ArrayDutyCycleCounter(self, i)

    def detach(self) -> None:
        """Write the arrays back and restore the original counters."""
        for i, buf in enumerate(self.buffers):
            counter = self._saved[i]
            counter.stress_cycles = int(self.stress[i])
            counter.recovery_cycles = int(self.recovery[i])
            buf.device.counter = counter
        self._saved = []

    def flush_all(self, cycle: int) -> None:
        """Vectorized interval flush: book every buffer's unaccounted
        ``[anchor, cycle)`` interval in its current power state.

        Flushing is semantics-preserving at any point (each interval is
        booked in the state it was actually in; transitions flush
        themselves), so flushing *all* buffers at a sample boundary is
        equivalent to the dense engine's per-due-unit flushes.
        """
        bufs = self.buffers
        if not bufs:
            return
        n = len(bufs)
        anchors = np.fromiter(
            (b._nbti_anchor for b in bufs), dtype=np.int64, count=n
        )
        delta = cycle - anchors
        pending = delta > 0
        if pending.any():
            gated = np.fromiter(
                (b._state is PowerState.GATED for b in bufs),
                dtype=bool,
                count=n,
            )
            stress_mask = pending & ~gated
            recov_mask = pending & gated
            self.stress[stress_mask] += delta[stress_mask]
            self.recovery[recov_mask] += delta[recov_mask]
            for b in bufs:
                if b._nbti_anchor < cycle:
                    b._nbti_anchor = cycle

    def duty_cycles(self) -> List[float]:
        """Vectorized per-buffer duty cycles in percent (flushed state)."""
        return duty_cycles_percent_arrays(self.stress, self.recovery)


class SoAEngine:
    """Event-directed fused stepping over one :class:`Network`.

    Create one per :meth:`Network.run` call and drive it with
    :meth:`run_span`; the constructor builds the static routing tables
    (ports, channels, epoch schedules) and :meth:`run_span` attaches the
    live hooks for the duration of the span.
    """

    def __init__(self, network) -> None:
        self.net = network
        net = network

        # --- port records: (is_ni, owner, port_id, upstream) ----------
        # Canonical order: routers (node order, sorted output ports),
        # then NIs — the dense policy-phase order.
        self._ports: List[Tuple[bool, object, int, object]] = []
        self._rport_idx: Dict[Tuple[int, int], int] = {}
        self._ni_port_idx: Dict[int, int] = {}
        for router in net.routers:
            for pid in router.output_ports:
                self._rport_idx[(router.router_id, pid)] = len(self._ports)
                self._ports.append(
                    (False, router, pid, router.outputs[pid].upstream)
                )
        for ni in net.interfaces:
            self._ni_port_idx[ni.node_id] = len(self._ports)
            self._ports.append((True, ni, -1, ni.injection_port))

        # --- epoch schedule: period -> port indexes -------------------
        # Only non-cycle-free stable policies with a declared period need
        # boundary re-runs (the fast-forward pin rule); cycle-free
        # policies re-deciding on an unchanged context is a no-op.
        by_period: Dict[int, List[int]] = {}
        for idx, (_, _, _, upstream) in enumerate(self._ports):
            for engine in upstream.engines:
                policy = engine.policy
                if policy.cycle_free_decide:
                    continue
                period = getattr(policy, "epoch_period", None)
                if period is not None:
                    by_period.setdefault(period, []).append(idx)
        self._period_ports = sorted(by_period.items())
        self._periods = [p for p, _ in self._period_ports]

        # --- channel records ------------------------------------------
        # Built grouped by ASCENDING kind constant: the scheduling heap
        # keys on (due, idx) and every due item is drained on exactly
        # its due cycle, so same-cycle pops come out idx-ascending —
        # with this grouping that is already the dense phase order and
        # ``_deliver`` needs no sort (cross-unit order within one kind
        # is immaterial; handlers only touch their own unit/port).
        self._chan_records: List[Tuple] = []

        def add(kind, chan, *ctx) -> None:
            self._chan_records.append((kind, len(self._chan_records), chan) + ctx)

        for router in net.routers:
            for pid in router.input_ports:
                add(_CTRL, router.inputs[pid].control_channel,
                    router.inputs[pid].unit)
        for ni in net.interfaces:
            add(_CTRL, ni._eject_control_channel, ni.ejection_unit)
        for router in net.routers:
            for pid in router.input_ports:
                wiring = router.inputs[pid]
                add(_DATA_R, wiring.data_channel, wiring.unit, router)
        for ni in net.interfaces:
            add(_DATA_E, ni._eject_data_channel, ni.ejection_unit, ni)
        for router in net.routers:
            for pid in router.output_ports:
                add(_CRED, router.outputs[pid].credit_channel,
                    router.outputs[pid].upstream)
        for ni in net.interfaces:
            add(_CRED, ni._inj_credit_channel, ni.injection_port)
        for router in net.routers:
            for pid in router.output_ports:
                add(_DUP, router.outputs[pid].down_up_channel,
                    router.outputs[pid].upstream)
        for ni in net.interfaces:
            add(_DUP, ni._inj_down_up_channel, ni.injection_port)

        # --- per-router helper tables ---------------------------------
        self._router_units = {
            router: [router.inputs[p].unit for p in router.input_ports]
            for router in net.routers
        }

        # --- live scheduling state ------------------------------------
        self._heap: List[Tuple[int, int]] = []
        self._sched: List[Optional[int]] = [None] * len(self._chan_records)
        self._waking: Dict[object, None] = {}
        self._dirty: Dict[int, None] = {}
        self._va_routers: Dict[object, None] = {}
        self._sa_routers: Dict[object, None] = {}
        self._ni_va: Dict[object, None] = {}
        self._ni_send: Dict[object, None] = {}

        # --- SoA accounting store -------------------------------------
        self.arrays = NbtiArrays(
            [ivc.buffer for unit in net._nbti_units for ivc in unit.vcs]
        )

        self._next_sample: float = 0
        self._scout = False
        self._next_inject: Optional[int] = None
        self._rng_cycle = 0

    # ------------------------------------------------------------------
    # Hook plumbing
    # ------------------------------------------------------------------
    def _make_notify(self, idx: int):
        heap = self._heap
        sched = self._sched

        def notify(due: int) -> None:
            cur = sched[idx]
            if cur is None or due < cur:
                sched[idx] = due
                heapq.heappush(heap, (due, idx))

        return notify

    def _make_invalidate(self, port_idx: int):
        dirty = self._dirty

        def on_invalidate() -> None:
            dirty[port_idx] = None

        return on_invalidate

    def _attach(self, cycle: int) -> None:
        net = self.net
        for rec in self._chan_records:
            idx, chan = rec[1], rec[2]
            chan.on_send = self._make_notify(idx)
            if chan._queue:
                chan.on_send(chan._queue[0][0])
        for idx, (_, _, _, upstream) in enumerate(self._ports):
            hook = self._make_invalidate(idx)
            for engine in upstream.engines:
                engine.on_invalidate = hook
            # The first fused cycle re-runs every policy, matching the
            # dense engine's unconditional per-cycle run_policy (a pure
            # memo hit for unchanged ports).
            self._dirty[idx] = None
        for unit in net._power_units:
            if unit._any_waking:
                self._waking[unit] = None
        for router in net.routers:
            if any(v for pend in router.va_pending.values() for v in pend):
                self._va_routers[router] = None
            if any(u.busy_count for u in self._router_units[router]):
                self._sa_routers[router] = None
        for ni in net.interfaces:
            if any(ni.source_queues):
                self._ni_va[ni] = None
            if any(ni._send_queues):
                self._ni_send[ni] = None
        self.arrays.attach()
        self._next_sample = self._compute_next_sample(cycle)
        traffic = net.traffic
        self._rng_cycle = cycle
        if traffic is not None:
            probe = getattr(traffic, "next_injection_cycle", None)
            nxt = probe(cycle) if probe is not None else None
            if nxt is None:
                self._scout = False
                self._next_inject = None
            else:
                self._scout = True
                self._next_inject = nxt

    def _detach(self) -> None:
        for rec in self._chan_records:
            rec[2].on_send = None
        for _, _, _, upstream in self._ports:
            for engine in upstream.engines:
                engine.on_invalidate = None
        self.arrays.detach()

    def _compute_next_sample(self, now: int) -> float:
        nxt = float("inf")
        for bank in self.net._sensor_banks:
            last = bank.last_sample_cycle
            due = now if last < 0 else max(last + bank.sample_period, now)
            if due < nxt:
                nxt = due
        return nxt

    # ------------------------------------------------------------------
    # Per-cycle work
    # ------------------------------------------------------------------
    def _do_inject(self, cycle: int) -> None:
        net = self.net
        for injection in net.traffic.inject(cycle):
            src, dst, length = injection[0], injection[1], injection[2]
            vnet = injection[3] if len(injection) > 3 else 0
            pkt_len = length if length is not None else net.config.packet_length
            packet = net.packet_factory.create(src, dst, pkt_len, cycle, vnet=vnet)
            ni = net.interfaces[src]
            # Dirty the injection port only when the vnet's source queue
            # goes empty -> non-empty (the policy-visible traffic bit
            # flips); enqueueing behind waiting packets is invisible to
            # the policy, so the dense engine's memo would hit anyway.
            if not ni.source_queues[vnet]:
                self._dirty[self._ni_port_idx[src]] = None
            ni.enqueue(packet)
            self._ni_va[ni] = None

    def _tick_waking(self) -> None:
        waking = self._waking
        done = None
        for unit in waking:
            unit.tick_power()
            if not unit._any_waking:
                if done is None:
                    done = [unit]
                else:
                    done.append(unit)
        if done is not None:
            for unit in done:
                del waking[unit]

    # ------------------------------------------------------------------
    # The fused run loop
    # ------------------------------------------------------------------
    def run_span(self, end: int) -> None:
        """Advance the network to ``end``, byte-identically to stepping."""
        net = self.net
        cycle = net.cycle
        if end <= cycle:
            return
        self._attach(cycle)
        try:
            self._loop(cycle, end)
        finally:
            self._detach()

    def _loop(self, cycle: int, end: int) -> None:
        net = self.net
        heap = self._heap
        waking = self._waking
        dirty = self._dirty
        va_routers = self._va_routers
        sa_routers = self._sa_routers
        ni_va = self._ni_va
        ni_send = self._ni_send
        period_ports = self._period_ports
        periods = self._periods
        ports = self._ports
        routers = net.routers
        traffic = net.traffic
        sched = self._sched
        records = self._chan_records
        rport_idx = self._rport_idx
        pop = heapq.heappop
        push = heapq.heappush
        tick_waking = self._tick_waking
        dense_traffic = traffic is not None and not self._scout
        # Loop-local mirrors of the rare-transition scalars; every
        # mutation writes both so pause/resume stays consistent.
        next_inject = self._next_inject
        next_sample = self._next_sample

        while cycle < end:
            # --- phase 1-2: deliveries + ejection ---------------------
            # Process every due channel in dense-phase-equivalent order:
            # control commands, wake ticks, data, credits, Down_Up
            # reports, then ejection drains.  Cross-unit ordering within
            # one kind is immaterial (handlers only touch their own
            # unit/port); the per-unit control -> tick -> data order is
            # preserved.  Inlined into the loop (one call per active
            # cycle) so the dispatch shares the hoisted locals.
            if heap and heap[0][0] <= cycle:
                due_idxs = []
                late = False
                while heap and heap[0][0] <= cycle:
                    due, idx = pop(heap)
                    if sched[idx] != due:
                        continue  # superseded entry
                    sched[idx] = None
                    if due != cycle:
                        late = True
                    due_idxs.append(idx)
                if late and len(due_idxs) > 1:
                    # Same-cycle pops ascend by idx, which by
                    # record-construction grouping is already the dense
                    # phase order (ctrl < data < credits < Down_Up).  A
                    # stale (pre-`cycle`) due can only appear if a due
                    # cycle was somehow skipped; restore phase order
                    # defensively rather than assert (idx order == phase
                    # order, so a plain integer sort suffices).
                    due_idxs.sort()
                ticked = False
                eject = None
                for idx in due_idxs:
                    rec = records[idx]
                    kind = rec[0]
                    if not ticked and kind > _CTRL:
                        # Wake countdowns advance after all control
                        # commands of the cycle have landed, before any
                        # data is written.
                        ticked = True
                        if waking:
                            tick_waking()
                    chan_q = rec[2]._queue
                    # Dispatch tests ordered by frequency: router data
                    # and credits dominate (one of each per flit hop).
                    if kind == _DATA_R:
                        unit, router = rec[3], rec[4]
                        while chan_q and chan_q[0][0] <= cycle:
                            vc, flit = chan_q.popleft()[1]
                            unit.receive_flit(vc, flit, cycle)
                            if flit.is_head:
                                outport = unit.vcs[vc].outport
                                pending = router.va_pending[outport]
                                vnet = flit.vnet
                                if pending[vnet] == 0:
                                    # The port's traffic bit flips
                                    # 0 -> 1: the dense engine's
                                    # per-cycle run_policy would see an
                                    # invalidated memo.  Further heads
                                    # on an already-pending vnet change
                                    # nothing a policy observes
                                    # (set_new_traffic(True) on True
                                    # does not invalidate), so they
                                    # skip the policy re-run entirely.
                                    dirty[
                                        rport_idx[
                                            (router.router_id, outport)
                                        ]
                                    ] = None
                                pending[vnet] += 1
                                va_routers[router] = None
                                sa_routers[router] = None
                    elif kind == _CRED:
                        upstream = rec[3]
                        while chan_q and chan_q[0][0] <= cycle:
                            upstream.on_credit(chan_q.popleft()[1])
                    elif kind == _CTRL:
                        unit = rec[3]
                        while chan_q and chan_q[0][0] <= cycle:
                            command, vc = chan_q.popleft()[1]
                            unit.apply_command(command, vc, cycle)
                        if unit._any_waking:
                            waking[unit] = None
                    elif kind == _DATA_E:
                        unit = rec[3]
                        while chan_q and chan_q[0][0] <= cycle:
                            vc, flit = chan_q.popleft()[1]
                            unit.receive_flit(vc, flit, cycle)
                        if eject is None:
                            eject = []
                        eject.append(rec[4])
                    else:  # _DUP
                        upstream = rec[3]
                        while chan_q and chan_q[0][0] <= cycle:
                            upstream.set_most_degraded(
                                chan_q.popleft()[1], cycle
                            )
                    if chan_q:
                        nxt = chan_q[0][0]
                        cur = sched[idx]
                        if cur is None or nxt < cur:
                            sched[idx] = nxt
                            push(heap, (nxt, idx))
                if not ticked and waking:
                    tick_waking()
                if eject is not None:
                    for ni in eject:
                        ni.phase_eject(cycle)
            elif waking:
                tick_waking()
            # --- phase 3: traffic injection ---------------------------
            if dense_traffic:
                self._do_inject(cycle)
                self._rng_cycle = cycle + 1
            elif cycle == next_inject:  # only ever true in scout mode
                delta = cycle - self._rng_cycle
                if delta > 0:
                    traffic.advance(delta)
                self._do_inject(cycle)
                self._rng_cycle = cycle + 1
                nxt = traffic.next_injection_cycle(cycle + 1)
                if nxt is None:
                    # Support withdrawn mid-run: consult per-cycle.
                    self._scout = False
                    dense_traffic = True
                    next_inject = self._next_inject = None
                else:
                    next_inject = self._next_inject = nxt
            # --- phase 4: recovery policies ---------------------------
            if period_ports:
                for period, pidxs in period_ports:
                    if cycle % period == 0:
                        for idx in pidxs:
                            dirty[idx] = None
            if dirty:
                if len(dirty) > 1:
                    todo = sorted(dirty)
                else:
                    todo = list(dirty)
                dirty.clear()
                for idx in todo:
                    is_ni, owner, pid, upstream = ports[idx]
                    if is_ni:
                        owner.phase_policy(cycle)
                    else:
                        pending = owner.va_pending[pid]
                        for vnet in range(owner.num_vnets):
                            upstream.set_new_traffic(pending[vnet] > 0, vnet)
                        upstream.run_policy(cycle)
            # --- phase 5: VC allocation -------------------------------
            # The phase calls never mutate their own work set (only
            # _deliver/_do_inject add members), so iterate the dicts
            # directly and batch the removals instead of copying.
            if va_routers:
                done = None
                for router in va_routers:
                    if not router.phase_va(cycle):
                        done = [router] if done is None else done + [router]
                if done is not None:
                    for router in done:
                        del va_routers[router]
            if ni_va:
                done = None
                for ni in ni_va:
                    ni.phase_va(cycle)
                    if any(ni._send_queues):
                        ni_send[ni] = None
                    if not any(ni.source_queues):
                        done = [ni] if done is None else done + [ni]
                if done is not None:
                    for ni in done:
                        del ni_va[ni]
            # --- phase 6: SA + ST / NI sends --------------------------
            if sa_routers:
                units_of = self._router_units
                done = None
                for router in sa_routers:
                    # When a flit moved, the router plainly stays busy;
                    # the drain check only runs on no-op cycles (worst
                    # case one extra cheap call after the final tail).
                    if not router.phase_sa_st(cycle) and not any(
                        u.busy_count for u in units_of[router]
                    ):
                        done = [router] if done is None else done + [router]
                if done is not None:
                    for router in done:
                        del sa_routers[router]
            if ni_send:
                done = None
                for ni in ni_send:
                    ni.phase_send(cycle)
                    if not any(ni._send_queues):
                        done = [ni] if done is None else done + [ni]
                if done is not None:
                    for ni in done:
                        del ni_send[ni]
            # --- phase 7: NBTI aging + sensor sampling ----------------
            if cycle == next_sample:
                self.arrays.flush_all(cycle + 1)
                for router in routers:
                    router.phase_nbti(cycle)
                next_sample = self._next_sample = self._compute_next_sample(
                    cycle + 1
                )
            cycle += 1
            net.cycle = cycle
            # --- quiescence jump --------------------------------------
            if heap or dense_traffic or dirty or va_routers or sa_routers \
                    or ni_va or ni_send or waking or cycle >= end:
                continue
            target = end
            if next_inject is not None and next_inject < target:
                target = next_inject
            if next_sample < target:
                target = int(next_sample)
            for period in periods:
                boundary = -(-cycle // period) * period
                if boundary < target:
                    target = boundary
            if target > cycle:
                cycle = target
                net.cycle = cycle
        # The RNG must end the span at the same stream position per-cycle
        # injection would have reached.
        if self._scout and traffic is not None and end > self._rng_cycle:
            traffic.advance(end - self._rng_cycle)
            self._rng_cycle = end
