"""Flits and packets: the unit of flow control and the unit of routing.

The simulated network is wormhole-switched: a packet is split into flits
(HEAD / BODY / TAIL, or HEAD_TAIL for single-flit packets).  The head flit
carries the routing information and acquires a virtual channel at every
hop; the tail flit releases it.  No packet mixing is allowed inside a VC
buffer (paper Sec. III-A), which the input unit enforces.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator, List, Optional


class FlitType(enum.Enum):
    """Position of a flit within its packet."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    HEAD_TAIL = "head_tail"

    @property
    def is_head(self) -> bool:
        """True for the flit that performs routing and VC allocation."""
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        """True for the flit that releases the virtual channel."""
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


class Flit:
    """One flow-control unit travelling through the network.

    Attributes
    ----------
    packet_id:
        Globally unique id of the owning packet.
    seq:
        Index of the flit within the packet (0 = head).
    ftype:
        :class:`FlitType` position marker.
    src, dst:
        Source and destination node (tile) ids.
    injected_cycle:
        Cycle at which the head of the packet entered the source queue.
    vnet:
        Virtual-network id (the paper uses separate data/instruction
        vnets; the reproduction simulates one vnet at a time and keeps
        the field for trace compatibility).
    hops:
        Number of router traversals so far (updated by routers).
    arrived_cycle:
        Cycle at which the flit was written into the *current* buffer
        (the BW pipeline stage); -1 while in flight.  A flit becomes
        eligible for switch allocation one cycle after arrival.
    """

    __slots__ = (
        "packet_id", "seq", "ftype", "src", "dst", "injected_cycle", "vnet",
        "hops", "arrived_cycle", "is_head", "is_tail",
    )

    def __init__(
        self,
        packet_id: int,
        seq: int,
        ftype: FlitType,
        src: int,
        dst: int,
        injected_cycle: int,
        vnet: int = 0,
    ) -> None:
        self.packet_id = packet_id
        self.seq = seq
        self.ftype = ftype
        self.src = src
        self.dst = dst
        self.injected_cycle = injected_cycle
        self.vnet = vnet
        self.hops = 0
        self.arrived_cycle = -1
        # Precomputed: ftype never changes after construction, and these
        # flags sit on the per-flit hot path of every engine.
        self.is_head = ftype is FlitType.HEAD or ftype is FlitType.HEAD_TAIL
        self.is_tail = ftype is FlitType.TAIL or ftype is FlitType.HEAD_TAIL

    def __repr__(self) -> str:
        return (
            f"Flit(pkt={self.packet_id}, seq={self.seq}, {self.ftype.value}, "
            f"{self.src}->{self.dst})"
        )


class Packet:
    """A routed message, materialized as a train of flits.

    Parameters
    ----------
    packet_id:
        Unique id (use :class:`PacketFactory` to mint them).
    src, dst:
        Source and destination node ids (``src != dst``).
    length:
        Number of flits (>= 1).
    injected_cycle:
        Cycle the packet was created at the source NI.
    vnet:
        Virtual-network id.
    """

    __slots__ = ("packet_id", "src", "dst", "length", "injected_cycle", "vnet")

    def __init__(
        self,
        packet_id: int,
        src: int,
        dst: int,
        length: int,
        injected_cycle: int,
        vnet: int = 0,
    ) -> None:
        if length < 1:
            raise ValueError(f"packet length must be >= 1, got {length}")
        if src == dst:
            raise ValueError(f"packet source and destination must differ, got {src}")
        self.packet_id = packet_id
        self.src = src
        self.dst = dst
        self.length = length
        self.injected_cycle = injected_cycle
        self.vnet = vnet

    def flits(self) -> List[Flit]:
        """Materialize the packet's flit train (head first, tail last)."""
        if self.length == 1:
            return [
                Flit(self.packet_id, 0, FlitType.HEAD_TAIL, self.src, self.dst,
                     self.injected_cycle, self.vnet)
            ]
        out: List[Flit] = []
        for seq in range(self.length):
            if seq == 0:
                ftype = FlitType.HEAD
            elif seq == self.length - 1:
                ftype = FlitType.TAIL
            else:
                ftype = FlitType.BODY
            out.append(
                Flit(self.packet_id, seq, ftype, self.src, self.dst,
                     self.injected_cycle, self.vnet)
            )
        return out

    def __repr__(self) -> str:
        return (
            f"Packet(id={self.packet_id}, {self.src}->{self.dst}, "
            f"len={self.length}, t={self.injected_cycle})"
        )


class PacketFactory:
    """Mints packets with globally unique, monotonically increasing ids."""

    def __init__(self, start_id: int = 0) -> None:
        self._ids: Iterator[int] = itertools.count(start_id)

    def create(
        self,
        src: int,
        dst: int,
        length: int,
        injected_cycle: int,
        vnet: int = 0,
    ) -> Packet:
        """Create a new :class:`Packet` with the next free id."""
        return Packet(next(self._ids), src, dst, length, injected_cycle, vnet)
