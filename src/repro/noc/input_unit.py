"""Downstream input port: VC buffers, route state and power-command sink.

The input unit physically hosts the VC buffers (the red buffers of the
paper's Fig. 1B) and therefore also hosts the NBTI sensors.  All of its
power transitions are *commanded* by the upstream port over the
``Up_Down`` control channel; the unit merely executes them and keeps the
per-VC wormhole state needed to forward flits onward:

* ``busy`` — a packet currently owns the VC (head arrived, tail not yet
  departed); no packet mixing is allowed (paper Sec. III-A).
* ``outport`` — route computed for the resident packet (RC at head
  arrival, i.e. the BW+RC pipeline stage).
* ``out_vc`` — VC allocated at *this* router's output toward the next
  hop (``None`` until the local VA stage grants one).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.nbti.sensor import SensorBank
from repro.noc.buffer import BufferError, PowerState, VCBuffer
from repro.noc.flit import Flit
from repro.noc.link import Channel


class InputVC:
    """State of one virtual channel of an input port."""

    __slots__ = ("buffer", "busy", "outport", "out_vc", "sa_ready_at", "packet_id", "vnet")

    def __init__(self, buffer: VCBuffer) -> None:
        self.buffer = buffer
        self.busy = False
        self.outport: Optional[int] = None
        self.out_vc: Optional[int] = None
        self.sa_ready_at = 0
        self.packet_id: Optional[int] = None
        #: Virtual network of the resident packet (valid while busy).
        self.vnet = 0

    @property
    def wants_va(self) -> bool:
        """A resident head flit still needs an output VC."""
        return self.busy and self.out_vc is None

    def release(self) -> None:
        """Tail departed: free the VC for the next packet."""
        self.busy = False
        self.outport = None
        self.out_vc = None
        self.packet_id = None

    def __repr__(self) -> str:
        return (
            f"InputVC(busy={self.busy}, outport={self.outport}, "
            f"out_vc={self.out_vc}, buf={self.buffer!r})"
        )


class InputUnit:
    """All VCs of one input port, plus its credit channel and sensors.

    Parameters
    ----------
    buffers:
        One :class:`VCBuffer` per VC.
    credit_channel:
        Delay line delivering credits back to the upstream port.
    route_fn:
        ``route_fn(dst_node) -> outport`` — the router's RC stage for
        this port (ejection units pass a constant-LOCAL function).
    sensor_bank:
        Optional NBTI sensor bank over the buffers' PMOS devices.
    wake_latency:
        Cycles a buffer needs to power back ON after a wake command.
    """

    __slots__ = (
        "vcs", "credit_channel", "route_fn", "sensor_bank", "wake_latency",
        "flits_received", "busy_count", "_any_waking",
    )

    def __init__(
        self,
        buffers: List[VCBuffer],
        credit_channel: Channel,
        route_fn: Callable[[int], int],
        sensor_bank: Optional[SensorBank] = None,
        wake_latency: int = 1,
    ) -> None:
        if not buffers:
            raise ValueError("an input unit needs at least one VC buffer")
        self.vcs = [InputVC(buf) for buf in buffers]
        self.credit_channel = credit_channel
        self.route_fn = route_fn
        self.sensor_bank = sensor_bank
        self.wake_latency = wake_latency
        self.flits_received = 0
        #: VCs with a resident packet (lets the router skip idle ports).
        self.busy_count = 0
        self._any_waking = False

    @property
    def num_vcs(self) -> int:
        return len(self.vcs)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def receive_flit(self, vc: int, flit: Flit, cycle: int) -> None:
        """BW(+RC) stage: write an arriving flit into its VC buffer."""
        ivc = self.vcs[vc]
        flit.arrived_cycle = cycle
        if flit.is_head:
            if ivc.busy:
                raise BufferError(
                    f"packet mixing on vc {vc}: {flit!r} while "
                    f"packet {ivc.packet_id} is resident"
                )
            ivc.busy = True
            ivc.packet_id = flit.packet_id
            ivc.outport = self.route_fn(flit.dst)
            ivc.vnet = flit.vnet
            self.busy_count += 1
        elif not ivc.busy or ivc.packet_id != flit.packet_id:
            raise BufferError(f"body/tail flit without resident head on vc {vc}: {flit!r}")
        ivc.buffer.push(flit, cycle)
        self.flits_received += 1

    def pop_flit(self, vc: int, cycle: int) -> Flit:
        """ST stage: remove the front flit and return a credit upstream."""
        ivc = self.vcs[vc]
        flit = ivc.buffer.pop()
        self.credit_channel.send(vc, cycle)
        if flit.is_tail:
            ivc.release()
            self.busy_count -= 1
        return flit

    # ------------------------------------------------------------------
    # Power commands (Up_Down link sink)
    # ------------------------------------------------------------------
    def apply_command(self, command: str, vc: int, cycle: Optional[int] = None) -> None:
        """Execute a gate/wake command from the upstream port.

        ``cycle`` enables the buffers' interval NBTI accounting (see
        :class:`VCBuffer`); omit it only in per-cycle-tick unit tests.
        """
        buffer = self.vcs[vc].buffer
        if command == "gate":
            buffer.gate(cycle=cycle)
        elif command == "wake":
            buffer.wake(self.wake_latency, cycle=cycle)
            self._any_waking = True
        else:
            raise ValueError(f"unknown power command {command!r}")

    def tick_power(self) -> None:
        """Advance wake countdowns (once per cycle).

        Skipped entirely while no buffer is waking (the common case).
        """
        if not self._any_waking:
            return
        still_waking = False
        for ivc in self.vcs:
            buffer = ivc.buffer
            buffer.tick_power()
            if buffer.state is PowerState.WAKING:
                still_waking = True
        self._any_waking = still_waking

    def nbti_tick(self) -> None:
        """Age every buffer's PMOS by one cycle (per-cycle mode).

        The simulator itself now uses interval accounting
        (:meth:`nbti_flush`); this per-cycle path remains for unit tests
        and as the reference the intervals must reproduce.
        """
        gated = PowerState.GATED
        for ivc in self.vcs:
            buffer = ivc.buffer
            device = buffer.device
            if device is None or not buffer.track_nbti:
                continue
            counter = device.counter
            if buffer._state is gated:
                counter.recovery_cycles += 1
            else:
                counter.stress_cycles += 1

    def nbti_flush(self, cycle: int) -> None:
        """Book every buffer's unaccounted interval up to ``cycle``."""
        for ivc in self.vcs:
            ivc.buffer.nbti_flush(cycle)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def duty_cycles(self) -> List[float]:
        """Per-VC NBTI-duty-cycles in percent (100.0 without a device)."""
        out: List[float] = []
        for ivc in self.vcs:
            device = ivc.buffer.device
            out.append(device.duty_cycle if device is not None else 100.0)
        return out

    def occupancy(self) -> int:
        """Total buffered flits across all VCs."""
        return sum(len(ivc.buffer) for ivc in self.vcs)

    def __repr__(self) -> str:
        return f"InputUnit(vcs={self.vcs!r})"
