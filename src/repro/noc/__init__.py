"""Cycle-accurate NoC simulator substrate (Garnet-class, pure Python).

Layers:

* :mod:`repro.noc.flit` / :mod:`repro.noc.buffer` — flits, packets and
  power-gateable VC buffers.
* :mod:`repro.noc.link` / :mod:`repro.noc.arbiter` — delay lines and
  round-robin arbitration.
* :mod:`repro.noc.topology` / :mod:`repro.noc.routing` — meshes, tori,
  rings and dimension-order routing.
* :mod:`repro.noc.input_unit` / :mod:`repro.noc.output_unit` /
  :mod:`repro.noc.router` — the 3-stage VC router.
* :mod:`repro.noc.interface` — network interfaces (injection/ejection).
* :mod:`repro.noc.policy_api` — the pre-VA recovery-policy interface the
  contribution in :mod:`repro.core` implements.
* :mod:`repro.noc.network` — the top-level chip builder and stepper.
"""

from repro.noc.buffer import BufferError, PowerState, VCBuffer
from repro.noc.config import NoCConfig
from repro.noc.flit import Flit, FlitType, Packet, PacketFactory
from repro.noc.network import Network, SimStats
from repro.noc.policy_api import (
    OutVCState,
    PolicyContext,
    PolicyDecision,
    RecoveryPolicy,
)
from repro.noc.topology import (
    EAST,
    LOCAL,
    NORTH,
    SOUTH,
    WEST,
    Mesh2D,
    Ring,
    Torus2D,
    build_topology,
    port_id,
    port_name,
)

__all__ = [
    "BufferError",
    "PowerState",
    "VCBuffer",
    "NoCConfig",
    "Flit",
    "FlitType",
    "Packet",
    "PacketFactory",
    "Network",
    "SimStats",
    "OutVCState",
    "PolicyContext",
    "PolicyDecision",
    "RecoveryPolicy",
    "EAST",
    "LOCAL",
    "NORTH",
    "SOUTH",
    "WEST",
    "Mesh2D",
    "Ring",
    "Torus2D",
    "build_topology",
    "port_id",
    "port_name",
]
