"""Link modelling: fixed-latency delay lines for flits, credits and control.

A physical link between an upstream output port and a downstream input
port carries four channels in this model:

* the **data channel** (flits, ``flit_width`` bits wide),
* the **credit channel** back to the upstream router,
* the ``Up_Down`` **control channel** added by the methodology
  (``log2(num_vc)`` VC-id lines + 1 enable line), and
* the ``Down_Up`` **control channel** (``log2(num_vc)`` lines carrying the
  most-degraded VC id).

All channels share the same latency (1 cycle by default, matching the
paper's single-cycle link traversal at 1 GHz).  :class:`DelayLine` is the
generic building block; :class:`Channel` simply names one instance.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Tuple, TypeVar

T = TypeVar("T")

#: Shared empty result for :meth:`DelayLine.pop_ready`; never mutated.
_EMPTY: List = []


class DelayLine(Generic[T]):
    """A FIFO with a fixed delivery latency in cycles.

    Items sent at cycle ``t`` become visible to :meth:`pop_ready` at cycle
    ``t + latency``.  Storage is a plain deque of ``(due, item)`` pairs:
    the latency is a per-line constant and senders only move forward in
    time, so delivery times are nondecreasing in send order and the
    append order *is* the delivery order.  Subclasses that can reorder
    deliveries (:class:`~repro.faults.channels.FaultyChannel` adds per-
    item extra delay) replace the storage with a heap and override the
    queue operations.
    """

    __slots__ = ("latency", "_queue", "on_send")

    def __init__(self, latency: int = 1) -> None:
        if latency < 0:
            raise ValueError(f"link latency must be non-negative, got {latency}")
        self.latency = latency
        self._queue: Deque[Tuple[int, T]] = deque()
        #: Optional observer called with the delivery cycle of every
        #: enqueued item.  The event-directed SoA engine installs one per
        #: channel so it only visits delay lines that actually hold due
        #: items; ``None`` (the default) outside SoA runs.
        self.on_send = None

    def send(self, item: T, cycle: int) -> None:
        """Enqueue ``item`` for delivery at ``cycle + latency``."""
        due = cycle + self.latency
        self._queue.append((due, item))
        if self.on_send is not None:
            self.on_send(due)

    def pop_ready(self, cycle: int) -> List[T]:
        """Dequeue every item whose delivery time is <= ``cycle``.

        Returns a shared immutable-by-convention empty list when nothing
        is ready (the overwhelmingly common case in a lightly loaded
        network) — callers only iterate the result.
        """
        queue = self._queue
        if not queue or queue[0][0] > cycle:
            return _EMPTY
        out: List[T] = []
        while queue and queue[0][0] <= cycle:
            out.append(queue.popleft()[1])
        return out

    def peek_ready(self, cycle: int) -> bool:
        """Whether at least one item is deliverable at ``cycle``."""
        queue = self._queue
        return bool(queue) and queue[0][0] <= cycle

    @property
    def in_flight(self) -> int:
        """Number of items currently travelling on the line."""
        return len(self._queue)

    def __repr__(self) -> str:
        return f"DelayLine(latency={self.latency}, in_flight={self.in_flight})"


class Channel(DelayLine[T]):
    """A named :class:`DelayLine`, for nicer diagnostics."""

    __slots__ = ("name",)

    def __init__(self, name: str, latency: int = 1) -> None:
        super().__init__(latency)
        self.name = name

    def __repr__(self) -> str:
        return f"Channel({self.name!r}, latency={self.latency}, in_flight={self.in_flight})"


class LossyChannel(Channel[T]):
    """A channel that drops items — a fault-injection instrument.

    The simulator's correctness contract assumes reliable links; this
    class exists to *test* that assumption: dropping ``Up_Down`` wake
    commands, for example, desynchronizes the upstream power view from
    the downstream buffers and must surface as a hard error rather than
    silent corruption (see ``tests/test_fault_injection.py``).

    Parameters
    ----------
    drop_probability:
        Independent per-item drop chance in ``[0, 1]``.
    seed:
        Seed of the private drop RNG (runs stay reproducible).
    drop_filter:
        Optional predicate; only items for which it returns True are
        eligible for dropping (e.g. only ``("wake", vc)`` commands).
    """

    __slots__ = ("drop_probability", "dropped", "_rng", "drop_filter")

    def __init__(
        self,
        name: str,
        latency: int = 1,
        drop_probability: float = 0.0,
        seed: int = 0,
        drop_filter=None,
    ) -> None:
        super().__init__(name, latency)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], got {drop_probability}"
            )
        import random

        self.drop_probability = drop_probability
        self.dropped = 0
        self._rng = random.Random(seed)
        self.drop_filter = drop_filter

    def send(self, item: T, cycle: int) -> None:
        eligible = self.drop_filter is None or self.drop_filter(item)
        if eligible and self._rng.random() < self.drop_probability:
            self.dropped += 1
            return
        super().send(item, cycle)
