"""Upstream port (output unit): out_vc_state tracking, pre-VA policy stage,
VC allocation and credit management.

In a VC router the *upstream* router performs the VA stage for the
*downstream* input port, so it is the upstream output unit that owns:

* ``out_vc_state`` — one :class:`OutVCEntry` per downstream VC (IDLE /
  ACTIVE, credit count, tail bookkeeping),
* the NBTI additions of the paper (Fig. 1B): the ``most_degraded`` marker
  received over ``Down_Up`` and the pre-VA recovery policy whose
  ``enable``/VC-id outputs drive the ``Up_Down`` link, and
* the power view of each downstream VC (``gated`` flag + ``available_at``
  wake-completion cycle), kept consistent with the downstream buffers by
  construction since all gate/wake commands originate here.

Virtual networks
----------------
The paper's platform partitions the VCs of every port into *virtual
networks* (Table I: 2/6 vnets with 2/4 VCs each) so that protocol
message classes cannot deadlock each other.  The partition is strict:

* a packet of vnet ``v`` may only be allocated VCs of vnet ``v``, and
* the recovery policy runs **once per vnet** on that vnet's VC slice —
  new traffic of one vnet must never be served by (or keep awake) a VC
  of another.

Each (port, vnet) pair therefore owns a private policy instance with
its own traffic bit, most-degraded id and memoization state, held in a
:class:`VnetEngine`.  With ``num_vnets == 1`` (the default, and what the
paper's measurements use one at a time) everything collapses to the
plain per-port behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.flit import Flit
from repro.noc.link import Channel
from repro.noc.policy_api import (
    OutVCState,
    PolicyContext,
    PolicyDecision,
    RecoveryPolicy,
)
from repro.telemetry import probes

#: Power-gating command carried by the Up_Down control channel.
GateCommand = Tuple[str, int]  # ("gate" | "wake", vc)


class OutVCEntry:
    """Book-keeping for one downstream VC as seen from upstream."""

    __slots__ = ("state", "credits", "max_credits", "gated", "available_at", "tail_sent", "packet_id")

    def __init__(self, max_credits: int) -> None:
        self.state = OutVCState.IDLE
        self.credits = max_credits
        self.max_credits = max_credits
        self.gated = False
        self.available_at = 0
        self.tail_sent = False
        self.packet_id: Optional[int] = None

    def __repr__(self) -> str:
        return (
            f"OutVCEntry(state={self.state.value}, credits={self.credits}/"
            f"{self.max_credits}, gated={self.gated})"
        )


class VnetEngine:
    """Per-(port, vnet) recovery-policy state: the pre-VA stage of one
    VC slice."""

    __slots__ = (
        "vnet",
        "start",
        "count",
        "policy",
        "new_traffic",
        "most_degraded_vc",
        "last_decision",
        "md_updated_cycle",
        "md_changed_cycle",
        "implausible_until",
        "faulted",
        "degrade_events",
        "degraded_cycles",
        "_ctx_version",
        "_policy_key",
        "_decision_cache",
        "_alloc_arbiter",
        "on_invalidate",
    )

    def __init__(self, vnet: int, start: int, count: int, policy: RecoveryPolicy) -> None:
        self.vnet = vnet
        self.start = start
        self.count = count
        self.policy = policy
        self.new_traffic = False
        self.most_degraded_vc: Optional[int] = None  # local (slice) index
        self.last_decision: Optional[PolicyDecision] = None
        # Down_Up health watchdog (see UpstreamPort.run_policy).  The
        # watchdog only arms once a report has actually been received
        # (md_updated_cycle stays None on sensor-less/ejection ports).
        self.md_updated_cycle: Optional[int] = None
        self.md_changed_cycle: Optional[int] = None
        self.implausible_until = -1
        self.faulted = False
        self.degrade_events = 0
        self.degraded_cycles = 0
        self._ctx_version = 0
        self._policy_key: Optional[Tuple[int, int]] = None
        #: Value-level decision memo for *stable* policies: context
        #: values -> the (frozen, shareable) decision they produced.  A
        #: stable policy's decision is a deterministic function of the
        #: observable context plus its epoch (that is what `stable` +
        #: `epoch` promise; `cycle_free_decide` additionally drops the
        #: epoch while healthy), so re-seeing the same values lets the
        #: port skip context construction and `decide` entirely — only
        #: the (idempotent, diff-based) application re-runs.  The key
        #: space is tiny (a few dozen VC-state combinations), so the
        #: dict stays small for the lifetime of the port.
        self._decision_cache: Optional[dict] = {} if policy.stable else None
        self._alloc_arbiter = RoundRobinArbiter(count)
        #: Optional observer fired on every memo bust.  The SoA engine
        #: installs one so it re-runs a port's policy exactly when the
        #: dense engine's memoization would miss; ``None`` otherwise.
        self.on_invalidate = None

    def invalidate(self) -> None:
        """Mark a policy-visible input as changed (busts the memo)."""
        self._ctx_version += 1
        if self.on_invalidate is not None:
            self.on_invalidate()


class UpstreamPort:
    """One output unit driving one downstream input port.

    Shared by routers (their N/S/E/W/local output ports) and by network
    interfaces (which act as the upstream of their router's local input
    port), so the recovery methodology covers every input port in the
    NoC uniformly.

    Parameters
    ----------
    num_vcs:
        VCs per virtual network (2 or 4 in the paper).
    buffer_depth:
        Downstream buffer depth in flits (credits start here).
    policy:
        The pre-VA :class:`RecoveryPolicy` for vnet 0, or a factory via
        ``policy_factory`` for multi-vnet ports.
    data_channel:
        Delay line carrying ``(vc, flit)`` to the downstream input unit.
    control_channel:
        Delay line carrying :data:`GateCommand` items (the ``Up_Down``
        link; same latency as the data link).
    wake_latency:
        Extra cycles a gated buffer needs after the wake command arrives.
    num_vnets:
        Virtual networks sharing the port; total VCs =
        ``num_vcs * num_vnets``.
    policy_factory:
        Builds one policy instance per vnet; required when
        ``num_vnets > 1`` (per-vnet policies must not share state).
    md_stale_after:
        Staleness watchdog threshold: when more than this many cycles
        pass without a ``Down_Up`` delivery (heartbeat or change), the
        vnet is marked ``faulted`` and sensor-wise policies degrade to
        their sensor-less fallback.  ``None`` disables the watchdog.
    md_min_change_interval:
        Plausibility threshold: most-degraded *changes* arriving closer
        together than this (sensors only re-measure every
        ``sample_period``) are implausible and trip the watchdog for a
        hold-off window.  ``0`` disables the plausibility check.
    """

    __slots__ = (
        "num_vcs",
        "num_vnets",
        "total_vcs",
        "buffer_depth",
        "data_channel",
        "control_channel",
        "wake_latency",
        "md_stale_after",
        "md_min_change_interval",
        "entries",
        "engines",
        "gate_commands",
        "wake_commands",
        "trace",
        "trace_id",
    )

    def __init__(
        self,
        num_vcs: int,
        buffer_depth: int,
        policy: Optional[RecoveryPolicy],
        data_channel: Channel,
        control_channel: Channel,
        wake_latency: int = 1,
        num_vnets: int = 1,
        policy_factory=None,
        md_stale_after: Optional[int] = None,
        md_min_change_interval: int = 0,
    ) -> None:
        if num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {num_vcs}")
        if buffer_depth < 1:
            raise ValueError(f"buffer_depth must be >= 1, got {buffer_depth}")
        if wake_latency < 0:
            raise ValueError(f"wake_latency must be >= 0, got {wake_latency}")
        if num_vnets < 1:
            raise ValueError(f"num_vnets must be >= 1, got {num_vnets}")
        if num_vnets > 1 and policy_factory is None:
            raise ValueError("multi-vnet ports need a policy_factory")
        self.num_vcs = num_vcs
        self.num_vnets = num_vnets
        self.total_vcs = num_vcs * num_vnets
        self.buffer_depth = buffer_depth
        self.data_channel = data_channel
        self.control_channel = control_channel
        self.wake_latency = wake_latency
        if md_stale_after is not None and md_stale_after <= 0:
            raise ValueError(f"md_stale_after must be positive, got {md_stale_after}")
        if md_min_change_interval < 0:
            raise ValueError(
                f"md_min_change_interval must be >= 0, got {md_min_change_interval}"
            )
        self.md_stale_after = md_stale_after
        self.md_min_change_interval = md_min_change_interval
        self.entries: List[OutVCEntry] = [
            OutVCEntry(buffer_depth) for _ in range(self.total_vcs)
        ]
        self.engines: List[VnetEngine] = []
        for vnet in range(num_vnets):
            vnet_policy = policy_factory() if policy_factory is not None else policy
            if vnet_policy is None:
                raise ValueError("either policy or policy_factory must be given")
            self.engines.append(
                VnetEngine(vnet, vnet * num_vcs, num_vcs, vnet_policy)
            )
        # Telemetry: how many gate / wake commands this port has issued.
        self.gate_commands = 0
        self.wake_commands = 0
        #: Telemetry handle + track id (see repro.telemetry.runtime);
        #: ``None``/0 outside traced runs.
        self.trace = None
        self.trace_id = 0

    # ------------------------------------------------------------------
    # Introspection shims (single-vnet convenience)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> RecoveryPolicy:
        """The vnet-0 policy (the only one on single-vnet ports)."""
        return self.engines[0].policy

    @property
    def last_decision(self) -> Optional[PolicyDecision]:
        """The vnet-0 decision (single-vnet convenience)."""
        return self.engines[0].last_decision

    @property
    def new_traffic(self) -> bool:
        """The vnet-0 traffic bit (single-vnet convenience)."""
        return self.engines[0].new_traffic

    @property
    def most_degraded_vc(self) -> Optional[int]:
        """Global id of vnet 0's most-degraded VC (single-vnet shim)."""
        local = self.engines[0].most_degraded_vc
        return None if local is None else self.engines[0].start + local

    def vnet_of(self, vc: int) -> int:
        """Virtual network that owns a global VC index."""
        if not 0 <= vc < self.total_vcs:
            raise ValueError(f"vc {vc} out of range [0, {self.total_vcs})")
        return vc // self.num_vcs

    # ------------------------------------------------------------------
    # Pre-VA policy stage
    # ------------------------------------------------------------------
    def vc_policy_state(self, vc: int) -> OutVCState:
        """Policy-facing state: ACTIVE, IDLE (awake) or RECOVERY (gated)."""
        entry = self.entries[vc]
        if entry.state is OutVCState.ACTIVE:
            return OutVCState.ACTIVE
        return OutVCState.RECOVERY if entry.gated else OutVCState.IDLE

    def build_context(self, cycle: int, vnet: int = 0) -> PolicyContext:
        """Snapshot one vnet's VC slice for its policy."""
        engine = self.engines[vnet]
        states = tuple(
            self.vc_policy_state(engine.start + i) for i in range(engine.count)
        )
        return PolicyContext(
            cycle=cycle,
            vc_states=states,
            new_traffic=engine.new_traffic,
            most_degraded_vc=engine.most_degraded_vc,
            sensor_faulted=engine.faulted,
        )

    def _tick_watchdog(self, engine: VnetEngine, cycle: int) -> None:
        """Re-assess one vnet's Down_Up health (staleness + plausibility).

        Only sensor-consuming policies on ports that have actually
        received a report participate; transitions bust the memo so the
        policy re-decides immediately on degrade and on heal.
        """
        if (
            self.md_stale_after is None
            or engine.md_updated_cycle is None
            or not engine.policy.uses_sensor
        ):
            return
        stale = cycle - engine.md_updated_cycle > self.md_stale_after
        implausible = cycle < engine.implausible_until
        faulted = stale or implausible
        if faulted != engine.faulted:
            engine.faulted = faulted
            if faulted:
                engine.degrade_events += 1
            if self.trace is not None:
                self.trace.instant(
                    probes.WATCHDOG_DEGRADE if faulted else probes.WATCHDOG_HEAL,
                    "watchdog", tid=self.trace_id,
                    args={"vnet": engine.vnet, "stale": stale, "implausible": implausible},
                    ts=cycle,
                )
            engine.invalidate()
        if engine.faulted:
            engine.degraded_cycles += 1

    def run_policy(self, cycle: int) -> List[PolicyDecision]:
        """Evaluate every vnet's policy and apply the decisions.

        Stable policies (see :class:`RecoveryPolicy.stable`) are memoized
        per vnet on (input version, policy epoch): when nothing they can
        observe changed, the previous — already applied — decision
        stands.  On a memo miss, a second value-level cache keyed by the
        *observable context values* skips :meth:`decide` when the same
        situation was seen before (sound because a stable policy's
        decision is a pure function of those values and its epoch); the
        cached decision is still re-applied, since the port's power
        state may have drifted.  Traced policies bypass the value cache
        so per-decide telemetry stays complete.
        """
        decisions: List[PolicyDecision] = []
        for engine in self.engines:
            self._tick_watchdog(engine, cycle)
            policy = engine.policy
            if policy.stable:
                key = (engine._ctx_version, policy.epoch(cycle))
                if key == engine._policy_key and engine.last_decision is not None:
                    decisions.append(engine.last_decision)
                    continue
                engine._policy_key = key
                cache = engine._decision_cache
                if cache is not None and policy.trace is None:
                    # Inlined vc_policy_state: this runs on every memo
                    # miss and the method-call overhead is measurable.
                    entries = self.entries
                    active = OutVCState.ACTIVE
                    recovery = OutVCState.RECOVERY
                    idle = OutVCState.IDLE
                    start = engine.start
                    if engine.count == 2:
                        # Unrolled for the dominant 2-VC-per-vnet shape:
                        # a genexpr frame per memo miss is measurable.
                        e = entries[start]
                        s0 = (active if e.state is active
                              else recovery if e.gated else idle)
                        e = entries[start + 1]
                        states = (s0, active if e.state is active
                                  else recovery if e.gated else idle)
                    else:
                        states = tuple(
                            active if (e := entries[i]).state is active
                            else (recovery if e.gated else idle)
                            for i in range(start, start + engine.count)
                        )
                    faulted = engine.faulted
                    ckey = (
                        states,
                        engine.new_traffic,
                        engine.most_degraded_vc,
                        faulted,
                        # key[1] is policy.epoch(cycle), already computed.
                        0 if policy.cycle_free_decide and not faulted
                        else key[1],
                    )
                    decision = cache.get(ckey)
                    if decision is None:
                        decision = policy.decide(PolicyContext(
                            cycle=cycle,
                            vc_states=states,
                            new_traffic=engine.new_traffic,
                            most_degraded_vc=engine.most_degraded_vc,
                            sensor_faulted=faulted,
                        ))
                        decision.validate(engine.count)
                        cache[ckey] = decision
                    self.apply_decision(decision, cycle, engine.vnet)
                    decisions.append(decision)
                    continue
            decision = policy.decide(self.build_context(cycle, engine.vnet))
            decision.validate(engine.count)
            self.apply_decision(decision, cycle, engine.vnet)
            decisions.append(decision)
        return decisions

    def apply_decision(self, decision: PolicyDecision, cycle: int, vnet: int = 0) -> None:
        """Turn a decision into gate/wake commands on the Up_Down link.

        Only state *changes* are commanded: a VC already awake that must
        stay awake (or already gated that must stay gated) produces no
        command, so sleep transistors are not toggled needlessly.
        Decision VC indices are local to the vnet's slice.
        """
        engine = self.engines[vnet]
        entries = self.entries
        awake = decision.awake
        start = engine.start
        active = OutVCState.ACTIVE
        control = self.control_channel
        trace = self.trace
        for local in range(engine.count):
            vc = start + local
            entry = entries[vc]
            if entry.state is active:
                continue
            want_awake = local in awake
            if want_awake and entry.gated:
                entry.gated = False
                entry.available_at = cycle + control.latency + self.wake_latency
                control.send(("wake", vc), cycle)
                self.wake_commands += 1
                if trace is not None:
                    trace.instant(
                        probes.PORT_WAKE_CMD, "port", tid=self.trace_id,
                        args={"vc": vc}, ts=cycle,
                    )
            elif not want_awake and not entry.gated:
                entry.gated = True
                control.send(("gate", vc), cycle)
                self.gate_commands += 1
                if trace is not None:
                    trace.instant(
                        probes.PORT_GATE_CMD, "port", tid=self.trace_id,
                        args={"vc": vc}, ts=cycle,
                    )
        engine.last_decision = decision

    def set_new_traffic(self, value: bool, vnet: int = 0) -> None:
        """Update a vnet's traffic bit, invalidating its memo on change."""
        engine = self.engines[vnet]
        if value != engine.new_traffic:
            engine.new_traffic = value
            engine.invalidate()

    # ------------------------------------------------------------------
    # VC allocation (VA stage, performed upstream)
    # ------------------------------------------------------------------
    def allocatable(self, vc: int, cycle: int) -> bool:
        """Whether ``vc`` can be granted to a new packet this cycle."""
        entry = self.entries[vc]
        return (
            entry.state is OutVCState.IDLE
            and not entry.gated
            and cycle >= entry.available_at
        )

    def has_allocatable(self, cycle: int, vnet: int = 0) -> bool:
        """Whether the vnet has any VC a new packet could take now."""
        engine = self.engines[vnet]
        entries = self.entries
        idle = OutVCState.IDLE
        for vc in range(engine.start, engine.start + engine.count):
            entry = entries[vc]
            if entry.state is idle and not entry.gated and cycle >= entry.available_at:
                return True
        return False

    def allocate_vc(
        self, cycle: int, packet_id: Optional[int] = None, vnet: int = 0
    ) -> Optional[int]:
        """Grant a free VC of ``vnet``, or ``None`` when nothing is free.

        Prefers the VC the vnet's recovery policy kept idle (its
        ``idle_vc`` output) — that is precisely the VC the methodology
        reserves for the next new packet — falling back to a round-robin
        scan for the baseline/no-policy case.  Returns a *global* VC id.
        """
        engine = self.engines[vnet]
        decision = engine.last_decision
        if decision is not None and decision.enable:
            preferred = engine.start + decision.idle_vc
            if self.allocatable(preferred, cycle):
                self._mark_allocated(preferred, packet_id, engine)
                return preferred
        granted_local = engine._alloc_arbiter.grant(
            [self.allocatable(engine.start + i, cycle) for i in range(engine.count)]
        )
        if granted_local is None:
            return None
        vc = engine.start + granted_local
        self._mark_allocated(vc, packet_id, engine)
        return vc

    def _mark_allocated(self, vc: int, packet_id: Optional[int], engine: VnetEngine) -> None:
        entry = self.entries[vc]
        entry.state = OutVCState.ACTIVE
        entry.tail_sent = False
        entry.packet_id = packet_id
        engine.invalidate()

    # ------------------------------------------------------------------
    # Data and credits
    # ------------------------------------------------------------------
    def can_send(self, vc: int) -> bool:
        """Whether a flit may be sent on ``vc`` this cycle (credit check)."""
        entry = self.entries[vc]
        return entry.state is OutVCState.ACTIVE and entry.credits > 0

    def send_flit(self, vc: int, flit: Flit, cycle: int) -> None:
        """Consume a credit and put the flit on the data link."""
        entry = self.entries[vc]
        if entry.state is not OutVCState.ACTIVE:
            raise RuntimeError(f"send on non-ACTIVE vc {vc}: {flit!r}")
        if entry.credits <= 0:
            raise RuntimeError(f"send without credits on vc {vc}: {flit!r}")
        entry.credits -= 1
        if flit.is_tail:
            entry.tail_sent = True
        self.data_channel.send((vc, flit), cycle)
        if entry.tail_sent and entry.credits == entry.max_credits:
            self._release(vc, entry)

    def on_credit(self, vc: int) -> None:
        """Handle a returning credit from the downstream input port."""
        entry = self.entries[vc]
        credits = entry.credits + 1
        entry.credits = credits
        if credits > entry.max_credits:
            raise RuntimeError(f"credit overflow on vc {vc}")
        if entry.tail_sent and credits == entry.max_credits:
            self._release(vc, entry)

    def _release(self, vc: int, entry: OutVCEntry) -> None:
        """Return a fully-drained entry to IDLE.

        Called when the tail has been sent *and* every credit is back —
        at that point the downstream buffer is provably empty, so the VC
        is safe to gate or to hand to a new packet.  (Callers inline the
        drain check: it fails on all but the final credit/tail event.)
        """
        entry.state = OutVCState.IDLE
        entry.tail_sent = False
        entry.packet_id = None
        self.engines[self.vnet_of(vc)].invalidate()

    # ------------------------------------------------------------------
    # Down_Up link sink
    # ------------------------------------------------------------------
    def set_most_degraded(self, vc: int, cycle: Optional[int] = None) -> None:
        """Latch a most-degraded VC id delivered by the Down_Up link.

        ``vc`` is a global index; it updates the owning vnet's marker.
        When ``cycle`` is given the delivery also feeds the health
        watchdog: every delivery refreshes the staleness timestamp, and
        a *change* arriving sooner than ``md_min_change_interval`` after
        the previous change is flagged implausible (sensors re-measure
        at most once per sample period, so faster flapping can only be
        wire noise) for a ``md_stale_after`` hold-off window.
        """
        if not 0 <= vc < self.total_vcs:
            raise ValueError(f"most-degraded vc {vc} out of range [0, {self.total_vcs})")
        engine = self.engines[self.vnet_of(vc)]
        local = vc - engine.start
        if local != engine.most_degraded_vc:
            # The first latch (None -> value) is not a "change" — only
            # value-to-value transitions feed the plausibility check.
            if cycle is not None and engine.most_degraded_vc is not None:
                if (
                    self.md_min_change_interval > 0
                    and engine.md_changed_cycle is not None
                    and cycle - engine.md_changed_cycle < self.md_min_change_interval
                    and self.md_stale_after is not None
                ):
                    engine.implausible_until = cycle + self.md_stale_after
                engine.md_changed_cycle = cycle
            engine.most_degraded_vc = local
            engine.invalidate()
        if cycle is not None:
            engine.md_updated_cycle = cycle

    def idle_vc_count(self) -> int:
        """Number of VCs currently IDLE and awake (diagnostics)."""
        return sum(
            1 for vc in range(self.total_vcs)
            if self.vc_policy_state(vc) is OutVCState.IDLE
        )

    def __repr__(self) -> str:
        states = ",".join(
            self.vc_policy_state(v).value[0] for v in range(self.total_vcs)
        )
        return f"UpstreamPort(vcs=[{states}], policy={self.policy.name})"
