"""Network interface (NI): packet injection and ejection at a tile.

Each tile's NI plays two roles:

* **Injection** — the NI is the *upstream* of its router's LOCAL input
  port.  It owns an :class:`~repro.noc.output_unit.UpstreamPort` (with a
  recovery policy, exactly like a router output port, so the methodology
  covers local ports too), a source queue of packets awaiting VC
  allocation, and per-VC flit send queues.
* **Ejection** — the NI hosts the buffers behind the router's LOCAL
  output port and drains them every cycle, recording packet latency.
  Ejection buffers are excluded from NBTI statistics by default (they
  are NI structures, not the router VC buffers the paper instruments).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.flit import Flit, Packet
from repro.noc.input_unit import InputUnit
from repro.noc.output_unit import UpstreamPort


class EjectionRecord:
    """Latency/throughput record of one ejected packet."""

    __slots__ = ("packet_id", "src", "dst", "injected_cycle", "ejected_cycle", "hops", "length")

    def __init__(self, flit: Flit, ejected_cycle: int, length: int) -> None:
        self.packet_id = flit.packet_id
        self.src = flit.src
        self.dst = flit.dst
        self.injected_cycle = flit.injected_cycle
        self.ejected_cycle = ejected_cycle
        self.hops = flit.hops
        self.length = length

    @property
    def latency(self) -> int:
        """End-to-end packet latency in cycles (injection to tail eject)."""
        return self.ejected_cycle - self.injected_cycle


class NetworkInterface:
    """The injection/ejection endpoint of one tile.

    Parameters
    ----------
    node_id:
        Tile id (== router id).
    injection_port:
        Upstream port driving the router's LOCAL input port.
    ejection_unit:
        Input unit holding the ejection buffers fed by the router's
        LOCAL output port.
    """

    def __init__(
        self,
        node_id: int,
        injection_port: UpstreamPort,
        ejection_unit: InputUnit,
    ) -> None:
        self.node_id = node_id
        self.injection_port = injection_port
        self.ejection_unit = ejection_unit
        total_vcs = injection_port.total_vcs
        self.num_vnets = injection_port.num_vnets
        #: Packets waiting for a VC (the "new packets" of the paper),
        #: queued per virtual network so message classes cannot
        #: head-of-line block each other.
        self.source_queues: List[Deque[Packet]] = [
            deque() for _ in range(self.num_vnets)
        ]
        #: Flits of allocated packets, per (global) VC: (ready_at, flit).
        self._send_queues: List[Deque[Tuple[int, Flit]]] = [
            deque() for _ in range(total_vcs)
        ]
        self._send_arbiter = RoundRobinArbiter(total_vcs)
        # Statistics.
        self.packets_injected = 0
        self.flits_injected = 0
        self.packets_ejected = 0
        self.flits_ejected = 0
        self.ejection_records: List[EjectionRecord] = []
        self._record_stats = True
        #: Tail bookkeeping for latency: packet_id -> flit count seen.
        self._partial_lengths: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Accept a freshly generated packet into its vnet's queue."""
        if packet.src != self.node_id:
            raise ValueError(
                f"packet {packet!r} injected at NI {self.node_id} but src={packet.src}"
            )
        if not 0 <= packet.vnet < self.num_vnets:
            raise ValueError(
                f"packet {packet!r} targets vnet {packet.vnet} but the NI "
                f"has {self.num_vnets} vnet(s)"
            )
        self.source_queues[packet.vnet].append(packet)

    @property
    def source_queue(self) -> Deque[Packet]:
        """Vnet-0 source queue (single-vnet convenience)."""
        return self.source_queues[0]

    @property
    def has_new_traffic(self) -> bool:
        """``is_new_traffic`` over all vnets (diagnostics)."""
        return any(self.source_queues)

    def phase_policy(self, cycle: int) -> None:
        """Run the recovery policies of the injection port."""
        for vnet, queue in enumerate(self.source_queues):
            self.injection_port.set_new_traffic(bool(queue), vnet)
        self.injection_port.run_policy(cycle)

    def phase_va(self, cycle: int) -> None:
        """Allocate a VC to the oldest waiting packet of each vnet
        (at most one allocation per vnet per cycle)."""
        for vnet, queue in enumerate(self.source_queues):
            if not queue:
                continue
            packet = queue[0]
            vc = self.injection_port.allocate_vc(
                cycle, packet_id=packet.packet_id, vnet=vnet
            )
            if vc is None:
                continue
            queue.popleft()
            send_queue = self._send_queues[vc]
            for flit in packet.flits():
                send_queue.append((cycle + 1, flit))
            self.packets_injected += 1

    def phase_send(self, cycle: int) -> None:
        """Send at most one flit into the router (the NI's ST stage)."""
        port = self.injection_port
        requests = []
        for vc, queue in enumerate(self._send_queues):
            ready = bool(queue) and queue[0][0] <= cycle and port.can_send(vc)
            requests.append(ready)
        vc = self._send_arbiter.grant(requests)
        if vc is None:
            return
        _, flit = self._send_queues[vc].popleft()
        port.send_flit(vc, flit, cycle)
        self.flits_injected += 1

    @property
    def pending_flits(self) -> int:
        """Flits still queued at the NI (allocated but not sent)."""
        return sum(len(q) for q in self._send_queues)

    @property
    def pending_packets(self) -> int:
        """Packets not yet fully handed to the network."""
        queued = sum(len(q) for q in self.source_queues)
        return queued + sum(1 for q in self._send_queues if q)

    def is_idle(self) -> bool:
        """Nothing queued or partially sent — the short-circuit form of
        ``pending_packets == 0`` the quiescence probe runs every cycle."""
        return not any(self.source_queues) and not any(self._send_queues)

    # ------------------------------------------------------------------
    # Ejection
    # ------------------------------------------------------------------
    def phase_eject(self, cycle: int) -> None:
        """Drain every ejection buffer (unbounded ejection bandwidth)."""
        for vc, ivc in enumerate(self.ejection_unit.vcs):
            while not ivc.buffer.is_empty:
                flit = self.ejection_unit.pop_flit(vc, cycle)
                self._account_ejected(flit, cycle)

    def _account_ejected(self, flit: Flit, cycle: int) -> None:
        if flit.dst != self.node_id:
            raise RuntimeError(
                f"misrouted flit at NI {self.node_id}: {flit!r}"
            )
        self.flits_ejected += 1
        seen = self._partial_lengths.get(flit.packet_id, 0) + 1
        if flit.is_tail:
            self._partial_lengths.pop(flit.packet_id, None)
            self.packets_ejected += 1
            if self._record_stats:
                self.ejection_records.append(EjectionRecord(flit, cycle, seen))
        else:
            self._partial_lengths[flit.packet_id] = seen

    # ------------------------------------------------------------------
    # Statistics control
    # ------------------------------------------------------------------
    def reset_stats(self, record: bool = True) -> None:
        """Drop throughput/latency stats (e.g. after warm-up)."""
        self.packets_injected = 0
        self.flits_injected = 0
        self.packets_ejected = 0
        self.flits_ejected = 0
        self.ejection_records.clear()
        self._record_stats = record

    def __repr__(self) -> str:
        return (
            f"NetworkInterface(node={self.node_id}, queued={len(self.source_queue)}, "
            f"pending_flits={self.pending_flits})"
        )
