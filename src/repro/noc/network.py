"""Top-level network: builds and steps the whole simulated chip.

The :class:`Network` assembles routers, network interfaces, links and the
NBTI instrumentation from a :class:`~repro.noc.config.NoCConfig`, then
advances everything in lock-step.  Per cycle, the phases run in a fixed
order so the simulation is fully deterministic:

1. deliveries (flits, credits, Up_Down commands, Down_Up reports),
2. ejection at the NIs,
3. traffic injection into the NI source queues,
4. pre-VA recovery policies (routers, then NIs),
5. VC allocation,
6. switch allocation + traversal (routers), NI flit sends,
7. NBTI aging + sensor sampling.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.nbti.model import NBTIModel
from repro.nbti.process_variation import ProcessVariationModel, VCKey
from repro.nbti.sensor import IdealSensor, NBTISensor, SensorBank
from repro.nbti.transistor import PMOSDevice
from repro.noc.buffer import VCBuffer
from repro.noc.config import NoCConfig
from repro.noc.flit import PacketFactory
from repro.noc.input_unit import InputUnit
from repro.noc.interface import NetworkInterface
from repro.noc.link import Channel
from repro.noc.output_unit import UpstreamPort
from repro.noc.policy_api import RecoveryPolicy
from repro.noc.router import InputWiring, OutputWiring, Router
from repro.noc.routing import build_routing
from repro.noc.topology import LOCAL, Topology, build_topology, port_name
from repro.stats.summary import QuantileSketch

#: Builds a fresh policy instance for each upstream port.
PolicyFactory = Callable[[], RecoveryPolicy]

#: Builds a fresh sensor model for each sensor bank.
SensorFactory = Callable[[], NBTISensor]


@dataclasses.dataclass
class SimStats:
    """Aggregate network statistics over the measured window."""

    cycles: int
    packets_injected: int
    packets_ejected: int
    flits_injected: int
    flits_ejected: int
    avg_packet_latency: float
    max_packet_latency: int
    throughput_flits_per_node_cycle: float
    p50_packet_latency: float = 0.0
    p95_packet_latency: float = 0.0
    p99_packet_latency: float = 0.0
    #: Down_Up watchdog accounting, summed over every (port, vnet)
    #: engine: degrade transitions and cycles spent in the degraded
    #: (sensor-less fallback) mode.  Zero in healthy runs.
    sensor_degrade_events: int = 0
    sensor_degraded_cycles: int = 0

    def __str__(self) -> str:
        return (
            f"cycles={self.cycles} pkts={self.packets_ejected}/{self.packets_injected} "
            f"lat(avg/p95/max)={self.avg_packet_latency:.2f}/"
            f"{self.p95_packet_latency:.0f}/{self.max_packet_latency} "
            f"thru={self.throughput_flits_per_node_cycle:.4f} flits/node/cycle"
        )


class Network:
    """A fully wired NoC with NBTI instrumentation.

    Parameters
    ----------
    config:
        Static network parameters.
    policy_factory:
        Called once per upstream port to create its recovery policy.
    traffic:
        Object with ``inject(cycle) -> list[(src, dst, length|None)]``;
        see :class:`repro.traffic.base.TrafficGenerator`.
    nbti_model:
        Shared aging model; default is the calibrated 45 nm model.
    pbti_model:
        Optional PBTI companion model attached to every device (joint
        NBTI+PBTI regimes; see :mod:`repro.nbti.regime`).  ``None``
        keeps the historical NBTI-only accounting.
    pv_model:
        Process-variation sampler for initial Vth values; default uses
        ``config.seed`` (scenario runners freeze it per scenario).
    sensor_factory:
        Builds the measurement model of each sensor bank (ideal default).
    """

    #: Engine override for :meth:`run` (class attribute so tests and
    #: benchmarks can force an arm globally or per instance without
    #: widening ``ScenarioConfig``):  ``None``/"auto" picks the SoA
    #: engine when eligible, else fast-forward, else dense stepping;
    #: "soa" requires eligibility (raises otherwise); "fast" skips the
    #: SoA engine; "stepped" forces the dense per-cycle loop.
    force_engine: Optional[str] = None

    def __init__(
        self,
        config: NoCConfig,
        policy_factory: PolicyFactory,
        traffic=None,
        nbti_model: Optional[NBTIModel] = None,
        pv_model: Optional[ProcessVariationModel] = None,
        sensor_factory: Optional[SensorFactory] = None,
        pbti_model: Optional[NBTIModel] = None,
    ) -> None:
        self.config = config
        self.topology: Topology = build_topology(config.topology, config.num_nodes)
        self.routing = build_routing(config.routing, self.topology)
        self.traffic = traffic
        self.nbti_model = nbti_model if nbti_model is not None else NBTIModel.calibrated(config.technology)
        self.pbti_model = pbti_model
        self.pv_model = (
            pv_model
            if pv_model is not None
            else ProcessVariationModel.for_technology(config.technology, seed=config.seed)
        )
        self.sensor_factory = sensor_factory if sensor_factory is not None else IdealSensor
        self.packet_factory = PacketFactory()
        self.cycle = 0
        #: First cycle of the measurement window (bumped by reset_stats).
        self.stats_window_start = 0
        #: Flit-conservation offset: injected + pending - ejected -
        #: in_flight equals this at all times.  Zero from build;
        #: reset_stats re-bases it so mid-run counter resets (warm-up
        #: discard) don't fake conservation violations.
        self.conservation_baseline = 0
        #: Master switch for quiescence fast-forward in :meth:`run`.
        #: Telemetry instrumentation and fault injection clear it so
        #: traced/faulted runs take the dense per-cycle stepping loop.
        self.allow_fast_forward = True

        self.routers: List[Router] = []
        self.interfaces: List[NetworkInterface] = []
        #: Devices keyed by (router, input port, vc) in canonical order.
        self.devices: Dict[VCKey, PMOSDevice] = {}
        # Flat traversal lists for the hot path, filled by _build():
        # units carrying NBTI devices, units with power/occupancy state,
        # every delay line, and every sensor bank.
        self._nbti_units: List[InputUnit] = []
        self._power_units: List[InputUnit] = []
        self._all_channels: List[Channel] = []
        self._sensor_banks: List[SensorBank] = []

        self._build(policy_factory)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, policy_factory: PolicyFactory) -> None:
        cfg = self.config
        topo = self.topology

        # Canonical VC key order for PV sampling: router, port, vc.
        in_ports: Dict[int, List[int]] = {n: [LOCAL] for n in range(topo.num_nodes)}
        out_ports: Dict[int, List[int]] = {n: [LOCAL] for n in range(topo.num_nodes)}
        for link in topo.links():
            out_ports[link.src_router].append(link.src_port)
            in_ports[link.dst_router].append(link.dst_port)
        for ports in in_ports.values():
            ports.sort()
        for ports in out_ports.values():
            ports.sort()

        vc_keys: List[VCKey] = [
            (node, port, vc)
            for node in range(topo.num_nodes)
            for port in in_ports[node]
            for vc in range(cfg.total_vcs)
        ]
        initial_vths = self.pv_model.sample_chip(vc_keys)
        cycle_time = cfg.technology.clock_period_s * cfg.aging_time_scale
        for key, vth in initial_vths.items():
            self.devices[key] = PMOSDevice(
                vth, self.nbti_model, cycle_time_s=cycle_time,
                pbti_model=self.pbti_model,
            )

        # Channels for every upstream->downstream pair, keyed by the
        # downstream (router, input port).
        def make_channels(tag: str) -> Dict[str, Channel]:
            return {
                "data": Channel(f"{tag}.data", cfg.link_latency),
                "credit": Channel(f"{tag}.credit", cfg.link_latency),
                "up_down": Channel(f"{tag}.up_down", cfg.link_latency),
                "down_up": Channel(f"{tag}.down_up", cfg.link_latency),
            }

        # Build per-router input units and the NI ejection units.
        input_units: Dict[Tuple[int, int], InputUnit] = {}
        channels: Dict[Tuple[int, int], Dict[str, Channel]] = {}
        for node in range(topo.num_nodes):
            for port in in_ports[node]:
                tag = f"r{node}.{port_name(port)}"
                chans = make_channels(tag)
                channels[(node, port)] = chans
                buffers = []
                bank_devices = []
                for vc in range(cfg.total_vcs):
                    device = self.devices[(node, port, vc)]
                    buffers.append(VCBuffer(cfg.buffer_depth, device=device))
                    bank_devices.append(device)
                bank = SensorBank(
                    bank_devices,
                    sensor=self.sensor_factory(),
                    sample_period=cfg.sensor_sample_period,
                )
                route_fn = self._route_fn(node)
                input_units[(node, port)] = InputUnit(
                    buffers,
                    chans["credit"],
                    route_fn,
                    sensor_bank=bank,
                    wake_latency=cfg.wake_latency,
                )

        # Ejection units (NI side of each router's LOCAL output port).
        eject_units: Dict[int, InputUnit] = {}
        eject_channels: Dict[int, Dict[str, Channel]] = {}
        for node in range(topo.num_nodes):
            chans = make_channels(f"ni{node}.eject")
            eject_channels[node] = chans
            buffers = [
                VCBuffer(cfg.buffer_depth, device=None, track_nbti=False)
                for _ in range(cfg.total_vcs)
            ]
            eject_units[node] = InputUnit(
                buffers,
                chans["credit"],
                route_fn=lambda dst: LOCAL,
                sensor_bank=None,
                wake_latency=cfg.wake_latency,
            )

        # Upstream ports: one per router output port + one per NI.  The
        # Down_Up watchdog thresholds derive from the sensing physics:
        # a healthy bank heartbeats every sample_period (plus the link
        # latency), so two missed heartbeats is unambiguous staleness,
        # and verdict changes can never legitimately arrive closer than
        # one sample period apart.
        md_stale_after = 2 * cfg.sensor_sample_period + 2 * cfg.link_latency
        md_min_change_interval = cfg.sensor_sample_period

        def make_upstream(down_chans: Dict[str, Channel]) -> UpstreamPort:
            return UpstreamPort(
                cfg.num_vcs,
                cfg.buffer_depth,
                None,
                down_chans["data"],
                down_chans["up_down"],
                wake_latency=cfg.wake_latency,
                num_vnets=cfg.num_vnets,
                policy_factory=policy_factory,
                md_stale_after=md_stale_after,
                md_min_change_interval=md_min_change_interval,
            )

        # Router construction.
        neighbor_of: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for link in topo.links():
            neighbor_of[(link.src_router, link.src_port)] = (link.dst_router, link.dst_port)

        for node in range(topo.num_nodes):
            inputs: Dict[int, InputWiring] = {}
            for port in in_ports[node]:
                chans = channels[(node, port)]
                inputs[port] = InputWiring(
                    unit=input_units[(node, port)],
                    data_channel=chans["data"],
                    control_channel=chans["up_down"],
                )
            outputs: Dict[int, OutputWiring] = {}
            for port in out_ports[node]:
                if port == LOCAL:
                    down_chans = eject_channels[node]
                else:
                    down_node, down_port = neighbor_of[(node, port)]
                    down_chans = channels[(down_node, down_port)]
                outputs[port] = OutputWiring(
                    upstream=make_upstream(down_chans),
                    credit_channel=down_chans["credit"],
                    down_up_channel=down_chans["down_up"],
                )
            router = Router(node, inputs, outputs, cfg.num_vcs, cfg.num_vnets)
            for port in in_ports[node]:
                router.down_up_channels[port] = channels[(node, port)]["down_up"]
            self.routers.append(router)

        # Network interfaces: injection upstream drives LOCAL input port.
        for node in range(topo.num_nodes):
            local_chans = channels[(node, LOCAL)]
            injection = make_upstream(local_chans)
            ni = NetworkInterface(node, injection, eject_units[node])
            # The NI drains: credits + Down_Up of its injection port, and
            # data + Up_Down commands of its ejection unit.
            ni._inj_credit_channel = local_chans["credit"]
            ni._inj_down_up_channel = local_chans["down_up"]
            ni._eject_data_channel = eject_channels[node]["data"]
            ni._eject_control_channel = eject_channels[node]["up_down"]
            self.interfaces.append(ni)

        # Flat hot-path traversal lists (canonical build order).
        for node in range(topo.num_nodes):
            for port in in_ports[node]:
                unit = input_units[(node, port)]
                self._nbti_units.append(unit)
                self._power_units.append(unit)
                if unit.sensor_bank is not None:
                    self._sensor_banks.append(unit.sensor_bank)
            self._power_units.append(eject_units[node])
        for chans in channels.values():
            self._all_channels.extend(chans.values())
        for chans in eject_channels.values():
            self._all_channels.extend(chans.values())

        # Initial Down_Up latch: every upstream port learns each vnet's
        # most-degraded VC of its downstream before the first cycle.
        for node in range(topo.num_nodes):
            router = self.routers[node]
            for port in router.input_ports:
                bank = router.inputs[port].unit.sensor_bank
                if bank is None:
                    continue
                readings = bank.readings
                for vnet in range(cfg.num_vnets):
                    start = vnet * cfg.num_vcs
                    chunk = readings[start:start + cfg.num_vcs]
                    md = start + max(range(cfg.num_vcs), key=lambda i: (chunk[i], -i))
                    if port == LOCAL:
                        self.interfaces[node].injection_port.set_most_degraded(md, 0)
                    else:
                        up_node, up_port = neighbor_of_inverse(topo, node, port)
                        self.routers[up_node].outputs[up_port].upstream.set_most_degraded(md, 0)

    def _route_fn(self, node: int):
        routing = self.routing
        return lambda dst: routing.route(node, dst)

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole network by one cycle."""
        cycle = self.cycle
        for router in self.routers:
            router.phase_deliver(cycle)
        for ni in self.interfaces:
            self._ni_deliver(ni, cycle)
            ni.phase_eject(cycle)
        self._inject_traffic(cycle)
        for router in self.routers:
            router.phase_policy(cycle)
        for ni in self.interfaces:
            ni.phase_policy(cycle)
        for router in self.routers:
            router.phase_va(cycle)
        for ni in self.interfaces:
            ni.phase_va(cycle)
        for router in self.routers:
            router.phase_sa_st(cycle)
        for ni in self.interfaces:
            ni.phase_send(cycle)
        for router in self.routers:
            router.phase_nbti(cycle)
        self.cycle = cycle + 1

    def run(
        self,
        cycles: int,
        validate_every: int = 0,
        raise_on_violation: bool = True,
    ) -> int:
        """Advance the network ``cycles`` cycles; return the violation count.

        The hot path fast-forwards *quiescent* windows: when nothing is
        buffered, queued, waking or in flight on any link, and every
        event source can report its next event cycle (traffic injection,
        sensor samples, policy epoch boundaries), the clock jumps
        directly to that event.  Results are byte-identical to stepping:
        skipped cycles are provably no-ops, and the traffic RNG consumes
        exactly the draws the skipped cycles would have made.  Runs with
        ``validate_every > 0``, telemetry instrumentation, faults, or an
        unsupported traffic generator use the dense stepping loop.

        Device counters are flushed on return, so post-run duty-cycle
        reads need no extra synchronization.

        Parameters
        ----------
        validate_every:
            When positive, run :func:`repro.noc.validation.validate_network`
            every N cycles (full sweeps are O(network), so keep N coarse).
        raise_on_violation:
            With ``validate_every > 0``: raise ``RuntimeError`` on the
            first violation (debugging aid, the default) or count every
            violation and return the total (the campaigns' dependability
            metric).  Both callers share this one code path.
        """
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        if validate_every < 0:
            raise ValueError(f"validate_every must be >= 0, got {validate_every}")
        end = self.cycle + cycles
        violations = 0
        force = self.force_engine
        if force not in (None, "auto", "soa", "fast", "stepped"):
            raise ValueError(f"unknown force_engine {force!r}")
        if validate_every == 0:
            if force in (None, "auto", "soa") and self._soa_eligible():
                from repro.noc.soa import SoAEngine

                SoAEngine(self).run_span(end)
            elif force == "soa":
                raise RuntimeError(
                    "force_engine='soa' but the network is not SoA-eligible "
                    "(telemetry/faults/per-cycle NBTI or unstable policies)"
                )
            elif force == "stepped":
                while self.cycle < end:
                    self.step()
            else:
                plan = self._fast_forward_plan()
                if plan is None:
                    while self.cycle < end:
                        self.step()
                else:
                    self._run_fast(end, plan)
        else:
            from repro.noc.validation import validate_network

            stepped = 0
            while self.cycle < end:
                self.step()
                stepped += 1
                if stepped % validate_every == 0:
                    found = validate_network(self)
                    if found and raise_on_violation:
                        raise RuntimeError(
                            f"invariant violations at cycle {self.cycle}: "
                            + "; ".join(found[:5])
                        )
                    violations += len(found)
        self.flush_nbti()
        return violations

    def _soa_eligible(self) -> bool:
        """Check struct-of-arrays engine eligibility (see ``noc/soa.py``).

        The gates match :meth:`_fast_forward_plan` minus the traffic
        probe (an unsupported generator is simply consulted per cycle),
        plus the watchdog-safety bound made explicit: Down_Up
        heartbeats arrive one per sensor sample, so as long as every
        staleness threshold covers the longest sample period and no
        plausibility interval exceeds the shortest one, ``faulted`` can
        never flip mid-run and skipped watchdog ticks are no-ops.
        """
        if not self.allow_fast_forward:
            return False
        if any(router.per_cycle_nbti for router in self.routers):
            return False
        banks = self._sensor_banks
        if any(bank.fault is not None for bank in banks):
            return False
        max_period = max((b.sample_period for b in banks), default=0)
        min_period = min((b.sample_period for b in banks), default=0)
        for port in self.upstream_ports():
            if port.md_stale_after is not None and port.md_stale_after < max_period:
                return False
            if port.md_min_change_interval > min_period:
                return False
            for engine in port.engines:
                if engine.faulted:
                    return False
                policy = engine.policy
                if not policy.stable:
                    return False
                if policy.cycle_free_decide:
                    continue
                period = getattr(policy, "epoch_period", None)
                if period is None and policy.epoch(0) != policy.epoch(1 << 30):
                    return False
        return True

    # ------------------------------------------------------------------
    # Quiescence fast-forward
    # ------------------------------------------------------------------
    def _fast_forward_plan(
        self,
    ) -> Optional[Tuple[List[int], List[SensorBank]]]:
        """Check fast-forward eligibility; return the pinned-event plan.

        ``None`` means "step every cycle".  Eligibility requires:

        * :attr:`allow_fast_forward` (cleared by telemetry/faults),
        * a traffic generator that implements ``next_injection_cycle``
          (``None`` from the probe means unsupported), and
        * every recovery policy *stable* with a declared
          ``epoch_period`` (pinned) or a constant epoch, and no engine
          currently degraded (watchdog accounting is per-cycle).
          Policies declaring ``cycle_free_decide`` need no pin at all:
          their healthy decision is a pure function of the context, so
          skipped epoch boundaries provably change nothing.

        The plan is the sorted set of distinct epoch periods plus every
        sensor bank (whose next sample cycle pins jumps); faulted banks
        force stepping since their hooks may act on any cycle.
        """
        if not self.allow_fast_forward:
            return None
        traffic = self.traffic
        if traffic is not None:
            probe = getattr(traffic, "next_injection_cycle", None)
            if probe is None or probe(self.cycle) is None:
                return None
        periods = set()
        for port in self.upstream_ports():
            for engine in port.engines:
                if engine.faulted:
                    return None
                policy = engine.policy
                if not policy.stable:
                    return None
                if policy.cycle_free_decide:
                    # The healthy-path decision never reads ctx.cycle, so
                    # re-evaluating after a jump with an unchanged context
                    # reproduces the applied decision verbatim (no
                    # commands issued) — epoch boundaries need no pin.
                    # Eligibility already guarantees the engine stays
                    # healthy (fault-free banks heartbeat well inside the
                    # watchdog thresholds), so the cycle-dependent
                    # fallback can never engage mid-run.
                    continue
                period = getattr(policy, "epoch_period", None)
                if period is not None:
                    periods.add(period)
                elif policy.epoch(0) != policy.epoch(1 << 30):
                    return None  # time-varying epoch with undeclared period
        if any(bank.fault is not None for bank in self._sensor_banks):
            return None
        return (sorted(periods), self._sensor_banks)

    def _quiescent(self) -> bool:
        """Nothing queued, resident, waking, or in flight anywhere.

        Runs after every fast-mode step, so the checks are ordered by
        likelihood of an early exit during an active burst (a resident
        packet keeps some unit busy for the whole traversal) and read
        the heap of each delay line directly instead of going through
        its ``in_flight`` property.
        """
        for unit in self._power_units:
            if unit.busy_count or unit._any_waking:
                return False
        for channel in self._all_channels:
            if channel._queue:
                return False
        for ni in self.interfaces:
            if not ni.is_idle():
                return False
        return True

    def _run_fast(self, end: int, plan: Tuple[List[int], List[SensorBank]]) -> None:
        """Stepping loop that jumps over quiescent windows.

        After each simulated cycle, if the network is quiescent the
        clock jumps to the earliest *pinned* cycle: the traffic
        generator's next injection (its RNG is bulk-advanced over the
        skip so the stream position matches stepping exactly), the next
        actual sensor sample of any bank, a policy epoch boundary, or
        the end of the run.  Every skipped cycle is a provable no-op:
        deliveries, ejection, policy memos, VA/SA and the NBTI phase all
        see no work, and interval accounting books the skipped cycles at
        the next flush.
        """
        periods, banks = plan
        traffic = self.traffic
        while self.cycle < end:
            self.step()
            cycle = self.cycle
            if cycle >= end or not self._quiescent():
                continue
            if traffic is not None:
                target = traffic.next_injection_cycle(cycle)
                if target is None:
                    # Support withdrawn mid-run: step the remainder.
                    while self.cycle < end:
                        self.step()
                    return
                target = min(end, target)
            else:
                target = end
            for period in periods:
                # Smallest epoch boundary >= cycle (cycle itself may be
                # one: it must then be stepped, not skipped).
                boundary = -(-cycle // period) * period
                if boundary < target:
                    target = boundary
            for bank in banks:
                last = bank.last_sample_cycle
                due = 0 if last < 0 else last + bank.sample_period
                if due < target:
                    target = due
            delta = target - cycle
            if delta > 0:
                if traffic is not None:
                    traffic.advance(delta)
                self.cycle = target

    @staticmethod
    def _ni_deliver(ni: NetworkInterface, cycle: int) -> None:
        for vc in ni._inj_credit_channel.pop_ready(cycle):
            ni.injection_port.on_credit(vc)
        for vc in ni._inj_down_up_channel.pop_ready(cycle):
            ni.injection_port.set_most_degraded(vc, cycle)
        unit = ni.ejection_unit
        for command, vc in ni._eject_control_channel.pop_ready(cycle):
            unit.apply_command(command, vc, cycle)
        unit.tick_power()
        for vc, flit in ni._eject_data_channel.pop_ready(cycle):
            unit.receive_flit(vc, flit, cycle)

    def _inject_traffic(self, cycle: int) -> None:
        if self.traffic is None:
            return
        for injection in self.traffic.inject(cycle):
            src, dst, length = injection[0], injection[1], injection[2]
            vnet = injection[3] if len(injection) > 3 else 0
            pkt_len = length if length is not None else self.config.packet_length
            packet = self.packet_factory.create(src, dst, pkt_len, cycle, vnet=vnet)
            self.interfaces[src].enqueue(packet)

    # ------------------------------------------------------------------
    # NBTI / statistics accessors
    # ------------------------------------------------------------------
    def flush_nbti(self) -> None:
        """Book every device's unaccounted interval up to the current
        cycle (call before reading counters outside :meth:`run`)."""
        cycle = self.cycle
        for unit in self._nbti_units:
            unit.nbti_flush(cycle)

    def use_per_cycle_nbti(self) -> None:
        """Switch to the per-cycle reference aging engine.

        Every tracked device is aged by one counter increment per
        simulated cycle (the seed engine's O(cycles x devices)
        schedule) instead of by interval flushes, and fast-forward is
        disabled since skipped cycles would skip ticks.  Results are
        bit-identical to the default engine; only the cost model
        changes.  This is the baseline arm of
        ``benchmarks/hotpath_speedup.py`` and the oracle the
        equivalence tests compare against.
        """
        self.allow_fast_forward = False
        for router in self.routers:
            router.per_cycle_nbti = True
        for unit in self._nbti_units:
            for ivc in unit.vcs:
                ivc.buffer.per_cycle_nbti = True

    def duty_cycles(self, router: int, port) -> List[float]:
        """Per-VC NBTI-duty-cycles (%) at a router input port.

        ``port`` accepts a port id or a compass name (``"east"``).
        """
        from repro.noc.topology import port_id

        pid = port if isinstance(port, int) else port_id(port)
        self.flush_nbti()
        return self.routers[router].duty_cycles(pid)

    def device(self, router: int, port, vc: int) -> PMOSDevice:
        """The PMOS device guarding one router input VC buffer."""
        from repro.noc.topology import port_id

        pid = port if isinstance(port, int) else port_id(port)
        self.flush_nbti()
        return self.devices[(router, pid, vc)]

    def reset_nbti(self) -> None:
        """Zero every duty-cycle counter (discard warm-up stress)."""
        for device in self.devices.values():
            device.counter.reset()
        # Interval accounting restarts here: the unbooked tail of the
        # warm-up is discarded along with the counters.
        cycle = self.cycle
        for unit in self._nbti_units:
            for ivc in unit.vcs:
                ivc.buffer.nbti_rebase(cycle)

    def upstream_ports(self) -> List[UpstreamPort]:
        """Every upstream port in the NoC (router outputs + NI injectors)."""
        ports = [
            router.outputs[p].upstream
            for router in self.routers
            for p in router.output_ports
        ]
        ports.extend(ni.injection_port for ni in self.interfaces)
        return ports

    def reset_stats(self) -> None:
        """Drop NI latency/throughput statistics (warm-up discard).

        Watchdog degrade *counters* restart with the window; the health
        state itself (timestamps, faulted flags) carries over — a port
        degraded during warm-up is still degraded afterwards.
        """
        for ni in self.interfaces:
            ni.reset_stats()
        for port in self.upstream_ports():
            for engine in port.engines:
                engine.degrade_events = 0
                engine.degraded_cycles = 0
        self.stats_window_start = self.cycle
        pending = sum(ni.pending_flits for ni in self.interfaces)
        self.conservation_baseline = pending - self.in_flight_flits()

    def in_flight_flits(self) -> int:
        """Flits currently buffered or on a link (conservation checks)."""
        buffered = sum(r.occupancy() for r in self.routers)
        buffered += sum(ni.ejection_unit.occupancy() for ni in self.interfaces)
        on_links = 0
        for router in self.routers:
            for port in router.input_ports:
                on_links += router.inputs[port].data_channel.in_flight
        for ni in self.interfaces:
            on_links += ni._eject_data_channel.in_flight
        pending = sum(ni.pending_flits for ni in self.interfaces)
        return buffered + on_links + pending

    def stats(self) -> SimStats:
        """Aggregate latency/throughput statistics."""
        records = [rec for ni in self.interfaces for rec in ni.ejection_records]
        latencies = sorted(rec.latency for rec in records)
        flits_ejected = sum(ni.flits_ejected for ni in self.interfaces)
        window = self.cycle - self.stats_window_start
        cycles = max(1, window)

        # Streaming percentiles: below the sketch's sample budget this
        # reproduces sorted(latencies)[int(q*(n-1))] exactly, so golden
        # artifacts are byte-stable; beyond it, memory stays bounded.
        sketch = QuantileSketch()
        for latency in latencies:
            sketch.add(latency)

        def percentile(q: float) -> float:
            return float(sketch.quantile(q))

        degrade_events = 0
        degraded_cycles = 0
        for port in self.upstream_ports():
            for engine in port.engines:
                degrade_events += engine.degrade_events
                degraded_cycles += engine.degraded_cycles

        return SimStats(
            cycles=window,
            packets_injected=sum(ni.packets_injected for ni in self.interfaces),
            packets_ejected=sum(ni.packets_ejected for ni in self.interfaces),
            flits_injected=sum(ni.flits_injected for ni in self.interfaces),
            flits_ejected=flits_ejected,
            avg_packet_latency=(sum(latencies) / len(latencies)) if latencies else 0.0,
            max_packet_latency=max(latencies) if latencies else 0,
            throughput_flits_per_node_cycle=flits_ejected / (cycles * self.config.num_nodes),
            p50_packet_latency=percentile(0.50),
            p95_packet_latency=percentile(0.95),
            p99_packet_latency=percentile(0.99),
            sensor_degrade_events=degrade_events,
            sensor_degraded_cycles=degraded_cycles,
        )


def neighbor_of_inverse(topology: Topology, node: int, in_port: int) -> Tuple[int, int]:
    """Find the (upstream router, upstream output port) feeding an input
    port — the inverse of the topology's link direction.

    Backed by a per-topology ``(dst, dst_port) -> (src, src_port)`` map
    built on first use, mirroring :meth:`Topology.neighbor`'s forward
    map: network construction queries this once per input port, and a
    linear link scan each time made the wiring quadratic on large
    meshes.
    """
    table = getattr(topology, "_upstream_map", None)
    if table is None:
        table = {
            (link.dst_router, link.dst_port): (link.src_router, link.src_port)
            for link in topology.links()
        }
        topology._upstream_map = table
    try:
        return table[(node, in_port)]
    except KeyError:
        raise ValueError(
            f"no upstream feeds router {node} port {port_name(in_port)}"
        ) from None
